// Extension bench: the recursive (streaming) estimator.
//
// A fixed source population reports over a stream of assertion windows;
// we sweep the window size and report the streaming estimator's accuracy
// against (i) the offline EM-Ext run on each window in isolation and
// (ii) the offline EM-Ext run on the *concatenation* of all windows seen
// so far (the gold standard the recursion approximates at O(window)
// instead of O(history) cost per update).
#include "bench_common.h"
#include "core/em_ext.h"
#include "core/streaming_em.h"
#include "eval/metrics.h"
#include "simgen/parametric_gen.h"

namespace {

using namespace ss;

// Concatenates batches (same sources, disjoint assertion blocks).
Dataset concat_batches(const std::vector<Dataset>& batches) {
  std::size_t n = batches.front().source_count();
  std::vector<Claim> claims;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> exposed;
  std::vector<Label> truth;
  std::uint32_t offset = 0;
  for (const Dataset& b : batches) {
    for (const Claim& c : b.claims.to_claims()) {
      claims.push_back({c.source, c.assertion + offset, c.time});
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t j : b.dependency.exposed_assertions(i)) {
        exposed.emplace_back(static_cast<std::uint32_t>(i), j + offset);
      }
    }
    truth.insert(truth.end(), b.truth.begin(), b.truth.end());
    offset += static_cast<std::uint32_t>(b.assertion_count());
  }
  Dataset all;
  all.name = "concat";
  all.claims = SourceClaimMatrix(n, offset, claims);
  all.dependency = DependencyIndicators::from_cells(n, offset, exposed);
  all.truth = std::move(truth);
  return all;
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Extension — streaming (recursive) EM-Ext",
                "recursive estimation over windows; cf. IPSN'16 stream "
                "estimator cited in related work");
  std::size_t reps = bench_repetitions(30, 8);
  std::printf("reps per point: %zu (n = 50, 12 windows)\n\n", reps);

  TablePrinter table({"window size", "streaming", "isolated offline",
                      "full-history offline"});
  JsonValue rows = JsonValue::array();
  for (std::size_t window : {8u, 15u, 30u}) {
    MetricSummary summary = run_repetitions(
        reps, 71, [&](std::size_t, Rng& rng) {
          SimKnobs knobs = SimKnobs::paper_defaults(50, window);
          knobs.p_indep_true = {0.35, 0.95};
          knobs.p_dep_true = {0.3, 0.9};
          SimInstance population = generate_parametric(knobs, rng);

          StreamingEmExt streaming(50);
          std::vector<Dataset> history;
          MetricRow row;
          double stream_acc = 0.0;
          double isolated_acc = 0.0;
          double full_acc = 0.0;
          std::size_t measured = 0;
          for (int w = 0; w < 12; ++w) {
            SimInstance batch = generate_parametric_batch(
                population.true_params, population.forest, window, rng);
            StreamingBatchResult r = streaming.observe(batch.dataset);
            history.push_back(batch.dataset);
            if (w < 2) continue;  // warm-up
            ++measured;
            EstimateResult est;
            est.belief = r.belief;
            est.log_odds = r.log_odds;
            est.probabilistic = true;
            stream_acc += classify(batch.dataset, est).accuracy();
            isolated_acc +=
                classify(batch.dataset,
                         EmExtEstimator().run(batch.dataset, 1))
                    .accuracy();
            Dataset all = concat_batches(history);
            EstimateResult full =
                EmExtEstimator().run(all, 1);
            // Score only this window's block within the concatenation.
            std::size_t block = all.assertion_count() -
                                batch.dataset.assertion_count();
            EstimateResult window_view;
            window_view.belief.assign(
                full.belief.begin() + static_cast<long>(block),
                full.belief.end());
            window_view.probabilistic = true;
            full_acc +=
                classify(batch.dataset, window_view).accuracy();
          }
          row["stream"] = stream_acc / static_cast<double>(measured);
          row["isolated"] = isolated_acc / static_cast<double>(measured);
          row["full"] = full_acc / static_cast<double>(measured);
          return row;
        });
    table.add_row({std::to_string(window),
                   bench::mean_ci(summary["stream"]),
                   bench::mean_ci(summary["isolated"]),
                   bench::mean_ci(summary["full"])});
    JsonValue row = JsonValue::object();
    row["window"] = window;
    row["streaming"] = summary["stream"].mean();
    row["isolated"] = summary["isolated"].mean();
    row["full_history"] = summary["full"].mean();
    rows.push_back(std::move(row));
  }
  table.print();
  std::printf("\nexpected: streaming > isolated (carried source "
              "knowledge), approaching the full-history rerun at a "
              "fraction of its cost; the gap narrows as windows grow.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ext_streaming";
  doc["rows"] = std::move(rows);
  bench::write_result("ext_streaming", doc);
  return 0;
}
