// Ablation A1: which Gibbs estimator of the error bound to trust?
//
// The paper's Algorithm 1 accumulates Err = sum_t min(...) / sum_t
// total(...) over samples that are *already* drawn from P(SC) — that
// weights likely samples by their probability twice and biases the
// estimate. The unbiased alternative is the plain Monte-Carlo mean of
// the per-sample minimum posterior. This bench measures both against
// the exact bound across instance sizes.
#include "bench_common.h"
#include "bounds/convolution_bound.h"
#include "bounds/dataset_bound.h"
#include "simgen/parametric_gen.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A1 — Algorithm-1 ratio vs unbiased MC bound",
                "DESIGN.md §5 (Gibbs estimator choice)");
  std::size_t reps = bench_repetitions(20, 5);
  std::printf("reps per point: %zu\n\n", reps);

  TablePrinter table({"n", "exact", "unbiased MC", "|MC-exact|",
                      "Algorithm 1", "|Alg1-exact|", "convolution",
                      "|conv-exact|"});
  JsonValue rows = JsonValue::array();
  for (std::size_t n : {5u, 10u, 15u, 20u}) {
    SimKnobs knobs = SimKnobs::paper_defaults(n, 50);
    MetricSummary summary = run_repetitions(
        reps, 41, [&](std::size_t, Rng& rng) {
          SimInstance inst = generate_parametric(knobs, rng);
          MetricRow row;
          auto exact = exact_dataset_bound(inst.dataset, inst.true_params);
          GibbsBoundConfig mc;
          mc.kind = GibbsEstimatorKind::kUnbiasedMc;
          mc.min_sweeps = 1000;
          mc.max_sweeps = 8000;
          GibbsBoundConfig alg1 = mc;
          alg1.kind = GibbsEstimatorKind::kAlgorithm1;
          std::uint64_t seed = rng.engine()();
          auto r_mc = gibbs_dataset_bound(inst.dataset, inst.true_params,
                                          seed, mc);
          auto r_a1 = gibbs_dataset_bound(inst.dataset, inst.true_params,
                                          seed, alg1);
          row["exact"] = exact.bound.error;
          row["mc"] = r_mc.bound.error;
          row["mc_gap"] = std::fabs(r_mc.bound.error - exact.bound.error);
          row["alg1"] = r_a1.bound.error;
          row["alg1_gap"] =
              std::fabs(r_a1.bound.error - exact.bound.error);
          // Deterministic convolution alternative, averaged over the
          // same distinct exposure patterns.
          double conv = 0.0;
          for (std::size_t j = 0; j < inst.dataset.assertion_count();
               ++j) {
            conv += convolution_bound(
                        make_column_model(inst.true_params,
                                          inst.dataset.dependency, j))
                        .error;
          }
          conv /= static_cast<double>(inst.dataset.assertion_count());
          row["conv"] = conv;
          row["conv_gap"] = std::fabs(conv - exact.bound.error);
          return row;
        });
    table.add_row({std::to_string(n),
                   format_double(summary["exact"].mean(), 4),
                   format_double(summary["mc"].mean(), 4),
                   format_double(summary["mc_gap"].mean(), 4),
                   format_double(summary["alg1"].mean(), 4),
                   format_double(summary["alg1_gap"].mean(), 4),
                   format_double(summary["conv"].mean(), 4),
                   format_double(summary["conv_gap"].mean(), 4)});
    JsonValue row = JsonValue::object();
    row["n"] = n;
    for (const char* k : {"exact", "mc", "mc_gap", "alg1", "alg1_gap",
                          "conv", "conv_gap"}) {
      row[k] = summary[k].mean();
    }
    rows.push_back(std::move(row));
  }
  table.print();
  std::printf("\nexpected: the unbiased MC estimator sits within MC noise "
              "of exact (the paper's reported <=0.013 gaps); the literal "
              "ratio form shows a systematic offset. The library defaults "
              "to the unbiased estimator.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_bound_estimators";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_bound_estimators", doc);
  return 0;
}
