// Figure 7: estimator performance vs number of sources n = 20..50.
// Paper shape: more sources help EM-Ext / EM-Social / Optimal, while
// plain EM's false-positive rate grows because rumour echoes masquerade
// as extra substantiation.
#include "estimator_sweep.h"

int main() {
  using namespace ss;
  bench::banner("Figure 7 — estimators vs number of sources",
                "ICDCS'16 Fig. 7 (n = 20..50 step 5, m = 50)");
  std::vector<bench::EstimatorSweepPoint> points;
  for (std::size_t n = 20; n <= 50; n += 5) {
    points.push_back({std::to_string(n), SimKnobs::paper_defaults(n, 50)});
  }
  bench::run_estimator_sweep("fig7_estimators_vs_sources", "n", points);
  std::printf(
      "\nexpected shape: EM-Ext tracks Optimal closest; EM's false\n"
      "positives grow with n (dependencies mistaken for support).\n");
  return 0;
}
