// Ablation A4: Gibbs sample budget vs bound accuracy.
//
// How many post-burn-in sweeps does the approximate bound need before it
// is indistinguishable from exact? Informs the default budgets used by
// the figure benches.
#include "bench_common.h"
#include "bounds/dataset_bound.h"
#include "simgen/parametric_gen.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A4 — Gibbs sweeps vs bound accuracy",
                "Section III-B convergence behaviour");
  std::size_t reps = bench_repetitions(20, 5);
  std::printf("reps per point: %zu (n = 20, m = 50)\n\n", reps);

  SimKnobs knobs = SimKnobs::paper_defaults(20, 50);
  TablePrinter table({"sweeps", "mean |approx-exact|", "max |approx-exact|"});
  JsonValue rows = JsonValue::array();
  for (std::size_t sweeps : {50u, 100u, 250u, 500u, 1000u, 2500u, 5000u}) {
    MetricSummary summary = run_repetitions(
        reps, 43, [&](std::size_t, Rng& rng) {
          SimInstance inst = generate_parametric(knobs, rng);
          auto exact = exact_dataset_bound(inst.dataset, inst.true_params);
          GibbsBoundConfig config;
          config.min_sweeps = sweeps;
          config.max_sweeps = sweeps;
          config.burn_in_sweeps = std::max<std::size_t>(20, sweeps / 10);
          auto approx = gibbs_dataset_bound(
              inst.dataset, inst.true_params, rng.engine()(), config);
          MetricRow row;
          row["gap"] = std::fabs(approx.bound.error - exact.bound.error);
          return row;
        });
    table.add_row({std::to_string(sweeps),
                   format_double(summary["gap"].mean(), 5),
                   format_double(summary["gap"].max(), 5)});
    JsonValue row = JsonValue::object();
    row["sweeps"] = sweeps;
    row["mean_gap"] = summary["gap"].mean();
    row["max_gap"] = summary["gap"].max();
    rows.push_back(std::move(row));
  }
  table.print();
  std::printf("\nexpected: gap shrinks ~1/sqrt(sweeps); a few hundred "
              "sweeps already reach the paper's reported precision.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_gibbs_samples";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_gibbs_samples", doc);
  return 0;
}
