#include "bench_common.h"

#include <algorithm>
#include <filesystem>

#if defined(_WIN32)
// No cheap portable reading wired up; peak_rss_bytes reports 0.
#else
#include <sys/resource.h>
#endif

#include "math/simd/dispatch.h"
#include "util/cpu.h"

namespace ss::bench {

std::size_t peak_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#endif
}

double min_wall_ms(int reps, const std::function<void()>& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    work();
    best = std::min(best, timer.millis());
  }
  return best;
}

StreamingStats timed_reps(std::size_t reps,
                          const std::function<void()>& work) {
  StreamingStats stats;
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    work();
    stats.add(timer.millis());
  }
  return stats;
}

void SectionTimer::section(const std::string& name) {
  finish();
  open_ = name;
  running_ = true;
  timer_.reset();
}

void SectionTimer::finish() {
  if (!running_) return;
  sections_.emplace_back(open_, timer_.seconds());
  running_ = false;
}

double SectionTimer::seconds(const std::string& name) const {
  for (const auto& [n, s] : sections_) {
    if (n == name) return s;
  }
  return 0.0;
}

JsonValue SectionTimer::to_json() const {
  JsonValue out = JsonValue::object();
  for (const auto& [n, s] : sections_) out[n] = s;
  return out;
}

JsonValue host_metadata() {
  JsonValue host = JsonValue::object();
  host["cpu_model"] = cpu_model_name();
  host["cpu_features"] = cpu_feature_summary();
#if defined(__clang__)
  host["compiler"] = strprintf("clang %d.%d.%d", __clang_major__,
                               __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  host["compiler"] = strprintf("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                               __GNUC_PATCHLEVEL__);
#else
  host["compiler"] = "unknown";
#endif
  host["kernel_backend"] = simd::active_backend_name();
  host["avx2_compiled"] = simd::avx2_compiled();
  host["avx2_runtime_supported"] = simd::avx2_runtime_supported();
  return host;
}

void write_result(const std::string& name, const JsonValue& doc) {
  std::string dir = results_dir();
  std::filesystem::create_directories(dir);
  JsonValue stamped = doc;
  if (stamped["host"].is_null()) stamped["host"] = host_metadata();
  stamped.write_file(dir + "/" + name + ".json");
}

}  // namespace ss::bench
