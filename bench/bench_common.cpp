#include "bench_common.h"

#include <filesystem>

namespace ss::bench {

void write_result(const std::string& name, const JsonValue& doc) {
  std::string dir = results_dir();
  std::filesystem::create_directories(dir);
  doc.write_file(dir + "/" + name + ".json");
}

}  // namespace ss::bench
