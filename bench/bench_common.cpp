#include "bench_common.h"

#include <filesystem>

#include "math/simd/dispatch.h"
#include "util/cpu.h"

namespace ss::bench {

JsonValue host_metadata() {
  JsonValue host = JsonValue::object();
  host["cpu_model"] = cpu_model_name();
  host["cpu_features"] = cpu_feature_summary();
#if defined(__clang__)
  host["compiler"] = strprintf("clang %d.%d.%d", __clang_major__,
                               __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  host["compiler"] = strprintf("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                               __GNUC_PATCHLEVEL__);
#else
  host["compiler"] = "unknown";
#endif
  host["kernel_backend"] = simd::active_backend_name();
  host["avx2_compiled"] = simd::avx2_compiled();
  host["avx2_runtime_supported"] = simd::avx2_runtime_supported();
  return host;
}

void write_result(const std::string& name, const JsonValue& doc) {
  std::string dir = results_dir();
  std::filesystem::create_directories(dir);
  JsonValue stamped = doc;
  if (stamped["host"].is_null()) stamped["host"] = host_metadata();
  stamped.write_file(dir + "/" + name + ".json");
}

}  // namespace ss::bench
