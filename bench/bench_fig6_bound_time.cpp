// Figure 6: bound computation time — exact enumeration explodes
// exponentially in n while the Gibbs approximation stays flat.
// Implemented with google-benchmark so the timings carry proper
// statistical treatment; the paper's qualitative claim is the crossover.
#include <benchmark/benchmark.h>

#include "bounds/dataset_bound.h"
#include "simgen/parametric_gen.h"
#include "util/env.h"

namespace {

using namespace ss;

SimInstance make_instance(std::size_t n) {
  Rng rng(60 + n);
  SimKnobs knobs = SimKnobs::paper_defaults(n, 50);
  return generate_parametric(knobs, rng);
}

void BM_ExactBound(benchmark::State& state) {
  SimInstance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto bound = exact_dataset_bound(inst.dataset, inst.true_params);
    benchmark::DoNotOptimize(bound);
  }
}

void BM_GibbsBound(benchmark::State& state) {
  SimInstance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  GibbsBoundConfig config;
  config.min_sweeps = 1000;
  config.max_sweeps = 1000;  // fixed sample budget: flat cost by design
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto bound =
        gibbs_dataset_bound(inst.dataset, inst.true_params, seed, config);
    benchmark::DoNotOptimize(bound);
  }
}

}  // namespace

// Exact: tractable range only — the point of the figure is the blow-up.
// SS_FAST=1 stops the exact sweep at n = 15.
BENCHMARK(BM_ExactBound)->Arg(5)->Arg(10)->Arg(15)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_GibbsBound)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::printf("==============================================\n");
  std::printf("Figure 6 — bound computation time, exact vs approx\n");
  std::printf("reproduces: ICDCS'16 Fig. 6 (exact is exponential in n;\n");
  std::printf("approximate stays flat). Exact points beyond n = 15/20\n");
  std::printf("take seconds-to-minutes each; enable with SS_FIG6_FULL=1.\n");
  std::printf("==============================================\n");
  if (ss::env_flag("SS_FIG6_FULL")) {
    BENCHMARK(BM_ExactBound)->Arg(20)->Arg(25)->Unit(
        benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
