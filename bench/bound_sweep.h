// Shared driver for the bound-precision figures (Figs. 3-5): sweep one
// knob, and at each point average the exact bound (Eq. 3) and the Gibbs
// approximation (Algorithm 1 / Eq. 6) over repeated generated instances,
// reporting total error plus false-positive/false-negative parts.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bounds/dataset_bound.h"
#include "simgen/parametric_gen.h"

namespace ss::bench {

struct BoundSweepPoint {
  std::string label;  // x-axis value as printed
  SimKnobs knobs;
};

inline void run_bound_sweep(const std::string& experiment,
                            const std::string& x_name,
                            const std::vector<BoundSweepPoint>& points) {
  std::size_t reps = bench_repetitions(/*paper_default=*/20,
                                       /*fast_default=*/5);
  std::printf("reps per point: %zu (SS_REPS overrides)\n\n", reps);

  TablePrinter table({x_name, "exact bound", "approx bound", "|diff|",
                      "exact FP", "approx FP", "exact FN", "approx FN"});
  JsonValue rows = JsonValue::array();
  for (const auto& point : points) {
    MetricSummary summary = run_repetitions(
        reps, 1234, [&](std::size_t, Rng& rng) {
          SimInstance inst = generate_parametric(point.knobs, rng);
          MetricRow row;
          auto exact = exact_dataset_bound(inst.dataset, inst.true_params);
          GibbsBoundConfig config;
          config.min_sweeps = 1000;
          config.max_sweeps = 8000;
          auto approx = gibbs_dataset_bound(
              inst.dataset, inst.true_params,
              rng.engine()(), config);
          row["exact"] = exact.bound.error;
          row["approx"] = approx.bound.error;
          row["diff"] = std::fabs(exact.bound.error - approx.bound.error);
          row["exact_fp"] = exact.bound.false_positive;
          row["approx_fp"] = approx.bound.false_positive;
          row["exact_fn"] = exact.bound.false_negative;
          row["approx_fn"] = approx.bound.false_negative;
          return row;
        });
    table.add_row({point.label,
                   format_double(summary["exact"].mean(), 4),
                   format_double(summary["approx"].mean(), 4),
                   format_double(summary["diff"].mean(), 4),
                   format_double(summary["exact_fp"].mean(), 4),
                   format_double(summary["approx_fp"].mean(), 4),
                   format_double(summary["exact_fn"].mean(), 4),
                   format_double(summary["approx_fn"].mean(), 4)});
    JsonValue row = JsonValue::object();
    row["x"] = point.label;
    for (const char* key : {"exact", "approx", "diff", "exact_fp",
                            "approx_fp", "exact_fn", "approx_fn"}) {
      row[key] = summary[key].mean();
      row[std::string(key) + "_ci95"] = summary[key].ci95_halfwidth();
    }
    rows.push_back(std::move(row));
  }
  table.print();

  JsonValue doc = JsonValue::object();
  doc["experiment"] = experiment;
  doc["x"] = x_name;
  doc["reps"] = reps;
  doc["rows"] = std::move(rows);
  write_result(experiment, doc);
}

}  // namespace ss::bench
