#!/usr/bin/env sh
# Entry point for the kernel perf harness.
#
# Builds (if needed) and runs bench_perf_scaling, which
#   1. asserts the math/kernels.h hot loops are bit-identical to an
#      in-binary reimplementation of the pre-kernel baseline, and that
#      the scalar and AVX2 backends agree under the ULP contract, then
#   2. times baseline vs kernel legs (BENCH_PR3.json) and scalar vs
#      AVX2 backend legs (BENCH_PR6.json) under
#      <SS_RESULTS_DIR|bench_results>/, plus the existing
#      perf_scaling.json / ingestion_robustness.json records.
#
# Usage:
#   bench/run_bench.sh                   # full timed run
#   bench/run_bench.sh --backend=scalar  # pin the kernel backend
#   bench/run_bench.sh --backend avx2    #   (exports SS_KERNEL_BACKEND)
#   SS_FAST=1 bench/run_bench.sh         # reduced reps
#   SS_PERF_CHECK=1 bench/run_bench.sh   # agreement checks only, no timing
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${SS_BUILD_DIR:-"$repo_root/build"}

# --backend=<auto|scalar|avx2> (or "--backend <value>") is sugar for
# SS_KERNEL_BACKEND; everything else passes through to the binary.
passthrough=""
while [ $# -gt 0 ]; do
  case "$1" in
    --backend=*)
      SS_KERNEL_BACKEND=${1#--backend=}
      export SS_KERNEL_BACKEND
      ;;
    --backend)
      if [ $# -lt 2 ]; then
        echo "run_bench.sh: --backend requires a value (auto|scalar|avx2)" >&2
        exit 2
      fi
      shift
      SS_KERNEL_BACKEND=$1
      export SS_KERNEL_BACKEND
      ;;
    *)
      passthrough="$passthrough $1"
      ;;
  esac
  shift
done

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j --target bench_perf_scaling

# Results land relative to the CWD unless SS_RESULTS_DIR is absolute;
# run from the repo root so bench_results/ is predictable.
cd "$repo_root"
# shellcheck disable=SC2086 — word splitting of passthrough is intended.
exec "$build_dir/bench/bench_perf_scaling" $passthrough
