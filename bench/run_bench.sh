#!/usr/bin/env sh
# Entry point for the PR-3 kernel perf harness.
#
# Builds (if needed) and runs bench_perf_scaling, which
#   1. asserts the math/kernels.h hot loops are bit-identical to an
#      in-binary reimplementation of the pre-kernel baseline, then
#   2. times baseline vs kernel legs and writes the speedup table to
#      <SS_RESULTS_DIR|bench_results>/BENCH_PR3.json (plus the existing
#      perf_scaling.json / ingestion_robustness.json records).
#
# Usage:
#   bench/run_bench.sh             # full timed run
#   SS_FAST=1 bench/run_bench.sh   # reduced reps
#   SS_PERF_CHECK=1 bench/run_bench.sh   # identity checks only, no timing
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${SS_BUILD_DIR:-"$repo_root/build"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j --target bench_perf_scaling

# Results land relative to the CWD unless SS_RESULTS_DIR is absolute;
# run from the repo root so bench_results/ is predictable.
cd "$repo_root"
exec "$build_dir/bench/bench_perf_scaling" "$@"
