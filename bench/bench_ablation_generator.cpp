// Ablation A2: parametric vs procedural generator.
//
// The parametric generator (per-cell Bernoulli with known theta) is the
// workhorse because bounds need exact parameters; the procedural
// generator implements Section V-A's pool/opportunity process literally.
// This bench checks that the estimator *ranking* — the paper's
// qualitative claim — is robust to that modelling choice, in a regime
// where dependent claims mislead (low p^depT).
#include "bench_common.h"
#include "core/em_ext.h"
#include "estimators/em_ipsn12.h"
#include "estimators/em_social.h"
#include "eval/metrics.h"
#include "simgen/parametric_gen.h"
#include "simgen/procedural_gen.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A2 — parametric vs procedural generator",
                "DESIGN.md §5 (generator fidelity)");
  std::size_t reps = bench_repetitions(40, 10);
  std::printf("reps per generator: %zu (n = 40, m = 50, misleading "
              "dependent claims)\n\n",
              reps);

  TablePrinter table(
      {"generator", "EM-Ext", "EM-Social", "EM", "EM-Ext wins?"});
  JsonValue rows = JsonValue::array();
  for (bool procedural : {false, true}) {
    SimKnobs knobs = SimKnobs::paper_defaults(40, 50);
    knobs.p_dep_true = {0.15, 0.25};
    knobs.p_dep = {0.5, 0.7};
    if (procedural) {
      // The literal pool process dilutes informativeness by the
      // pool-size ratio; a smaller true pool keeps the instance
      // informative (DESIGN.md §5).
      knobs.d = {0.35, 0.45};
      knobs.p_indep_true = {0.75, 0.85};
    }
    MetricSummary summary = run_repetitions(
        reps, 47, [&](std::size_t, Rng& rng) {
          SimInstance inst = procedural ? generate_procedural(knobs, rng)
                                        : generate_parametric(knobs, rng);
          MetricRow row;
          row["ext"] = classify(inst.dataset,
                                EmExtEstimator().run(inst.dataset, 1))
                           .accuracy();
          row["social"] = classify(inst.dataset, EmSocialEstimator().run(
                                                     inst.dataset, 1))
                              .accuracy();
          row["em"] = classify(inst.dataset,
                               EmIpsn12Estimator().run(inst.dataset, 1))
                          .accuracy();
          return row;
        });
    bool wins = summary["ext"].mean() >= summary["social"].mean() &&
                summary["ext"].mean() >= summary["em"].mean();
    table.add_row({procedural ? "procedural (V-A literal)" : "parametric",
                   bench::mean_ci(summary["ext"]),
                   bench::mean_ci(summary["social"]),
                   bench::mean_ci(summary["em"]), wins ? "yes" : "NO"});
    JsonValue row = JsonValue::object();
    row["generator"] = procedural ? "procedural" : "parametric";
    row["em_ext"] = summary["ext"].mean();
    row["em_social"] = summary["social"].mean();
    row["em"] = summary["em"].mean();
    rows.push_back(std::move(row));
  }
  table.print();
  std::printf("\nexpected: EM-Ext leads under both generators — the "
              "qualitative result does not hinge on generator fidelity.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_generator";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_generator", doc);
  return 0;
}
