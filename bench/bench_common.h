// Shared plumbing for the reproduction benches.
//
// Every bench binary prints the paper rows/series it regenerates as an
// aligned table and appends a machine-readable JSON record under
// SS_RESULTS_DIR (default: ./bench_results) for EXPERIMENTS.md curation.
// Environment knobs: SS_REPS (repetitions per point), SS_FAST=1 (reduced
// sweep for smoke runs), SS_THREADS, SS_RESULTS_DIR.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/json.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "util/env.h"
#include "util/string_util.h"

namespace ss::bench {

inline std::string results_dir() {
  return env_string("SS_RESULTS_DIR", "bench_results");
}

// Provenance block stamped into every record write_result emits: CPU
// model + feature flags, compiler, and the active kernel backend
// (docs/MODEL.md §12). Timings are meaningless without the host and
// backend they were taken on, so the stamp is automatic, not opt-in.
JsonValue host_metadata();

// Writes `doc` as <results_dir>/<name>.json, creating the directory.
// A "host" metadata block is added (unless the doc already carries
// one, so callers can override when replaying foreign results).
void write_result(const std::string& name, const JsonValue& doc);

// Formats "mean +- ci" cells.
inline std::string mean_ci(const StreamingStats& s, int precision = 4) {
  return strprintf("%.*f +-%.*f", precision, s.mean(), precision,
                   s.ci95_halfwidth());
}

// Standard header line naming the experiment and its provenance.
inline void banner(const std::string& experiment,
                   const std::string& paper_ref) {
  std::printf("==============================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================\n");
}

}  // namespace ss::bench
