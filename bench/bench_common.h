// Shared plumbing for the reproduction benches.
//
// Every bench binary prints the paper rows/series it regenerates as an
// aligned table and appends a machine-readable JSON record under
// SS_RESULTS_DIR (default: ./bench_results) for EXPERIMENTS.md curation.
// Environment knobs: SS_REPS (repetitions per point), SS_FAST=1 (reduced
// sweep for smoke runs), SS_THREADS, SS_RESULTS_DIR.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "eval/json.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ss::bench {

inline std::string results_dir() {
  return env_string("SS_RESULTS_DIR", "bench_results");
}

// Provenance block stamped into every record write_result emits: CPU
// model + feature flags, compiler, and the active kernel backend
// (docs/MODEL.md §12). Timings are meaningless without the host and
// backend they were taken on, so the stamp is automatic, not opt-in.
JsonValue host_metadata();

// Writes `doc` as <results_dir>/<name>.json, creating the directory.
// A "host" metadata block is added (unless the doc already carries
// one, so callers can override when replaying foreign results).
void write_result(const std::string& name, const JsonValue& doc);

// Peak resident set size of this process in bytes (ru_maxrss), 0 when
// the platform offers no cheap reading. Monotone over the process
// lifetime — sample it after each phase and diff against the previous
// sample to attribute growth, or against a budget for regression gates
// (bench_scale's SS_RSS_BUDGET_MB check).
std::size_t peak_rss_bytes();

inline double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

// Minimum wall time of `work` over `reps` runs, in milliseconds — the
// standard noise-robust point estimate for deterministic workloads.
double min_wall_ms(int reps, const std::function<void()>& work);

// All `reps` timings as a StreamingStats (ms), for mean_ci cells.
StreamingStats timed_reps(std::size_t reps,
                          const std::function<void()>& work);

// Named wall-clock phases for multi-stage harnesses:
//   SectionTimer t;
//   t.section("generate"); ...; t.section("load"); ...; t.finish();
// Each section's seconds land in order; to_json() emits {name: s}.
class SectionTimer {
 public:
  void section(const std::string& name);
  void finish();
  const std::vector<std::pair<std::string, double>>& sections() const {
    return sections_;
  }
  double seconds(const std::string& name) const;
  JsonValue to_json() const;

 private:
  std::vector<std::pair<std::string, double>> sections_;
  std::string open_;
  WallTimer timer_;
  bool running_ = false;
};

// Formats "mean +- ci" cells.
inline std::string mean_ci(const StreamingStats& s, int precision = 4) {
  return strprintf("%.*f +-%.*f", precision, s.mean(), precision,
                   s.ci95_halfwidth());
}

// Standard header line naming the experiment and its provenance.
inline void banner(const std::string& experiment,
                   const std::string& paper_ref) {
  std::printf("==============================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================\n");
}

}  // namespace ss::bench
