// Figure 3: precision of the approximate error bound as the number of
// sources n grows from 5 to 25 (paper: max exact-approx gap 0.0064 at
// n = 20). Other knobs at paper defaults.
#include "bound_sweep.h"

int main() {
  using namespace ss;
  bench::banner("Figure 3 — approximate vs exact bound, sweeping n",
                "ICDCS'16 Fig. 3 (n = 5..25, m = 50, defaults)");
  std::vector<bench::BoundSweepPoint> points;
  for (std::size_t n : {5u, 10u, 15u, 20u, 25u}) {
    points.push_back({std::to_string(n), SimKnobs::paper_defaults(n, 50)});
  }
  bench::run_bound_sweep("fig3_bound_vs_sources", "n", points);
  std::printf("\nexpected shape: approx tracks exact within ~0.01 at "
              "every n; bound shrinks as sources are added.\n");
  return 0;
}
