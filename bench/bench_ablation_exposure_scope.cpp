// Ablation A7: direct vs transitive exposure.
//
// The paper defines a claim as dependent when an *ancestor* made the
// same assertion earlier; its Figure-1 walkthrough applies only direct
// followees. On depth-one dependency structures the two coincide, but on
// real follow graphs influence chains exist. This bench builds the same
// simulated event under both scopes and compares dependency volume and
// fact-finding quality.
#include "bench_common.h"
#include "core/em_ext.h"
#include "eval/metrics.h"
#include "twitter/builder.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A7 — direct vs transitive exposure scope",
                "Section II-A ancestor definition (DESIGN.md §5)");
  double scale = env_double("SS_SCALE", 0.15);
  std::size_t reps = bench_repetitions(5, 2);
  std::printf("reps per scenario: %zu (scale %.2f)\n\n", reps, scale);

  TablePrinter table({"scenario", "scope", "exposed cells",
                      "dependent claims", "EM-Ext top-100"});
  JsonValue rows = JsonValue::array();
  for (const char* name : {"Kirkuk", "LA Marathon"}) {
    for (ExposureScope scope :
         {ExposureScope::kDirect, ExposureScope::kTransitive}) {
      StreamingStats exposed;
      StreamingStats dependent;
      StreamingStats top100;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        TwitterScenario scenario = scenario_by_name(name).scaled(scale);
        TwitterSimulation sim =
            simulate_twitter(scenario, 900 + rep);
        BuiltDataset built = build_dataset(sim);
        Dataset dataset = built.dataset;
        dataset.dependency = DependencyIndicators::from_graph(
            dataset.claims, built.follows, scope);
        exposed.add(static_cast<double>(
            dataset.dependency.exposed_cell_count()));
        dependent.add(static_cast<double>(
            dataset.claims.claim_count() -
            count_original_claims(dataset.claims, dataset.dependency)));
        EstimateResult est = EmExtEstimator().run(dataset, 1);
        top100.add(top_k_true_fraction(dataset, est, 100));
      }
      const char* scope_name =
          scope == ExposureScope::kDirect ? "direct" : "transitive";
      table.add_row({name, scope_name,
                     format_double(exposed.mean(), 0),
                     format_double(dependent.mean(), 0),
                     bench::mean_ci(top100, 3)});
      JsonValue row = JsonValue::object();
      row["scenario"] = name;
      row["scope"] = scope_name;
      row["exposed_cells"] = exposed.mean();
      row["dependent_claims"] = dependent.mean();
      row["em_ext_top100"] = top100.mean();
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::printf("\nexpected: transitive exposure marks more cells dependent "
              "but changes EM-Ext's ranking quality only marginally — the "
              "direct definition (the paper's walkthrough) suffices.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_exposure_scope";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_exposure_scope", doc);
  return 0;
}
