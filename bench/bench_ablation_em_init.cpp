// Ablation A3: EM-Ext initialization sensitivity.
//
// Algorithm 2 line 1 says "random probability"; in practice random
// parameter draws can land in a degenerate basin where z collapses and
// every assertion is called false. This bench compares: the library's
// default vote-prior initialization, literal random init, random init
// with best-of-10 restarts (by final likelihood), and oracle init from
// the generating parameters.
#include "bench_common.h"
#include "core/em_ext.h"
#include "eval/metrics.h"
#include "simgen/parametric_gen.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A3 — EM-Ext initialization strategies",
                "Algorithm 2 line 1 (DESIGN.md §5)");
  std::size_t reps = bench_repetitions(40, 10);
  std::printf("reps: %zu (n = 50, m = 50, paper defaults)\n\n", reps);

  SimKnobs knobs = SimKnobs::paper_defaults(50, 50);
  MetricSummary summary = run_repetitions(
      reps, 53, [&](std::size_t, Rng& rng) {
        SimInstance inst = generate_parametric(knobs, rng);
        std::uint64_t seed = rng.engine()();
        MetricRow row;
        auto measure = [&](const char* name, const EmExtConfig& config) {
          EmExtEstimator em(config);
          EmExtResult r = em.run_detailed(inst.dataset, seed);
          row[std::string(name) + ".acc"] =
              classify(inst.dataset, r.estimate).accuracy();
          row[std::string(name) + ".ll"] = r.log_likelihood;
        };
        measure("1.vote-prior", {});
        EmExtConfig random;
        random.init_kind = EmInit::kRandom;
        measure("2.random", random);
        EmExtConfig restarts = random;
        restarts.restarts = 10;
        measure("3.random-x10", restarts);
        EmExtConfig oracle;
        oracle.init = inst.true_params;
        measure("4.oracle", oracle);
        // The same strategies with the paper's literal M-step
        // (shrinkage 0): this is where random init's z-collapse basins
        // bite, and where restarts fail to save it because the
        // degenerate optima are likelihood-competitive.
        EmExtConfig vote0;
        vote0.shrinkage = 0.0;
        measure("5.vote-prior/s0", vote0);
        EmExtConfig random0 = vote0;
        random0.init_kind = EmInit::kRandom;
        measure("6.random/s0", random0);
        EmExtConfig restarts0 = random0;
        restarts0.restarts = 10;
        measure("7.random-x10/s0", restarts0);
        return row;
      });

  TablePrinter table({"initialization", "accuracy", "final log-lik"});
  JsonValue rows = JsonValue::array();
  for (const char* name :
       {"1.vote-prior", "2.random", "3.random-x10", "4.oracle",
        "5.vote-prior/s0", "6.random/s0", "7.random-x10/s0"}) {
    table.add_row({name,
                   bench::mean_ci(summary[std::string(name) + ".acc"]),
                   format_double(
                       summary[std::string(name) + ".ll"].mean(), 1)});
    JsonValue row = JsonValue::object();
    row["init"] = name;
    row["accuracy"] = summary[std::string(name) + ".acc"].mean();
    row["log_likelihood"] = summary[std::string(name) + ".ll"].mean();
    rows.push_back(std::move(row));
  }
  table.print();
  std::printf("\nexpected: with the default shrinkage all inits land "
              "close to oracle (the prior smooths the landscape); with "
              "the paper's literal M-step (s0 rows) random init falls "
              "into z-collapse basins that best-of-10 restarts cannot "
              "repair, because the degenerate optima are "
              "likelihood-competitive — the reason the library defaults "
              "to the vote prior.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_em_init";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_em_init", doc);
  return 0;
}
