// Figure 9: estimator performance vs number of dependency trees
// tau = 1..11 at n = 50. Paper shape: EM-Ext outperforms EM-Social and
// EM across the board; everyone improves as sources become independent.
#include "estimator_sweep.h"

int main() {
  using namespace ss;
  bench::banner("Figure 9 — estimators vs number of dependency trees",
                "ICDCS'16 Fig. 9 (tau = 1..11, n = 50, m = 50)");
  std::vector<bench::EstimatorSweepPoint> points;
  for (std::size_t tau = 1; tau <= 11; ++tau) {
    SimKnobs knobs = SimKnobs::paper_defaults(50, 50);
    knobs.tau_lo = knobs.tau_hi = tau;
    points.push_back({std::to_string(tau), knobs});
  }
  bench::run_estimator_sweep("fig9_estimators_vs_trees", "tau", points);
  std::printf(
      "\nexpected shape: EM-Ext leads at every tau; the EM gap is widest\n"
      "at small tau, where cascades dominate the claim mix.\n");
  return 0;
}
