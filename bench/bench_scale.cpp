// Million-source scale harness (docs/MODEL.md §14, §16).
//
// Sweeps the streaming generator from 10^4 to 10^6 sources and, per
// point, measures the whole scale path:
//   generate        stream the community cascade into an .ssd file
//   open            mmap + header validation (SsdView::open)
//   open-reps       repeated map+validate for the noise-robust open cost
//   jsonl-baseline  the text-baseline parse the binary format replaces
//   shard           connected-component partition straight off the view
//   em              sharded EM-Ext (LPT work stealing + tree reductions)
//   em-legacy       the same EM on the pre-§16 execution path (A/B leg)
//   em-profile      one instrumented run capturing per-shard EM seconds
// recording wall time per phase, min-of-reps EM times for both engines
// and their ratio (`speedup`), the per-shard EM-seconds histogram with
// its load-imbalance factor (max/mean), the shard count/size histogram,
// and peak RSS after each point. Results land in
// bench_results/BENCH_PR10.json.
//
// The legacy leg reimplements the PR 8 execution strategy against the
// current engine contract: fixed-grain unit dispatch (no LPT ordering,
// no stealing), serial left-to-right folds for the column
// log-likelihood and posterior mass, and the copy-heavy serial M-step
// tail (finalize_m_step + sanitize_params + tie + max_abs_diff re-walk)
// instead of the fused one. Same gathers, same per-unit arithmetic —
// the A/B isolates scheduling + reduction/tail fusion, nothing else.
//
// SS_PERF_CHECK=1 runs one mid-size point as a correctness gate, no
// timing tables: .ssd open must beat the JSONL parse by >= 50x, the
// sharded EM hash must equal the flat engine's bit for bit (scalar
// pin) *and* stay identical across 1-worker and 8-worker pools, the
// LPT work-stealing scheduler must beat fixed-grain dispatch on a
// synthetic skewed workload (skipped with a printed reason on hosts
// with < 2 online CPUs, where there is no parallelism to schedule),
// and when SS_RSS_BUDGET_MB is set, peak RSS must stay under it.
// `ctest -L scale-smoke` runs this with SS_FAST=1 (10^4 sources).
//
// Knobs: SS_FAST=1 shrinks the sweep, SS_THREADS sizes the pool,
// SS_REPS overrides the per-point EM repetitions, SS_RESULTS_DIR moves
// the JSON, SS_RSS_BUDGET_MB arms the RSS gate, SS_AFFINITY pins
// workers (recorded in the result metadata).
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/em_driver.h"
#include "core/em_ext.h"
#include "core/em_mstep.h"
#include "core/posterior.h"
#include "core/sharded_em.h"
#include "data/io.h"
#include "data/shard.h"
#include "data/ssd.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "math/simd/dispatch.h"
#include "simgen/scale_gen.h"
#include "util/cpu.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ss;

constexpr std::uint64_t kSeed = 2016;

ScaleKnobs knobs_for(std::size_t sources) {
  ScaleKnobs knobs;
  knobs.sources = sources;
  knobs.assertions = std::max<std::size_t>(200, sources / 10);
  knobs.community_lo = 64;
  knobs.community_hi = 256;
  knobs.name = "scale-" + std::to_string(sources);
  return knobs;
}

std::uint64_t hash_estimate(const EmExtResult& r) {
  // FNV-1a over the raw IEEE-754 bytes, same recipe as the golden
  // suites: a bit-exact witness of the whole result.
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](const void* p, std::size_t len) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  auto fold_vec = [&](const std::vector<double>& v) {
    for (double x : v) fold(&x, sizeof(x));
  };
  fold_vec(r.estimate.belief);
  fold_vec(r.estimate.log_odds);
  fold_vec(r.likelihood_trace);
  fold(&r.log_likelihood, sizeof(double));
  return h;
}

// ---------------------------------------------------------------------
// Legacy execution path (PR 8), kept runnable so the speedup column is
// measured, not remembered. Implements the em_detail::run_em_driver
// engine contract with the production gathers but the pre-§16
// scheduling and reduction strategy.
// ---------------------------------------------------------------------

constexpr std::size_t kLegacyGrain = 256;

struct LegacyUnit {
  std::uint32_t shard;
  std::uint32_t begin;
  std::uint32_t end;
};

std::vector<LegacyUnit> legacy_units(const ShardedDataset& sharded,
                                     bool columns) {
  std::vector<LegacyUnit> units;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const DatasetShard& sh = sharded.shard(s);
    std::size_t count =
        columns ? sh.assertion_ids().size() : sh.source_ids().size();
    for (std::size_t begin = 0; begin < count; begin += kLegacyGrain) {
      units.push_back(
          {static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(begin),
           static_cast<std::uint32_t>(
               std::min(begin + kLegacyGrain, count))});
    }
  }
  return units;
}

class LegacyShardedEmEngine {
 public:
  LegacyShardedEmEngine(const ShardedDataset& sharded,
                        const EmExtConfig& config, ThreadPool* pool)
      : sharded_(sharded),
        config_(config),
        pool_(pool),
        column_units_(legacy_units(sharded, /*columns=*/true)),
        source_units_(legacy_units(sharded, /*columns=*/false)) {}

  struct Scratch {
    kernels::ExtLogTable table;
    EStepResult e;
    std::vector<double> column_ll;
    std::vector<em_detail::SourceMStats> mstats;
  };

  std::size_t source_count() const { return sharded_.source_count(); }
  std::size_t assertion_count() const {
    return sharded_.assertion_count();
  }
  std::uint64_t claim_count() const {
    return static_cast<std::uint64_t>(sharded_.claim_count());
  }
  ThreadPool* pool() const { return pool_; }

  Scratch make_scratch() const { return Scratch{}; }

  void e_step(const ModelParams& params, Scratch& s) const {
    const std::size_t n = sharded_.source_count();
    const std::size_t m = sharded_.assertion_count();
    if (params.source.size() != n) {
      throw std::invalid_argument(
          "LegacyShardedEmEngine: params/source count mismatch");
    }
    s.table.build(n, clamp_prob(params.z), [&](std::size_t i) {
      const SourceParams& sp = params.source[i];
      return std::array<double, 4>{clamp_prob(sp.a), clamp_prob(sp.b),
                                   clamp_prob(sp.f), clamp_prob(sp.g)};
    });
    s.e.posterior.resize(m);
    s.e.log_odds.resize(m);
    s.column_ll.resize(m);

    const double log_z = s.table.log_z();
    const double log_1mz = s.table.log_1mz();
    double* la_buf = s.e.log_odds.data();
    double* lb_buf = s.column_ll.data();
    double* post = s.e.posterior.data();
    run_units(column_units_, [&](const LegacyUnit& u) {
      const DatasetShard& sh = sharded_.shard(u.shard);
      std::span<const std::uint32_t> ids = sh.assertion_ids();
      for (std::size_t c = u.begin; c < u.end; ++c) {
        kernels::LogPair acc =
            kernels::gather_add(s.table.base(), sh.exposed_sources(c),
                                s.table.exposed_silent());
        acc = kernels::gather_add_select(
            acc, sh.claimants(c), sh.claimant_dependent(c),
            s.table.claim_indep(), s.table.claim_dep());
        std::uint32_t j = ids[c];
        la_buf[j] = acc.t + log_z;
        lb_buf[j] = acc.f + log_1mz;
      }
    });
    for (std::size_t begin = 0; begin < m; begin += kLegacyGrain) {
      std::size_t end = std::min(begin + kLegacyGrain, m);
      kernels::finalize_columns(la_buf + begin, lb_buf + begin,
                                end - begin, post + begin, la_buf + begin,
                                lb_buf + begin);
    }
    // PR 8 reduction: serial left-to-right fold in assertion order.
    double ll = 0.0;
    for (std::size_t j = 0; j < m; ++j) ll += s.column_ll[j];
    s.e.log_likelihood = ll;
  }

  void m_step(const std::vector<double>& posterior, ModelParams& params,
              bool tie_fg, Scratch& s,
              em_detail::MStepOutcome& out) const {
    const std::size_t n = sharded_.source_count();
    const std::size_t m = sharded_.assertion_count();
    // PR 8 reduction: serial fold for the posterior mass.
    double total_z = 0.0;
    for (double z : posterior) total_z += z;
    double total_y = static_cast<double>(m) - total_z;

    std::vector<em_detail::SourceMStats>& stats = s.mstats;
    stats.assign(n, em_detail::SourceMStats{});
    run_units(source_units_, [&](const LegacyUnit& u) {
      const DatasetShard& sh = sharded_.shard(u.shard);
      std::span<const std::uint32_t> ids = sh.source_ids();
      for (std::size_t p = u.begin; p < u.end; ++p) {
        em_detail::SourceMStats& st = stats[ids[p]];
        double exposed_z = kernels::gather_sum(sh.exposed_assertions(p),
                                               posterior.data());
        double exposed_count =
            static_cast<double>(sh.exposed_assertions(p).size());
        kernels::MassPair dep =
            kernels::gather_mass(sh.dependent_claims(p), posterior.data());
        kernels::MassPair indep = kernels::gather_mass(
            sh.independent_claims(p), posterior.data());
        st.claim_dep_z = dep.z;
        st.claim_dep_y = dep.y;
        st.claim_indep_z = indep.z;
        st.claim_indep_y = indep.y;
        st.denom_a = total_z - exposed_z;
        st.denom_b = total_y - (exposed_count - exposed_z);
        st.denom_f = exposed_z;
        st.denom_g = exposed_count - exposed_z;
      }
    });
    // PR 8 tail: full-copy finalize, then three more whole-parameter
    // walks (sanitize, tie, max_abs_diff) — the cost the fused tail
    // collapsed into one pass.
    ModelParams next = em_detail::finalize_m_step(
        stats, total_z, m, params, config_.clamp_eps, config_.shrinkage,
        config_.z_floor);
    out.sanitized = em_detail::sanitize_params(next, params);
    if (tie_fg) {
      for (SourceParams& sp : next.source) {
        double tied = 0.5 * (sp.f + sp.g);
        sp.f = tied;
        sp.g = tied;
      }
    }
    out.delta = params.max_abs_diff(next);
    params = std::move(next);
  }

  std::vector<double> vote_prior(bool independent_only) const {
    const std::size_t m = sharded_.assertion_count();
    std::vector<double> posterior(m, 0.5);
    if (m == 0) return posterior;
    std::vector<double> support(m, 0.0);
    for (std::size_t sidx = 0; sidx < sharded_.shard_count(); ++sidx) {
      const DatasetShard& sh = sharded_.shard(sidx);
      std::span<const std::uint32_t> ids = sh.assertion_ids();
      for (std::size_t c = 0; c < ids.size(); ++c) {
        std::size_t count;
        if (independent_only) {
          std::span<const char> flags = sh.claimant_dependent(c);
          count = static_cast<std::size_t>(
              std::count(flags.begin(), flags.end(), char{0}));
        } else {
          count = sh.claimants(c).size();
        }
        support[ids[c]] = static_cast<double>(count);
      }
    }
    double mean_support = 0.0;
    for (std::size_t j = 0; j < m; ++j) mean_support += support[j];
    mean_support /= static_cast<double>(m);
    if (mean_support <= 0.0) return posterior;
    for (std::size_t j = 0; j < m; ++j) {
      posterior[j] = std::clamp(
          support[j] / (support[j] + mean_support), 0.05, 0.95);
    }
    return posterior;
  }

  bool degenerate_source(std::size_t i) const {
    const DatasetShard& sh = sharded_.shard(sharded_.shard_of_source(i));
    std::size_t p = sharded_.position_of_source(i);
    return sh.dependent_claims(p).empty() &&
           sh.independent_claims(p).empty() &&
           sh.exposed_assertions(p).empty();
  }

 private:
  // PR 8 dispatch: fixed-grain chunks over the unit list in index
  // order — workers self-schedule off a shared cursor, but nothing
  // reorders the heavy units to the front and nobody steals.
  template <typename Fn>
  void run_units(const std::vector<LegacyUnit>& units,
                 const Fn& fn) const {
    if (pool_ != nullptr && pool_->size() > 1 && units.size() > 1) {
      pool_->parallel_for_chunks(
          units.size(), 1,
          [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t u = begin; u < end; ++u) fn(units[u]);
          });
    } else {
      for (const LegacyUnit& u : units) fn(u);
    }
  }

  const ShardedDataset& sharded_;
  const EmExtConfig& config_;
  ThreadPool* pool_;
  std::vector<LegacyUnit> column_units_;
  std::vector<LegacyUnit> source_units_;
};

EmExtResult run_legacy_detailed(const ShardedDataset& sharded,
                                const EmExtConfig& config,
                                std::uint64_t seed) {
  ThreadPool* pool =
      config.pool != nullptr ? config.pool : &global_pool();
  LegacyShardedEmEngine engine(sharded, config, pool);
  return em_detail::run_em_driver(engine, config, seed);
}

// ---------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------

struct PointResult {
  std::size_t sources = 0;
  ScaleStats gen;
  bench::SectionTimer phases;
  double open_ms = 0.0;
  double jsonl_s = 0.0;
  std::size_t shards = 0;
  std::size_t shard_min = 0;
  std::size_t shard_max = 0;
  std::size_t em_iterations = 0;
  double em_new_s = 0.0;     // min of reps, production engine
  double em_legacy_s = 0.0;  // min of reps, PR 8 path
  int em_reps = 0;
  std::vector<double> shard_seconds;  // per-shard EM s (instrumented run)
  double load_imbalance = 0.0;        // max/mean of shard_seconds
  double peak_rss_mb = 0.0;
};

PointResult run_point(std::size_t sources, const std::string& dir,
                      bool with_jsonl) {
  PointResult out;
  out.sources = sources;
  ScaleKnobs knobs = knobs_for(sources);
  std::string ssd_path = dir + "/" + knobs.name + ".ssd";

  out.phases.section("generate");
  out.gen = generate_scale_ssd(knobs, kSeed, ssd_path);

  out.phases.section("open");
  SsdView view = SsdView::open_or_throw(ssd_path);

  // Noise-robust open cost: repeated map + validate. Its wall time is
  // its own phase (PR 8 lumped it — and the JSONL baseline — into a
  // phantom "idle" phase).
  out.phases.section("open-reps");
  out.open_ms = bench::min_wall_ms(5, [&] {
    SsdView again = SsdView::open_or_throw(ssd_path);
    if (again.claim_count() != view.claim_count()) std::abort();
  });

  if (with_jsonl) {
    out.phases.section("jsonl-baseline");
    std::string jsonl_path = dir + "/" + knobs.name + ".jsonl";
    {
      Dataset d = view.materialize();
      save_dataset_jsonl(d, jsonl_path);
    }
    WallTimer timer;
    Dataset parsed = load_dataset_jsonl(jsonl_path);
    out.jsonl_s = timer.seconds();
    if (parsed.claims.claim_count() != view.claim_count()) std::abort();
    std::filesystem::remove(jsonl_path);
  }

  out.phases.section("shard");
  ShardConfig shard_config;
  shard_config.pool = &global_pool();  // first-touch CSR fill (§16)
  ShardedDataset sharded = ShardedDataset::build(view, shard_config);
  out.shards = sharded.shard_count();
  out.shard_min = sharded.assertion_count();
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    std::size_t m = sharded.shard(s).assertion_ids().size();
    out.shard_min = std::min(out.shard_min, m);
    out.shard_max = std::max(out.shard_max, m);
  }

  EmExtConfig config;
  config.max_iters = 30;  // fixed work per point, convergence untested

  // A/B legs, min of reps each: the production engine (LPT work
  // stealing + tree reductions + fused M-step tail) against the PR 8
  // execution path on the identical sharded dataset.
  out.em_reps = static_cast<int>(env_int(
      "SS_REPS", sources >= 1'000'000 ? 2 : 3));
  out.em_reps = std::max(out.em_reps, 1);

  out.phases.section("em");
  for (int rep = 0; rep < out.em_reps; ++rep) {
    WallTimer timer;
    EmExtResult r = ShardedEmEstimator(config).run_detailed(sharded, 1);
    double s = timer.seconds();
    if (rep == 0 || s < out.em_new_s) out.em_new_s = s;
    out.em_iterations = r.likelihood_trace.size();
  }

  out.phases.section("em-legacy");
  for (int rep = 0; rep < out.em_reps; ++rep) {
    WallTimer timer;
    EmExtResult r = run_legacy_detailed(sharded, config, 1);
    double s = timer.seconds();
    if (rep == 0 || s < out.em_legacy_s) out.em_legacy_s = s;
    if (r.likelihood_trace.empty()) std::abort();
  }

  // One instrumented run for the per-shard EM-seconds histogram. Kept
  // out of the timed legs: timing capture reads the clock around every
  // work unit.
  out.phases.section("em-profile");
  config.shard_time_accum = &out.shard_seconds;
  ShardedEmEstimator(config).run_detailed(sharded, 1);
  config.shard_time_accum = nullptr;
  if (!out.shard_seconds.empty()) {
    double total = 0.0;
    double peak = 0.0;
    for (double s : out.shard_seconds) {
      total += s;
      peak = std::max(peak, s);
    }
    double mean =
        total / static_cast<double>(out.shard_seconds.size());
    out.load_imbalance = mean > 0.0 ? peak / mean : 0.0;
  }
  out.phases.finish();

  out.peak_rss_mb = bench::peak_rss_mb();
  std::filesystem::remove(ssd_path);
  return out;
}

// ---------------------------------------------------------------------
// SS_PERF_CHECK gates
// ---------------------------------------------------------------------

// Gate: the LPT work-stealing scheduler beats fixed-grain in-order
// dispatch on a skewed workload (one task carrying as much work as all
// the others combined, placed *last* so in-order dispatch starts it
// last). Pure scheduling micro-benchmark: the task bodies spin on
// arithmetic, no shared data. Returns 0 on pass or skip, 1 on failure.
int run_scheduler_gate() {
  ThreadPool& pool = global_pool();
  std::size_t online = online_cpu_count();
  if (online < 2) {
    std::printf("skip: scheduler perf gate needs >= 2 online CPUs "
                "(host has %zu; stealing cannot beat anything on a "
                "serial machine)\n",
                online);
    return 0;
  }
  if (pool.size() < 1) {
    std::printf("skip: scheduler perf gate needs pool workers "
                "(SS_THREADS=1 gives a caller-only pool)\n");
    return 0;
  }

  constexpr std::size_t kTasks = 32;
  std::vector<double> weights(kTasks, 1.0);
  weights[kTasks - 1] = static_cast<double>(kTasks);
  auto spin = [](double weight) {
    // ~0.2 ms per unit weight of pure arithmetic.
    volatile double acc = 1.0;
    long iters = static_cast<long>(weight * 40000.0);
    for (long i = 0; i < iters; ++i) {
      acc = acc * 1.0000001 + 1e-9;
    }
  };

  double fixed_ms = bench::min_wall_ms(3, [&] {
    pool.parallel_for_chunks(
        kTasks, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t t = begin; t < end; ++t) spin(weights[t]);
        });
  });
  double lpt_ms = bench::min_wall_ms(3, [&] {
    pool.parallel_tasks(weights,
                        [&](std::size_t t) { spin(weights[t]); });
  });
  if (lpt_ms >= fixed_ms) {
    std::printf("FAIL: LPT work stealing (%.2f ms) not faster than "
                "fixed-grain dispatch (%.2f ms) on the skewed "
                "workload\n",
                lpt_ms, fixed_ms);
    return 1;
  }
  std::printf("scheduler gate: LPT %.2f ms vs fixed-grain %.2f ms "
              "(%.2fx)\n",
              lpt_ms, fixed_ms, fixed_ms / lpt_ms);
  return 0;
}

int run_check() {
  bool fast = env_flag("SS_FAST", false);
  std::size_t sources = fast ? 10'000 : 100'000;
  std::string dir =
      (std::filesystem::temp_directory_path() / "ss_bench_scale")
          .string();
  std::filesystem::create_directories(dir);

  ScaleKnobs knobs = knobs_for(sources);
  std::string ssd_path = dir + "/" + knobs.name + ".ssd";
  std::string jsonl_path = dir + "/" + knobs.name + ".jsonl";
  ScaleStats gen = generate_scale_ssd(knobs, kSeed, ssd_path);
  SsdView view = SsdView::open_or_throw(ssd_path);
  Dataset d = view.materialize();
  save_dataset_jsonl(d, jsonl_path);

  // Gate 1: mmap open beats the text parse by >= 50x.
  double open_ms = bench::min_wall_ms(5, [&] {
    SsdView again = SsdView::open_or_throw(ssd_path);
    if (again.claim_count() != view.claim_count()) std::abort();
  });
  WallTimer timer;
  Dataset parsed = load_dataset_jsonl(jsonl_path);
  double jsonl_ms = timer.millis();
  if (parsed.claims.claim_count() != view.claim_count()) {
    std::printf("FAIL: JSONL round-trip lost claims\n");
    return 1;
  }
  double speedup = jsonl_ms / open_ms;
  if (speedup < 50.0) {
    std::printf("FAIL: .ssd open only %.1fx faster than JSONL "
                "(%.3f ms vs %.1f ms), need >= 50x\n",
                speedup, open_ms, jsonl_ms);
    return 1;
  }

  // Gate 2: sharded EM bit-identical to the flat engine (scalar pin,
  // the golden reference backend), and invariant across pool sizes —
  // the tree-reduction + LPT determinism contract (§16) checked at
  // 1 and 8 workers.
  simd::Backend previous = simd::active_backend();
  simd::force_backend(simd::Backend::kScalar);
  ShardConfig shard_config;
  shard_config.pool = &global_pool();
  ShardedDataset sharded = ShardedDataset::build(view, shard_config);
  sharded.check();
  EmExtConfig config;
  config.max_iters = 10;
  std::uint64_t flat_hash =
      hash_estimate(EmExtEstimator(config).run_detailed(d, 1));
  std::uint64_t sharded_hash =
      hash_estimate(ShardedEmEstimator(config).run_detailed(sharded, 1));
  bool thread_invariant = true;
  std::uint64_t hash_t1 = 0;
  std::uint64_t hash_t8 = 0;
  {
    ThreadPool pool1(1);
    ThreadPool pool8(8);
    config.pool = &pool1;
    hash_t1 =
        hash_estimate(ShardedEmEstimator(config).run_detailed(sharded, 1));
    config.pool = &pool8;
    hash_t8 =
        hash_estimate(ShardedEmEstimator(config).run_detailed(sharded, 1));
    config.pool = nullptr;
    thread_invariant = hash_t1 == sharded_hash && hash_t8 == sharded_hash;
  }
  simd::force_backend(previous);
  if (flat_hash != sharded_hash) {
    std::printf("FAIL: sharded EM diverges from flat engine "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(sharded_hash),
                static_cast<unsigned long long>(flat_hash));
    return 1;
  }
  if (!thread_invariant) {
    std::printf("FAIL: sharded EM hash depends on the pool size "
                "(default %016llx, 1 worker %016llx, 8 workers "
                "%016llx)\n",
                static_cast<unsigned long long>(sharded_hash),
                static_cast<unsigned long long>(hash_t1),
                static_cast<unsigned long long>(hash_t8));
    return 1;
  }

  // Gate 3: LPT work stealing beats fixed-grain dispatch (skips on
  // single-CPU hosts, printing why).
  if (run_scheduler_gate() != 0) return 1;

  // Gate 4 (armed by SS_RSS_BUDGET_MB): peak RSS stays under budget.
  double rss_mb = bench::peak_rss_mb();
  double budget = static_cast<double>(env_int("SS_RSS_BUDGET_MB", 0));
  if (budget > 0.0 && rss_mb > budget) {
    std::printf("FAIL: peak RSS %.1f MB over the %.0f MB budget\n",
                rss_mb, budget);
    return 1;
  }

  std::filesystem::remove(ssd_path);
  std::filesystem::remove(jsonl_path);
  std::printf("check ok: %zu sources, %zu shards, open %.3f ms vs "
              "jsonl %.1f ms (%.0fx), sharded EM bit-identical "
              "(flat == sharded == 1-worker == 8-worker), "
              "peak RSS %.1f MB%s\n",
              gen.ssd.sources, sharded.shard_count(), open_ms, jsonl_ms,
              speedup, rss_mb,
              budget > 0.0 ? strprintf(" (budget %.0f)", budget).c_str()
                           : "");
  return 0;
}

const char* affinity_name() {
  switch (affinity_mode()) {
    case AffinityMode::kCompact:
      return "compact";
    case AffinityMode::kSpread:
      return "spread";
    case AffinityMode::kNone:
      break;
  }
  return "none";
}

}  // namespace

int main() {
  if (env_flag("SS_PERF_CHECK", false)) return run_check();

  bench::banner("bench_scale: 10^4 -> 10^6 source scale path",
                "docs/MODEL.md §14, §16 (sharded engine + .ssd format)");
  bool fast = env_flag("SS_FAST", false);
  std::vector<std::size_t> axis =
      fast ? std::vector<std::size_t>{10'000, 30'000}
           : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  std::string dir =
      (std::filesystem::temp_directory_path() / "ss_bench_scale")
          .string();
  std::filesystem::create_directories(dir);

  TablePrinter table({"sources", "claims", "file MB", "gen s", "open ms",
                      "jsonl s", "shards", "shard m", "em s", "legacy s",
                      "speedup", "imbal", "peak RSS MB"});
  JsonValue points = JsonValue::array();
  for (std::size_t sources : axis) {
    // The JSONL baseline materializes the dataset; cap it at 10^5 so
    // the 10^6 point exercises the pure streaming path.
    bool with_jsonl = sources <= 100'000;
    PointResult p = run_point(sources, dir, with_jsonl);
    double file_mb =
        static_cast<double>(p.gen.ssd.bytes) / (1024.0 * 1024.0);
    double em_speedup =
        p.em_new_s > 0.0 ? p.em_legacy_s / p.em_new_s : 0.0;
    table.add_row(
        {std::to_string(p.sources), std::to_string(p.gen.ssd.claims),
         strprintf("%.1f", file_mb),
         strprintf("%.2f", p.phases.seconds("generate")),
         strprintf("%.3f", p.open_ms),
         with_jsonl ? strprintf("%.2f", p.jsonl_s) : "-",
         std::to_string(p.shards),
         strprintf("%zu..%zu", p.shard_min, p.shard_max),
         strprintf("%.2f", p.em_new_s), strprintf("%.2f", p.em_legacy_s),
         strprintf("%.2fx", em_speedup),
         strprintf("%.2f", p.load_imbalance),
         strprintf("%.1f", p.peak_rss_mb)});

    JsonValue point = JsonValue::object();
    point["sources"] = static_cast<double>(p.sources);
    point["assertions"] = static_cast<double>(p.gen.ssd.assertions);
    point["claims"] = static_cast<double>(p.gen.ssd.claims);
    point["exposed"] = static_cast<double>(p.gen.ssd.exposed);
    point["communities"] = static_cast<double>(p.gen.communities);
    point["file_mb"] = file_mb;
    point["phases"] = p.phases.to_json();
    point["open_ms"] = p.open_ms;
    if (with_jsonl) {
      point["jsonl_load_s"] = p.jsonl_s;
      point["open_speedup_vs_jsonl"] =
          p.jsonl_s * 1000.0 / std::max(p.open_ms, 1e-9);
    }
    point["shards"] = static_cast<double>(p.shards);
    point["shard_assertions_min"] = static_cast<double>(p.shard_min);
    point["shard_assertions_max"] = static_cast<double>(p.shard_max);
    point["em_iterations"] = static_cast<double>(p.em_iterations);
    point["em_reps"] = static_cast<double>(p.em_reps);
    point["em_s_min"] = p.em_new_s;
    point["em_legacy_s_min"] = p.em_legacy_s;
    point["em_speedup_vs_legacy"] = em_speedup;
    JsonValue hist = JsonValue::array();
    for (double s : p.shard_seconds) hist.push_back(JsonValue(s));
    point["per_shard_em_seconds"] = hist;
    point["load_imbalance"] = p.load_imbalance;
    point["peak_rss_mb"] = p.peak_rss_mb;
    points.push_back(point);
  }
  table.print();

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "scale";
  doc["seed"] = static_cast<double>(kSeed);
  doc["threads"] = static_cast<double>(global_pool().size() + 1);
  doc["online_cpus"] = static_cast<double>(online_cpu_count());
  doc["affinity"] = affinity_name();
  doc["points"] = points;
  bench::write_result("BENCH_PR10", doc);
  std::printf("wrote %s/BENCH_PR10.json\n",
              bench::results_dir().c_str());
  return 0;
}
