// Million-source scale harness (docs/MODEL.md §14).
//
// Sweeps the streaming generator from 10^4 to 10^6 sources and, per
// point, measures the whole scale path:
//   generate   stream the community cascade straight into an .ssd file
//   open       mmap + header validation (SsdView::open)
//   jsonl      the text-baseline parse the binary format replaces
//   shard      connected-component partition straight off the view
//   em         sharded EM-Ext on the global thread pool
// recording wall time per phase, the shard count/size histogram, and
// peak RSS after each point (bench::peak_rss_bytes). Results land in
// bench_results/BENCH_PR8.json.
//
// SS_PERF_CHECK=1 runs one mid-size point as a correctness gate, no
// timing tables: .ssd open must beat the JSONL parse by >= 50x, the
// sharded EM hash must equal the flat engine's bit for bit (scalar
// pin), and when SS_RSS_BUDGET_MB is set, peak RSS must stay under it.
// `ctest -L scale-smoke` runs this with SS_FAST=1 (10^4 sources).
//
// Knobs: SS_FAST=1 shrinks the sweep, SS_THREADS sizes the pool,
// SS_RESULTS_DIR moves the JSON, SS_RSS_BUDGET_MB arms the RSS gate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/em_ext.h"
#include "core/sharded_em.h"
#include "data/io.h"
#include "data/shard.h"
#include "data/ssd.h"
#include "math/simd/dispatch.h"
#include "simgen/scale_gen.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ss;

constexpr std::uint64_t kSeed = 2016;

ScaleKnobs knobs_for(std::size_t sources) {
  ScaleKnobs knobs;
  knobs.sources = sources;
  knobs.assertions = std::max<std::size_t>(200, sources / 10);
  knobs.community_lo = 64;
  knobs.community_hi = 256;
  knobs.name = "scale-" + std::to_string(sources);
  return knobs;
}

std::uint64_t hash_estimate(const EmExtResult& r) {
  // FNV-1a over the raw IEEE-754 bytes, same recipe as the golden
  // suites: a bit-exact witness of the whole result.
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](const void* p, std::size_t len) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  auto fold_vec = [&](const std::vector<double>& v) {
    for (double x : v) fold(&x, sizeof(x));
  };
  fold_vec(r.estimate.belief);
  fold_vec(r.estimate.log_odds);
  fold_vec(r.likelihood_trace);
  fold(&r.log_likelihood, sizeof(double));
  return h;
}

struct PointResult {
  std::size_t sources = 0;
  ScaleStats gen;
  bench::SectionTimer phases;
  double open_ms = 0.0;
  double jsonl_s = 0.0;
  std::size_t shards = 0;
  std::size_t shard_min = 0;
  std::size_t shard_max = 0;
  std::size_t em_iterations = 0;
  double peak_rss_mb = 0.0;
};

PointResult run_point(std::size_t sources, const std::string& dir,
                      bool with_jsonl) {
  PointResult out;
  out.sources = sources;
  ScaleKnobs knobs = knobs_for(sources);
  std::string ssd_path = dir + "/" + knobs.name + ".ssd";

  out.phases.section("generate");
  out.gen = generate_scale_ssd(knobs, kSeed, ssd_path);

  out.phases.section("open");
  SsdView view = SsdView::open_or_throw(ssd_path);
  out.phases.section("idle");
  // Noise-robust open cost: repeated map + validate.
  out.open_ms = bench::min_wall_ms(5, [&] {
    SsdView again = SsdView::open_or_throw(ssd_path);
    if (again.claim_count() != view.claim_count()) std::abort();
  });

  if (with_jsonl) {
    std::string jsonl_path = dir + "/" + knobs.name + ".jsonl";
    {
      Dataset d = view.materialize();
      save_dataset_jsonl(d, jsonl_path);
    }
    WallTimer timer;
    Dataset parsed = load_dataset_jsonl(jsonl_path);
    out.jsonl_s = timer.seconds();
    if (parsed.claims.claim_count() != view.claim_count()) std::abort();
    std::filesystem::remove(jsonl_path);
  }

  out.phases.section("shard");
  ShardedDataset sharded = ShardedDataset::build(view, ShardConfig{});
  out.shards = sharded.shard_count();
  out.shard_min = sharded.assertion_count();
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    std::size_t m = sharded.shard(s).assertion_ids().size();
    out.shard_min = std::min(out.shard_min, m);
    out.shard_max = std::max(out.shard_max, m);
  }

  out.phases.section("em");
  EmExtConfig config;
  config.max_iters = 30;  // fixed work per point, convergence untested
  EmExtResult r = ShardedEmEstimator(config).run_detailed(sharded, 1);
  out.em_iterations = r.likelihood_trace.size();
  out.phases.finish();

  out.peak_rss_mb = bench::peak_rss_mb();
  std::filesystem::remove(ssd_path);
  return out;
}

int run_check() {
  bool fast = env_flag("SS_FAST", false);
  std::size_t sources = fast ? 10'000 : 100'000;
  std::string dir =
      (std::filesystem::temp_directory_path() / "ss_bench_scale")
          .string();
  std::filesystem::create_directories(dir);

  ScaleKnobs knobs = knobs_for(sources);
  std::string ssd_path = dir + "/" + knobs.name + ".ssd";
  std::string jsonl_path = dir + "/" + knobs.name + ".jsonl";
  ScaleStats gen = generate_scale_ssd(knobs, kSeed, ssd_path);
  SsdView view = SsdView::open_or_throw(ssd_path);
  Dataset d = view.materialize();
  save_dataset_jsonl(d, jsonl_path);

  // Gate 1: mmap open beats the text parse by >= 50x.
  double open_ms = bench::min_wall_ms(5, [&] {
    SsdView again = SsdView::open_or_throw(ssd_path);
    if (again.claim_count() != view.claim_count()) std::abort();
  });
  WallTimer timer;
  Dataset parsed = load_dataset_jsonl(jsonl_path);
  double jsonl_ms = timer.millis();
  if (parsed.claims.claim_count() != view.claim_count()) {
    std::printf("FAIL: JSONL round-trip lost claims\n");
    return 1;
  }
  double speedup = jsonl_ms / open_ms;
  if (speedup < 50.0) {
    std::printf("FAIL: .ssd open only %.1fx faster than JSONL "
                "(%.3f ms vs %.1f ms), need >= 50x\n",
                speedup, open_ms, jsonl_ms);
    return 1;
  }

  // Gate 2: sharded EM bit-identical to the flat engine (scalar pin,
  // the golden reference backend).
  simd::Backend previous = simd::active_backend();
  simd::force_backend(simd::Backend::kScalar);
  ShardedDataset sharded = ShardedDataset::build(view, ShardConfig{});
  sharded.check();
  EmExtConfig config;
  config.max_iters = 10;
  std::uint64_t flat_hash =
      hash_estimate(EmExtEstimator(config).run_detailed(d, 1));
  std::uint64_t sharded_hash =
      hash_estimate(ShardedEmEstimator(config).run_detailed(sharded, 1));
  simd::force_backend(previous);
  if (flat_hash != sharded_hash) {
    std::printf("FAIL: sharded EM diverges from flat engine "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(sharded_hash),
                static_cast<unsigned long long>(flat_hash));
    return 1;
  }

  // Gate 3 (armed by SS_RSS_BUDGET_MB): peak RSS stays under budget.
  double rss_mb = bench::peak_rss_mb();
  double budget = static_cast<double>(env_int("SS_RSS_BUDGET_MB", 0));
  if (budget > 0.0 && rss_mb > budget) {
    std::printf("FAIL: peak RSS %.1f MB over the %.0f MB budget\n",
                rss_mb, budget);
    return 1;
  }

  std::filesystem::remove(ssd_path);
  std::filesystem::remove(jsonl_path);
  std::printf("check ok: %zu sources, %zu shards, open %.3f ms vs "
              "jsonl %.1f ms (%.0fx), sharded EM bit-identical, "
              "peak RSS %.1f MB%s\n",
              gen.ssd.sources, sharded.shard_count(), open_ms, jsonl_ms,
              speedup, rss_mb,
              budget > 0.0 ? strprintf(" (budget %.0f)", budget).c_str()
                           : "");
  return 0;
}

}  // namespace

int main() {
  if (env_flag("SS_PERF_CHECK", false)) return run_check();

  bench::banner("bench_scale: 10^4 -> 10^6 source scale path",
                "docs/MODEL.md §14 (sharded engine + .ssd format)");
  bool fast = env_flag("SS_FAST", false);
  std::vector<std::size_t> axis =
      fast ? std::vector<std::size_t>{10'000, 30'000}
           : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  std::string dir =
      (std::filesystem::temp_directory_path() / "ss_bench_scale")
          .string();
  std::filesystem::create_directories(dir);

  TablePrinter table({"sources", "claims", "file MB", "gen s", "open ms",
                      "jsonl s", "shards", "shard m", "em s",
                      "peak RSS MB"});
  JsonValue points = JsonValue::array();
  for (std::size_t sources : axis) {
    // The JSONL baseline materializes the dataset; cap it at 10^5 so
    // the 10^6 point exercises the pure streaming path.
    bool with_jsonl = sources <= 100'000;
    PointResult p = run_point(sources, dir, with_jsonl);
    double file_mb =
        static_cast<double>(p.gen.ssd.bytes) / (1024.0 * 1024.0);
    table.add_row(
        {std::to_string(p.sources), std::to_string(p.gen.ssd.claims),
         strprintf("%.1f", file_mb),
         strprintf("%.2f", p.phases.seconds("generate")),
         strprintf("%.3f", p.open_ms),
         with_jsonl ? strprintf("%.2f", p.jsonl_s) : "-",
         std::to_string(p.shards),
         strprintf("%zu..%zu", p.shard_min, p.shard_max),
         strprintf("%.2f", p.phases.seconds("em")),
         strprintf("%.1f", p.peak_rss_mb)});

    JsonValue point = JsonValue::object();
    point["sources"] = static_cast<double>(p.sources);
    point["assertions"] = static_cast<double>(p.gen.ssd.assertions);
    point["claims"] = static_cast<double>(p.gen.ssd.claims);
    point["exposed"] = static_cast<double>(p.gen.ssd.exposed);
    point["communities"] = static_cast<double>(p.gen.communities);
    point["file_mb"] = file_mb;
    point["phases"] = p.phases.to_json();
    point["open_ms"] = p.open_ms;
    if (with_jsonl) {
      point["jsonl_load_s"] = p.jsonl_s;
      point["open_speedup_vs_jsonl"] =
          p.jsonl_s * 1000.0 / std::max(p.open_ms, 1e-9);
    }
    point["shards"] = static_cast<double>(p.shards);
    point["shard_assertions_min"] = static_cast<double>(p.shard_min);
    point["shard_assertions_max"] = static_cast<double>(p.shard_max);
    point["em_iterations"] = static_cast<double>(p.em_iterations);
    point["peak_rss_mb"] = p.peak_rss_mb;
    points.push_back(point);
  }
  table.print();

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "scale";
  doc["seed"] = static_cast<double>(kSeed);
  doc["threads"] = static_cast<double>(global_pool().size() + 1);
  doc["points"] = points;
  bench::write_result("BENCH_PR8", doc);
  std::printf("wrote %s/BENCH_PR8.json\n",
              bench::results_dir().c_str());
  return 0;
}
