// Performance scaling of the core algorithms (google-benchmark).
//
// Establishes that the implementation scales as designed:
//  * LikelihoodTable::column is O(#claimants + #exposed), not O(n) — the
//    property that makes EM practical on Table-III-scale matrices;
//  * one full EM-Ext iteration is ~linear in claims + exposed cells;
//  * the whole estimator on the Paris-Attack-scale sparse regime.
#include <benchmark/benchmark.h>

#include "core/em_ext.h"
#include "core/likelihood.h"
#include "simgen/parametric_gen.h"
#include "twitter/builder.h"

namespace {

using namespace ss;

void BM_LikelihoodColumns(benchmark::State& state) {
  Rng rng(7);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)), 100);
  SimInstance inst = generate_parametric(knobs, rng);
  LikelihoodTable table(inst.dataset, inst.true_params);
  for (auto _ : state) {
    for (std::size_t j = 0; j < 100; ++j) {
      benchmark::DoNotOptimize(table.column(j));
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

void BM_EmExtFull(benchmark::State& state) {
  Rng rng(8);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  SimInstance inst = generate_parametric(knobs, rng);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(inst.dataset, 1));
  }
}

void BM_EmExtSparseTwitterScale(benchmark::State& state) {
  TwitterScenario scenario = scenario_by_name("Kirkuk")
                                 .scaled(state.range(0) / 100.0);
  BuiltDataset built = make_twitter_dataset(scenario, 42);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(built.dataset, 1));
  }
  state.counters["sources"] =
      static_cast<double>(built.dataset.source_count());
  state.counters["claims"] =
      static_cast<double>(built.dataset.claims.claim_count());
}

}  // namespace

BENCHMARK(BM_LikelihoodColumns)->Arg(50)->Arg(200)->Arg(800)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_EmExtFull)
    ->Args({50, 50})
    ->Args({100, 50})
    ->Args({100, 200})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmExtSparseTwitterScale)->Arg(25)->Arg(100)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::printf("==============================================\n");
  std::printf("Performance scaling — likelihood columns, EM-Ext\n");
  std::printf("(engineering bench, not a paper figure)\n");
  std::printf("==============================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
