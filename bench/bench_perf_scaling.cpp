// Performance scaling of the core algorithms (google-benchmark), plus a
// thread-scaling sweep recorded to <results_dir>/perf_scaling.json.
//
// Establishes that the implementation scales as designed:
//  * LikelihoodTable::column is O(#claimants + #exposed), not O(n) — the
//    property that makes EM practical on Table-III-scale matrices;
//  * one full EM-Ext iteration is ~linear in claims + exposed cells;
//  * the whole estimator on the Paris-Attack-scale sparse regime;
//  * the threads axis: fused E-step, full EM-Ext on the Kirkuk-scale
//    sparse matrix, and multi-chain Gibbs under explicit pools of
//    1/2/4/hw workers. Results are bit-identical across the axis (the
//    engine's determinism contract); only wall time may change.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bounds/column_model.h"
#include "bounds/gibbs_bound.h"
#include "core/em_ext.h"
#include "core/likelihood.h"
#include "core/posterior.h"
#include "data/io.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "math/simd/dispatch.h"
#include "simgen/parametric_gen.h"
#include "twitter/builder.h"
#include "twitter/tweet_io.h"
#include "util/fault_inject.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ss;

void BM_LikelihoodColumns(benchmark::State& state) {
  Rng rng(7);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)), 100);
  SimInstance inst = generate_parametric(knobs, rng);
  LikelihoodTable table(inst.dataset, inst.true_params);
  for (auto _ : state) {
    for (std::size_t j = 0; j < 100; ++j) {
      benchmark::DoNotOptimize(table.column(j));
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

void BM_EmExtFull(benchmark::State& state) {
  Rng rng(8);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  SimInstance inst = generate_parametric(knobs, rng);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(inst.dataset, 1));
  }
}

void BM_EmExtSparseTwitterScale(benchmark::State& state) {
  TwitterScenario scenario = scenario_by_name("Kirkuk")
                                 .scaled(state.range(0) / 100.0);
  BuiltDataset built = make_twitter_dataset(scenario, 42);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(built.dataset, 1));
  }
  state.counters["sources"] =
      static_cast<double>(built.dataset.source_count());
  state.counters["claims"] =
      static_cast<double>(built.dataset.claims.claim_count());
}

// ---- Threads axis -------------------------------------------------
//
// Not a google-benchmark: each point is min-of-reps wall time under an
// explicit ThreadPool, so the sweep can pin exact worker counts and
// write one JSON record for the whole axis. Timing comes from
// bench::min_wall_ms (bench_common.h).

using bench::min_wall_ms;

std::vector<std::size_t> thread_axis() {
  std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> axis = {1, 2, 4};
  if (std::find(axis.begin(), axis.end(), hw) == axis.end()) {
    axis.push_back(hw);
  }
  return axis;
}

void run_thread_sweep() {
  const int reps = env_int("SS_FAST", 0) != 0 ? 2 : 5;
  std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());

  // Workloads. Dense E-step: one fused pass over a 200x2000 instance.
  Rng rng(8);
  SimKnobs knobs = SimKnobs::paper_defaults(200, 2000);
  SimInstance dense = generate_parametric(knobs, rng);
  dense.dataset.partition();  // build the cache outside the timer
  LikelihoodTable table(dense.dataset, dense.true_params);

  // Full EM-Ext on the Kirkuk-scale sparse matrix.
  TwitterScenario scenario = scenario_by_name("Kirkuk").scaled(0.25);
  BuiltDataset built = make_twitter_dataset(scenario, 42);
  built.dataset.partition();

  // Multi-chain Gibbs: 8 chains on a 200-source column.
  ColumnModel column =
      make_column_model(dense.true_params, dense.dataset.dependency, 0);
  GibbsBoundConfig gibbs_config;
  gibbs_config.chains = 8;
  gibbs_config.max_sweeps = 4000;

  JsonValue doc = JsonValue::object();
  doc["bench"] = "perf_scaling";
  doc["hardware_concurrency"] = hw;
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["note"] =
      "min-of-reps wall ms under explicit ThreadPool(threads); outputs "
      "are bit-identical across the threads axis by construction; on a "
      "single-CPU host the axis is flat and only the serial gains from "
      "ClaimPartition caching + E-step fusion apply";
  // Static reference points: the same google-benchmark workloads
  // measured once on the pre-engine seed commit, on the hardware this
  // bench suite was developed on. They contextualize the serial
  // speedup; re-measure on the seed commit when porting to new hardware.
  JsonValue baseline = JsonValue::object();
  baseline["provenance"] =
      "seed commit 98a7192, same container, benchmark_min_time=1";
  baseline["em_ext_full_100x200_ms"] = 28.6;
  baseline["em_ext_kirkuk25_ms"] = 71.6;
  baseline["em_ext_kirkuk100_ms"] = 428.0;
  doc["seed_baseline"] = std::move(baseline);
  JsonValue rows = JsonValue::array();

  std::printf("\nThread scaling (min of %d reps, wall ms)\n", reps);
  std::printf("%8s %18s %18s %18s\n", "threads", "fused_e_step",
              "em_ext_kirkuk25", "gibbs_8chain");
  for (std::size_t threads : thread_axis()) {
    ThreadPool pool(threads);

    double e_step_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(fused_e_step(table, &pool));
    });

    EmExtConfig em_config;
    em_config.pool = &pool;
    EmExtEstimator em(em_config);
    double em_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(em.run(built.dataset, 1));
    });

    gibbs_config.pool = &pool;
    double gibbs_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(gibbs_bound(column, 11, gibbs_config));
    });

    std::printf("%8zu %18.3f %18.3f %18.3f\n", threads, e_step_ms,
                em_ms, gibbs_ms);
    JsonValue row = JsonValue::object();
    row["threads"] = threads;
    row["fused_e_step_ms"] = e_step_ms;
    row["em_ext_kirkuk25_ms"] = em_ms;
    row["gibbs_8chain_ms"] = gibbs_ms;
    rows.push_back(std::move(row));
  }
  doc["rows"] = std::move(rows);
  ss::bench::write_result("perf_scaling", doc);
}

// ---- Kernel speedup axis (PR 3) -----------------------------------
//
// Baseline leg: a faithful in-binary reimplementation of the pre-kernel
// (commit cbc8d85) serial hot loops — six split per-source log arrays,
// a branch per claim cell, a two-transcendental column epilogue
// (sigmoid + logsumexp), and four logs per source per Gibbs sweep.
// Kernel leg: the math/kernels.h path the estimators now run. Both legs
// run on the same data and must agree BITWISE on every output before
// any timing is recorded; timings go to <results_dir>/BENCH_PR3.json.
// SS_PERF_CHECK=1 runs the identity checks only (no google-benchmark,
// no timing, no JSON) so the `perf-smoke` ctest label is free of
// timing flakiness.

// The pre-kernel LikelihoodTable's hoisted state: split per-hypothesis
// arrays (two cache misses per incidence where the kernel path pays
// one).
struct BaselineLogs {
  std::vector<double> es_t, es_f;  // exposed-silent corrections
  std::vector<double> ci_t, ci_f;  // independent-claim corrections
  std::vector<double> cd_t, cd_f;  // dependent-claim corrections
  double base_t = 0.0, base_f = 0.0;
  double log_z = 0.0, log_1mz = 0.0;
};

void build_baseline_logs(const ModelParams& params, BaselineLogs& t) {
  std::size_t n = params.source.size();
  t.es_t.resize(n);
  t.es_f.resize(n);
  t.ci_t.resize(n);
  t.ci_f.resize(n);
  t.cd_t.resize(n);
  t.cd_f.resize(n);
  double z = clamp_prob(params.z);
  t.log_z = std::log(z);
  t.log_1mz = std::log1p(-z);
  t.base_t = 0.0;
  t.base_f = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double a = clamp_prob(params.source[i].a);
    double b = clamp_prob(params.source[i].b);
    double f = clamp_prob(params.source[i].f);
    double g = clamp_prob(params.source[i].g);
    double log_na = std::log1p(-a);
    double log_nb = std::log1p(-b);
    double log_nf = std::log1p(-f);
    double log_ng = std::log1p(-g);
    t.base_t += log_na;
    t.base_f += log_nb;
    t.es_t[i] = log_nf - log_na;
    t.es_f[i] = log_ng - log_nb;
    t.ci_t[i] = std::log(a) - log_na;
    t.ci_f[i] = std::log(b) - log_nb;
    t.cd_t[i] = std::log(f) - log_nf;
    t.cd_f[i] = std::log(g) - log_ng;
  }
}

// Serial fused E-step exactly as the pre-kernel engine ran it per EM
// iteration (see cbc8d85's fused_e_step): fresh result vectors every
// call, branchy column walk over split arrays, sigmoid + logsumexp
// epilogue, then the canonical slot-sum pass. The allocation and the
// second pass are deliberately kept — removing them is part of what
// this PR's kernel path is being measured against.
struct BaselineEStep {
  std::vector<double> posterior;
  std::vector<double> log_odds;
  double log_likelihood = 0.0;
};

BaselineEStep baseline_e_step(const Dataset& d, const BaselineLogs& t) {
  std::size_t m = d.assertion_count();
  BaselineEStep out;
  out.posterior.resize(m);
  out.log_odds.resize(m);
  std::vector<double> column_ll(m);
  const ClaimPartition& part = d.partition();
  for (std::size_t j = 0; j < m; ++j) {
    double lt = t.base_t;
    double lf = t.base_f;
    kernels::gather_add_reference(lt, lf, d.dependency.exposed_sources(j),
                                  t.es_t.data(), t.es_f.data());
    kernels::gather_add_select_reference(
        lt, lf, d.claims.claimants_of(j), part.claimant_dependent(j),
        t.ci_t.data(), t.ci_f.data(), t.cd_t.data(), t.cd_f.data());
    double la = lt + t.log_z;
    double lb = lf + t.log_1mz;
    out.posterior[j] = normalize_log_pair(la, lb);
    out.log_odds[j] = la - lb;
    column_ll[j] = logsumexp(la, lb);
  }
  double total = 0.0;
  for (double v : column_ll) total += v;
  out.log_likelihood = total;
  return out;
}

// Restores whatever backend was active when the sweep started, on
// every exit path.
struct BackendRestore {
  simd::Backend prev = simd::active_backend();
  ~BackendRestore() { simd::force_backend(prev); }
};

bool bits_equal(const std::vector<double>& a,
                const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(double)) == 0);
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// One E-step workload: both legs on the same dataset + params. The
// timed region is the per-iteration hot path (column scan + epilogue);
// the log-table build is identical work in both legs and is hoisted
// out, as the estimators themselves now do.
struct KernelRow {
  const char* workload;
  double baseline_ms = 0.0;
  double kernel_ms = 0.0;
  bool identical = false;
};

KernelRow run_e_step_workload(const char* name, const Dataset& d,
                              const ModelParams& params, int reps,
                              bool check_only) {
  KernelRow row;
  row.workload = name;
  d.partition();  // build the CSR cache outside both timers

  BaselineLogs base;
  build_baseline_logs(params, base);
  BaselineEStep b = baseline_e_step(d, base);

  LikelihoodTable table(d, params);
  EStepResult e;
  std::vector<double> col_ll;
  fused_e_step(table, nullptr, e, col_ll);

  row.identical = bits_equal(b.posterior, e.posterior) &&
                  bits_equal(b.log_odds, e.log_odds) &&
                  bits_equal(b.log_likelihood, e.log_likelihood);
  if (!row.identical || check_only) return row;

  // One E-step here is ~0.1 ms; batch calls inside each timed region so
  // timer granularity and scheduler noise don't dominate. Both legs use
  // the same batch size.
  constexpr int kInner = 16;
  row.baseline_ms = min_wall_ms(reps, [&] {
    for (int k = 0; k < kInner; ++k) {
      benchmark::DoNotOptimize(baseline_e_step(d, base).log_likelihood);
    }
  }) / kInner;
  row.kernel_ms = min_wall_ms(reps, [&] {
    for (int k = 0; k < kInner; ++k) {
      fused_e_step(table, nullptr, e, col_ll);
      benchmark::DoNotOptimize(e.log_likelihood);
    }
  }) / kInner;
  return row;
}

// Gibbs sweep-weight workload: `sweeps` full-state refreshes with one
// bit flipped per sweep (so the compiler cannot hoist the inner loop).
// Baseline recomputes the four logs per source per sweep exactly like
// the pre-kernel sampler's refresh_logs; the kernel leg hoists them
// once into SweepWeights.
KernelRow run_gibbs_weights_workload(std::size_t n, std::size_t sweeps,
                                     int reps, bool check_only) {
  KernelRow row;
  row.workload = "gibbs_state_refresh";
  Rng rng(21);
  std::vector<double> p1(n), p0(n);
  std::vector<char> bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    p1[i] = std::clamp(rng.uniform(0.0, 1.0), 1e-12, 1.0 - 1e-12);
    p0[i] = std::clamp(rng.uniform(0.0, 1.0), 1e-12, 1.0 - 1e-12);
    bits[i] = rng.bernoulli(0.5) ? 1 : 0;
  }

  auto baseline = [&]() {
    double acc = 0.0;
    std::vector<char> state = bits;
    for (std::size_t s = 0; s < sweeps; ++s) {
      state[s % n] ^= 1;
      double lt = 0.0;
      double lf = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        lt += state[i] ? std::log(p1[i]) : std::log1p(-p1[i]);
        lf += state[i] ? std::log(p0[i]) : std::log1p(-p0[i]);
      }
      acc += lt - lf;
    }
    return acc;
  };
  auto kernel = [&]() {
    double acc = 0.0;
    std::vector<kernels::SweepWeights> w;
    kernels::build_sweep_weights(p1, p0, w);
    std::vector<char> state = bits;
    for (std::size_t s = 0; s < sweeps; ++s) {
      state[s % n] ^= 1;
      kernels::LogPair lp = kernels::sum_state_logs(state, w.data());
      acc += lp.t - lp.f;
    }
    return acc;
  };

  row.identical = bits_equal(baseline(), kernel());
  if (!row.identical || check_only) return row;
  row.baseline_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(baseline());
  });
  row.kernel_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(kernel());
  });
  return row;
}

bool run_kernel_sweep(bool check_only) {
  const int reps = env_int("SS_FAST", 0) != 0 ? 5 : 15;

  // This sweep's contract is bitwise identity against the pre-kernel
  // (PR 3) scalar engine, so both legs run pinned to the scalar
  // backend regardless of what dispatch would pick; the AVX2-vs-scalar
  // comparison lives in run_backend_sweep under its ULP contract.
  BackendRestore restore;
  simd::force_backend(simd::Backend::kScalar);

  // Kirkuk-scale sparse matrix (the acceptance workload) and the dense
  // 200x2000 parametric instance.
  TwitterScenario scenario = scenario_by_name("Kirkuk");
  BuiltDataset kirkuk = make_twitter_dataset(scenario, 42);
  Rng prng(23);
  ModelParams kirkuk_params =
      random_init_params(kirkuk.dataset.source_count(), prng);

  Rng rng(8);
  SimInstance dense =
      generate_parametric(SimKnobs::paper_defaults(200, 2000), rng);

  std::vector<KernelRow> rows;
  rows.push_back(run_e_step_workload("e_step_kirkuk", kirkuk.dataset,
                                     kirkuk_params, reps, check_only));
  rows.push_back(run_e_step_workload("e_step_dense_200x2000",
                                     dense.dataset, dense.true_params,
                                     reps, check_only));
  std::size_t sweeps = check_only ? 64 : 2000;
  rows.push_back(
      run_gibbs_weights_workload(200, sweeps, reps, check_only));

  bool all_identical = true;
  std::printf("\nKernel vs pre-kernel baseline (%s)\n",
              check_only ? "identity check only"
                         : "min-of-reps wall ms, serial");
  std::printf("%26s %14s %12s %10s %10s\n", "workload", "baseline_ms",
              "kernel_ms", "speedup", "identical");
  for (const KernelRow& row : rows) {
    all_identical = all_identical && row.identical;
    double speedup =
        row.kernel_ms > 0.0 ? row.baseline_ms / row.kernel_ms : 0.0;
    std::printf("%26s %14.4f %12.4f %9.2fx %10s\n", row.workload,
                row.baseline_ms, row.kernel_ms, speedup,
                row.identical ? "yes" : "NO");
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: kernel output diverged from the pre-kernel "
                 "baseline reimplementation\n");
    return false;
  }
  if (check_only) {
    std::printf("kernel outputs bit-identical to baseline; timing "
                "skipped (SS_PERF_CHECK=1)\n");
    return true;
  }

  // Informational: the full estimator on Kirkuk@0.25 under the kernel
  // engine, against the static seed-commit measurement.
  TwitterScenario quarter = scenario_by_name("Kirkuk").scaled(0.25);
  BuiltDataset built25 = make_twitter_dataset(quarter, 42);
  built25.dataset.partition();
  EmExtEstimator em;
  double em_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(em.run(built25.dataset, 1));
  });
  std::printf("%26s %14s %12.3f %10s (seed commit: 71.6 ms)\n",
              "em_ext_full_kirkuk25", "-", em_ms, "-");

  JsonValue doc = JsonValue::object();
  doc["bench"] = "BENCH_PR3";
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["note"] =
      "serial per-iteration E-step speedup of the math/kernels.h layer "
      "over an in-binary reimplementation of the pre-kernel (commit "
      "cbc8d85) engine. Baseline leg reproduces the old fused_e_step "
      "faithfully: fresh result vectors every call, split per-hypothesis "
      "arrays, branch per claim, sigmoid + logsumexp epilogue, separate "
      "slot-sum pass. Kernel leg is the shipped path: reused scratch, "
      "CSR-flattened index streams, paired interleaved LogPair gathers, "
      "branchless select, single-exp epilogue. Both legs hoist the "
      "log-parameter table build (identical work). Outputs asserted "
      "bit-identical before timing. Target: >= 1.5x on e_step_kirkuk.";
  doc["target_workload"] = "e_step_kirkuk";
  doc["target_min_speedup"] = 1.5;
  doc["kirkuk_sources"] =
      static_cast<std::size_t>(kirkuk.dataset.source_count());
  doc["kirkuk_claims"] =
      static_cast<std::size_t>(kirkuk.dataset.claims.claim_count());
  JsonValue out_rows = JsonValue::array();
  for (const KernelRow& row : rows) {
    JsonValue r = JsonValue::object();
    r["workload"] = row.workload;
    r["baseline_ms"] = row.baseline_ms;
    r["kernel_ms"] = row.kernel_ms;
    r["speedup"] =
        row.kernel_ms > 0.0 ? row.baseline_ms / row.kernel_ms : 0.0;
    r["bit_identical"] = true;
    out_rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(out_rows);
  JsonValue em_row = JsonValue::object();
  em_row["kernel_ms"] = em_ms;
  em_row["seed_commit_ms"] = 71.6;
  em_row["provenance"] = "seed commit 98a7192, same container";
  doc["em_ext_full_kirkuk25"] = std::move(em_row);
  ss::bench::write_result("BENCH_PR3", doc);
  return true;
}

// ---- Backend axis (PR 6) ------------------------------------------
//
// Scalar vs AVX2 through the SAME kernel API (math/kernels.h +
// math/simd/dispatch.h): each workload runs once pinned to each
// backend, the outputs are compared under the AVX2 ULP contract
// (docs/MODEL.md §12) BEFORE any timing, and the speedups + the full
// ULP ablation land in <results_dir>/BENCH_PR6.json. SS_PERF_CHECK=1
// runs the agreement checks only — that is the `perf-smoke` leg for
// this axis. On a host without AVX2+FMA the sweep degrades to a
// skip-with-note (there is nothing to compare).

struct UlpStats {
  std::uint64_t max = 0;
  std::uint64_t p99 = 0;
  double max_abs_diff = 0.0;
};

UlpStats ulp_stats(const std::vector<double>& ref,
                   const std::vector<double>& got) {
  UlpStats s;
  std::vector<std::uint64_t> d(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    d[i] = kernels::ulp_distance(ref[i], got[i]);
    s.max_abs_diff = std::max(s.max_abs_diff, std::abs(ref[i] - got[i]));
  }
  if (d.empty()) return s;
  std::sort(d.begin(), d.end());
  s.max = d.back();
  s.p99 = d[(d.size() * 99) / 100];
  return s;
}

JsonValue ulp_json(const UlpStats& s) {
  JsonValue v = JsonValue::object();
  v["ulp_max"] = static_cast<std::size_t>(s.max);
  v["ulp_p99"] = static_cast<std::size_t>(s.p99);
  v["max_abs_diff"] = s.max_abs_diff;
  return v;
}

// Overlap of the top-k index sets when ranking by score descending.
std::size_t topk_overlap(const std::vector<double>& a,
                         const std::vector<double>& b, std::size_t k) {
  auto top = [&](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + std::min(k, idx.size()),
                      idx.end(), [&](std::size_t x, std::size_t y) {
                        return v[x] > v[y];
                      });
    idx.resize(std::min(k, idx.size()));
    std::sort(idx.begin(), idx.end());
    return idx;
  };
  std::vector<std::size_t> ta = top(a), tb = top(b);
  std::vector<std::size_t> both;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(both));
  return both.size();
}

struct BackendRow {
  const char* workload;
  double scalar_ms = 0.0;
  double avx2_ms = 0.0;
  UlpStats ulp;       // primary output array (posterior / weights)
  UlpStats ulp_ll;    // column log-likelihood terms, when applicable
  bool has_ll = false;
};

// One fused E-step per backend on the same dataset+params; the table
// build runs under the same backend (it is part of the contract being
// ablated) but is hoisted out of the timed region, as the estimators
// do per iteration.
BackendRow backend_e_step_workload(const char* name, const Dataset& d,
                                   const ModelParams& params, int reps,
                                   bool check_only, bool& agree) {
  BackendRow row;
  row.workload = name;
  row.has_ll = true;
  d.partition();

  EStepResult scalar_e, avx2_e;
  std::vector<double> scalar_ll, avx2_ll;

  simd::force_backend(simd::Backend::kScalar);
  LikelihoodTable scalar_table(d, params);
  fused_e_step(scalar_table, nullptr, scalar_e, scalar_ll);

  simd::force_backend(simd::Backend::kAvx2);
  LikelihoodTable avx2_table(d, params);
  fused_e_step(avx2_table, nullptr, avx2_e, avx2_ll);

  row.ulp = ulp_stats(scalar_e.posterior, avx2_e.posterior);
  row.ulp_ll = ulp_stats(scalar_ll, avx2_ll);

  // Agreement gate (the ULP contract, not bit identity): posteriors
  // are probabilities, so an absolute tolerance is the meaningful
  // bound; ranking must be preserved at the decision end.
  std::size_t k = std::min<std::size_t>(50, scalar_e.posterior.size());
  std::size_t overlap = topk_overlap(scalar_e.log_odds, avx2_e.log_odds, k);
  bool ok = row.ulp.max_abs_diff < 1e-9 && overlap + 2 >= k;
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: %s scalar-vs-avx2 disagreement: posterior "
                 "max|diff|=%.3e top-%zu overlap=%zu\n",
                 name, row.ulp.max_abs_diff, k, overlap);
    agree = false;
    return row;
  }
  if (check_only) return row;

  constexpr int kInner = 16;
  EStepResult e;
  std::vector<double> col_ll;
  simd::force_backend(simd::Backend::kScalar);
  row.scalar_ms = min_wall_ms(reps, [&] {
    for (int i = 0; i < kInner; ++i) {
      fused_e_step(scalar_table, nullptr, e, col_ll);
      benchmark::DoNotOptimize(e.log_likelihood);
    }
  }) / kInner;
  simd::force_backend(simd::Backend::kAvx2);
  row.avx2_ms = min_wall_ms(reps, [&] {
    for (int i = 0; i < kInner; ++i) {
      fused_e_step(avx2_table, nullptr, e, col_ll);
      benchmark::DoNotOptimize(e.log_likelihood);
    }
  }) / kInner;
  return row;
}

// The Gibbs hot pair under each backend: one weight build + `sweeps`
// full-state refreshes (same shape as run_gibbs_weights_workload's
// kernel leg).
BackendRow backend_gibbs_workload(std::size_t n, std::size_t sweeps,
                                  int reps, bool check_only, bool& agree) {
  BackendRow row;
  row.workload = "gibbs_state_refresh";
  Rng rng(21);
  std::vector<double> p1(n), p0(n);
  std::vector<char> bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    p1[i] = std::clamp(rng.uniform(0.0, 1.0), 1e-12, 1.0 - 1e-12);
    p0[i] = std::clamp(rng.uniform(0.0, 1.0), 1e-12, 1.0 - 1e-12);
    bits[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  auto run_leg = [&]() {
    double acc = 0.0;
    kernels::SweepWeightsTable w;
    w.build(p1, p0);
    std::vector<char> state = bits;
    for (std::size_t s = 0; s < sweeps; ++s) {
      state[s % n] ^= 1;
      kernels::LogPair lp = w.sum_state_logs(state);
      acc += lp.t - lp.f;
    }
    return acc;
  };

  simd::force_backend(simd::Backend::kScalar);
  double scalar_acc = run_leg();
  std::vector<kernels::SweepWeights> scalar_w;
  kernels::build_sweep_weights(p1, p0, scalar_w);

  simd::force_backend(simd::Backend::kAvx2);
  double avx2_acc = run_leg();
  std::vector<kernels::SweepWeights> avx2_w;
  kernels::build_sweep_weights(p1, p0, avx2_w);

  auto flat = [](const std::vector<kernels::SweepWeights>& w) {
    std::vector<double> out;
    out.reserve(w.size() * 4);
    for (const kernels::SweepWeights& s : w) {
      out.push_back(s.log_t1);
      out.push_back(s.log_t1n);
      out.push_back(s.log_f1);
      out.push_back(s.log_f1n);
    }
    return out;
  };
  row.ulp = ulp_stats(flat(scalar_w), flat(avx2_w));
  // The accumulated sweep statistic: `sweeps` reassociated sums of n
  // log weights each. Relative agreement is the meaningful check.
  double denom = std::max(1.0, std::abs(scalar_acc));
  if (std::abs(scalar_acc - avx2_acc) / denom > 1e-9) {
    std::fprintf(stderr,
                 "FATAL: gibbs refresh scalar-vs-avx2 disagreement: "
                 "%.17g vs %.17g\n",
                 scalar_acc, avx2_acc);
    agree = false;
    return row;
  }
  if (check_only) return row;

  simd::force_backend(simd::Backend::kScalar);
  row.scalar_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(run_leg());
  });
  simd::force_backend(simd::Backend::kAvx2);
  row.avx2_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(run_leg());
  });
  return row;
}

// Batched ExtLogTable build (the once-per-EM-iteration transcendental
// block) under each backend.
BackendRow backend_table_workload(const ModelParams& params, int reps,
                                  bool check_only, bool& agree) {
  BackendRow row;
  row.workload = "ext_table_build";
  const std::size_t n = params.source.size();
  auto rates = [&](std::size_t i) {
    const SourceParams& s = params.source[i];
    return std::array<double, 4>{clamp_prob(s.a), clamp_prob(s.b),
                                 clamp_prob(s.f), clamp_prob(s.g)};
  };
  auto flat = [n](const kernels::ExtLogTable& t) {
    std::vector<double> out;
    out.reserve(6 * n + 2);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(t.exposed_silent()[i].t);
      out.push_back(t.exposed_silent()[i].f);
      out.push_back(t.claim_indep()[i].t);
      out.push_back(t.claim_indep()[i].f);
      out.push_back(t.claim_dep()[i].t);
      out.push_back(t.claim_dep()[i].f);
    }
    out.push_back(t.base().t);
    out.push_back(t.base().f);
    return out;
  };

  kernels::ExtLogTable table;
  simd::force_backend(simd::Backend::kScalar);
  table.build(n, 0.5, rates);
  std::vector<double> scalar_flat = flat(table);
  simd::force_backend(simd::Backend::kAvx2);
  table.build(n, 0.5, rates);
  std::vector<double> avx2_flat = flat(table);
  row.ulp = ulp_stats(scalar_flat, avx2_flat);
  if (row.ulp.max_abs_diff > 1e-9) {
    std::fprintf(stderr,
                 "FATAL: ext table build scalar-vs-avx2 disagreement: "
                 "max|diff|=%.3e\n",
                 row.ulp.max_abs_diff);
    agree = false;
    return row;
  }
  if (check_only) return row;

  constexpr int kInner = 8;
  simd::force_backend(simd::Backend::kScalar);
  row.scalar_ms = min_wall_ms(reps, [&] {
    for (int i = 0; i < kInner; ++i) {
      table.build(n, 0.5, rates);
      benchmark::DoNotOptimize(table.base());
    }
  }) / kInner;
  simd::force_backend(simd::Backend::kAvx2);
  row.avx2_ms = min_wall_ms(reps, [&] {
    for (int i = 0; i < kInner; ++i) {
      table.build(n, 0.5, rates);
      benchmark::DoNotOptimize(table.base());
    }
  }) / kInner;
  return row;
}

bool run_backend_sweep(bool check_only) {
  if (!simd::avx2_runtime_supported()) {
    std::printf("\nBackend sweep skipped: AVX2+FMA not usable on this "
                "build/host (scalar backend is the only leg).\n");
    return true;
  }
  const int reps = env_int("SS_FAST", 0) != 0 ? 5 : 15;
  BackendRestore restore;

  TwitterScenario scenario = scenario_by_name("Kirkuk");
  BuiltDataset kirkuk = make_twitter_dataset(scenario, 42);
  Rng prng(23);
  ModelParams kirkuk_params =
      random_init_params(kirkuk.dataset.source_count(), prng);
  Rng rng(8);
  SimInstance dense =
      generate_parametric(SimKnobs::paper_defaults(200, 2000), rng);

  bool agree = true;
  std::vector<BackendRow> rows;
  rows.push_back(backend_e_step_workload("e_step_kirkuk", kirkuk.dataset,
                                         kirkuk_params, reps, check_only,
                                         agree));
  rows.push_back(backend_e_step_workload("e_step_dense_200x2000",
                                         dense.dataset, dense.true_params,
                                         reps, check_only, agree));
  rows.push_back(backend_gibbs_workload(200, check_only ? 64 : 2000, reps,
                                        check_only, agree));
  rows.push_back(
      backend_table_workload(kirkuk_params, reps, check_only, agree));

  std::printf("\nScalar vs AVX2 backend (%s)\n",
              check_only ? "ULP agreement check only"
                         : "min-of-reps wall ms, serial");
  std::printf("%26s %12s %10s %9s %8s %8s\n", "workload", "scalar_ms",
              "avx2_ms", "speedup", "ulp_max", "ulp_p99");
  for (const BackendRow& row : rows) {
    double speedup =
        row.avx2_ms > 0.0 ? row.scalar_ms / row.avx2_ms : 0.0;
    std::printf("%26s %12.4f %10.4f %8.2fx %8llu %8llu\n", row.workload,
                row.scalar_ms, row.avx2_ms, speedup,
                static_cast<unsigned long long>(row.ulp.max),
                static_cast<unsigned long long>(row.ulp.p99));
  }
  if (!agree) {
    std::fprintf(stderr, "FATAL: AVX2 backend broke the ULP/agreement "
                         "contract; see diagnostics above\n");
    return false;
  }

  // End-to-end estimator agreement: full EM-Ext on Kirkuk@0.25 under
  // each backend. The backends follow different optimization paths, so
  // the check is decision-level: beliefs, ranking and the learned
  // source reliabilities must agree to far below any threshold the
  // evaluation uses.
  TwitterScenario quarter = scenario_by_name("Kirkuk").scaled(0.25);
  BuiltDataset built25 = make_twitter_dataset(quarter, 42);
  built25.dataset.partition();
  simd::force_backend(simd::Backend::kScalar);
  EmExtResult scalar_em = EmExtEstimator().run_detailed(built25.dataset, 1);
  simd::force_backend(simd::Backend::kAvx2);
  EmExtResult avx2_em = EmExtEstimator().run_detailed(built25.dataset, 1);

  UlpStats belief_ulp =
      ulp_stats(scalar_em.estimate.belief, avx2_em.estimate.belief);
  std::size_t k =
      std::min<std::size_t>(30, scalar_em.estimate.belief.size());
  std::size_t overlap = topk_overlap(scalar_em.estimate.log_odds,
                                     avx2_em.estimate.log_odds, k);
  double reliability_diff = 0.0;
  for (std::size_t i = 0; i < scalar_em.params.source.size(); ++i) {
    reliability_diff = std::max(
        reliability_diff, std::abs(scalar_em.params.source[i].a -
                                   avx2_em.params.source[i].a));
    reliability_diff = std::max(
        reliability_diff, std::abs(scalar_em.params.source[i].b -
                                   avx2_em.params.source[i].b));
  }
  std::printf("%26s belief max|diff|=%.3e top-%zu overlap=%zu "
              "reliability max|diff|=%.3e\n",
              "em_ext_kirkuk25_e2e", belief_ulp.max_abs_diff, k, overlap,
              reliability_diff);
  if (belief_ulp.max_abs_diff > 1e-6 || overlap + 1 < k ||
      reliability_diff > 1e-6) {
    std::fprintf(stderr, "FATAL: end-to-end EM-Ext scalar-vs-avx2 "
                         "disagreement exceeds tolerance\n");
    return false;
  }
  if (check_only) {
    std::printf("backend outputs agree within the ULP contract; timing "
                "skipped (SS_PERF_CHECK=1)\n");
    return true;
  }

  JsonValue doc = JsonValue::object();
  doc["bench"] = "BENCH_PR6";
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["note"] =
      "AVX2 backend vs scalar backend through the same kernel API "
      "(runtime dispatch, SS_KERNEL_BACKEND override). Scalar leg is "
      "bit-identical to the PR 3 kernels (run_kernel_sweep asserts "
      "that separately); the AVX2 leg is held to a ULP contract — "
      "partial-sum chains in the gathers/refresh, polynomial "
      "exp/log/log1p in the epilogues and table builds. ULP columns "
      "are measured against the scalar outputs of the same workload. "
      "Targets: >= 2x on e_step_dense_200x2000 and "
      "gibbs_state_refresh.";
  doc["target_workloads"] = [] {
    JsonValue a = JsonValue::array();
    a.push_back("e_step_dense_200x2000");
    a.push_back("gibbs_state_refresh");
    return a;
  }();
  doc["target_min_speedup"] = 2.0;
  doc["kirkuk_sources"] =
      static_cast<std::size_t>(kirkuk.dataset.source_count());
  doc["kirkuk_claims"] =
      static_cast<std::size_t>(kirkuk.dataset.claims.claim_count());
  JsonValue out_rows = JsonValue::array();
  for (const BackendRow& row : rows) {
    JsonValue r = JsonValue::object();
    r["workload"] = row.workload;
    r["scalar_ms"] = row.scalar_ms;
    r["avx2_ms"] = row.avx2_ms;
    r["speedup"] =
        row.avx2_ms > 0.0 ? row.scalar_ms / row.avx2_ms : 0.0;
    r["ulp"] = ulp_json(row.ulp);
    if (row.has_ll) r["ulp_column_ll"] = ulp_json(row.ulp_ll);
    out_rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(out_rows);
  JsonValue e2e = JsonValue::object();
  e2e["workload"] = "em_ext_full_kirkuk25";
  e2e["belief_max_abs_diff"] = belief_ulp.max_abs_diff;
  e2e["belief_ulp_max"] = static_cast<std::size_t>(belief_ulp.max);
  e2e["top_k"] = k;
  e2e["top_k_overlap"] = overlap;
  e2e["reliability_max_abs_diff"] = reliability_diff;
  e2e["tolerances"] = [] {
    JsonValue t = JsonValue::object();
    t["belief_max_abs_diff"] = 1e-6;
    t["reliability_max_abs_diff"] = 1e-6;
    t["top_k_overlap_slack"] = static_cast<std::size_t>(1);
    return t;
  }();
  doc["em_ext_e2e"] = std::move(e2e);
  ss::bench::write_result("BENCH_PR6", doc);
  return true;
}

// ---- Ingestion robustness axis ------------------------------------
//
// The fault-tolerant loaders promise that the strict/permissive guard
// machinery costs <5% on the clean path, and that a 1%-byte-corrupted
// corpus still loads (skipping the damaged records) at comparable
// speed. Measured here, recorded to <results_dir>/ingestion_robustness
// .json, and locked functionally by tests/test_faults.cpp.

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void run_ingestion_sweep() {
  const int reps = env_int("SS_FAST", 0) != 0 ? 3 : 7;
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "ss_bench_ingest";
  fs::remove_all(root);
  fs::create_directories(root);

  // Corpus: a 200x2000 parametric dataset and a Kirkuk-scale tweet
  // stream, saved to disk and then byte-corrupted at 1% into a copy.
  // meta.csv stays intact — its dimensions gate all index validation
  // and damaging them is fatal in every mode by design.
  Rng rng(9);
  SimInstance inst =
      generate_parametric(SimKnobs::paper_defaults(200, 2000), rng);
  std::string clean_dir = (root / "dataset_clean").string();
  std::string corrupt_dir = (root / "dataset_corrupt").string();
  save_dataset(inst.dataset, clean_dir);
  fs::create_directories(corrupt_dir);
  fs::copy_file(clean_dir + "/meta.csv", corrupt_dir + "/meta.csv");
  for (const char* file : {"claims.csv", "exposure.csv", "truth.csv"}) {
    spit_file(corrupt_dir + "/" + file,
              fault::corrupt_bytes(slurp_file(clean_dir + "/" + file),
                                   0.01, 1234));
  }

  TwitterSimulation sim =
      simulate_twitter(scenario_by_name("Kirkuk").scaled(0.5), 42);
  std::string clean_tweets = (root / "tweets_clean.jsonl").string();
  std::string corrupt_tweets = (root / "tweets_corrupt.jsonl").string();
  save_tweets(sim.tweets, clean_tweets);
  spit_file(corrupt_tweets,
            fault::corrupt_bytes(slurp_file(clean_tweets), 0.01, 1234));

  IngestOptions strict;
  strict.mode = IngestMode::kStrict;
  IngestOptions permissive;
  permissive.mode = IngestMode::kPermissive;

  double ds_strict_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_dataset(clean_dir, strict));
  });
  double ds_perm_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_dataset(clean_dir, permissive));
  });
  IngestReport ds_report;
  double ds_corrupt_ms = min_wall_ms(reps, [&] {
    ds_report = IngestReport();
    benchmark::DoNotOptimize(
        try_load_dataset(corrupt_dir, permissive, &ds_report));
  });

  double tw_strict_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_tweets(clean_tweets, strict));
  });
  double tw_perm_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_tweets(clean_tweets, permissive));
  });
  IngestReport tw_report;
  double tw_corrupt_ms = min_wall_ms(reps, [&] {
    tw_report = IngestReport();
    benchmark::DoNotOptimize(
        try_load_tweets(corrupt_tweets, permissive, &tw_report));
  });

  auto pct = [](double strict_ms, double perm_ms) {
    return 100.0 * (perm_ms - strict_ms) / strict_ms;
  };
  double ds_overhead = pct(ds_strict_ms, ds_perm_ms);
  double tw_overhead = pct(tw_strict_ms, tw_perm_ms);

  std::printf("\nIngestion robustness (min of %d reps, wall ms)\n",
              reps);
  std::printf("%10s %12s %16s %18s %14s\n", "corpus", "strict",
              "permissive", "permissive@1pct", "overhead%");
  std::printf("%10s %12.3f %16.3f %18.3f %13.2f%%\n", "dataset",
              ds_strict_ms, ds_perm_ms, ds_corrupt_ms, ds_overhead);
  std::printf("%10s %12.3f %16.3f %18.3f %13.2f%%\n", "tweets",
              tw_strict_ms, tw_perm_ms, tw_corrupt_ms, tw_overhead);
  std::printf("  dataset@1pct: %s\n", ds_report.summary().c_str());
  std::printf("  tweets@1pct:  %s\n", tw_report.summary().c_str());

  JsonValue doc = JsonValue::object();
  doc["bench"] = "ingestion_robustness";
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["corrupt_byte_rate"] = 0.01;
  doc["note"] =
      "permissive-mode guard overhead on the clean path (target <5%) "
      "and throughput on a 1%-byte-corrupted corpus; corrupted records "
      "are skipped-and-counted, never fatal";
  JsonValue ds = JsonValue::object();
  ds["strict_clean_ms"] = ds_strict_ms;
  ds["permissive_clean_ms"] = ds_perm_ms;
  ds["permissive_corrupt_ms"] = ds_corrupt_ms;
  ds["clean_overhead_pct"] = ds_overhead;
  ds["corrupt_rows_total"] = ds_report.rows_total;
  ds["corrupt_rows_skipped"] = ds_report.rows_skipped;
  doc["dataset_200x2000"] = std::move(ds);
  JsonValue tw = JsonValue::object();
  tw["strict_clean_ms"] = tw_strict_ms;
  tw["permissive_clean_ms"] = tw_perm_ms;
  tw["permissive_corrupt_ms"] = tw_corrupt_ms;
  tw["clean_overhead_pct"] = tw_overhead;
  tw["corrupt_rows_total"] = tw_report.rows_total;
  tw["corrupt_rows_skipped"] = tw_report.rows_skipped;
  doc["tweets_kirkuk50"] = std::move(tw);
  ss::bench::write_result("ingestion_robustness", doc);

  fs::remove_all(root);
}

}  // namespace

BENCHMARK(BM_LikelihoodColumns)->Arg(50)->Arg(200)->Arg(800)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_EmExtFull)
    ->Args({50, 50})
    ->Args({100, 50})
    ->Args({100, 200})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmExtSparseTwitterScale)->Arg(25)->Arg(100)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  // SS_PERF_CHECK=1: identity checks only — no google-benchmark, no
  // timing, no JSON. This is what the `perf-smoke` ctest label runs.
  if (env_int("SS_PERF_CHECK", 0) != 0) {
    std::printf("==============================================\n");
    std::printf("Kernel identity + backend agreement check "
                "(SS_PERF_CHECK=1)\n");
    std::printf("==============================================\n");
    bool ok = run_kernel_sweep(/*check_only=*/true);
    ok = run_backend_sweep(/*check_only=*/true) && ok;
    return ok ? 0 : 1;
  }
  std::printf("==============================================\n");
  std::printf("Performance scaling — likelihood columns, EM-Ext\n");
  std::printf("(engineering bench, not a paper figure)\n");
  std::printf("==============================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!run_kernel_sweep(/*check_only=*/false)) return 1;
  if (!run_backend_sweep(/*check_only=*/false)) return 1;
  run_thread_sweep();
  run_ingestion_sweep();
  return 0;
}
