// Performance scaling of the core algorithms (google-benchmark), plus a
// thread-scaling sweep recorded to <results_dir>/perf_scaling.json.
//
// Establishes that the implementation scales as designed:
//  * LikelihoodTable::column is O(#claimants + #exposed), not O(n) — the
//    property that makes EM practical on Table-III-scale matrices;
//  * one full EM-Ext iteration is ~linear in claims + exposed cells;
//  * the whole estimator on the Paris-Attack-scale sparse regime;
//  * the threads axis: fused E-step, full EM-Ext on the Kirkuk-scale
//    sparse matrix, and multi-chain Gibbs under explicit pools of
//    1/2/4/hw workers. Results are bit-identical across the axis (the
//    engine's determinism contract); only wall time may change.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bounds/column_model.h"
#include "bounds/gibbs_bound.h"
#include "core/em_ext.h"
#include "core/likelihood.h"
#include "core/posterior.h"
#include "data/io.h"
#include "simgen/parametric_gen.h"
#include "twitter/builder.h"
#include "twitter/tweet_io.h"
#include "util/fault_inject.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace ss;

void BM_LikelihoodColumns(benchmark::State& state) {
  Rng rng(7);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)), 100);
  SimInstance inst = generate_parametric(knobs, rng);
  LikelihoodTable table(inst.dataset, inst.true_params);
  for (auto _ : state) {
    for (std::size_t j = 0; j < 100; ++j) {
      benchmark::DoNotOptimize(table.column(j));
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

void BM_EmExtFull(benchmark::State& state) {
  Rng rng(8);
  SimKnobs knobs = SimKnobs::paper_defaults(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  SimInstance inst = generate_parametric(knobs, rng);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(inst.dataset, 1));
  }
}

void BM_EmExtSparseTwitterScale(benchmark::State& state) {
  TwitterScenario scenario = scenario_by_name("Kirkuk")
                                 .scaled(state.range(0) / 100.0);
  BuiltDataset built = make_twitter_dataset(scenario, 42);
  EmExtEstimator em;
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.run(built.dataset, 1));
  }
  state.counters["sources"] =
      static_cast<double>(built.dataset.source_count());
  state.counters["claims"] =
      static_cast<double>(built.dataset.claims.claim_count());
}

// ---- Threads axis -------------------------------------------------
//
// Not a google-benchmark: each point is min-of-reps wall time under an
// explicit ThreadPool, so the sweep can pin exact worker counts and
// write one JSON record for the whole axis.

double min_wall_ms(int reps, const std::function<void()>& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    work();
    best = std::min(best, timer.millis());
  }
  return best;
}

std::vector<std::size_t> thread_axis() {
  std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> axis = {1, 2, 4};
  if (std::find(axis.begin(), axis.end(), hw) == axis.end()) {
    axis.push_back(hw);
  }
  return axis;
}

void run_thread_sweep() {
  const int reps = env_int("SS_FAST", 0) != 0 ? 2 : 5;
  std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());

  // Workloads. Dense E-step: one fused pass over a 200x2000 instance.
  Rng rng(8);
  SimKnobs knobs = SimKnobs::paper_defaults(200, 2000);
  SimInstance dense = generate_parametric(knobs, rng);
  dense.dataset.partition();  // build the cache outside the timer
  LikelihoodTable table(dense.dataset, dense.true_params);

  // Full EM-Ext on the Kirkuk-scale sparse matrix.
  TwitterScenario scenario = scenario_by_name("Kirkuk").scaled(0.25);
  BuiltDataset built = make_twitter_dataset(scenario, 42);
  built.dataset.partition();

  // Multi-chain Gibbs: 8 chains on a 200-source column.
  ColumnModel column =
      make_column_model(dense.true_params, dense.dataset.dependency, 0);
  GibbsBoundConfig gibbs_config;
  gibbs_config.chains = 8;
  gibbs_config.max_sweeps = 4000;

  JsonValue doc = JsonValue::object();
  doc["bench"] = "perf_scaling";
  doc["hardware_concurrency"] = hw;
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["note"] =
      "min-of-reps wall ms under explicit ThreadPool(threads); outputs "
      "are bit-identical across the threads axis by construction; on a "
      "single-CPU host the axis is flat and only the serial gains from "
      "ClaimPartition caching + E-step fusion apply";
  // Static reference points: the same google-benchmark workloads
  // measured once on the pre-engine seed commit, on the hardware this
  // bench suite was developed on. They contextualize the serial
  // speedup; re-measure on the seed commit when porting to new hardware.
  JsonValue baseline = JsonValue::object();
  baseline["provenance"] =
      "seed commit 98a7192, same container, benchmark_min_time=1";
  baseline["em_ext_full_100x200_ms"] = 28.6;
  baseline["em_ext_kirkuk25_ms"] = 71.6;
  baseline["em_ext_kirkuk100_ms"] = 428.0;
  doc["seed_baseline"] = std::move(baseline);
  JsonValue rows = JsonValue::array();

  std::printf("\nThread scaling (min of %d reps, wall ms)\n", reps);
  std::printf("%8s %18s %18s %18s\n", "threads", "fused_e_step",
              "em_ext_kirkuk25", "gibbs_8chain");
  for (std::size_t threads : thread_axis()) {
    ThreadPool pool(threads);

    double e_step_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(fused_e_step(table, &pool));
    });

    EmExtConfig em_config;
    em_config.pool = &pool;
    EmExtEstimator em(em_config);
    double em_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(em.run(built.dataset, 1));
    });

    gibbs_config.pool = &pool;
    double gibbs_ms = min_wall_ms(reps, [&] {
      benchmark::DoNotOptimize(gibbs_bound(column, 11, gibbs_config));
    });

    std::printf("%8zu %18.3f %18.3f %18.3f\n", threads, e_step_ms,
                em_ms, gibbs_ms);
    JsonValue row = JsonValue::object();
    row["threads"] = threads;
    row["fused_e_step_ms"] = e_step_ms;
    row["em_ext_kirkuk25_ms"] = em_ms;
    row["gibbs_8chain_ms"] = gibbs_ms;
    rows.push_back(std::move(row));
  }
  doc["rows"] = std::move(rows);
  ss::bench::write_result("perf_scaling", doc);
}

// ---- Ingestion robustness axis ------------------------------------
//
// The fault-tolerant loaders promise that the strict/permissive guard
// machinery costs <5% on the clean path, and that a 1%-byte-corrupted
// corpus still loads (skipping the damaged records) at comparable
// speed. Measured here, recorded to <results_dir>/ingestion_robustness
// .json, and locked functionally by tests/test_faults.cpp.

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void run_ingestion_sweep() {
  const int reps = env_int("SS_FAST", 0) != 0 ? 3 : 7;
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "ss_bench_ingest";
  fs::remove_all(root);
  fs::create_directories(root);

  // Corpus: a 200x2000 parametric dataset and a Kirkuk-scale tweet
  // stream, saved to disk and then byte-corrupted at 1% into a copy.
  // meta.csv stays intact — its dimensions gate all index validation
  // and damaging them is fatal in every mode by design.
  Rng rng(9);
  SimInstance inst =
      generate_parametric(SimKnobs::paper_defaults(200, 2000), rng);
  std::string clean_dir = (root / "dataset_clean").string();
  std::string corrupt_dir = (root / "dataset_corrupt").string();
  save_dataset(inst.dataset, clean_dir);
  fs::create_directories(corrupt_dir);
  fs::copy_file(clean_dir + "/meta.csv", corrupt_dir + "/meta.csv");
  for (const char* file : {"claims.csv", "exposure.csv", "truth.csv"}) {
    spit_file(corrupt_dir + "/" + file,
              fault::corrupt_bytes(slurp_file(clean_dir + "/" + file),
                                   0.01, 1234));
  }

  TwitterSimulation sim =
      simulate_twitter(scenario_by_name("Kirkuk").scaled(0.5), 42);
  std::string clean_tweets = (root / "tweets_clean.jsonl").string();
  std::string corrupt_tweets = (root / "tweets_corrupt.jsonl").string();
  save_tweets(sim.tweets, clean_tweets);
  spit_file(corrupt_tweets,
            fault::corrupt_bytes(slurp_file(clean_tweets), 0.01, 1234));

  IngestOptions strict;
  strict.mode = IngestMode::kStrict;
  IngestOptions permissive;
  permissive.mode = IngestMode::kPermissive;

  double ds_strict_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_dataset(clean_dir, strict));
  });
  double ds_perm_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_dataset(clean_dir, permissive));
  });
  IngestReport ds_report;
  double ds_corrupt_ms = min_wall_ms(reps, [&] {
    ds_report = IngestReport();
    benchmark::DoNotOptimize(
        try_load_dataset(corrupt_dir, permissive, &ds_report));
  });

  double tw_strict_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_tweets(clean_tweets, strict));
  });
  double tw_perm_ms = min_wall_ms(reps, [&] {
    benchmark::DoNotOptimize(load_tweets(clean_tweets, permissive));
  });
  IngestReport tw_report;
  double tw_corrupt_ms = min_wall_ms(reps, [&] {
    tw_report = IngestReport();
    benchmark::DoNotOptimize(
        try_load_tweets(corrupt_tweets, permissive, &tw_report));
  });

  auto pct = [](double strict_ms, double perm_ms) {
    return 100.0 * (perm_ms - strict_ms) / strict_ms;
  };
  double ds_overhead = pct(ds_strict_ms, ds_perm_ms);
  double tw_overhead = pct(tw_strict_ms, tw_perm_ms);

  std::printf("\nIngestion robustness (min of %d reps, wall ms)\n",
              reps);
  std::printf("%10s %12s %16s %18s %14s\n", "corpus", "strict",
              "permissive", "permissive@1pct", "overhead%");
  std::printf("%10s %12.3f %16.3f %18.3f %13.2f%%\n", "dataset",
              ds_strict_ms, ds_perm_ms, ds_corrupt_ms, ds_overhead);
  std::printf("%10s %12.3f %16.3f %18.3f %13.2f%%\n", "tweets",
              tw_strict_ms, tw_perm_ms, tw_corrupt_ms, tw_overhead);
  std::printf("  dataset@1pct: %s\n", ds_report.summary().c_str());
  std::printf("  tweets@1pct:  %s\n", tw_report.summary().c_str());

  JsonValue doc = JsonValue::object();
  doc["bench"] = "ingestion_robustness";
  doc["reps"] = static_cast<std::size_t>(reps);
  doc["corrupt_byte_rate"] = 0.01;
  doc["note"] =
      "permissive-mode guard overhead on the clean path (target <5%) "
      "and throughput on a 1%-byte-corrupted corpus; corrupted records "
      "are skipped-and-counted, never fatal";
  JsonValue ds = JsonValue::object();
  ds["strict_clean_ms"] = ds_strict_ms;
  ds["permissive_clean_ms"] = ds_perm_ms;
  ds["permissive_corrupt_ms"] = ds_corrupt_ms;
  ds["clean_overhead_pct"] = ds_overhead;
  ds["corrupt_rows_total"] = ds_report.rows_total;
  ds["corrupt_rows_skipped"] = ds_report.rows_skipped;
  doc["dataset_200x2000"] = std::move(ds);
  JsonValue tw = JsonValue::object();
  tw["strict_clean_ms"] = tw_strict_ms;
  tw["permissive_clean_ms"] = tw_perm_ms;
  tw["permissive_corrupt_ms"] = tw_corrupt_ms;
  tw["clean_overhead_pct"] = tw_overhead;
  tw["corrupt_rows_total"] = tw_report.rows_total;
  tw["corrupt_rows_skipped"] = tw_report.rows_skipped;
  doc["tweets_kirkuk50"] = std::move(tw);
  ss::bench::write_result("ingestion_robustness", doc);

  fs::remove_all(root);
}

}  // namespace

BENCHMARK(BM_LikelihoodColumns)->Arg(50)->Arg(200)->Arg(800)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_EmExtFull)
    ->Args({50, 50})
    ->Args({100, 50})
    ->Args({100, 200})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmExtSparseTwitterScale)->Arg(25)->Arg(100)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::printf("==============================================\n");
  std::printf("Performance scaling — likelihood columns, EM-Ext\n");
  std::printf("(engineering bench, not a paper figure)\n");
  std::printf("==============================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_thread_sweep();
  run_ingestion_sweep();
  return 0;
}
