// Figure 11: empirical evaluation — the seven fact-finders' top-100
// accuracy (#True / (#True + #False + #Opinion)) on the five simulated
// Twitter datasets, using the paper's merge-grade-deanonymize protocol.
#include "apollo/grading.h"
#include "bench_common.h"
#include "estimators/registry.h"
#include "twitter/builder.h"

int main() {
  using namespace ss;
  bench::banner("Figure 11 — empirical evaluation on Twitter datasets",
                "ICDCS'16 Fig. 11 (7 algorithms x 5 events, top-100)");
  double scale = scenario_scale_from_env();
  std::size_t top_k =
      static_cast<std::size_t>(env_int("SS_TOPK", 100));
  std::printf("scenario scale: %.2f | top-k: %zu\n\n", scale, top_k);

  std::vector<std::string> algos = estimator_names();
  std::vector<std::string> headers = {"dataset"};
  headers.insert(headers.end(), algos.begin(), algos.end());
  TablePrinter table(headers);
  JsonValue rows = JsonValue::array();

  std::size_t idx = 0;
  for (const TwitterScenario& base : paper_scenarios()) {
    TwitterScenario scenario = base.scaled(scale);
    BuiltDataset built = make_twitter_dataset(scenario, 1100 + idx);
    EmpiricalStudyResult study =
        run_empirical_protocol(built.dataset, algos, top_k, 42);

    std::vector<std::string> cells = {scenario.name};
    JsonValue row = JsonValue::object();
    row["name"] = scenario.name;
    for (const auto& [algo, breakdown] : study.per_algorithm) {
      cells.push_back(format_double(breakdown.accuracy(), 3));
      JsonValue entry = JsonValue::object();
      entry["accuracy"] = breakdown.accuracy();
      entry["true"] = breakdown.graded_true;
      entry["false"] = breakdown.graded_false;
      entry["opinion"] = breakdown.graded_opinion;
      row[algo] = std::move(entry);
    }
    table.add_row(cells);
    rows.push_back(std::move(row));
    ++idx;
  }
  table.print();
  std::printf(
      "\nexpected shape: EM-Ext highest on every dataset; EM-Social\n"
      "second among principled methods; EM > Voting; the three\n"
      "heuristics (Sums, Average.Log, Truth-Finder) vary widely.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "fig11";
  doc["scale"] = scale;
  doc["top_k"] = top_k;
  doc["rows"] = std::move(rows);
  bench::write_result("fig11", doc);
  return 0;
}
