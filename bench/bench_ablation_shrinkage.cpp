// Ablation A5: hierarchical shrinkage strength.
//
// EM-Ext (and, for fairness, the EM baselines) MAP-shrink per-source
// rates toward the pooled rate. This bench sweeps the pseudo-observation
// count for EM-Ext at the paper's default knobs and at strongly
// informative dependent claims, quantifying the bias/variance trade:
// 0 = the paper's literal M-step (high variance at m = 50), large values
// approach a single pooled-rate model (biased when sources differ).
#include "bench_common.h"
#include "core/em_ext.h"
#include "estimators/em_social.h"
#include "eval/metrics.h"
#include "simgen/parametric_gen.h"

int main() {
  using namespace ss;
  bench::banner("Ablation A5 — EM-Ext shrinkage strength",
                "DESIGN.md §5 (hierarchical MAP shrinkage)");
  std::size_t reps = bench_repetitions(40, 10);
  std::printf("reps per point: %zu (n = 50, m = 50)\n\n", reps);

  const std::vector<double> strengths = {0.0, 1.0, 2.0, 5.0, 10.0,
                                         20.0, 50.0};
  TablePrinter table({"regime", "shrinkage", "EM-Ext accuracy",
                      "EM-Social accuracy (ref)"});
  JsonValue rows = JsonValue::array();
  for (bool informative : {false, true}) {
    SimKnobs knobs = SimKnobs::paper_defaults(50, 50);
    if (informative) {
      knobs.p_indep_true = Range::fixed(prob_from_odds(2.0));
      knobs.p_dep_true = Range::fixed(prob_from_odds(2.0));
    }
    const char* regime =
        informative ? "dep odds = 2.0" : "paper defaults (odds ~ 1)";
    for (double s : strengths) {
      MetricSummary summary = run_repetitions(
          reps, 59, [&](std::size_t, Rng& rng) {
            SimInstance inst = generate_parametric(knobs, rng);
            MetricRow row;
            EmExtConfig config;
            config.shrinkage = s;
            row["ext"] = classify(inst.dataset, EmExtEstimator(config)
                                                    .run(inst.dataset, 1))
                             .accuracy();
            row["social"] =
                classify(inst.dataset,
                         EmSocialEstimator().run(inst.dataset, 1))
                    .accuracy();
            return row;
          });
      table.add_row({regime, format_double(s, 0),
                     bench::mean_ci(summary["ext"]),
                     bench::mean_ci(summary["social"])});
      JsonValue row = JsonValue::object();
      row["regime"] = regime;
      row["shrinkage"] = s;
      row["em_ext"] = summary["ext"].mean();
      row["em_social"] = summary["social"].mean();
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::printf("\nexpected: accuracy rises steeply from 0 and flattens; "
              "the library default (10) sits on the plateau while keeping "
              "per-source signal at larger m.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "ablation_shrinkage";
  doc["rows"] = std::move(rows);
  bench::write_result("ablation_shrinkage", doc);
  return 0;
}
