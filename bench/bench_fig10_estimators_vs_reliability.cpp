// Figure 10: estimator performance vs dependent-claim discrimination
// p^depT/(1-p^depT) = 1.1..2.0 with independent odds fixed at 2.
// Paper shape: as dependent claims grow informative all algorithms
// except EM-Social (which deletes them) benefit; near odds = 1 EM-Ext
// degenerates gracefully to EM-Social, and near odds = 2 plain EM
// catches up (dependent == independent claims there).
#include "estimator_sweep.h"
#include "util/string_util.h"

int main() {
  using namespace ss;
  bench::banner(
      "Figure 10 — estimators vs dependent-claim discrimination",
      "ICDCS'16 Fig. 10 (dep odds 1.1..2.0, indep odds 2, n = 50)");
  std::vector<bench::EstimatorSweepPoint> points;
  for (int step = 0; step <= 9; ++step) {
    double odds = 1.1 + 0.1 * step;
    SimKnobs knobs = SimKnobs::paper_defaults(50, 50);
    knobs.p_indep_true = Range::fixed(prob_from_odds(2.0));
    knobs.p_dep_true = Range::fixed(prob_from_odds(odds));
    points.push_back({strprintf("%.1f", odds), knobs});
  }
  bench::run_estimator_sweep("fig10_estimators_vs_reliability",
                             "dep odds", points);
  std::printf(
      "\nexpected shape: EM-Ext >= EM-Social everywhere, with the margin\n"
      "growing as dependent odds rise; EM approaches EM-Ext near odds 2.\n");
  return 0;
}
