// Table I walkthrough (Section III-A).
//
// Reprints the paper's example joint claim-combination likelihoods for
// three sources and recomputes the expected error of the optimal
// estimator via Eq. 3, which the paper reports as Err = 0.26980433.
#include "bench_common.h"
#include "bounds/exact_bound.h"

int main() {
  using namespace ss;
  bench::banner("Table I — computing the error bound: an example",
                "ICDCS'16 Section III-A, Table I (Err = 0.26980433)");

  const std::vector<double> p_given_true = {
      0.18546216, 0.17606773, 0.00033244, 0.01971855,
      0.24427898, 0.19063986, 0.02321803, 0.16028224};
  const std::vector<double> p_given_false = {
      0.05851677, 0.05300123, 0.12803859, 0.16032756,
      0.14231588, 0.08222352, 0.18716734, 0.18840910};

  TablePrinter table({"SC_j", "P(SC_j|C_j=1,D,theta)",
                      "P(SC_j|C_j=0,D,theta)", "min term (z=0.5)"});
  for (int row = 0; row < 8; ++row) {
    std::string bits = {static_cast<char>('0' + ((row >> 2) & 1)),
                        static_cast<char>('0' + ((row >> 1) & 1)),
                        static_cast<char>('0' + (row & 1))};
    double m = 0.5 * std::min(p_given_true[row], p_given_false[row]);
    table.add_row({bits, format_double(p_given_true[row], 8),
                   format_double(p_given_false[row], 8),
                   format_double(m, 8)});
  }
  table.print();

  BoundResult bound = bound_from_joint(p_given_true, p_given_false, 0.5);
  std::printf("\nEq. 3 error bound           : %.8f\n", bound.error);
  std::printf("paper's reported value      : 0.26980433\n");
  std::printf("false-positive part         : %.8f\n",
              bound.false_positive);
  std::printf("false-negative part         : %.8f\n",
              bound.false_negative);
  std::printf("=> no fact-finder on this channel can average below "
              "%.2f%% error\n",
              bound.error * 100.0);

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "table1";
  doc["paper_value"] = 0.26980433;
  doc["computed"] = bound.error;
  doc["false_positive"] = bound.false_positive;
  doc["false_negative"] = bound.false_negative;
  bench::write_result("table1", doc);
  return 0;
}
