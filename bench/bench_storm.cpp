// Robustness bench: cost of the deterministic simulation harness.
//
// Two questions, one record (bench_results/storm_robustness.json):
//
//  1. Clean-path overhead — the same Kirkuk cascade streamed once
//     through LiveApollo directly and once through the sim transport
//     (SimScheduler + SimProcess, zero faults, zero crashes). The
//     harness is pure plumbing here, so its tax on the streaming
//     pipeline must stay within a couple of percent; docs/MODEL.md §13
//     records the budget.
//  2. Storm robustness — one fully faulted run_storm() at the same
//     seed, with its invariant verdict and fault counters, so the JSON
//     doubles as a provenance record of what a storm survives.
//
// SS_PERF_CHECK=1 skips all timing and only asserts the harness leg is
// bit-identical to the direct leg (ctest `storm_smoke`, label
// perf-smoke). SS_STORM_SEED overrides the seed.
#include <cstdlib>

#include "bench_common.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/storm.h"
#include "sim/stream.h"
#include "twitter/simulator.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace ss;

using Ranking = std::vector<std::pair<std::uint32_t, double>>;

constexpr std::size_t kTopK = 30;

// Production path: batches folded straight into LiveApollo.
Ranking run_direct(const TwitterSimulation& world,
                   const sim::SimStream& stream) {
  LiveApollo live(world.follows, LiveApolloConfig{});
  for (std::uint64_t s = 0; s < stream.batch_count(); ++s) {
    for (const Tweet& t : stream.clean_batch(s)) live.ingest(t);
    live.refresh();
  }
  return live.top(kTopK);
}

// Same batches routed through the sim transport: scheduled arrival
// events, sequence tracking, reorder buffer — everything the storm
// uses, minus the faults.
Ranking run_harness(const TwitterSimulation& world,
                    const sim::SimStream& stream, std::uint64_t seed) {
  sim::ProcessConfig config;
  config.fingerprint = splitmix64(seed ^ 0xBE4C4ULL);
  sim::SimProcess process(&world.follows, config);
  sim::SimScheduler scheduler(seed);
  for (const sim::PlannedDelivery& d : stream.deliveries()) {
    scheduler.schedule(d.tick, sim::EventKind::kBatchArrival, d.seq);
  }
  while (!scheduler.empty()) {
    sim::Event e = scheduler.pop();
    sim::SimStream::Delivered d = stream.delivered(e.payload);
    process.deliver(e.payload, std::move(d.tweets));
  }
  return process.live().top(kTopK);
}

}  // namespace

int main() {
  using namespace ss;
  bool check_only = env_int("SS_PERF_CHECK", 0) != 0;
  bool fast = env_int("SS_FAST", 0) != 0;
  std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("SS_STORM_SEED", 606));

  bench::banner("Robustness — simulation-harness overhead and storm "
                "survival",
                "docs/MODEL.md §13 (deterministic simulation)");

  TwitterScenario scenario =
      scenario_by_name("Kirkuk").scaled(fast || check_only ? 0.03 : 0.1);
  TwitterSimulation world = simulate_twitter(scenario, seed);
  sim::StreamConfig clean_stream;
  clean_stream.batch_size = 120;
  clean_stream.faults = fault::BatchFaultConfig{};  // all rates zero
  sim::SimStream stream(world.tweets, clean_stream, seed);
  std::printf("seed %llu: %zu tweets in %zu batches\n\n",
              static_cast<unsigned long long>(seed), world.tweets.size(),
              stream.batch_count());

  // The harness transport must be invisible on the clean path: same
  // ranking, same log-odds bits.
  Ranking direct_top = run_direct(world, stream);
  Ranking harness_top = run_harness(world, stream, seed);
  if (direct_top != harness_top) {
    std::printf("FAIL: harness clean path diverges from direct "
                "LiveApollo run (SS_STORM_SEED=%llu)\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  if (check_only) {
    std::printf("check ok: harness top-%zu bit-identical to direct "
                "run (%zu clusters); timing skipped\n",
                kTopK, direct_top.size());
    return 0;
  }

  std::size_t reps = bench_repetitions(12, 5);
  StreamingStats direct_ms =
      bench::timed_reps(reps, [&] { run_direct(world, stream); });
  StreamingStats harness_ms =
      bench::timed_reps(reps, [&] { run_harness(world, stream, seed); });
  double overhead_pct =
      (harness_ms.mean() - direct_ms.mean()) / direct_ms.mean() * 100.0;

  sim::StormConfig storm;
  storm.seed = seed;
  storm.scenario = "Kirkuk";
  storm.scale = fast ? 0.02 : 0.05;
  storm.stream.batch_size = 60;
  storm.stream.emit_interval_ticks = 50;
  storm.stream.faults.delay_rate = 0.3;
  storm.stream.faults.max_delay_ticks = 120;
  storm.stream.faults.duplicate_rate = 0.15;
  storm.stream.faults.drop_rate = 0.1;
  storm.stream.faults.corrupt_rate = 0.1;
  storm.crashes = 2;
  storm.checkpoint_interval_ticks = 120;
  storm.query_interval_ticks = 170;
  WallTimer storm_timer;
  sim::StormReport report = sim::run_storm(storm);
  double storm_seconds = storm_timer.seconds();

  TablePrinter table({"leg", "time", "notes"});
  table.add_row({"direct LiveApollo",
                 bench::mean_ci(direct_ms, 2) + " ms",
                 std::to_string(stream.batch_count()) + " batches"});
  table.add_row({"sim harness (clean)",
                 bench::mean_ci(harness_ms, 2) + " ms",
                 strprintf("overhead %.2f%%", overhead_pct)});
  table.add_row({"full storm", strprintf("%.2f s", storm_seconds),
                 report.passed ? "invariants held" : "VIOLATIONS"});
  table.print();
  std::printf("\nstorm: %zu events, %zu crashes, %zu resumes, %zu "
              "checkpoints, %zu corrupted batches, %zu records lost\n",
              report.events, report.crashes, report.resumes,
              report.checkpoints, report.corrupted_batches,
              report.records_lost);
  if (!report.passed) {
    for (const std::string& v : report.violations) {
      std::printf("violation: %s\n", v.c_str());
    }
  }

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "storm_robustness";
  doc["seed"] = static_cast<double>(seed);
  doc["tweets"] = world.tweets.size();
  doc["batches"] = stream.batch_count();
  doc["reps"] = reps;
  doc["direct_ms"] = direct_ms.mean();
  doc["harness_ms"] = harness_ms.mean();
  doc["overhead_pct"] = overhead_pct;
  JsonValue storm_doc = JsonValue::object();
  storm_doc["passed"] = report.passed;
  storm_doc["seconds"] = storm_seconds;
  storm_doc["events"] = report.events;
  storm_doc["batches"] = report.batches;
  storm_doc["crashes"] = report.crashes;
  storm_doc["resumes"] = report.resumes;
  storm_doc["checkpoints"] = report.checkpoints;
  storm_doc["duplicates_rejected"] = report.duplicates_rejected;
  storm_doc["corrupted_batches"] = report.corrupted_batches;
  storm_doc["records_lost"] = report.records_lost;
  storm_doc["redeliveries"] = report.redeliveries;
  doc["storm"] = std::move(storm_doc);
  bench::write_result("storm_robustness", doc);
  return report.passed ? 0 : 1;
}
