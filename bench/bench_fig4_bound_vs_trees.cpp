// Figure 4: precision of the approximate error bound as the number of
// dependency trees tau grows from 1 to 11 (paper: max gap 0.0127 at
// tau = 1). n = 20, m = 50, other knobs at paper defaults.
#include "bound_sweep.h"

int main() {
  using namespace ss;
  bench::banner("Figure 4 — approximate vs exact bound, sweeping tau",
                "ICDCS'16 Fig. 4 (tau = 1..11, n = 20, m = 50)");
  std::vector<bench::BoundSweepPoint> points;
  for (std::size_t tau = 1; tau <= 11; ++tau) {
    SimKnobs knobs = SimKnobs::paper_defaults(20, 50);
    knobs.tau_lo = knobs.tau_hi = tau;
    points.push_back({std::to_string(tau), knobs});
  }
  bench::run_bound_sweep("fig4_bound_vs_trees", "tau", points);
  std::printf("\nexpected shape: approx tracks exact at every tau; more "
              "independent roots (higher tau) => lower bound.\n");
  return 0;
}
