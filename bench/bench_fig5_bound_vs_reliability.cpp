// Figure 5: precision of the approximate error bound as dependent-claim
// discrimination p^depT/(1-p^depT) sweeps 1.1 to 2.0 with independent
// odds fixed at 2 (paper: max gap 0.0116 at odds = 2.0). n = 20, m = 50.
#include "bound_sweep.h"
#include "util/string_util.h"

int main() {
  using namespace ss;
  bench::banner(
      "Figure 5 — approximate vs exact bound, sweeping dependent odds",
      "ICDCS'16 Fig. 5 (odds 1.1..2.0, indep odds = 2, n = 20)");
  std::vector<bench::BoundSweepPoint> points;
  for (int step = 0; step <= 9; ++step) {
    double odds = 1.1 + 0.1 * step;
    SimKnobs knobs = SimKnobs::paper_defaults(20, 50);
    knobs.p_indep_true = Range::fixed(prob_from_odds(2.0));
    knobs.p_dep_true = Range::fixed(prob_from_odds(odds));
    points.push_back({strprintf("%.1f", odds), knobs});
  }
  bench::run_bound_sweep("fig5_bound_vs_reliability", "dep odds", points);
  std::printf("\nexpected shape: approx tracks exact across the sweep; "
              "more discriminative dependent claims => lower bound.\n");
  return 0;
}
