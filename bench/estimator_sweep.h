// Shared driver for the estimator figures (Figs. 7-10): sweep one knob
// and at each point average accuracy / false-positive / false-negative
// rates of EM-Ext, EM-Social, EM (IPSN'12), and the transformed bound
// ("Optimal" = 1 - Err via the Gibbs approximation), over repeated
// instances.
#pragma once

#include <string>
#include <vector>

#include "bench_common.h"
#include "bounds/dataset_bound.h"
#include "core/em_ext.h"
#include "estimators/em_ipsn12.h"
#include "estimators/em_social.h"
#include "eval/metrics.h"
#include "simgen/parametric_gen.h"

namespace ss::bench {

struct EstimatorSweepPoint {
  std::string label;
  SimKnobs knobs;
};

inline void run_estimator_sweep(
    const std::string& experiment, const std::string& x_name,
    const std::vector<EstimatorSweepPoint>& points) {
  // The paper averages 300 repetitions; 60 gives CIs well under a point
  // of accuracy and keeps the default full-suite run quick. Set
  // SS_REPS=300 for paper-scale averaging.
  std::size_t reps = bench_repetitions(/*paper_default=*/60,
                                       /*fast_default=*/15);
  std::printf("reps per point: %zu (SS_REPS overrides; paper used 300)\n\n",
              reps);

  const std::vector<std::string> algos = {"Optimal", "EM-Ext", "EM-Social",
                                          "EM"};
  TablePrinter acc({x_name, "Optimal", "EM-Ext", "EM-Social", "EM"});
  TablePrinter fp({x_name, "Optimal", "EM-Ext", "EM-Social", "EM"});
  TablePrinter fn({x_name, "Optimal", "EM-Ext", "EM-Social", "EM"});
  JsonValue rows = JsonValue::array();

  for (const auto& point : points) {
    MetricSummary summary = run_repetitions(
        reps, 777, [&](std::size_t, Rng& rng) {
          SimInstance inst = generate_parametric(point.knobs, rng);
          MetricRow row;
          auto record = [&](const std::string& name,
                            const EstimateResult& est) {
            auto m = classify(inst.dataset, est);
            row[name + ".acc"] = m.accuracy();
            row[name + ".fp"] = m.false_positive_rate();
            row[name + ".fn"] = m.false_negative_rate();
          };
          std::uint64_t seed = rng.engine()();
          record("EM-Ext", EmExtEstimator().run(inst.dataset, seed));
          record("EM-Social",
                 EmSocialEstimator().run(inst.dataset, seed));
          record("EM", EmIpsn12Estimator().run(inst.dataset, seed));
          GibbsBoundConfig config;
          config.min_sweeps = 300;
          config.max_sweeps = 3000;
          config.tol = 1e-4;
          config.patience = 20;
          auto bound = gibbs_dataset_bound(inst.dataset, inst.true_params,
                                           seed, config);
          row["Optimal.acc"] = bound.bound.optimal_accuracy();
          row["Optimal.fp"] = bound.bound.false_positive;
          row["Optimal.fn"] = bound.bound.false_negative;
          return row;
        });
    auto cells = [&](const char* metric) {
      std::vector<std::string> out = {point.label};
      for (const auto& algo : algos) {
        out.push_back(
            format_double(summary[algo + "." + metric].mean(), 4));
      }
      return out;
    };
    acc.add_row(cells("acc"));
    fp.add_row(cells("fp"));
    fn.add_row(cells("fn"));

    JsonValue row = JsonValue::object();
    row["x"] = point.label;
    for (const auto& algo : algos) {
      for (const char* metric : {"acc", "fp", "fn"}) {
        std::string key = algo + "." + metric;
        row[key] = summary[key].mean();
        row[key + "_ci95"] = summary[key].ci95_halfwidth();
      }
    }
    rows.push_back(std::move(row));
  }

  std::printf("(a) estimation accuracy\n");
  acc.print();
  std::printf("\n(b) false positives (portion of all assertions)\n");
  fp.print();
  std::printf("\n(c) false negatives (portion of all assertions)\n");
  fn.print();

  JsonValue doc = JsonValue::object();
  doc["experiment"] = experiment;
  doc["x"] = x_name;
  doc["reps"] = reps;
  doc["rows"] = std::move(rows);
  write_result(experiment, doc);
}

}  // namespace ss::bench
