// Figure 8: estimator performance vs number of assertions m = 10..100
// at n = 100 sources. Paper shape: all algorithms improve with more
// assertions; EM-Ext's gap to Optimal shrinks.
#include "estimator_sweep.h"

int main() {
  using namespace ss;
  bench::banner("Figure 8 — estimators vs number of assertions",
                "ICDCS'16 Fig. 8 (m = 10..100 step 10, n = 100)");
  std::vector<bench::EstimatorSweepPoint> points;
  for (std::size_t m = 10; m <= 100; m += 10) {
    points.push_back(
        {std::to_string(m), SimKnobs::paper_defaults(100, m)});
  }
  bench::run_estimator_sweep("fig8_estimators_vs_assertions", "m",
                             points);
  std::printf(
      "\nexpected shape: accuracy rises with m for every algorithm; the\n"
      "EM-Ext-to-Optimal gap narrows as parameters are better estimated.\n");
  return 0;
}
