// Table III: summary statistics of the five (simulated) Twitter
// datasets. The paper's crawled 2015 datasets are unavailable; the
// Twitter substrate regenerates events with matching scale and
// personality (DESIGN.md §3), and this bench prints the same columns:
// #Assertions, #Sources, #Total Claims, #Original Claims.
#include "bench_common.h"
#include "twitter/builder.h"

int main() {
  using namespace ss;
  bench::banner("Table III — information summary of Twitter datasets",
                "ICDCS'16 Table III (simulated events; SS_SCALE scales)");
  double scale = scenario_scale_from_env();
  std::printf("scenario scale: %.2f (SS_SCALE overrides)\n\n", scale);

  // The paper's reported values, for side-by-side comparison.
  struct PaperRow {
    const char* name;
    std::size_t assertions, sources, claims, original;
  };
  const PaperRow paper_rows[] = {
      {"Ukraine", 3703, 5403, 7192, 4242},
      {"Kirkuk", 2795, 4816, 6188, 3079},
      {"Superbug", 2873, 7764, 9426, 5831},
      {"LA Marathon", 3537, 5174, 7148, 4332},
      {"Paris Attack", 23513, 38844, 41249, 38794},
  };

  TablePrinter table({"dataset", "#assertions", "#sources",
                      "#total claims", "#original claims",
                      "purity", "paper (asrt/src/claims/orig)"});
  JsonValue rows = JsonValue::array();
  std::size_t idx = 0;
  for (const TwitterScenario& base : paper_scenarios()) {
    TwitterScenario scenario = base.scaled(scale);
    BuiltDataset built = make_twitter_dataset(scenario, 1600 + idx);
    DatasetSummary s = built.dataset.summary();
    const PaperRow& p = paper_rows[idx];
    table.add_row(
        {scenario.name, std::to_string(s.assertions),
         std::to_string(s.sources), std::to_string(s.total_claims),
         std::to_string(s.original_claims),
         format_double(built.clustering.purity, 3),
         strprintf("%zu/%zu/%zu/%zu", p.assertions, p.sources, p.claims,
                   p.original)});
    JsonValue row = JsonValue::object();
    row["name"] = scenario.name;
    row["assertions"] = s.assertions;
    row["sources"] = s.sources;
    row["claims"] = s.total_claims;
    row["original_claims"] = s.original_claims;
    row["true_assertions"] = s.true_assertions;
    row["false_assertions"] = s.false_assertions;
    row["opinion_assertions"] = s.opinion_assertions;
    row["purity"] = built.clustering.purity;
    rows.push_back(std::move(row));
    ++idx;
  }
  table.print();
  std::printf("\nexpected shape: per-dataset scale within the paper's "
              "order of magnitude; Paris Attack ~6x the others; original "
              "claims a large majority everywhere.\n");

  JsonValue doc = JsonValue::object();
  doc["experiment"] = "table3";
  doc["scale"] = scale;
  doc["rows"] = std::move(rows);
  bench::write_result("table3", doc);
  return 0;
}
