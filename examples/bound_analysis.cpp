// Bound analysis: how far is a practical fact-finder from optimal?
//
// Generates a synthetic scenario with known source behaviour, computes the
// fundamental error bound (exact when tractable, Gibbs otherwise),
// runs the three EM-family estimators, and reports each algorithm's gap
// from the bound — the question the paper's Section III exists to answer.
//
//   ./bound_analysis [--seed N] [--sources N] [--assertions M] [--trees T]
#include <cstdio>

#include "bounds/confidence.h"
#include "bounds/dataset_bound.h"
#include "core/em_ext.h"
#include "estimators/em_ipsn12.h"
#include "estimators/em_social.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simgen/parametric_gen.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("bound_analysis",
          "Fundamental error bound vs practical estimators");
  auto& seed_flag = cli.add_int("seed", 7, "RNG seed");
  auto& n_flag = cli.add_int("sources", 20, "number of sources");
  auto& m_flag = cli.add_int("assertions", 50, "number of assertions");
  auto& tau_flag = cli.add_int("trees", 0,
                               "dependency trees (0 = paper default 8-10)");
  cli.parse(argc, argv);

  auto seed = static_cast<std::uint64_t>(seed_flag);
  auto n = static_cast<std::size_t>(n_flag);
  auto m = static_cast<std::size_t>(m_flag);

  Rng rng(seed);
  SimKnobs knobs = SimKnobs::paper_defaults(n, m);
  if (tau_flag > 0) {
    knobs.tau_lo = knobs.tau_hi =
        std::min(static_cast<std::size_t>(tau_flag), n);
  }
  SimInstance inst = generate_parametric(knobs, rng);

  print_banner("Fundamental error bound");
  WallTimer timer;
  bool exact_ok = n <= kExactBoundMaxSources;
  DatasetBoundResult exact;
  double exact_time = 0.0;
  if (exact_ok) {
    exact = exact_dataset_bound(inst.dataset, inst.true_params);
    exact_time = timer.seconds();
  }
  timer.reset();
  DatasetBoundResult approx =
      gibbs_dataset_bound(inst.dataset, inst.true_params, seed);
  double approx_time = timer.seconds();

  TablePrinter bound_table(
      {"method", "error bound", "false-pos part", "false-neg part",
       "seconds"});
  if (exact_ok) {
    bound_table.add_row({"exact (Eq. 3)",
                         format_double(exact.bound.error, 6),
                         format_double(exact.bound.false_positive, 6),
                         format_double(exact.bound.false_negative, 6),
                         format_double(exact_time, 3)});
  }
  bound_table.add_row({"Gibbs (Alg. 1)",
                       format_double(approx.bound.error, 6),
                       format_double(approx.bound.false_positive, 6),
                       format_double(approx.bound.false_negative, 6),
                       format_double(approx_time, 3)});
  bound_table.print();
  double bound_error =
      exact_ok ? exact.bound.error : approx.bound.error;
  std::printf("no estimator can beat accuracy %.4f on average here\n",
              1.0 - bound_error);

  print_banner("Practical estimators vs the bound");
  TablePrinter est_table(
      {"estimator", "accuracy", "false-pos", "false-neg", "gap to optimal"});
  auto add = [&](const std::string& name, const EstimateResult& est) {
    ClassificationMetrics metrics = classify(inst.dataset, est);
    est_table.add_row(
        {name, format_double(metrics.accuracy(), 4),
         format_double(metrics.false_positive_rate(), 4),
         format_double(metrics.false_negative_rate(), 4),
         format_double((1.0 - bound_error) - metrics.accuracy(), 4)});
  };
  EmExtResult detailed = EmExtEstimator().run_detailed(inst.dataset, seed);
  add("EM-Ext", detailed.estimate);
  add("EM-Social", EmSocialEstimator().run(inst.dataset, seed));
  add("EM", EmIpsn12Estimator().run(inst.dataset, seed));
  est_table.print();

  print_banner("How well are the sources themselves known?");
  auto confidence = estimate_confidence(inst.dataset, detailed.params,
                                        detailed.estimate.belief);
  TablePrinter conf_table({"source", "a (est)", "a 95% CI", "true a",
                           "f (est)", "f 95% CI", "true f"});
  std::size_t shown = std::min<std::size_t>(8, confidence.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& c = confidence[i];
    conf_table.add_row(
        {std::to_string(i), format_double(c.a.estimate, 3),
         strprintf("[%.3f, %.3f]", c.a.lower(), c.a.upper()),
         format_double(inst.true_params.source[i].a, 3),
         format_double(c.f.estimate, 3),
         c.f.n_effective >= 1.0
             ? strprintf("[%.3f, %.3f]", c.f.lower(), c.f.upper())
             : std::string("n/a (no exposure)"),
         format_double(inst.true_params.source[i].f, 3)});
  }
  conf_table.print();
  std::printf("(first %zu of %zu sources; asymptotic intervals per the "
              "SECON'12 confidence-bound analysis)\n",
              shown, confidence.size());
  return 0;
}
