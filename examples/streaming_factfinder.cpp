// Streaming fact-finder: a fixed source population observed over many
// event windows.
//
// The same sources (fixed reliabilities, fixed dependency forest) report
// on a fresh batch of assertions each window — a live deployment's
// steady state. The recursive StreamingEmExt carries decayed sufficient
// statistics across windows, so its source-reliability estimates sharpen
// over time; the comparison column re-runs the offline EM-Ext on each
// window in isolation. Expected: the streaming estimator starts equal
// and pulls ahead as accumulated evidence about sources compounds.
//
//   ./streaming_factfinder [--seed N] [--sources N] [--batch-size M]
//                          [--windows K]
#include <cstdio>

#include "core/em_ext.h"
#include "core/streaming_em.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "math/stats.h"
#include "simgen/parametric_gen.h"
#include "util/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("streaming_factfinder",
          "Recursive EM-Ext over a stream of assertion batches");
  auto& seed_flag = cli.add_int("seed", 77, "RNG seed");
  auto& n_flag = cli.add_int("sources", 50, "source population size");
  auto& m_flag = cli.add_int("batch-size", 10, "assertions per window");
  auto& windows_flag = cli.add_int("windows", 12, "number of windows");
  cli.parse(argc, argv);

  auto seed = static_cast<std::uint64_t>(seed_flag);
  auto n = static_cast<std::size_t>(n_flag);
  auto m = static_cast<std::size_t>(m_flag);
  auto windows = static_cast<std::size_t>(windows_flag);

  // Fix the population: one draw of theta + forest shared by all
  // windows. Reliabilities are spread wide (some sources excellent, some
  // contrarian) so *knowing the sources* is what accuracy hinges on —
  // the regime where carrying statistics across windows pays off.
  Rng rng(seed);
  SimKnobs knobs = SimKnobs::paper_defaults(n, m);
  knobs.p_indep_true = {0.35, 0.95};
  knobs.p_dep_true = {0.3, 0.9};
  SimInstance population = generate_parametric(knobs, rng);
  std::printf("population: %zu sources in %zu dependency trees, "
              "%zu-assertion windows\n\n",
              n, population.tau, m);

  StreamingEmExt streaming(n);
  TablePrinter table(
      {"window", "streaming acc", "isolated acc", "learned z"});
  StreamingStats stream_total;
  StreamingStats isolated_total;
  for (std::size_t w = 0; w < windows; ++w) {
    SimInstance batch = generate_parametric_batch(
        population.true_params, population.forest, m, rng);

    StreamingBatchResult sres = streaming.observe(batch.dataset);
    EstimateResult stream_est;
    stream_est.belief = sres.belief;
    stream_est.log_odds = sres.log_odds;
    stream_est.probabilistic = true;
    double stream_acc = classify(batch.dataset, stream_est).accuracy();

    double isolated_acc =
        classify(batch.dataset, EmExtEstimator().run(batch.dataset, seed))
            .accuracy();
    stream_total.add(stream_acc);
    isolated_total.add(isolated_acc);
    table.add_row({std::to_string(w + 1), format_double(stream_acc, 3),
                   format_double(isolated_acc, 3),
                   format_double(streaming.params().z, 3)});
  }
  table.print();
  std::printf("\nmean accuracy: streaming %.3f vs isolated %.3f\n",
              stream_total.mean(), isolated_total.mean());
  std::printf("the streaming estimator compounds source evidence across "
              "windows instead of relearning it.\n");
  return 0;
}
