// Quickstart: the paper's Figure-1 scenario plus a first fact-finding run.
//
// Part 1 reconstructs the John/Sally/Heather example from Section II-A and
// shows how claims and dependency indicators are derived from the follow
// graph and timestamps.
// Part 2 generates a synthetic instance with known ground truth, runs the
// dependency-aware EM-Ext estimator, and compares its verdicts with the
// truth.
//
//   ./quickstart [--seed N] [--sources N] [--assertions M]
#include <algorithm>
#include <cstdio>

#include "core/em_ext.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simgen/parametric_gen.h"
#include "util/cli.h"
#include "util/string_util.h"

namespace {

void figure1_walkthrough() {
  using namespace ss;
  print_banner("Part 1: Figure 1 walkthrough (John, Sally, Heather)");

  // Sources: 0 = John, 1 = Sally, 2 = Heather. John follows Sally.
  Digraph follows(3);
  follows.add_edge(0, 1);

  // Assertions: 0 = "Main Street congested", 1 = "University Ave
  // congested". Sally tweets assertion 0 at t1, Heather tweets assertion
  // 1 at t1; John repeats both later (t2, t3).
  std::vector<Claim> claims = {
      {1, 0, 1.0},  // Sally,   Main St,       t1
      {2, 1, 1.0},  // Heather, University Av, t1
      {0, 0, 2.0},  // John,    Main St,       t2
      {0, 1, 3.0},  // John,    University Av, t3
  };
  SourceClaimMatrix sc(3, 2, claims);
  auto dep = DependencyIndicators::from_graph(sc, follows);

  const char* names[] = {"John", "Sally", "Heather"};
  const char* assertions[] = {"Main St congested", "University Ave congested"};
  TablePrinter table({"source", "assertion", "SC", "D"});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      table.add_row({names[i], assertions[j],
                     sc.has_claim(i, j) ? "1" : "0",
                     dep.dependent(i, j) ? "1" : "0"});
    }
  }
  table.print();
  std::printf(
      "John's Main-St claim is dependent (D=1): Sally, whom he follows,\n"
      "asserted it first. His University-Ave claim is independent: he\n"
      "does not follow Heather.\n");
}

void first_factfinding_run(std::uint64_t seed, std::size_t n,
                           std::size_t m) {
  using namespace ss;
  print_banner("Part 2: dependency-aware fact-finding on synthetic data");

  Rng rng(seed);
  SimKnobs knobs = SimKnobs::paper_defaults(n, m);
  SimInstance inst = generate_parametric(knobs, rng);

  EmExtEstimator em_ext;
  EmExtResult result = inst.dataset.claims.claim_count() == 0
                           ? EmExtResult{}
                           : em_ext.run_detailed(inst.dataset, seed);

  ClassificationMetrics metrics = classify(inst.dataset, result.estimate);
  std::printf("instance: %zu sources, %zu assertions, %zu claims "
              "(%zu dependent cells)\n",
              inst.dataset.source_count(), inst.dataset.assertion_count(),
              inst.dataset.claims.claim_count(),
              inst.dataset.dependency.exposed_cell_count());
  std::printf("EM-Ext converged after %zu iterations "
              "(log-likelihood %.3f)\n",
              result.estimate.iterations, result.log_likelihood);
  std::printf("accuracy %.3f | false positives %.3f | false negatives "
              "%.3f\n",
              metrics.accuracy(), metrics.false_positive_rate(),
              metrics.false_negative_rate());

  TablePrinter table({"assertion", "posterior P(true)", "truth", "verdict"});
  std::size_t shown = std::min<std::size_t>(10, m);
  for (std::size_t j = 0; j < shown; ++j) {
    double p = result.estimate.belief[j];
    table.add_row({std::to_string(j), format_double(p, 3),
                   label_name(inst.dataset.truth[j]),
                   p > 0.5 ? "True" : "False"});
  }
  table.print();
  std::printf("(first %zu of %zu assertions shown)\n", shown, m);
}

}  // namespace

int main(int argc, char** argv) {
  ss::Cli cli("quickstart", "Figure-1 walkthrough and a first EM-Ext run");
  auto& seed = cli.add_int("seed", 42, "RNG seed");
  auto& sources = cli.add_int("sources", 50, "sources in part 2");
  auto& assertions = cli.add_int("assertions", 50, "assertions in part 2");
  cli.parse(argc, argv);

  figure1_walkthrough();
  first_factfinding_run(static_cast<std::uint64_t>(seed),
                        static_cast<std::size_t>(sources),
                        static_cast<std::size_t>(assertions));
  return 0;
}
