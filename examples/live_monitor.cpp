// Live monitor: Apollo in incremental mode during a breaking event.
//
// Feeds a simulated tweet stream in arrival order, refreshing the
// fact-finder every few hours of event time. Each refresh costs only
// the new window (incremental clustering + streaming EM with persistent
// source statistics), and the monitor prints the current most credible
// assertions — what an operations dashboard would show while the event
// unfolds.
//
//   ./live_monitor [--seed N] [--scenario NAME] [--scale F]
//                  [--refresh-hours H]
#include <cstdio>

#include "apollo/live.h"
#include "eval/table.h"
#include "twitter/builder.h"
#include "util/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("live_monitor", "Incremental Apollo over a live tweet stream");
  auto& seed_flag = cli.add_int("seed", 99, "RNG seed");
  auto& scenario_name = cli.add_string("scenario", "Kirkuk",
                                       "event scenario name");
  auto& scale = cli.add_double("scale", 0.2, "scenario scale factor");
  auto& refresh_hours =
      cli.add_double("refresh-hours", 120.0, "event-time between refreshes");
  cli.parse(argc, argv);

  TwitterScenario scenario = scenario_by_name(scenario_name).scaled(scale);
  TwitterSimulation sim =
      simulate_twitter(scenario, static_cast<std::uint64_t>(seed_flag));
  std::printf("monitoring \"%s\": %zu tweets over %.0f hours\n\n",
              scenario.name.c_str(), sim.tweets.size(),
              scenario.duration_hours);

  LiveApollo live(sim.follows);
  // Cluster id -> majority hidden label, maintained for display only.
  std::unordered_map<std::uint32_t, Label> label_of_cluster;

  double next_refresh = refresh_hours;
  std::size_t window_tweets = 0;
  TablePrinter table({"event time", "tweets", "clusters",
                      "top credible (grade)", "belief"});
  auto do_refresh = [&](double now) {
    LiveRefreshResult r = live.refresh();
    if (r.clusters.empty()) return;
    auto top = live.top(1);
    std::string top_desc = "-";
    std::string top_belief = "-";
    if (!top.empty()) {
      Label grade = label_of_cluster.count(top[0].first)
                        ? label_of_cluster[top[0].first]
                        : Label::kUnknown;
      top_desc = strprintf("assertion %u (%s)", top[0].first,
                           label_name(grade));
      top_belief =
          format_double(live.beliefs().at(top[0].first), 4);
    }
    table.add_row({strprintf("%.0fh", now), std::to_string(window_tweets),
                   std::to_string(live.clusters_seen()), top_desc,
                   top_belief});
    window_tweets = 0;
  };

  for (const Tweet& t : sim.tweets) {
    while (t.time >= next_refresh) {
      do_refresh(next_refresh);
      next_refresh += refresh_hours;
    }
    std::uint32_t cluster = live.ingest(t);
    label_of_cluster.emplace(cluster, t.hidden_label);
    ++window_tweets;
  }
  do_refresh(scenario.duration_hours);
  table.print();

  std::printf("\n%zu refreshes, %zu clusters; final top-5 by belief:\n",
              live.refreshes(), live.clusters_seen());
  for (const auto& [cluster, log_odds] : live.top(5)) {
    Label grade = label_of_cluster.count(cluster)
                      ? label_of_cluster[cluster]
                      : Label::kUnknown;
    std::printf("  assertion %u: belief %.4f (log-odds %+.2f, grade %s)\n",
                cluster, live.beliefs().at(cluster), log_odds,
                label_name(grade));
  }
  return 0;
}
