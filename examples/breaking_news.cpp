// Breaking news: the full Apollo pipeline on a simulated Twitter event.
//
// Simulates a Paris-Attack-style breaking event (follower graph, original
// tweets, rumour cascades), ingests the raw stream (clustering tweets
// into assertions, deriving dependency indicators from follow edges and
// timestamps), runs all seven fact-finders, and prints each one's top
// credible assertions plus the Fig.-11-style grading comparison.
//
//   ./breaking_news [--seed N] [--scenario NAME] [--scale F] [--top K]
#include <cstdio>

#include "apollo/grading.h"
#include "apollo/pipeline.h"
#include "estimators/registry.h"
#include "eval/table.h"
#include "util/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("breaking_news", "Apollo pipeline on a simulated Twitter event");
  auto& seed_flag = cli.add_int("seed", 2015, "RNG seed");
  auto& scenario_name =
      cli.add_string("scenario", "Paris Attack",
                     "Ukraine|Kirkuk|Superbug|LA Marathon|Paris Attack");
  auto& scale = cli.add_double("scale", 0.2, "scenario scale factor");
  auto& top_flag = cli.add_int("top", 100, "top-k for grading");
  cli.parse(argc, argv);

  auto seed = static_cast<std::uint64_t>(seed_flag);
  TwitterScenario scenario =
      scenario_by_name(scenario_name).scaled(scale);

  print_banner("Simulating \"" + scenario.name + "\"");
  TwitterSimulation sim = simulate_twitter(scenario, seed);
  std::size_t retweets = 0;
  for (const Tweet& t : sim.tweets) retweets += t.is_retweet() ? 1 : 0;
  std::printf("%zu tweets (%zu retweets) from %zu users\n",
              sim.tweets.size(), retweets, scenario.users);

  print_banner("Ingesting (clustering + dependency extraction)");
  BuiltDataset built = build_dataset(sim);
  DatasetSummary summary = built.dataset.summary();
  std::printf("%zu assertions | %zu sources | %zu claims "
              "(%zu original) | clustering purity %.3f\n",
              summary.assertions, summary.sources, summary.total_claims,
              summary.original_claims, built.clustering.purity);

  print_banner("EM-Ext: top credible assertions");
  ApolloPipeline pipeline("EM-Ext");
  PipelineReport report = pipeline.analyze(built.dataset, seed);
  TablePrinter top_table({"rank", "belief", "support", "ground truth"});
  std::size_t show = std::min<std::size_t>(10, report.ranked.size());
  for (std::size_t r = 0; r < show; ++r) {
    const RankedAssertion& ra = report.ranked[r];
    top_table.add_row({std::to_string(r + 1), format_double(ra.belief, 4),
                       std::to_string(ra.support), label_name(ra.truth)});
  }
  top_table.print();

  print_banner("All fact-finders, graded on their top-" +
               std::to_string(top_flag));
  EmpiricalStudyResult study = run_empirical_protocol(
      built.dataset, estimator_names(),
      static_cast<std::size_t>(top_flag), seed);
  TablePrinter grade_table(
      {"algorithm", "accuracy", "#true", "#false", "#opinion"});
  for (const auto& [name, breakdown] : study.per_algorithm) {
    grade_table.add_row({name, format_double(breakdown.accuracy(), 4),
                         std::to_string(breakdown.graded_true),
                         std::to_string(breakdown.graded_false),
                         std::to_string(breakdown.graded_opinion)});
  }
  grade_table.print();
  std::printf("(graded pool: %zu unique assertions)\n", study.pool_size);
  return 0;
}
