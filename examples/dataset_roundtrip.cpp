// Dataset persistence: generate, save, reload, re-analyze.
//
// Demonstrates the CSV dataset format (claims / exposure / truth) that
// lets collected or generated datasets be versioned and shared, and
// verifies a reloaded dataset produces identical fact-finding output.
//
//   ./dataset_roundtrip [--seed N] [--dir PATH]
#include <cmath>
#include <cstdio>

#include "core/em_ext.h"
#include "data/io.h"
#include "simgen/procedural_gen.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("dataset_roundtrip", "Save/load a dataset and verify identity");
  auto& seed_flag = cli.add_int("seed", 11, "RNG seed");
  auto& dir = cli.add_string("dir", "/tmp/ss_dataset_roundtrip",
                             "output directory");
  cli.parse(argc, argv);
  auto seed = static_cast<std::uint64_t>(seed_flag);

  Rng rng(seed);
  SimKnobs knobs = SimKnobs::paper_defaults(30, 40);
  SimInstance inst = generate_procedural(knobs, rng);
  inst.dataset.name = "roundtrip-demo";

  save_dataset(inst.dataset, dir);
  std::printf("saved dataset '%s' to %s\n", inst.dataset.name.c_str(),
              dir.c_str());

  Dataset reloaded = load_dataset(dir);
  DatasetSummary before = inst.dataset.summary();
  DatasetSummary after = reloaded.summary();
  std::printf("claims %zu -> %zu | original %zu -> %zu | assertions "
              "%zu -> %zu\n",
              before.total_claims, after.total_claims,
              before.original_claims, after.original_claims,
              before.assertions, after.assertions);

  EmExtEstimator em;
  auto original = em.run(inst.dataset, seed);
  auto roundtripped = em.run(reloaded, seed);
  double max_diff = 0.0;
  for (std::size_t j = 0; j < original.belief.size(); ++j) {
    max_diff = std::max(
        max_diff, std::fabs(original.belief[j] - roundtripped.belief[j]));
  }
  std::printf("max posterior difference after roundtrip: %.2e (%s)\n",
              max_diff, max_diff < 1e-12 ? "identical" : "DIFFERS");
  return max_diff < 1e-12 ? 0 : 1;
}
