// apollo_cli: the full fact-finding tool as a command-line utility.
//
// Modes:
//   --mode simulate   simulate an event, write the raw stream + per-
//                     tweet grading labels under --dir, then ingest and
//                     analyze it from those files (proving the external
//                     path end to end);
//   --mode analyze    ingest an existing tweets.jsonl (optionally with
//                     tweet_labels.csv for grading) and rank assertions.
//
// Ingestion never touches simulator internals: retweet parents are
// detected from "RT @name: body" texts, the dependency network is
// inferred from retweet behaviour, and tweets are clustered into
// assertions by token similarity — the same path crawled data takes.
//
//   ./apollo_cli --mode simulate --scenario Kirkuk --scale 0.2
//   ./apollo_cli --mode analyze --dir /tmp/apollo_event --top 20
#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "apollo/grading.h"
#include "apollo/pipeline.h"
#include "apollo/report.h"
#include "core/em_ext.h"
#include "estimators/registry.h"
#include "eval/table.h"
#include "twitter/builder.h"
#include "twitter/retweet_detect.h"
#include "twitter/tweet_io.h"
#include "util/cli.h"
#include "util/string_util.h"

namespace {

using namespace ss;

// Grades clusters by majority vote over their member tweets' labels —
// the per-tweet shape human grading takes in the paper's protocol.
std::vector<Label> grade_clusters(
    const std::vector<Tweet>& sorted_tweets,
    const ClusteringResult& clustering,
    const std::unordered_map<std::uint32_t, Label>& tweet_labels) {
  std::vector<std::array<std::size_t, 4>> votes(
      clustering.cluster_count, std::array<std::size_t, 4>{});
  for (std::size_t t = 0; t < sorted_tweets.size(); ++t) {
    auto it = tweet_labels.find(sorted_tweets[t].id);
    if (it == tweet_labels.end()) continue;
    ++votes[clustering.cluster_of[t]][static_cast<std::size_t>(
        it->second)];
  }
  std::vector<Label> labels(clustering.cluster_count, Label::kUnknown);
  for (std::size_t c = 0; c < votes.size(); ++c) {
    std::size_t best = 0;
    for (std::size_t l = 0; l < 4; ++l) {
      if (votes[c][l] > best) {
        best = votes[c][l];
        labels[c] = static_cast<Label>(l);
      }
    }
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ss;
  Cli cli("apollo_cli", "Fact-finding pipeline over raw tweet streams");
  auto& mode = cli.add_string("mode", "simulate", "simulate | analyze");
  auto& dir = cli.add_string("dir", "/tmp/apollo_event",
                             "event directory (tweets.jsonl, ...)");
  auto& scenario_name =
      cli.add_string("scenario", "Kirkuk", "scenario for --mode simulate");
  auto& scale = cli.add_double("scale", 0.2, "scenario scale factor");
  auto& seed_flag = cli.add_int("seed", 2015, "RNG seed");
  auto& algo = cli.add_string("estimator", "EM-Ext",
                              "estimator for the ranked report");
  auto& top_flag = cli.add_int("top", 15, "assertions to print");
  auto& grade_flag = cli.add_int("grade-top", 100,
                                 "top-k for the grading comparison");
  auto& report_flag =
      cli.add_flag("report", "also write <dir>/report.md");
  cli.parse(argc, argv);

  std::string tweets_path = dir + "/tweets.jsonl";
  std::string labels_path = dir + "/tweet_labels.csv";

  if (mode == "simulate") {
    TwitterScenario scenario =
        scenario_by_name(scenario_name).scaled(scale);
    TwitterSimulation sim = simulate_twitter(
        scenario, static_cast<std::uint64_t>(seed_flag));
    std::filesystem::create_directories(dir);
    save_tweets(sim.tweets, tweets_path);
    save_tweet_labels(sim.tweets, labels_path);
    std::printf("wrote %zu tweets to %s (+ grading labels)\n",
                sim.tweets.size(), tweets_path.c_str());
  } else if (mode != "analyze") {
    std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
    return 2;
  }

  // Ingest from files only.
  std::vector<Tweet> tweets = load_tweets(tweets_path);
  std::printf("\ningesting %zu tweets from %s\n", tweets.size(),
              tweets_path.c_str());
  BuiltDataset built = build_dataset_from_stream(tweets);

  // Re-derive the sorted order build_dataset_from_stream used, to align
  // per-tweet labels with cluster indices.
  std::sort(tweets.begin(), tweets.end(),
            [](const Tweet& a, const Tweet& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.id < b.id;
            });
  bool graded = std::filesystem::exists(labels_path);
  if (graded) {
    built.dataset.truth = grade_clusters(tweets, built.clustering,
                                         load_tweet_labels(labels_path));
  }

  DatasetSummary summary = built.dataset.summary();
  std::printf("assertions %zu | sources %zu | claims %zu (%zu original)\n",
              summary.assertions, summary.sources, summary.total_claims,
              summary.original_claims);

  print_banner(algo + ": most credible assertions");
  ApolloPipeline pipeline(algo);
  PipelineReport report =
      pipeline.analyze(built.dataset, static_cast<std::uint64_t>(seed_flag));
  TablePrinter table(graded
                         ? std::vector<std::string>{"rank", "belief",
                                                    "support", "grade"}
                         : std::vector<std::string>{"rank", "belief",
                                                    "support"});
  for (std::size_t r = 0;
       r < std::min<std::size_t>(top_flag, report.ranked.size()); ++r) {
    const RankedAssertion& ra = report.ranked[r];
    std::vector<std::string> row = {std::to_string(r + 1),
                                    format_double(ra.belief, 4),
                                    std::to_string(ra.support)};
    if (graded) row.push_back(label_name(ra.truth));
    table.add_row(row);
  }
  table.print();

  if (report_flag) {
    EmExtResult em_detail =
        EmExtEstimator().run_detailed(built.dataset,
                                      static_cast<std::uint64_t>(seed_flag));
    std::string md = render_markdown_report(built.dataset, report,
                                            em_detail);
    std::string report_path = dir + "/report.md";
    std::ofstream out(report_path);
    out << md;
    std::printf("\nwrote %s (%zu bytes)\n", report_path.c_str(),
                md.size());
  }

  if (graded) {
    print_banner("grading: all algorithms, top-" +
                 std::to_string(grade_flag));
    EmpiricalStudyResult study = run_empirical_protocol(
        built.dataset, estimator_names(),
        static_cast<std::size_t>(grade_flag),
        static_cast<std::uint64_t>(seed_flag));
    TablePrinter grades({"algorithm", "accuracy", "#true", "#false",
                         "#opinion"});
    for (const auto& [name, b] : study.per_algorithm) {
      grades.add_row({name, format_double(b.accuracy(), 3),
                      std::to_string(b.graded_true),
                      std::to_string(b.graded_false),
                      std::to_string(b.graded_opinion)});
    }
    grades.print();
  }
  return 0;
}
