// Aligned plain-text table printer. Every bench binary prints its
// figure/table as one of these so the output is directly comparable with
// the paper's rows and trivially machine-parsable (pipe-separated).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ss {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with `precision` decimals.
  void add_row(const std::vector<double>& cells, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with a header underline and column alignment.
  std::string to_string() const;
  // Writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used by benches: "== Figure 7: ... ==".
void print_banner(const std::string& title);

}  // namespace ss
