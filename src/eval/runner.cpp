#include "eval/runner.h"

#include <mutex>
#include <vector>

#include "util/env.h"
#include "util/thread_pool.h"

namespace ss {

MetricSummary run_repetitions(
    std::size_t reps, std::uint64_t seed,
    const std::function<MetricRow(std::size_t, Rng&)>& body,
    std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  Rng master(seed, /*stream=*/0xe);

  std::vector<MetricRow> rows(reps);
  {
    ThreadPool pool(threads);
    pool.parallel_for(reps, [&](std::size_t rep) {
      Rng rep_rng = master.split(rep);
      rows[rep] = body(rep, rep_rng);
    });
  }
  // Deterministic merge order regardless of completion order.
  MetricSummary summary;
  for (const MetricRow& row : rows) {
    for (const auto& [name, value] : row) {
      summary[name].add(value);
    }
  }
  return summary;
}

std::size_t bench_repetitions(std::size_t paper_default,
                              std::size_t fast_default) {
  long long reps = env_int("SS_REPS", 0);
  if (reps > 0) return static_cast<std::size_t>(reps);
  if (env_flag("SS_FAST")) return fast_default;
  return paper_default;
}

}  // namespace ss
