#include "eval/table.h"

#include <algorithm>
#include <stdexcept>

#include "util/log.h"
#include "util/string_util.h"

namespace ss {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::vector<double>& cells,
                           int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v, precision));
  add_row(std::move(formatted));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = out.size() - 1;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

// Tables and banners are the product on stdout (bench output is parsed
// downstream); they go through the sanctioned raw sink, not the leveled
// diagnostic log, so the byte format is unchanged.
void TablePrinter::print() const { write_stdout(to_string()); }

void print_banner(const std::string& title) {
  write_stdout(strprintf("\n== %s ==\n", title.c_str()));
}

}  // namespace ss
