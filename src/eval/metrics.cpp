#include "eval/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace ss {

double ClassificationMetrics::accuracy() const {
  if (evaluated == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(evaluated);
}

double ClassificationMetrics::false_positive_rate() const {
  if (evaluated == 0) return 0.0;
  return static_cast<double>(false_positives) /
         static_cast<double>(evaluated);
}

double ClassificationMetrics::false_negative_rate() const {
  if (evaluated == 0) return 0.0;
  return static_cast<double>(false_negatives) /
         static_cast<double>(evaluated);
}

ClassificationMetrics classify(const Dataset& dataset,
                               const EstimateResult& estimate,
                               double threshold) {
  if (estimate.belief.size() != dataset.assertion_count()) {
    throw std::invalid_argument("classify: belief/assertion size mismatch");
  }
  if (dataset.truth.size() != dataset.assertion_count()) {
    throw std::invalid_argument("classify: dataset lacks ground truth");
  }
  ClassificationMetrics m;
  for (std::size_t j = 0; j < dataset.assertion_count(); ++j) {
    Label label = dataset.truth[j];
    if (label == Label::kUnknown) continue;
    bool actual_true = label == Label::kTrue;
    bool predicted_true = estimate.belief[j] > threshold;
    ++m.evaluated;
    if (predicted_true && actual_true) ++m.true_positives;
    else if (predicted_true && !actual_true) ++m.false_positives;
    else if (!predicted_true && !actual_true) ++m.true_negatives;
    else ++m.false_negatives;
  }
  return m;
}

double top_k_true_fraction(const Dataset& dataset,
                           const EstimateResult& estimate, std::size_t k) {
  if (estimate.belief.size() != dataset.assertion_count()) {
    throw std::invalid_argument(
        "top_k_true_fraction: belief/assertion size mismatch");
  }
  if (dataset.truth.size() != dataset.assertion_count()) {
    throw std::invalid_argument(
        "top_k_true_fraction: dataset lacks ground truth");
  }
  auto order = estimate.ranking();
  k = std::min(k, order.size());
  if (k == 0) return 0.0;
  std::size_t true_hits = 0;
  for (std::size_t r = 0; r < k; ++r) {
    if (dataset.truth[order[r]] == Label::kTrue) ++true_hits;
  }
  return static_cast<double>(true_hits) / static_cast<double>(k);
}

}  // namespace ss
