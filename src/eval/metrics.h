// Evaluation metrics matching the paper's two protocols:
//  * simulation (Figs. 7-10): threshold beliefs at 0.5, report accuracy
//    and the false-positive / false-negative *portions* of all assertions
//    ("the portion ... caused by regarding false assertions as true and
//    true assertions as false");
//  * empirical (Fig. 11): rank assertions by belief, take the top k, and
//    report #True / (#True + #False + #Opinion) within them.
#pragma once

#include <cstddef>

#include "core/estimator.h"
#include "data/dataset.h"

namespace ss {

struct ClassificationMetrics {
  std::size_t evaluated = 0;  // assertions with a usable ground truth
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;  // false assertion judged true
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;  // true assertion judged false

  // All three are fractions of `evaluated`, so
  // accuracy + false_positive_rate + false_negative_rate == 1.
  double accuracy() const;
  double false_positive_rate() const;
  double false_negative_rate() const;
};

// Compares thresholded beliefs against dataset.truth. Opinion labels count
// as not-true (an "Opinion" is not a verified fact); Unknown labels are
// excluded from the tally.
ClassificationMetrics classify(const Dataset& dataset,
                               const EstimateResult& estimate,
                               double threshold = 0.5);

// Fraction of the top-k ranked assertions whose label is True (Opinion
// and False both count against, Unknown too — mirroring the grading rule
// where only confirmed-true tweets score). k is capped at the assertion
// count.
double top_k_true_fraction(const Dataset& dataset,
                           const EstimateResult& estimate, std::size_t k);

}  // namespace ss
