#include "eval/json.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ss {

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, JsonValue());
  return members_.back().second;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) {
    throw std::logic_error("JsonValue: not an array");
  }
  elements_.push_back(std::move(v));
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        out += strprintf("%.12g", number_);
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : elements_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!elements_.empty()) newline(depth);
      out += ']';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::write_file(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonValue: cannot write " + path);
  f << dump(indent) << '\n';
}

}  // namespace ss
