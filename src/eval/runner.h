// Parallel experiment runner.
//
// The paper averages 20 (bound) or 300 (estimator) independent
// repetitions per plotted point. Each repetition gets its own derived RNG
// stream so results are reproducible regardless of thread count or
// scheduling, and metric values stream into named StreamingStats
// accumulators merged deterministically after the parallel section.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "math/stats.h"
#include "util/rng.h"

namespace ss {

// One repetition's named metric values.
using MetricRow = std::map<std::string, double>;

// Aggregated metrics after all repetitions.
using MetricSummary = std::map<std::string, StreamingStats>;

// Runs `reps` repetitions of `body` (given the repetition index and a
// repetition-specific Rng) across `threads` workers (0 = default count).
// Exceptions from repetitions propagate after all workers finish.
MetricSummary run_repetitions(
    std::size_t reps, std::uint64_t seed,
    const std::function<MetricRow(std::size_t, Rng&)>& body,
    std::size_t threads = 0);

// Number of repetitions a bench should run: the SS_REPS env override,
// else `paper_default` scaled down by SS_FAST=1 to `fast_default`.
std::size_t bench_repetitions(std::size_t paper_default,
                              std::size_t fast_default);

}  // namespace ss
