// Minimal JSON document builder for persisting bench results
// (EXPERIMENTS.md is generated from these machine-readable records).
// Build trees of JsonValue and dump(); no parsing — results are written,
// never read back by the library.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ss {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}     // NOLINT
  JsonValue(long long i)                                        // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::size_t u)                                      // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {} // NOLINT
  JsonValue(std::string s)                                      // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue object();
  static JsonValue array();

  // Object access; converts a null value into an object on first use.
  JsonValue& operator[](const std::string& key);
  // Array append; converts a null value into an array on first use.
  void push_back(JsonValue v);

  bool is_null() const { return kind_ == Kind::kNull; }

  // Serializes with keys in insertion order and `indent` spaces per
  // level (0 = compact).
  std::string dump(int indent = 2) const;

  // Writes dump() to `path`; throws std::runtime_error on IO failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

}  // namespace ss
