// Minimal thread-safe leveled logging.
//
// The level is read once from the SS_LOG environment variable
// (error|warn|info|debug; default info). Messages are written to stderr so
// bench/table output on stdout stays machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace ss {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Internal: emits one formatted line (timestamp, level tag, message).
void log_emit(LogLevel level, const std::string& message);

// Product-output sinks: exactly the bytes given, no timestamp or level
// decoration. Bench tables and CLI usage text go to the user through
// these instead of touching stdio directly (lint rule R3 keeps
// stdout/stderr writes out of library code), so this file stays the one
// place that owns the process's output streams. write_stdout is for
// output that IS the product (tables, reports); write_stderr for
// user-facing prose that must not pollute machine-parsed stdout (usage
// errors).
void write_stdout(const std::string& text);
void write_stderr(const std::string& text);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ss

#define SS_LOG(level)                                  \
  if (::ss::LogLevel::level <= ::ss::log_level())      \
  ::ss::detail::LogLine(::ss::LogLevel::level)

#define SS_ERROR SS_LOG(kError)
#define SS_WARN SS_LOG(kWarn)
#define SS_INFO SS_LOG(kInfo)
#define SS_DEBUG SS_LOG(kDebug)
