// Clang thread-safety annotations, plus the annotated mutex types the
// analysis needs to see.
//
// Clang's -Wthread-safety verifies lock discipline at compile time: a
// field marked SS_GUARDED_BY(mu) may only be touched while `mu` is held,
// a function marked SS_REQUIRES(mu) may only be called with `mu` held,
// and violations are hard errors under -DSS_THREAD_SAFETY=ON (see the
// top-level CMakeLists). On GCC — and on clang builds that don't enable
// the warning — every macro expands to nothing and ss::Mutex/MutexLock
// compile down to the std types they wrap, so annotated code costs
// nothing anywhere.
//
// Why a Mutex wrapper at all: the analysis only tracks capabilities
// whose type carries the `capability` attribute. libstdc++'s std::mutex
// does not, so std::lock_guard<std::mutex> is invisible to the checker.
// ss::Mutex is a zero-overhead std::mutex with the attribute, and
// ss::MutexLock is the annotated scoped lock (holding a
// std::unique_lock so condition-variable waits still work — see
// native()).
//
// Condition-variable waits: std::condition_variable::wait(lock) is not
// annotated, which is exactly right — it returns with the lock held
// again, so the capability state on either side of the call is "held".
// Write wait loops manually (`while (!pred()) cv.wait(lock.native());`)
// rather than with a predicate lambda: the analysis checks a lambda
// body as its own function and cannot see that the wait holds the lock
// while evaluating the predicate.
#pragma once

#include <mutex>

#if defined(__clang__)
#define SS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SS_THREAD_ANNOTATION_(x)
#endif

// Type attribute: this class is a capability (lockable).
#define SS_CAPABILITY(x) SS_THREAD_ANNOTATION_(capability(x))
// Type attribute: RAII object that holds a capability for its lifetime.
#define SS_SCOPED_CAPABILITY SS_THREAD_ANNOTATION_(scoped_lockable)
// Field attribute: reads/writes require holding the given capability.
#define SS_GUARDED_BY(x) SS_THREAD_ANNOTATION_(guarded_by(x))
// Field attribute: the *pointee* is guarded, the pointer itself is not.
#define SS_PT_GUARDED_BY(x) SS_THREAD_ANNOTATION_(pt_guarded_by(x))
// Function attribute: caller must hold the capabilities on entry.
#define SS_REQUIRES(...) \
  SS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
// Function attributes: the function acquires/releases the capabilities.
#define SS_ACQUIRE(...) \
  SS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SS_RELEASE(...) \
  SS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SS_TRY_ACQUIRE(...) \
  SS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// Function attribute: caller must NOT hold the capabilities (deadlock
// guard for functions that take the lock themselves).
#define SS_EXCLUDES(...) SS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Escape hatch; every use needs a comment saying why.
#define SS_NO_THREAD_SAFETY_ANALYSIS \
  SS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ss {

// std::mutex with the capability attribute, so SS_GUARDED_BY(mu_) and
// friends can reference it. Same size, same cost.
class SS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SS_ACQUIRE() { mu_.lock(); }
  void unlock() SS_RELEASE() { mu_.unlock(); }
  bool try_lock() SS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For APIs that need the raw std::mutex (condition variables).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Annotated scoped lock (the std::lock_guard replacement the analysis
// can follow). Backed by std::unique_lock so a condition variable can
// wait on it via native(); the wait re-acquires before returning, which
// keeps the "held for the whole scope" annotation truthful.
class SS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SS_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() SS_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ss
