#include "util/status.h"

#include "util/string_util.h"

namespace ss {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kBadRow: return "bad-row";
    case ErrorCode::kBadNumber: return "bad-number";
    case ErrorCode::kBadLabel: return "bad-label";
    case ErrorCode::kMissingField: return "missing-field";
    case ErrorCode::kIndexOutOfRange: return "index-out-of-range";
    case ErrorCode::kNonFinite: return "non-finite";
    case ErrorCode::kCheckpointCorrupt: return "checkpoint-corrupt";
    case ErrorCode::kFaultInjected: return "fault-injected";
  }
  return "unknown";
}

const char* ingest_mode_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kStrict: return "strict";
    case IngestMode::kPermissive: return "permissive";
    case IngestMode::kRepair: return "repair";
  }
  return "unknown";
}

std::string RecordError::to_string() const {
  return strprintf("%s:%zu: %s: %s", file.c_str(), line,
                   error_code_name(code), detail.c_str());
}

void IngestReport::note(ErrorCode code, const std::string& file,
                        std::size_t line, std::string detail,
                        std::size_t cap) {
  ++code_counts[static_cast<std::size_t>(code)];
  if (errors.size() < cap) {
    errors.push_back({code, file, line, std::move(detail)});
  }
}

std::string IngestReport::summary() const {
  std::string out = strprintf(
      "%zu rows: %zu ok, %zu repaired, %zu skipped", rows_total, rows_ok,
      rows_repaired, rows_skipped);
  std::string codes;
  for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
    if (code_counts[c] == 0) continue;
    if (!codes.empty()) codes += ' ';
    codes += strprintf("%s:%zu",
                       error_code_name(static_cast<ErrorCode>(c)),
                       code_counts[c]);
  }
  if (!codes.empty()) out += " (" + codes + ")";
  return out;
}

}  // namespace ss
