#include "util/fault_inject.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "util/annotations.h"
#include "util/env.h"
#include "util/rng.h"

namespace ss {
namespace fault {
namespace {

// Split keys, one per site, so sites draw independent streams.
constexpr std::uint64_t kSitePosterior = 0xFA01;
constexpr std::uint64_t kSiteTaskDrop = 0xFA02;

struct Injector {
  FaultConfig config;
  Rng posterior_rng{1};
  Rng task_rng{1};
  std::uint64_t injected = 0;
  std::uint64_t committed = 0;
};

Mutex g_mu;
Injector g_injector SS_GUARDED_BY(g_mu);
std::atomic<bool> g_armed{false};
std::once_flag g_env_once;

void arm_locked(const FaultConfig& config) SS_REQUIRES(g_mu) {
  g_injector.config = config;
  Rng base(config.seed, /*stream=*/0xFA0175);
  g_injector.posterior_rng = base.split(kSitePosterior);
  g_injector.task_rng = base.split(kSiteTaskDrop);
  g_injector.injected = 0;
  g_injector.committed = 0;
  g_armed.store(config.seed != 0, std::memory_order_release);
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    std::uint64_t seed =
        static_cast<std::uint64_t>(env_int("SS_FAULT_SEED", 0));
    if (seed == 0) return;
    FaultConfig config;
    config.seed = seed;
    config.posterior_nan_rate = env_double("SS_FAULT_NAN_RATE", 0.02);
    config.task_drop_rate = env_double("SS_FAULT_DROP_RATE", 0.0);
    config.kill_after_units = env_int("SS_FAULT_KILL_AFTER", -1);
    MutexLock lock(g_mu);
    arm_locked(config);
  });
}

// True when the injection budget allows one more fault; consumes it.
bool take_injection_budget() SS_REQUIRES(g_mu) {
  if (g_injector.config.max_injections >= 0 &&
      g_injector.injected >=
          static_cast<std::uint64_t>(g_injector.config.max_injections)) {
    return false;
  }
  ++g_injector.injected;
  return true;
}

}  // namespace

bool armed() {
  init_from_env();
  return g_armed.load(std::memory_order_acquire);
}

void arm(const FaultConfig& config) {
  MutexLock lock(g_mu);
  arm_locked(config);
}

void disarm() {
  MutexLock lock(g_mu);
  g_injector.config = FaultConfig{};
  g_armed.store(false, std::memory_order_release);
}

std::uint64_t injected_count() {
  MutexLock lock(g_mu);
  return g_injector.injected;
}

std::uint64_t committed_units() {
  MutexLock lock(g_mu);
  return g_injector.committed;
}

void maybe_corrupt_posterior(std::vector<double>& posterior) {
  if (!armed() || posterior.empty()) return;
  MutexLock lock(g_mu);
  double rate = g_injector.config.posterior_nan_rate;
  if (rate <= 0.0 || !g_injector.posterior_rng.bernoulli(rate)) return;
  if (!take_injection_budget()) return;
  std::size_t at = g_injector.posterior_rng.uniform_u32(
      static_cast<std::uint32_t>(posterior.size()));
  posterior[at] = std::numeric_limits<double>::quiet_NaN();
}

void maybe_drop_task() {
  if (!armed()) return;
  {
    MutexLock lock(g_mu);
    double rate = g_injector.config.task_drop_rate;
    if (rate <= 0.0 || !g_injector.task_rng.bernoulli(rate)) return;
    if (!take_injection_budget()) return;
  }
  throw FaultInjectedError("fault-injected: thread-pool task dropped");
}

void unit_committed() {
  if (!armed()) return;
  {
    MutexLock lock(g_mu);
    ++g_injector.committed;
    long long kill_after = g_injector.config.kill_after_units;
    if (kill_after < 0 ||
        g_injector.committed < static_cast<std::uint64_t>(kill_after)) {
      return;
    }
  }
  throw FaultInjectedError(
      "fault-injected: killed after checkpoint commit");
}

BatchFaultPlan plan_batch_faults(const BatchFaultConfig& config,
                                 std::uint64_t storm_seed,
                                 std::uint64_t batch_seq) {
  // One child stream per batch: a batch's plan depends only on
  // (storm_seed, batch_seq), never on the other batches' draws.
  Rng rng = Rng(storm_seed, /*stream=*/0xBA7C4).split(batch_seq);
  BatchFaultPlan plan;
  if (config.delay_rate > 0.0 && config.max_delay_ticks > 0 &&
      rng.bernoulli(config.delay_rate)) {
    plan.delay_ticks = 1 + rng.uniform_u32(static_cast<std::uint32_t>(
                               config.max_delay_ticks));
  }
  if (config.duplicate_rate > 0.0 &&
      rng.bernoulli(config.duplicate_rate)) {
    plan.duplicate = true;
  }
  if (config.drop_rate > 0.0 && rng.bernoulli(config.drop_rate)) {
    plan.drop_first_attempt = true;
  }
  if (config.corrupt_rate > 0.0 && rng.bernoulli(config.corrupt_rate)) {
    // Never 0 (0 means "clean" to the consumer).
    plan.corrupt_seed = splitmix64(storm_seed ^ (batch_seq + 1)) | 1ULL;
  }
  return plan;
}

std::vector<std::uint64_t> plan_kill_points(std::uint64_t storm_seed,
                                            std::size_t count,
                                            std::uint64_t horizon_ticks) {
  std::vector<std::uint64_t> kills;
  if (count == 0 || horizon_ticks < 2) return kills;
  Rng rng(storm_seed, /*stream=*/0xC1771);
  std::uint32_t span = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(horizon_ticks - 1, 0xffffffffULL));
  // Rejection keeps the points distinct; the attempt cap bounds the
  // loop when count approaches the horizon (fewer kills then).
  std::size_t attempts = 0;
  while (kills.size() < count && attempts < 4 * count + 16) {
    ++attempts;
    std::uint64_t t = 1 + rng.uniform_u32(span);
    bool fresh = true;
    for (std::uint64_t k : kills) fresh = fresh && k != t;
    if (fresh) kills.push_back(t);
  }
  std::sort(kills.begin(), kills.end());
  return kills;
}

std::string corrupt_bytes(std::string text, double rate,
                          std::uint64_t seed) {
  Rng rng(seed, /*stream=*/0xC0B7);
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\n' || !rng.bernoulli(rate)) {
      out += c;
      continue;
    }
    switch (rng.uniform_u32(3)) {
      case 0:  // flip to a random printable byte
        out += static_cast<char>(' ' + rng.uniform_u32(95));
        break;
      case 1:  // delete
        break;
      default:  // insert garbage before the byte
        out += static_cast<char>(' ' + rng.uniform_u32(95));
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace fault
}  // namespace ss
