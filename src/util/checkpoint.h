// Binary checkpoint/resume for long-running computations.
//
// The unit of checkpointing is a *deterministic work unit*: an EM
// restart attempt or a Gibbs chain, each fully determined by (seed,
// unit index, config). A CheckpointStore holds one opaque payload per
// completed unit and rewrites the whole file atomically (temp + rename)
// on every commit, so a killed process finds either the previous or the
// new file — never a torn one. Resuming replays completed units from
// their stored payloads and recomputes only the rest; because units are
// deterministic, a resumed run reproduces the uninterrupted run
// bit-for-bit (tests/test_faults.cpp locks this down).
//
// A store is bound to a (kind, fingerprint, unit count) triple; a file
// whose header disagrees — or that fails any bounds check while being
// read — is treated as absent, so a corrupt or stale checkpoint can
// only cost recomputation, never poison a run.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace ss {

// Little-endian binary encoder for checkpoint payloads. Doubles are
// written bit-exact (memcpy through u64), so decoded values reproduce
// the originals exactly.
class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u64(std::uint64_t v);
  void f64(double v);
  void vec_f64(const std::vector<double>& v);
  void str(const std::string& s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Matching decoder. Any read past the end or oversized length prefix
// throws std::runtime_error("checkpoint: truncated payload") — callers
// treat that as a corrupt checkpoint, not a fatal error.
class BinReader {
 public:
  explicit BinReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint64_t u64();
  double f64();
  std::vector<double> vec_f64();
  std::string str();

  bool done() const { return pos_ == bytes_.size(); }
  // Byte offset of the next read — failure messages locate the defect
  // with it ("corrupt at byte N").
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

// Writes `bytes` to `path` atomically (path + ".tmp", then rename).
// Throws std::runtime_error on IO failure.
void atomic_write_file(const std::string& path, const std::string& bytes);

// FNV-1a 64-bit digest; seals snapshot files so corruption anywhere in
// the header or payload is detected, not merely out-of-range lengths.
std::uint64_t fnv1a64(const char* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

// --- Single-payload snapshots ----------------------------------------
//
// The simulation process (src/sim/process.*) checkpoints one opaque
// state blob per commit rather than a unit map. Layout:
//
//   u64 magic | u64 kind | u64 fingerprint | u64 payload size
//   payload bytes | u64 fnv1a64(everything before the digest)
//
// Every load failure is classified and *located*: a truncated, bit
// -flipped, stale or foreign file comes back as
// Error{kCheckpointCorrupt|kIoError, "<path>: ... at byte N"} — never
// UB, never a silently partial state. tests/test_faults.cpp tortures
// read_snapshot with a truncation at every byte boundary and a flip at
// every byte position; golden corrupt files live under
// tests/fixtures/corrupt/checkpoint/.

// Atomically writes a sealed snapshot. Throws std::runtime_error on IO
// failure.
void write_snapshot(const std::string& path, std::uint64_t kind,
                    std::uint64_t fingerprint, const std::string& payload);

// Reads and verifies a snapshot. The payload is returned only when the
// magic, kind, fingerprint, declared size and checksum all agree.
[[nodiscard]] Expected<std::string> read_snapshot(const std::string& path,
                                    std::uint64_t kind,
                                    std::uint64_t fingerprint);

// Throwing form: surfaces the classified failure as a TaxonomyError
// (ErrorCode::kCheckpointCorrupt or kIoError) instead of an Expected.
std::string read_snapshot_or_throw(const std::string& path,
                                   std::uint64_t kind,
                                   std::uint64_t fingerprint);

class CheckpointStore {
 public:
  // Opens (or prepares to create) the store at `path`. An existing file
  // is loaded only when kind, fingerprint and unit count all match;
  // otherwise the store starts empty and `recovered_corrupt()` reports
  // whether a file was present but unusable.
  CheckpointStore(std::string path, std::uint64_t kind,
                  std::uint64_t fingerprint, std::uint64_t units);

  bool has(std::uint64_t unit) const SS_EXCLUDES(mu_);
  // Requires has(unit). The returned reference stays valid because
  // payloads are only ever added, never erased or overwritten by a
  // concurrent committer of a *different* unit (units are distinct work
  // items), and std::map never invalidates references on insert.
  const std::string& payload(std::uint64_t unit) const SS_EXCLUDES(mu_);

  // Stores the unit's payload and rewrites the file. Thread-safe (EM
  // restarts commit from pool workers). IO failures are swallowed after
  // updating the in-memory map: losing durability degrades resume, it
  // must not kill the computation.
  void commit(std::uint64_t unit, std::string payload) SS_EXCLUDES(mu_);

  std::size_t completed() const SS_EXCLUDES(mu_);
  bool recovered_corrupt() const { return recovered_corrupt_; }
  // Classified, located description of why the pre-existing file was
  // unusable (code kCheckpointCorrupt; kOk when recovered_corrupt() is
  // false). The store still auto-recovers — losing a checkpoint only
  // costs recomputation — but the defect is surfaced, not swallowed.
  const Error& recovered_error() const { return recovered_error_; }

  // Removes the checkpoint file (call after the run completed).
  void remove_file() SS_EXCLUDES(mu_);

 private:
  bool load_locked(std::string* why) SS_REQUIRES(mu_);
  std::string path_;
  std::uint64_t kind_;
  std::uint64_t fingerprint_;
  std::uint64_t units_;
  // Written only inside the constructor (under mu_, before the object
  // escapes), read-only afterwards — deliberately not guarded so the
  // accessors stay lock-free.
  bool recovered_corrupt_ = false;
  Error recovered_error_;
  mutable Mutex mu_;
  std::map<std::uint64_t, std::string> payloads_ SS_GUARDED_BY(mu_);
};

// Order-insensitive-free fingerprint helper: fold `value` into `acc`
// (splitmix-style) so configs/shapes hash to a stable id.
std::uint64_t fingerprint_combine(std::uint64_t acc, std::uint64_t value);
std::uint64_t fingerprint_combine(std::uint64_t acc, double value);

}  // namespace ss
