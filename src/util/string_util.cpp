#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ss {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_double(double v, int precision) {
  return strprintf("%.*f", precision, v);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view field) {
  bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool try_parse_u64(std::string_view field, std::uint64_t* out) {
  std::string s = trim(field);
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool try_parse_u32(std::string_view field, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!try_parse_u64(field, &v) || v > 0xffffffffULL) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool try_parse_f64(std::string_view field, double* out) {
  std::string s = trim(field);
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace ss
