// Deterministic fault-injection harness (tests/test_faults.cpp).
//
// Production social sensing must survive corrupt bytes on the wire,
// NaNs escaping a numerical kernel, and processes killed mid-run. This
// module injects exactly those faults, deterministically, so the
// recovery paths in the ingestion and inference layers are exercised by
// ordinary unit tests instead of waiting for production to find them.
//
// Arming. Faults are injected only while the process-wide injector is
// armed. Tests arm it programmatically with ScopedFaultInjection; for
// whole-binary experiments the environment arms it at first use:
//   SS_FAULT_SEED=<u64>       arm with this seed (0 keeps it disarmed)
//   SS_FAULT_NAN_RATE=<p>     per-E-step posterior NaN probability
//                             (default 0.02 when armed via env)
//   SS_FAULT_DROP_RATE=<p>    per-chunk thread-pool task drop
//                             probability (default 0)
//   SS_FAULT_KILL_AFTER=<n>   abort (throw) after n checkpoint unit
//                             commits (default: never)
//
// Sites. Each site draws from its own split of the armed seed, so the
// fault sequence of one site does not depend on how often the others
// fire. When disarmed every site is a single relaxed atomic load — the
// clean path stays bit-identical and effectively free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ss {
namespace fault {

struct FaultConfig {
  std::uint64_t seed = 0;  // 0 = disarmed
  // Probability that one entry of a posterior vector passed to
  // maybe_corrupt_posterior becomes NaN.
  double posterior_nan_rate = 0.0;
  // Probability that a thread-pool chunk throws FaultInjectedError
  // instead of running.
  double task_drop_rate = 0.0;
  // unit_committed() throws once this many units have committed;
  // negative = never. Simulates a process killed between checkpoint
  // commits.
  long long kill_after_units = -1;
  // Hard cap on injected faults (NaN + drops); negative = unlimited.
  // Lets a test inject exactly one fault and watch the recovery.
  long long max_injections = -1;
};

// Thrown by injected faults so tests can tell synthetic failures from
// real ones.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// True when the injector is armed (cheap; safe from any thread). The
// first call consults the SS_FAULT_* environment.
bool armed();

// Programmatic arming; resets all counters and RNG streams.
void arm(const FaultConfig& config);
void disarm();

// Total faults injected since the last arm().
std::uint64_t injected_count();
// Checkpoint units committed since the last arm().
std::uint64_t committed_units();

// RAII arming for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    arm(config);
  }
  ~ScopedFaultInjection() { disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// --- Sites -----------------------------------------------------------

// E-step site: with probability posterior_nan_rate, sets one entry of
// `posterior` (position drawn uniformly) to NaN.
void maybe_corrupt_posterior(std::vector<double>& posterior);

// Thread-pool site: with probability task_drop_rate, throws
// FaultInjectedError instead of letting the chunk run.
void maybe_drop_task();

// Checkpoint site: called after each durable unit commit; throws
// FaultInjectedError once kill_after_units commits have happened.
void unit_committed();

// --- Fixture helper --------------------------------------------------

// Flips, deletes or inserts bytes of `text` with per-byte probability
// `rate`, deterministically from `seed`. Newlines are preserved so
// corruption stays line-local — the shape real truncated/mangled CSV
// and JSONL records take. Pure function; needs no arming.
std::string corrupt_bytes(std::string text, double rate,
                          std::uint64_t seed);

// --- Network/batch fault planning (src/sim/ storm harness) -----------
//
// Pure planning functions for the deterministic simulation substrate:
// given one storm seed, they decide which batches of a simulated stream
// are delayed, reordered (a delayed batch overtakes its successors),
// duplicated, dropped-then-retried, or byte-corrupted, and where the
// scheduler kills the process. Every draw comes from a split of the
// storm seed keyed by the batch sequence number, so one batch's plan
// never depends on how many faults other batches drew — the property
// that makes a whole CI chaos failure replayable from the single
// printed seed (SS_STORM_SEED). No arming involved; these are pure
// functions like corrupt_bytes.

struct BatchFaultConfig {
  // Probability a batch's delivery is delayed by up to max_delay_ticks
  // (uniform). Delays within a window larger than the batch spacing
  // reorder delivery relative to the emission order.
  double delay_rate = 0.0;
  std::uint64_t max_delay_ticks = 0;
  // Probability a batch is delivered twice (the consumer must dedup).
  double duplicate_rate = 0.0;
  // Probability the first delivery attempt is lost; the batch is
  // redelivered retry_delay_ticks later, so delivery stays eventual.
  double drop_rate = 0.0;
  std::uint64_t retry_delay_ticks = 40;
  // Probability the batch's serialized bytes are mangled on the wire
  // (per-byte rate corrupt_byte_rate, via corrupt_bytes).
  double corrupt_rate = 0.0;
  double corrupt_byte_rate = 0.01;
};

struct BatchFaultPlan {
  std::uint64_t delay_ticks = 0;
  bool duplicate = false;
  bool drop_first_attempt = false;
  std::uint64_t corrupt_seed = 0;  // 0 = delivered clean
};

// The fault plan for batch `batch_seq` under `storm_seed`. Pure.
BatchFaultPlan plan_batch_faults(const BatchFaultConfig& config,
                                 std::uint64_t storm_seed,
                                 std::uint64_t batch_seq);

// Scheduler-owned kill points: up to `count` distinct crash ticks in
// [1, horizon_ticks), strictly ascending. Pure; same seed, same kills.
std::vector<std::uint64_t> plan_kill_points(std::uint64_t storm_seed,
                                            std::size_t count,
                                            std::uint64_t horizon_ticks);

}  // namespace fault
}  // namespace ss
