// Deterministic fault-injection harness (tests/test_faults.cpp).
//
// Production social sensing must survive corrupt bytes on the wire,
// NaNs escaping a numerical kernel, and processes killed mid-run. This
// module injects exactly those faults, deterministically, so the
// recovery paths in the ingestion and inference layers are exercised by
// ordinary unit tests instead of waiting for production to find them.
//
// Arming. Faults are injected only while the process-wide injector is
// armed. Tests arm it programmatically with ScopedFaultInjection; for
// whole-binary experiments the environment arms it at first use:
//   SS_FAULT_SEED=<u64>       arm with this seed (0 keeps it disarmed)
//   SS_FAULT_NAN_RATE=<p>     per-E-step posterior NaN probability
//                             (default 0.02 when armed via env)
//   SS_FAULT_DROP_RATE=<p>    per-chunk thread-pool task drop
//                             probability (default 0)
//   SS_FAULT_KILL_AFTER=<n>   abort (throw) after n checkpoint unit
//                             commits (default: never)
//
// Sites. Each site draws from its own split of the armed seed, so the
// fault sequence of one site does not depend on how often the others
// fire. When disarmed every site is a single relaxed atomic load — the
// clean path stays bit-identical and effectively free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ss {
namespace fault {

struct FaultConfig {
  std::uint64_t seed = 0;  // 0 = disarmed
  // Probability that one entry of a posterior vector passed to
  // maybe_corrupt_posterior becomes NaN.
  double posterior_nan_rate = 0.0;
  // Probability that a thread-pool chunk throws FaultInjectedError
  // instead of running.
  double task_drop_rate = 0.0;
  // unit_committed() throws once this many units have committed;
  // negative = never. Simulates a process killed between checkpoint
  // commits.
  long long kill_after_units = -1;
  // Hard cap on injected faults (NaN + drops); negative = unlimited.
  // Lets a test inject exactly one fault and watch the recovery.
  long long max_injections = -1;
};

// Thrown by injected faults so tests can tell synthetic failures from
// real ones.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// True when the injector is armed (cheap; safe from any thread). The
// first call consults the SS_FAULT_* environment.
bool armed();

// Programmatic arming; resets all counters and RNG streams.
void arm(const FaultConfig& config);
void disarm();

// Total faults injected since the last arm().
std::uint64_t injected_count();
// Checkpoint units committed since the last arm().
std::uint64_t committed_units();

// RAII arming for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    arm(config);
  }
  ~ScopedFaultInjection() { disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// --- Sites -----------------------------------------------------------

// E-step site: with probability posterior_nan_rate, sets one entry of
// `posterior` (position drawn uniformly) to NaN.
void maybe_corrupt_posterior(std::vector<double>& posterior);

// Thread-pool site: with probability task_drop_rate, throws
// FaultInjectedError instead of letting the chunk run.
void maybe_drop_task();

// Checkpoint site: called after each durable unit commit; throws
// FaultInjectedError once kill_after_units commits have happened.
void unit_committed();

// --- Fixture helper --------------------------------------------------

// Flips, deletes or inserts bytes of `text` with per-byte probability
// `rate`, deterministically from `seed`. Newlines are preserved so
// corruption stays line-local — the shape real truncated/mangled CSV
// and JSONL records take. Pure function; needs no arming.
std::string corrupt_bytes(std::string text, double rate,
                          std::uint64_t seed);

}  // namespace fault
}  // namespace ss
