#include "util/cli.h"

#include <cstdlib>

#include "util/log.h"
#include "util/string_util.h"

namespace ss {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

long long& Cli::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  auto* store = new long long(default_value);  // lives for program duration
  ints_.push_back(store);
  options_.push_back({name, help, Kind::kInt, ints_.size() - 1,
                      strprintf("%lld", default_value)});
  return *store;
}

double& Cli::add_double(const std::string& name, double default_value,
                        const std::string& help) {
  auto* store = new double(default_value);
  doubles_.push_back(store);
  options_.push_back({name, help, Kind::kDouble, doubles_.size() - 1,
                      strprintf("%g", default_value)});
  return *store;
}

std::string& Cli::add_string(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  auto* store = new std::string(default_value);
  strings_.push_back(store);
  options_.push_back(
      {name, help, Kind::kString, strings_.size() - 1, default_value});
  return *store;
}

bool& Cli::add_flag(const std::string& name, const std::string& help) {
  auto* store = new bool(false);
  flags_.push_back(store);
  options_.push_back({name, help, Kind::kFlag, flags_.size() - 1, "false"});
  return *store;
}

Cli::Option* Cli::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool Cli::assign(Option& opt, const std::string& value) {
  char* end = nullptr;
  switch (opt.kind) {
    case Kind::kInt: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *ints_[opt.index] = v;
      return true;
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *doubles_[opt.index] = v;
      return true;
    }
    case Kind::kString:
      *strings_[opt.index] = value;
      return true;
    case Kind::kFlag:
      return false;  // flags do not take values
  }
  return false;
}

bool Cli::try_parse(int argc, char** argv, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return fail("help requested\n" + usage());
    }
    if (!starts_with(arg, "--")) {
      return fail("unexpected argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      return fail("unknown flag: --" + name);
    }
    if (opt->kind == Kind::kFlag) {
      if (has_value) {
        return fail("flag --" + name + " takes no value");
      }
      *flags_[opt->index] = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        return fail("flag --" + name + " requires a value");
      }
      value = argv[++i];
    }
    if (!assign(*opt, value)) {
      return fail("bad value for --" + name + ": " + value);
    }
  }
  return true;
}

void Cli::parse(int argc, char** argv) {
  // --help gets stdout + exit 0; every parse failure gets stderr + 2.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      write_stdout(usage());
      std::exit(0);
    }
  }
  std::string error;
  if (!try_parse(argc, argv, &error)) {
    write_stderr(error + "\n" + usage());
    std::exit(2);
  }
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nflags:\n";
  for (const auto& opt : options_) {
    out += strprintf("  --%-18s %s (default: %s)\n", opt.name.c_str(),
                     opt.help.c_str(), opt.default_repr.c_str());
  }
  return out;
}

}  // namespace ss
