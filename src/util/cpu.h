// Host CPU identification for the runtime kernel-backend dispatch
// (docs/MODEL.md §12) and for the host-metadata block bench_common
// stamps into every bench JSON.
//
// Everything here is a cheap, cached, read-only query: the first call
// probes CPUID (via compiler builtins, so the OS-support bit for saved
// YMM state is included) and later calls return the cached answer.
#pragma once

#include <string>

namespace ss {

// Instruction-set extensions the kernel backends care about. On
// non-x86 builds every flag is false and the scalar backend is the
// only candidate.
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
};

// Cached CPUID probe. Thread-safe (resolved on first use).
const CpuFeatures& cpu_features();

// Marketing/brand string from CPUID leaves 0x80000002-4, trimmed, or
// "unknown" when the leaves are unavailable (non-x86, old cores).
const std::string& cpu_model_name();

// Space-separated list of the detected flags above ("sse2 avx avx2
// fma"), or "none". Meant for human-readable bench metadata.
std::string cpu_feature_summary();

}  // namespace ss
