// Host CPU identification for the runtime kernel-backend dispatch
// (docs/MODEL.md §12) and for the host-metadata block bench_common
// stamps into every bench JSON.
//
// Everything here is a cheap, cached, read-only query: the first call
// probes CPUID (via compiler builtins, so the OS-support bit for saved
// YMM state is included) and later calls return the cached answer.
#pragma once

#include <cstddef>
#include <string>

namespace ss {

// Instruction-set extensions the kernel backends care about. On
// non-x86 builds every flag is false and the scalar backend is the
// only candidate.
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
};

// Cached CPUID probe. Thread-safe (resolved on first use).
const CpuFeatures& cpu_features();

// Marketing/brand string from CPUID leaves 0x80000002-4, trimmed, or
// "unknown" when the leaves are unavailable (non-x86, old cores).
const std::string& cpu_model_name();

// Space-separated list of the detected flags above ("sse2 avx avx2
// fma"), or "none". Meant for human-readable bench metadata.
std::string cpu_feature_summary();

// ---------------------------------------------------------------------------
// Worker placement (docs/MODEL.md §16). Pinning is a pure scheduling
// hint: it never changes what a worker computes, only which core runs
// it, so every mode is bit-identical to every other.

enum class AffinityMode {
  kNone,     // leave placement to the OS scheduler (default)
  kCompact,  // worker i -> cpu (i % N): pack siblings onto nearby cores
  kSpread,   // worker i -> cpus strided across the online set
};

// Parses SS_AFFINITY={none,compact,spread}; unset or unrecognized
// values mean kNone. Cached on first use.
AffinityMode affinity_mode();

// Number of CPUs currently online (sysconf(_SC_NPROCESSORS_ONLN)),
// minimum 1. Distinct from hardware_concurrency on hosts with offlined
// or masked cores. Cached on first use.
std::size_t online_cpu_count();

// Pins the calling thread to one CPU chosen by `mode` for worker
// `index` of `total`. kNone is a no-op; on platforms without the
// affinity syscalls (or when the syscall fails, e.g. under a
// restrictive cpuset) the call degrades to a silent no-op — placement
// is best-effort by design.
void apply_worker_affinity(AffinityMode mode, std::size_t index,
                           std::size_t total);

}  // namespace ss
