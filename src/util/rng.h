// Deterministic, splittable random number generation.
//
// All stochastic components of the library (generators, Gibbs samplers,
// EM initialization) draw from ss::Rng so that every experiment is
// reproducible from a single 64-bit seed. The engine is PCG32 (O'Neill,
// "PCG: A Family of Simple Fast Space-Efficient Statistically Good
// Algorithms for Random Number Generation"), implemented here directly so
// the library has no dependency on any external RNG package and produces
// identical streams on every platform.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ss {

// PCG32: 64-bit state / 32-bit output permuted congruential generator.
// Satisfies std::uniform_random_bit_generator so it can also drive
// standard <random> distributions when convenient.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  // Seeds the generator. `stream` selects one of 2^63 independent
  // sequences; two generators with different streams never correlate.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  // Advances the generator by `delta` steps in O(log delta).
  void advance(std::uint64_t delta);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // odd; encodes the stream id
};

// Convenience wrapper bundling a Pcg32 with the distributions the library
// actually uses. Methods are deliberately explicit (no std::distribution
// state) so results are identical across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1, std::uint64_t stream = 0);

  // Derives an independent child generator; children with distinct `key`
  // values are statistically independent of each other and of the parent.
  // Used to give each experiment repetition / worker its own stream.
  Rng split(std::uint64_t key) const;

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint32_t uniform_u32(std::uint32_t n);
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  // Standard normal via Box-Muller (no cached spare: stateless per call
  // pair is wasteful but keeps split()/replay semantics trivial).
  double normal();
  double normal(double mean, double stddev);
  // Index drawn proportionally to `weights` (non-negative; at least one
  // strictly positive). Returns weights.size()-1 on accumulated-roundoff
  // overflow of the final bin.
  std::size_t categorical(const std::vector<double>& weights);
  // Geometric-like count: number of failures before first success with
  // success probability p in (0,1].
  std::uint32_t geometric(double p);
  // Exponential waiting time with the given mean (> 0), via inverse CDF.
  double exponential(double mean);
  // Zipf-distributed integer in [0, n) with exponent s >= 0, via inverse
  // CDF on precomputed weights is avoided; uses rejection-free cumulative
  // method suitable for the modest n used in the Twitter simulator.
  std::size_t zipf(std::size_t n, double s);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_u32(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k distinct indices sampled uniformly from [0, n). k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  Pcg32& engine() { return engine_; }
  std::uint64_t seed() const { return seed_; }

 private:
  Pcg32 engine_;
  std::uint64_t seed_;
  std::uint64_t stream_;
};

// SplitMix64: used to whiten user-provided seeds and derive child keys.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace ss
