// Error taxonomy and fault-tolerant result types shared by the
// ingestion, inference and checkpoint layers.
//
// The Apollo deployment ingests live streams during breaking events,
// where malformed records and degenerate sources are the norm. Instead
// of a zoo of ad-hoc std::runtime_error strings, every recoverable
// failure is classified by an ErrorCode, reported per record through an
// IngestReport, and — where the caller wants to branch rather than
// catch — carried by Expected<T>.
//
// Ingestion modes (load_dataset / load_tweets):
//   kStrict     legacy behaviour: the first malformed record throws,
//               with file:line and taxonomy code in the message.
//   kPermissive malformed records are skipped and counted; the loader
//               returns everything that parsed.
//   kRepair     like permissive, but records whose defect has an
//               unambiguous fix (non-finite timestamp -> 0, unknown
//               truth label -> Unknown, bad retweet parent -> original)
//               are repaired and kept instead of skipped.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ss {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kIoError,            // file missing, unreadable, or unwritable
  kBadRow,             // wrong field count / unparseable structure
  kBadNumber,          // numeric field failed to parse
  kBadLabel,           // unknown truth label
  kMissingField,       // record lacks a required key
  kIndexOutOfRange,    // id outside the declared dimensions
  kNonFinite,          // NaN/Inf where a finite number is required
  kCheckpointCorrupt,  // checkpoint file failed magic/version/fingerprint
  kFaultInjected,      // synthetic fault from the injection harness
};
inline constexpr std::size_t kErrorCodeCount = 10;

const char* error_code_name(ErrorCode code);

struct [[nodiscard]] Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
};

// Exception that keeps its taxonomy code, so a throwing API (strict
// ingestion) and the Expected-based one classify failures identically.
class TaxonomyError : public std::runtime_error {
 public:
  TaxonomyError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// Minimal expected/either type: either a value or a classified error.
// value() on an error throws std::runtime_error carrying the message,
// so callers that do not care about taxonomy keep exception semantics.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}
  Expected(Error error) : state_(std::move(error)) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  // Requires !ok().
  [[nodiscard]] const Error& error() const { return std::get<Error>(state_); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::runtime_error(std::get<Error>(state_).message);
    }
  }
  std::variant<T, Error> state_;
};

enum class IngestMode : std::uint8_t {
  kStrict = 0,
  kPermissive,
  kRepair,
};

const char* ingest_mode_name(IngestMode mode);

struct IngestOptions {
  IngestMode mode = IngestMode::kStrict;
  // Per-record error details kept in IngestReport::errors; counts stay
  // exact beyond the cap.
  std::size_t max_recorded_errors = 32;
};

// One classified defect, located to its record.
struct RecordError {
  ErrorCode code = ErrorCode::kOk;
  std::string file;
  std::size_t line = 0;  // 1-based line number within `file`
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

// Per-run ingestion accounting. rows_total counts every non-blank data
// row seen; each row ends up in exactly one of ok/repaired/skipped.
struct [[nodiscard]] IngestReport {
  std::size_t rows_total = 0;
  std::size_t rows_ok = 0;
  std::size_t rows_repaired = 0;
  std::size_t rows_skipped = 0;
  // Exact per-code defect counts (a repaired row still counts its code).
  std::array<std::size_t, kErrorCodeCount> code_counts{};
  // First max_recorded_errors defects in file order.
  std::vector<RecordError> errors;

  [[nodiscard]] std::size_t count(ErrorCode code) const {
    return code_counts[static_cast<std::size_t>(code)];
  }
  [[nodiscard]] bool clean() const { return rows_skipped == 0 && rows_repaired == 0; }

  // Records a defect (detail list capped by `cap`); the caller still
  // decides whether the row is skipped or repaired.
  void note(ErrorCode code, const std::string& file, std::size_t line,
            std::string detail, std::size_t cap);

  // One-line human summary, e.g.
  // "1000 rows: 990 ok, 6 repaired, 4 skipped (bad-number:3 bad-row:1)".
  [[nodiscard]] std::string summary() const;
};

}  // namespace ss
