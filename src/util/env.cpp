#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace ss {

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

}  // namespace ss
