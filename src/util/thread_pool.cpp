#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <numeric>

#include "util/cpu.h"
#include "util/env.h"
#include "util/fault_inject.h"

namespace ss {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    // Pin before the first task so every page a worker first-touches is
    // already on its final core's node (no-op under SS_AFFINITY=none).
    workers_.emplace_back([this, i, threads] {
      apply_worker_affinity(affinity_mode(), i, threads);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Manual wait loop: the thread-safety analysis checks a predicate
      // lambda as its own (lock-free) function, while cv_.wait holds
      // mu_ around this loop body the same way the predicate overload
      // would.
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// Shared state of one parallel_for_chunks call. Helper tasks hold it by
// shared_ptr: a task that wakes after the call returned finds the cursor
// exhausted and exits without touching the (dead) caller frame.
struct ChunkJob {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex mu;
  std::condition_variable cv;
  std::exception_ptr error SS_GUARDED_BY(mu);
  std::size_t error_chunk SS_GUARDED_BY(mu) =
      std::numeric_limits<std::size_t>::max();
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
      nullptr;
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;

  // Claims and runs chunks until the cursor is exhausted. `body` is only
  // dereferenced after claiming a chunk, and no chunk can be claimed
  // once the cursor is spent — so a helper that wakes after the caller
  // returned never touches the dead frame.
  void drain() {
    for (;;) {
      std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      std::size_t begin = c * grain;
      std::size_t end = std::min(count, begin + grain);
      try {
        // Fault-injection site: a "dropped" chunk surfaces as the
        // call's exception instead of running its body — the pool must
        // neither deadlock nor lose the remaining chunks.
        fault::maybe_drop_task();
        (*body)(c, begin, end);
      } catch (...) {
        MutexLock lock(mu);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        MutexLock lock(mu);
        cv.notify_all();
      }
    }
  }
};

// Shared state of one parallel_tasks call (same shared_ptr lifetime
// discipline as ChunkJob: a helper that wakes after the call returned
// finds every deque empty and exits without touching the caller frame).
struct TaskJob {
  // Per-participant deques hold task indices in LPT deal order. head/
  // tail are cursors into the fixed `order` slices; all cursor motion is
  // under `mu` (steal targets need a consistent view of every deque).
  // head/tail may only move under the owning TaskJob's `mu` (claim()
  // holds it; the deal phase runs before any helper exists).
  struct Deque {
    std::size_t begin = 0;  // fixed slice bounds into `order`
    std::size_t end = 0;
    std::size_t head = 0;  // next own pop
    std::size_t tail = 0;  // one past last stealable
  };

  std::vector<std::size_t> order;  // task indices, grouped by participant
  std::vector<Deque> deques;
  std::atomic<std::size_t> participants{0};
  std::atomic<std::size_t> done{0};
  Mutex mu;
  std::condition_variable cv;
  std::exception_ptr error SS_GUARDED_BY(mu);
  std::size_t error_task SS_GUARDED_BY(mu) =
      std::numeric_limits<std::size_t>::max();
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t tasks = 0;
  double* seconds = nullptr;  // slot-per-task, or null

  static constexpr std::size_t kNoTask =
      std::numeric_limits<std::size_t>::max();

  // Pops the front of `self`'s deque, or steals from the back of the
  // deque with the most remaining tasks (tie: lowest participant id).
  // Returns kNoTask when every deque is drained.
  std::size_t claim(std::size_t self) {
    MutexLock lock(mu);
    if (self < deques.size()) {
      Deque& d = deques[self];
      if (d.head < d.tail) return order[d.begin + d.head++];
    }
    std::size_t victim = deques.size();
    std::size_t most = 0;
    for (std::size_t p = 0; p < deques.size(); ++p) {
      std::size_t left = deques[p].tail - deques[p].head;
      if (left > most) {
        most = left;
        victim = p;
      }
    }
    if (victim == deques.size()) return kNoTask;
    Deque& d = deques[victim];
    return order[d.begin + --d.tail];
  }

  void run_one(std::size_t t) {
    std::chrono::steady_clock::time_point start;
    if (seconds != nullptr) start = std::chrono::steady_clock::now();
    try {
      fault::maybe_drop_task();
      (*body)(t);
    } catch (...) {
      MutexLock lock(mu);
      if (t < error_task) {
        error_task = t;
        error = std::current_exception();
      }
    }
    if (seconds != nullptr) {
      seconds[t] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    }
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == tasks) {
      MutexLock lock(mu);
      cv.notify_all();
    }
  }

  void drain() {
    // Late-waking helpers past the dealt participant count own no deque
    // (claim() sees self >= deques.size()) and go straight to stealing.
    std::size_t self = participants.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      std::size_t t = claim(self);
      if (t == kNoTask) return;
      run_one(t);
    }
  }
};

}  // namespace

void ThreadPool::parallel_tasks(
    const std::vector<double>& weights,
    const std::function<void(std::size_t)>& body,
    std::vector<double>* task_seconds) {
  std::size_t n = weights.size();
  if (task_seconds != nullptr) {
    task_seconds->assign(n, 0.0);
  }
  if (n == 0) return;

  auto job = std::make_shared<TaskJob>();
  job->body = &body;
  job->tasks = n;
  job->seconds =
      task_seconds != nullptr ? task_seconds->data() : nullptr;

  if (n == 1) {
    job->run_one(0);
  } else {
    // LPT deal: heaviest-first (index breaks ties), each task to the
    // least-loaded participant (lowest id breaks ties). The schedule
    // depends only on (weights, participant count) — and even that only
    // decides placement, never results.
    std::size_t participants = std::min(workers_.size() + 1, n);
    std::vector<std::size_t> by_weight(n);
    std::iota(by_weight.begin(), by_weight.end(), std::size_t{0});
    std::stable_sort(by_weight.begin(), by_weight.end(),
                     [&weights](std::size_t a, std::size_t b) {
                       return weights[a] > weights[b];
                     });
    std::vector<double> load(participants, 0.0);
    std::vector<std::vector<std::size_t>> dealt(participants);
    for (std::size_t t : by_weight) {
      std::size_t best = 0;
      for (std::size_t p = 1; p < participants; ++p) {
        if (load[p] < load[best]) best = p;
      }
      // ss-analyze: allow(unordered-reduction): serial LPT bookkeeping in the scheduler itself — load[] only picks placement, never results
      load[best] += weights[t];
      dealt[best].push_back(t);
    }

    job->order.reserve(n);
    job->deques.resize(participants);
    for (std::size_t p = 0; p < participants; ++p) {
      TaskJob::Deque& d = job->deques[p];
      d.begin = job->order.size();
      job->order.insert(job->order.end(), dealt[p].begin(),
                        dealt[p].end());
      d.end = job->order.size();
      d.tail = d.end - d.begin;
    }

    // The caller claims participant 0 by draining first; helpers take
    // the rest. Helpers that wake after the work runs dry are no-ops.
    for (std::size_t h = 0; h + 1 < participants; ++h) {
      enqueue([job] { job->drain(); });
    }
    job->drain();
  }

  std::exception_ptr error;
  {
    MutexLock lock(job->mu);
    while (job->done.load(std::memory_order_acquire) < job->tasks) {
      job->cv.wait(lock.native());
    }
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        body) {
  std::size_t chunks = chunk_count(count, grain);
  if (chunks == 0) return;
  if (grain == 0) grain = 1;
  if (chunks == 1) {
    body(0, 0, count);
    return;
  }

  auto job = std::make_shared<ChunkJob>();
  job->body = &body;
  job->count = count;
  job->grain = grain;
  job->chunks = chunks;

  // One helper task per worker, capped by the remaining chunks (the
  // caller takes care of at least one itself). Helpers that never get
  // scheduled before the work runs dry become no-ops.
  std::size_t helpers = std::min(workers_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([job] { job->drain(); });
  }
  job->drain();

  std::exception_ptr error;
  {
    MutexLock lock(job->mu);
    while (job->done.load(std::memory_order_acquire) < job->chunks) {
      job->cv.wait(lock.native());
    }
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  // Grain > 1 only when indices heavily outnumber workers; this is pure
  // scheduling (fewer queue round-trips), not a semantic change.
  std::size_t grain =
      std::max<std::size_t>(1, count / (8 * std::max<std::size_t>(
                                                1, workers_.size())));
  parallel_for_chunks(count, grain,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

std::size_t default_thread_count() {
  long long env = env_int("SS_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace ss
