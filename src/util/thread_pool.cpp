#include "util/thread_pool.h"

#include <algorithm>

#include "util/env.h"

namespace ss {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t default_thread_count() {
  long long env = env_int("SS_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace ss
