#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "util/env.h"
#include "util/fault_inject.h"

namespace ss {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Manual wait loop: the thread-safety analysis checks a predicate
      // lambda as its own (lock-free) function, while cv_.wait holds
      // mu_ around this loop body the same way the predicate overload
      // would.
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// Shared state of one parallel_for_chunks call. Helper tasks hold it by
// shared_ptr: a task that wakes after the call returned finds the cursor
// exhausted and exits without touching the (dead) caller frame.
struct ChunkJob {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex mu;
  std::condition_variable cv;
  std::exception_ptr error SS_GUARDED_BY(mu);
  std::size_t error_chunk SS_GUARDED_BY(mu) =
      std::numeric_limits<std::size_t>::max();
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
      nullptr;
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;

  // Claims and runs chunks until the cursor is exhausted. `body` is only
  // dereferenced after claiming a chunk, and no chunk can be claimed
  // once the cursor is spent — so a helper that wakes after the caller
  // returned never touches the dead frame.
  void drain() {
    for (;;) {
      std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      std::size_t begin = c * grain;
      std::size_t end = std::min(count, begin + grain);
      try {
        // Fault-injection site: a "dropped" chunk surfaces as the
        // call's exception instead of running its body — the pool must
        // neither deadlock nor lose the remaining chunks.
        fault::maybe_drop_task();
        (*body)(c, begin, end);
      } catch (...) {
        MutexLock lock(mu);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        MutexLock lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        body) {
  std::size_t chunks = chunk_count(count, grain);
  if (chunks == 0) return;
  if (grain == 0) grain = 1;
  if (chunks == 1) {
    body(0, 0, count);
    return;
  }

  auto job = std::make_shared<ChunkJob>();
  job->body = &body;
  job->count = count;
  job->grain = grain;
  job->chunks = chunks;

  // One helper task per worker, capped by the remaining chunks (the
  // caller takes care of at least one itself). Helpers that never get
  // scheduled before the work runs dry become no-ops.
  std::size_t helpers = std::min(workers_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([job] { job->drain(); });
  }
  job->drain();

  std::exception_ptr error;
  {
    MutexLock lock(job->mu);
    while (job->done.load(std::memory_order_acquire) < job->chunks) {
      job->cv.wait(lock.native());
    }
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  // Grain > 1 only when indices heavily outnumber workers; this is pure
  // scheduling (fewer queue round-trips), not a semantic change.
  std::size_t grain =
      std::max<std::size_t>(1, count / (8 * std::max<std::size_t>(
                                                1, workers_.size())));
  parallel_for_chunks(count, grain,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

std::size_t default_thread_count() {
  long long env = env_int("SS_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace ss
