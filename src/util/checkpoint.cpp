#include "util/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/rng.h"

namespace ss {
namespace {

constexpr std::uint64_t kMagic = 0x53534b50'54313000ULL;  // "SSKPT10\0"
constexpr std::uint64_t kSnapshotMagic =
    0x53534e41'50313000ULL;  // "SSNAP10\0"
// magic + kind + fingerprint + payload size.
constexpr std::size_t kSnapshotHeaderBytes = 32;
// Header + trailing checksum.
constexpr std::size_t kSnapshotMinBytes = kSnapshotHeaderBytes + 8;

std::uint64_t le64_at(const std::string& bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void BinWriter::u64(std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buf_.append(bytes, 8);
}

void BinWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void BinWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void BinReader::require(std::size_t n) const {
  // n comes from untrusted length prefixes; guard the addition itself.
  if (n > bytes_.size() || pos_ > bytes_.size() - n) {
    throw std::runtime_error("checkpoint: truncated payload at byte " +
                             std::to_string(pos_));
  }
}

std::uint8_t BinReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint64_t BinReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<double> BinReader::vec_f64() {
  std::uint64_t n = u64();
  if (n > bytes_.size()) {  // rejects absurd length prefixes pre-alloc
    throw std::runtime_error("checkpoint: truncated payload at byte " +
                             std::to_string(pos_));
  }
  require(n * 8);
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::string BinReader::str() {
  std::uint64_t n = u64();
  require(n);
  std::string s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

void atomic_write_file(const std::string& path,
                       const std::string& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp);
    }
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("checkpoint: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename failed for " + path +
                             ": " + ec.message());
  }
}

std::uint64_t fnv1a64(const char* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_snapshot(const std::string& path, std::uint64_t kind,
                    std::uint64_t fingerprint,
                    const std::string& payload) {
  BinWriter writer;
  writer.u64(kSnapshotMagic);
  writer.u64(kind);
  writer.u64(fingerprint);
  writer.str(payload);  // u64 length prefix + bytes
  std::uint64_t digest =
      fnv1a64(writer.bytes().data(), writer.bytes().size());
  writer.u64(digest);
  atomic_write_file(path, writer.bytes());
}

Expected<std::string> read_snapshot(const std::string& path,
                                    std::uint64_t kind,
                                    std::uint64_t fingerprint) {
  auto corrupt = [&](std::size_t at, const std::string& why) {
    return Error{ErrorCode::kCheckpointCorrupt,
                 path + ": checkpoint corrupt at byte " +
                     std::to_string(at) + ": " + why};
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError,
                 path + ": cannot read checkpoint file"};
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kSnapshotMinBytes) {
    return corrupt(bytes.size(),
                   "truncated header (" + std::to_string(bytes.size()) +
                       " bytes, need at least " +
                       std::to_string(kSnapshotMinBytes) + ")");
  }
  if (le64_at(bytes, 0) != kSnapshotMagic) {
    return corrupt(0, "bad magic (not a snapshot file)");
  }
  if (le64_at(bytes, 8) != kind) {
    return corrupt(8, "kind mismatch (expected " + std::to_string(kind) +
                          ", found " + std::to_string(le64_at(bytes, 8)) +
                          ")");
  }
  if (le64_at(bytes, 16) != fingerprint) {
    return corrupt(16, "fingerprint mismatch (stale or foreign run)");
  }
  std::uint64_t declared = le64_at(bytes, 24);
  std::uint64_t present = bytes.size() - kSnapshotMinBytes;
  if (declared != present) {
    return corrupt(kSnapshotHeaderBytes,
                   "payload declares " + std::to_string(declared) +
                       " bytes, " + std::to_string(present) +
                       " present");
  }
  std::size_t digest_at = bytes.size() - 8;
  std::uint64_t stored = le64_at(bytes, digest_at);
  std::uint64_t actual = fnv1a64(bytes.data(), digest_at);
  if (stored != actual) {
    return corrupt(digest_at, "checksum mismatch");
  }
  return bytes.substr(kSnapshotHeaderBytes, declared);
}

std::string read_snapshot_or_throw(const std::string& path,
                                   std::uint64_t kind,
                                   std::uint64_t fingerprint) {
  Expected<std::string> r = read_snapshot(path, kind, fingerprint);
  if (!r.ok()) throw TaxonomyError(r.error().code, r.error().message);
  return std::move(r).value();
}

CheckpointStore::CheckpointStore(std::string path, std::uint64_t kind,
                                 std::uint64_t fingerprint,
                                 std::uint64_t units)
    : path_(std::move(path)),
      kind_(kind),
      fingerprint_(fingerprint),
      units_(units) {
  MutexLock lock(mu_);
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) return;
  std::string why;
  try {
    if (!load_locked(&why)) {
      recovered_corrupt_ = true;
      payloads_.clear();
    }
  } catch (const std::exception& e) {
    recovered_corrupt_ = true;
    why = e.what();
    payloads_.clear();
  }
  if (recovered_corrupt_) {
    recovered_error_ = Error{ErrorCode::kCheckpointCorrupt,
                             path_ + ": " + why};
  }
}

bool CheckpointStore::load_locked(std::string* why) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    *why = "file exists but cannot be read";
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  BinReader reader(bytes);
  auto at = [&](const std::string& what) {
    *why = what + " at byte " + std::to_string(reader.position());
    return false;
  };
  if (reader.u64() != kMagic) return at("bad magic");
  if (reader.u64() != kind_) return at("kind mismatch");
  if (reader.u64() != fingerprint_) return at("fingerprint mismatch");
  if (reader.u64() != units_) return at("unit-count mismatch");
  std::uint64_t records = reader.u64();
  if (records > units_) return at("record count exceeds units");
  for (std::uint64_t r = 0; r < records; ++r) {
    std::uint64_t unit = reader.u64();
    if (unit >= units_) return at("unit index out of range");
    payloads_[unit] = reader.str();
  }
  return true;
}

bool CheckpointStore::has(std::uint64_t unit) const {
  MutexLock lock(mu_);
  return payloads_.count(unit) != 0;
}

const std::string& CheckpointStore::payload(std::uint64_t unit) const {
  MutexLock lock(mu_);
  return payloads_.at(unit);
}

void CheckpointStore::commit(std::uint64_t unit, std::string payload) {
  MutexLock lock(mu_);
  payloads_[unit] = std::move(payload);
  BinWriter writer;
  writer.u64(kMagic);
  writer.u64(kind_);
  writer.u64(fingerprint_);
  writer.u64(units_);
  writer.u64(payloads_.size());
  for (const auto& [u, p] : payloads_) {
    writer.u64(u);
    writer.str(p);
  }
  try {
    atomic_write_file(path_, writer.bytes());
  } catch (const std::exception&) {
    // Durability lost for this commit; the run itself must continue.
  }
}

std::size_t CheckpointStore::completed() const {
  MutexLock lock(mu_);
  return payloads_.size();
}

void CheckpointStore::remove_file() {
  MutexLock lock(mu_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

std::uint64_t fingerprint_combine(std::uint64_t acc,
                                  std::uint64_t value) {
  return splitmix64(acc ^ (value + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t fingerprint_combine(std::uint64_t acc, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return fingerprint_combine(acc, bits);
}

}  // namespace ss
