#include "util/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/rng.h"

namespace ss {
namespace {

constexpr std::uint64_t kMagic = 0x53534b50'54313000ULL;  // "SSKPT10\0"

}  // namespace

void BinWriter::u64(std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buf_.append(bytes, 8);
}

void BinWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void BinWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void BinReader::require(std::size_t n) const {
  // n comes from untrusted length prefixes; guard the addition itself.
  if (n > bytes_.size() || pos_ > bytes_.size() - n) {
    throw std::runtime_error("checkpoint: truncated payload");
  }
}

std::uint8_t BinReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint64_t BinReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<double> BinReader::vec_f64() {
  std::uint64_t n = u64();
  if (n > bytes_.size()) {  // rejects absurd length prefixes pre-alloc
    throw std::runtime_error("checkpoint: truncated payload");
  }
  require(n * 8);
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::string BinReader::str() {
  std::uint64_t n = u64();
  require(n);
  std::string s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

void atomic_write_file(const std::string& path,
                       const std::string& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp);
    }
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("checkpoint: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename failed for " + path +
                             ": " + ec.message());
  }
}

CheckpointStore::CheckpointStore(std::string path, std::uint64_t kind,
                                 std::uint64_t fingerprint,
                                 std::uint64_t units)
    : path_(std::move(path)),
      kind_(kind),
      fingerprint_(fingerprint),
      units_(units) {
  MutexLock lock(mu_);
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) return;
  try {
    if (!load_locked()) {
      recovered_corrupt_ = true;
      payloads_.clear();
    }
  } catch (const std::exception&) {
    recovered_corrupt_ = true;
    payloads_.clear();
  }
}

bool CheckpointStore::load_locked() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  BinReader reader(bytes);
  if (reader.u64() != kMagic) return false;
  if (reader.u64() != kind_) return false;
  if (reader.u64() != fingerprint_) return false;
  if (reader.u64() != units_) return false;
  std::uint64_t records = reader.u64();
  if (records > units_) return false;
  for (std::uint64_t r = 0; r < records; ++r) {
    std::uint64_t unit = reader.u64();
    if (unit >= units_) return false;
    payloads_[unit] = reader.str();
  }
  return true;
}

bool CheckpointStore::has(std::uint64_t unit) const {
  MutexLock lock(mu_);
  return payloads_.count(unit) != 0;
}

const std::string& CheckpointStore::payload(std::uint64_t unit) const {
  MutexLock lock(mu_);
  return payloads_.at(unit);
}

void CheckpointStore::commit(std::uint64_t unit, std::string payload) {
  MutexLock lock(mu_);
  payloads_[unit] = std::move(payload);
  BinWriter writer;
  writer.u64(kMagic);
  writer.u64(kind_);
  writer.u64(fingerprint_);
  writer.u64(units_);
  writer.u64(payloads_.size());
  for (const auto& [u, p] : payloads_) {
    writer.u64(u);
    writer.str(p);
  }
  try {
    atomic_write_file(path_, writer.bytes());
  } catch (const std::exception&) {
    // Durability lost for this commit; the run itself must continue.
  }
}

std::size_t CheckpointStore::completed() const {
  MutexLock lock(mu_);
  return payloads_.size();
}

void CheckpointStore::remove_file() {
  MutexLock lock(mu_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

std::uint64_t fingerprint_combine(std::uint64_t acc,
                                  std::uint64_t value) {
  return splitmix64(acc ^ (value + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t fingerprint_combine(std::uint64_t acc, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return fingerprint_combine(acc, bits);
}

}  // namespace ss
