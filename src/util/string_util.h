// Small string helpers shared across IO, CLI and table printing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

// Joins with a separator string.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

// ASCII lowercasing.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Fixed-width, '%.*f'-style numeric cell used by the table printer.
std::string format_double(double v, int precision);

// Escapes a string for inclusion in a JSON document (quotes not added).
std::string json_escape(std::string_view s);

// Escapes/unescapes one CSV field (RFC-4180 quoting).
std::string csv_escape(std::string_view field);
std::vector<std::string> csv_parse_line(std::string_view line);

// Non-throwing numeric parses for untrusted record fields. The whole
// (trimmed) field must parse; leftover characters, empty fields, signs
// on the unsigned parse, and range overflow all return false. Unlike
// std::stoul, "12abc" and "-1" are rejected instead of accepted.
[[nodiscard]] bool try_parse_u32(std::string_view field, std::uint32_t* out);
[[nodiscard]] bool try_parse_u64(std::string_view field, std::uint64_t* out);
// Accepts anything strtod does, including "nan"/"inf" — finiteness is
// the caller's policy decision, not a parse failure.
[[nodiscard]] bool try_parse_f64(std::string_view field, double* out);

}  // namespace ss
