// Tiny declarative command-line flag parser for examples and benches.
//
//   ss::Cli cli("quickstart", "Run the Fig.1 walkthrough");
//   auto& seed = cli.add_int("seed", 1, "RNG seed");
//   auto& iters = cli.add_int("max-iters", 100, "EM iteration cap");
//   cli.parse(argc, argv);              // exits on --help / bad flag
//
// Flags take the form --name=value or --name value; bools are --name.
#pragma once

#include <string>
#include <vector>

namespace ss {

class Cli {
 public:
  Cli(std::string program, std::string description);

  long long& add_int(const std::string& name, long long default_value,
                     const std::string& help);
  double& add_double(const std::string& name, double default_value,
                     const std::string& help);
  std::string& add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help);
  bool& add_flag(const std::string& name, const std::string& help);

  // Parses argv. On --help prints usage and exits(0); on an unknown or
  // malformed flag prints usage and exits(2).
  void parse(int argc, char** argv);

  // Testable form: returns false and fills `error` instead of exiting.
  // --help is reported as an error with the usage text.
  [[nodiscard]] bool try_parse(int argc, char** argv, std::string* error);

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    std::size_t index;  // into the matching value store
    std::string default_repr;
  };

  Option* find(const std::string& name);
  bool assign(Option& opt, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  // Deques not needed: stores are stable because we return references to
  // deque-like storage; we use std::vector<std::unique_ptr>-free approach
  // with fixed-capacity reservation instead. Values are held in lists to
  // keep references valid as options are added.
  std::vector<long long*> ints_;
  std::vector<double*> doubles_;
  std::vector<std::string*> strings_;
  std::vector<bool*> flags_;
};

}  // namespace ss
