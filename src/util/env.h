// Typed access to environment-variable overrides used by benches/tests.
#pragma once

#include <string>

namespace ss {

// Returns the integer value of `name`, or `fallback` when unset/invalid.
long long env_int(const char* name, long long fallback);

// Returns the double value of `name`, or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

// True when `name` is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const char* name, bool fallback = false);

// Raw string value, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace ss
