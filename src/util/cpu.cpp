#include "util/cpu.h"

#include <algorithm>
#include <cstring>

#include "util/env.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SS_CPU_X86 1
#else
#define SS_CPU_X86 0
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#define SS_CPU_CAN_PIN 1
#else
#define SS_CPU_CAN_PIN 0
#endif

namespace ss {
namespace {

CpuFeatures probe_features() {
  CpuFeatures f;
#if SS_CPU_X86 && defined(__GNUC__)
  // __builtin_cpu_supports folds in the XGETBV/OS-saved-YMM check for
  // the AVX family, so a kernel that masks AVX state reports false
  // here even when the silicon has the instructions.
  f.sse2 = __builtin_cpu_supports("sse2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

std::string probe_model_name() {
#if SS_CPU_X86
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) &&
      eax >= 0x80000004u) {
    char brand[49];
    std::memset(brand, 0, sizeof brand);
    unsigned int* out = reinterpret_cast<unsigned int*>(brand);
    for (unsigned int leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &eax, &ebx, &ecx, &edx);
      out[leaf * 4 + 0] = eax;
      out[leaf * 4 + 1] = ebx;
      out[leaf * 4 + 2] = ecx;
      out[leaf * 4 + 3] = edx;
    }
    std::string name(brand);
    // Brand strings pad with leading/trailing blanks; trim them.
    std::size_t begin = name.find_first_not_of(" \t");
    std::size_t end = name.find_last_not_of(" \t");
    if (begin == std::string::npos) return "unknown";
    return name.substr(begin, end - begin + 1);
  }
#endif
  return "unknown";
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures cached = probe_features();
  return cached;
}

const std::string& cpu_model_name() {
  static const std::string cached = probe_model_name();
  return cached;
}

std::string cpu_feature_summary() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  auto add = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  return out.empty() ? "none" : out;
}

AffinityMode affinity_mode() {
  static const AffinityMode cached = [] {
    std::string v = env_string("SS_AFFINITY", "none");
    if (v == "compact") return AffinityMode::kCompact;
    if (v == "spread") return AffinityMode::kSpread;
    return AffinityMode::kNone;
  }();
  return cached;
}

std::size_t online_cpu_count() {
  static const std::size_t cached = [] {
#if SS_CPU_CAN_PIN
    long n = sysconf(_SC_NPROCESSORS_ONLN);
    if (n > 0) return static_cast<std::size_t>(n);
#endif
    return std::size_t{1};
  }();
  return cached;
}

void apply_worker_affinity(AffinityMode mode, std::size_t index,
                           std::size_t total) {
#if SS_CPU_CAN_PIN
  if (mode == AffinityMode::kNone) return;
  std::size_t ncpu = online_cpu_count();
  if (ncpu <= 1) return;
  std::size_t cpu = 0;
  if (mode == AffinityMode::kCompact) {
    cpu = index % ncpu;
  } else {
    // Stride the workers across the online set so siblings land on
    // distant cores (separate caches / memory controllers).
    std::size_t stride =
        std::max<std::size_t>(1, ncpu / std::max<std::size_t>(1, total));
    cpu = (index * stride) % ncpu;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu), &set);
  // Best-effort: a failure (restrictive cpuset, masked cores) leaves
  // the thread where the OS put it, which is always correct.
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)mode;
  (void)index;
  (void)total;
#endif
}

}  // namespace ss
