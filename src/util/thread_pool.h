// Fixed-size worker pool used by the experiment runner and the inference
// engine (fused E-step, M-step statistics, multi-chain Gibbs). Tasks are
// type-erased closures; results flow back via std::future or the
// parallel_for interfaces. Workers are persistent and, when
// SS_AFFINITY={compact,spread} is set, pinned to cores at start-up
// (util/cpu.h) so first-touch page placement by a worker stays local
// for the worker's whole lifetime.
//
// Scheduling model. parallel_for_chunks partitions [0, count) into
// fixed-size blocks ("chunks") whose boundaries depend only on `count`
// and `grain` — never on the number of workers — so any output written
// to chunk-indexed or element-indexed slots is bit-identical no matter
// how many threads execute it. The calling thread *participates*: it
// drains chunks from the same atomic cursor as the workers, which makes
// nested parallel sections safe (a worker that issues a nested
// parallel_for_chunks simply runs the inner chunks itself instead of
// blocking on peers that may all be doing the same).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.h"

namespace ss {

class ThreadPool {
 public:
  // `threads` == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(task));
    std::future<R> fut = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return fut;
  }

  // Runs body(i) for i in [0, count), blocking until all complete.
  // Exceptions from body are rethrown (the one from the lowest chunk
  // wins). Implemented over parallel_for_chunks with a scheduling-only
  // grain, so per-index semantics are unchanged.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  // Runs body(chunk, begin, end) over fixed blocks of [0, count) with
  // `grain` elements per block (the last block may be shorter). Chunk
  // boundaries depend only on (count, grain): results written to
  // disjoint slots are bit-identical for any worker count, including
  // serial execution. The calling thread participates in the work, so
  // this may be invoked from inside a pool task without deadlock.
  // Every chunk runs even if one throws; the exception thrown from the
  // lowest-indexed failing chunk is rethrown after all chunks finish.
  void parallel_for_chunks(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& body);

  // Runs body(task) once for every task in [0, weights.size()) under an
  // LPT (longest-processing-time-first) schedule with work stealing:
  // tasks are sorted by weight (descending, index ascending on ties) and
  // greedily dealt to per-participant deques; each participant pops its
  // own deque front-to-back and, when empty, steals from the back of the
  // longest remaining deque. The calling thread participates, so nested
  // use inside a pool task cannot deadlock.
  //
  // Scheduling only ever reorders *which thread* runs a task, never what
  // the task computes — bodies that write disjoint, task-indexed slots
  // stay bit-identical for any worker count and any steal interleaving.
  // Exceptions: every task still runs; the exception from the
  // lowest-indexed failing task is rethrown at the end.
  //
  // When `task_seconds` is non-null it is resized to weights.size() and
  // task_seconds[t] receives the wall-clock seconds body(t) took (each
  // slot written by the thread that ran the task; read only after this
  // call returns).
  void parallel_tasks(const std::vector<double>& weights,
                      const std::function<void(std::size_t task)>& body,
                      std::vector<double>* task_seconds = nullptr);

  // Number of chunks parallel_for_chunks uses for (count, grain).
  static std::size_t chunk_count(std::size_t count, std::size_t grain) {
    if (count == 0) return 0;
    if (grain == 0) grain = 1;
    return (count + grain - 1) / grain;
  }

  // Deterministic ordered reduction: evaluates chunk_fn(begin, end) -> T
  // for each fixed block in parallel, then folds the per-chunk partials
  // *in chunk order* on the calling thread. For a fixed `grain` the
  // result is bit-identical regardless of thread count.
  template <typename T, typename ChunkFn, typename CombineFn>
  T ordered_reduce(std::size_t count, std::size_t grain, T init,
                   ChunkFn&& chunk_fn, CombineFn&& combine) {
    std::size_t chunks = chunk_count(count, grain);
    if (chunks == 0) return init;
    std::vector<T> partials(chunks);
    parallel_for_chunks(count, grain,
                        [&](std::size_t c, std::size_t b, std::size_t e) {
                          partials[c] = chunk_fn(b, e);
                        });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) {
      acc = combine(std::move(acc), std::move(partials[c]));
    }
    return acc;
  }

 private:
  void worker_loop();
  void enqueue(std::function<void()> task) SS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> queue_ SS_GUARDED_BY(mu_);
  std::condition_variable cv_;
  bool stop_ SS_GUARDED_BY(mu_) = false;
};

// Number of worker threads benches should use: SS_THREADS env override,
// else hardware concurrency.
std::size_t default_thread_count();

// Process-wide pool shared by the inference engine (EM-Ext, multi-chain
// Gibbs) when no explicit pool is configured. Sized by
// default_thread_count() at first use; SS_THREADS therefore controls it.
ThreadPool& global_pool();

}  // namespace ss
