// Fixed-size worker pool used by the experiment runner to execute
// independent repetitions in parallel. Deliberately minimal: tasks are
// type-erased closures; results flow back via std::future or the
// parallel_for index interface.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ss {

class ThreadPool {
 public:
  // `threads` == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(task));
    std::future<R> fut = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs body(i) for i in [0, count), blocking until all complete.
  // Exceptions from body are rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Number of worker threads benches should use: SS_THREADS env override,
// else hardware concurrency.
std::size_t default_thread_count();

}  // namespace ss
