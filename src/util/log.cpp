#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/annotations.h"

namespace ss {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SS_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void write_stdout(const std::string& text) {
  std::fwrite(text.data(), 1, text.size(), stdout);
}

void write_stderr(const std::string& text) {
  std::fwrite(text.data(), 1, text.size(), stderr);
}

void log_emit(LogLevel level, const std::string& message) {
  // Serializes writers so concurrent log lines never interleave; the
  // guarded resource is the stderr stream itself.
  static Mutex mu;
  using clock = std::chrono::system_clock;
  auto now = clock::now();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                now.time_since_epoch())
                .count();
  MutexLock lock(mu);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), tag(level),
               message.c_str());
}

}  // namespace ss
