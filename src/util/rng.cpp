#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ss {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  (*this)();
  state_ += seed;
  (*this)();
}

Pcg32::result_type Pcg32::operator()() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

void Pcg32::advance(std::uint64_t delta) {
  // Brown, "Random Number Generation with Arbitrary Strides".
  std::uint64_t cur_mult = 6364136223846793005ULL;
  std::uint64_t cur_plus = inc_;
  std::uint64_t acc_mult = 1;
  std::uint64_t acc_plus = 0;
  while (delta > 0) {
    if (delta & 1u) {
      acc_mult *= cur_mult;
      acc_plus = acc_plus * cur_mult + cur_plus;
    }
    cur_plus = (cur_mult + 1) * cur_plus;
    cur_mult *= cur_mult;
    delta >>= 1u;
  }
  state_ = acc_mult * state_ + acc_plus;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : engine_(splitmix64(seed), splitmix64(stream ^ 0xabcdef1234567890ULL)),
      seed_(seed),
      stream_(stream) {}

Rng Rng::split(std::uint64_t key) const {
  return Rng(splitmix64(seed_ ^ splitmix64(key)),
             splitmix64(stream_ + 0x9e3779b97f4a7c15ULL * (key + 1)));
}

double Rng::uniform() {
  // 53-bit mantissa from two 32-bit draws for full double resolution.
  std::uint64_t hi = engine_();
  std::uint64_t lo = engine_();
  std::uint64_t bits = (hi << 21) ^ (lo >> 11);
  return static_cast<double>(bits & ((1ULL << 53) - 1)) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint32_t Rng::uniform_u32(std::uint32_t n) {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (-n) % n;
  for (;;) {
    std::uint32_t r = engine_();
    std::uint64_t m = static_cast<std::uint64_t>(r) * n;
    if (static_cast<std::uint32_t>(m) >= threshold) {
      return static_cast<std::uint32_t>(m >> 32);
    }
  }
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(
                  uniform_u32(static_cast<std::uint32_t>(hi - lo + 1)));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  double u1 = uniform();
  double u2 = uniform();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  // ss-lint: allow(raw-log-exp): Box-Muller transform of a uniform variate, not a probability
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: all weights are zero");
  }
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::uint32_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  // ss-lint: allow(raw-log-exp): geometric inversion on a uniform variate, not a probability
  return static_cast<std::uint32_t>(std::log(u) / std::log1p(-p));
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // Inverse CDF; uniform() < 1 keeps the log argument > 0.
  // ss-lint: allow(raw-log-exp): exponential inversion on a uniform variate, not a probability
  return -mean * std::log(1.0 - uniform());
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Cumulative inverse method; n is small (<= a few hundred thousand) in
  // all library uses, and callers cache datasets, so O(n) is acceptable.
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(k, s);
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, s);
    if (r < acc) return k - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n is modest and this
  // is simpler to reason about.
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j =
        i + uniform_u32(static_cast<std::uint32_t>(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace ss
