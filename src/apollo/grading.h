// The empirical grading protocol of Section V-C.
//
// The paper collects each algorithm's top-100 assertions, merges and
// anonymizes them, has human graders mark every item True / False /
// Opinion, then de-anonymizes and scores each algorithm as
// #True / (#True + #False + #Opinion) over its own top-100. With the
// simulator, ground truth replaces the graders; the merge/anonymize step
// is preserved so per-assertion grades are shared across algorithms
// exactly as in the paper (one grade per unique assertion).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "apollo/pipeline.h"

namespace ss {

struct GradeBreakdown {
  std::size_t graded_true = 0;
  std::size_t graded_false = 0;
  std::size_t graded_opinion = 0;

  std::size_t total() const {
    return graded_true + graded_false + graded_opinion;
  }
  // The paper's metric: #True / (#True + #False + #Opinion).
  double accuracy() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(graded_true) /
                              static_cast<double>(total());
  }
};

struct EmpiricalStudyResult {
  // Per estimator name, in run order.
  std::vector<std::pair<std::string, GradeBreakdown>> per_algorithm;
  // Size of the merged grading pool (unique assertions over all top-k).
  std::size_t pool_size = 0;
};

// Runs every named estimator on the dataset, grades the merged top-k
// pool, and scores each algorithm.
EmpiricalStudyResult run_empirical_protocol(
    const Dataset& dataset, const std::vector<std::string>& estimators,
    std::size_t top_k = 100, std::uint64_t seed = 1);

}  // namespace ss
