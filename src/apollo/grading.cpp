#include "apollo/grading.h"

#include <stdexcept>
#include <unordered_map>

namespace ss {

EmpiricalStudyResult run_empirical_protocol(
    const Dataset& dataset, const std::vector<std::string>& estimators,
    std::size_t top_k, std::uint64_t seed) {
  if (dataset.truth.size() != dataset.assertion_count()) {
    throw std::invalid_argument(
        "run_empirical_protocol: dataset lacks ground truth for grading");
  }
  EmpiricalStudyResult result;

  // Phase 1: each algorithm nominates its top-k.
  std::vector<std::vector<RankedAssertion>> nominations;
  for (const std::string& name : estimators) {
    ApolloPipeline pipeline(name);
    PipelineReport report = pipeline.analyze(dataset, seed);
    nominations.push_back(report.top(top_k));
  }

  // Phase 2: merge into one anonymized grading pool; each unique
  // assertion is graded once (here: by ground truth).
  std::unordered_map<std::uint32_t, Label> grades;
  for (const auto& top : nominations) {
    for (const RankedAssertion& ra : top) {
      grades.emplace(ra.assertion, dataset.truth[ra.assertion]);
    }
  }
  result.pool_size = grades.size();

  // Phase 3: de-anonymize and score each algorithm on its own top-k.
  for (std::size_t e = 0; e < estimators.size(); ++e) {
    GradeBreakdown breakdown;
    for (const RankedAssertion& ra : nominations[e]) {
      switch (grades.at(ra.assertion)) {
        case Label::kTrue: ++breakdown.graded_true; break;
        case Label::kFalse: ++breakdown.graded_false; break;
        case Label::kOpinion: ++breakdown.graded_opinion; break;
        case Label::kUnknown:
          // An assertion the grader could not verify counts against the
          // algorithm, like Opinion.
          ++breakdown.graded_opinion;
          break;
      }
    }
    result.per_algorithm.emplace_back(estimators[e], breakdown);
  }
  return result;
}

}  // namespace ss
