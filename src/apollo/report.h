// Markdown event report generation.
//
// Turns a pipeline run into the analyst-facing artifact the Apollo tool
// produced: the most credible assertions, the loudest *suspected
// rumours* (high support, low belief — exactly the items a
// dependency-blind ranker would promote), and the most reliable sources
// by learned behaviour.
#pragma once

#include <string>

#include "apollo/pipeline.h"
#include "core/em_ext.h"

namespace ss {

struct ReportOptions {
  std::size_t top_credible = 10;
  std::size_t top_rumours = 10;
  std::size_t top_sources = 10;
  // Minimum support for the suspected-rumour list (a belief of 0.1 on a
  // single-claim assertion is unremarkable; on a 30-claim cascade it is
  // the story).
  std::size_t rumour_min_support = 3;
};

// Renders a markdown report. `em_result` supplies learned source
// parameters (for the reliable-source section); `report` supplies the
// ranking. Ground-truth labels, when present in the dataset, are shown
// as a "grade" column.
std::string render_markdown_report(const Dataset& dataset,
                                   const PipelineReport& report,
                                   const EmExtResult& em_result,
                                   const ReportOptions& options = {});

}  // namespace ss
