#include "apollo/live.h"

#include <algorithm>
#include <string>

#include "util/checkpoint.h"
#include "util/status.h"

namespace ss {

LiveApollo::LiveApollo(Digraph follows, LiveApolloConfig config)
    : config_(config),
      follows_(std::move(follows)),
      clusterer_(config.clustering),
      em_(follows_.node_count(), config.em) {}

std::uint32_t LiveApollo::ingest(const Tweet& tweet) {
  if (tweet.user >= follows_.node_count()) {
    if (!config_.drop_unknown_users) {
      throw TaxonomyError(
          ErrorCode::kIndexOutOfRange,
          "LiveApollo::ingest: user " + std::to_string(tweet.user) +
              " outside follower graph of " +
              std::to_string(follows_.node_count()) + " nodes");
    }
    ++dropped_tweets_;
    return kDroppedTweet;
  }
  std::uint32_t cluster = clusterer_.add(tweet);
  auto [it, inserted] = claims_of_cluster_.emplace(
      cluster, std::vector<Claim>{});
  it->second.push_back({tweet.user, /*assertion=*/0, tweet.time});
  if (it->second.size() == 1 || inserted ||
      std::find(active_.begin(), active_.end(), cluster) ==
          active_.end()) {
    active_.push_back(cluster);
  }
  ++window_claims_;
  return cluster;
}

LiveRefreshResult LiveApollo::refresh() {
  LiveRefreshResult result;
  if (active_.empty()) return result;
  result.window_claims = window_claims_;

  // Dense assertion space over the clusters touched this window; each
  // brings its full claim history.
  std::sort(active_.begin(), active_.end());
  active_.erase(std::unique(active_.begin(), active_.end()),
                active_.end());
  result.clusters = active_;
  std::vector<Claim> claims;
  for (std::size_t d = 0; d < active_.size(); ++d) {
    for (Claim c : claims_of_cluster_.at(active_[d])) {
      c.assertion = static_cast<std::uint32_t>(d);
      claims.push_back(c);
    }
  }

  Dataset batch;
  batch.name = "live-window";
  batch.claims =
      SourceClaimMatrix(follows_.node_count(), active_.size(), claims);
  batch.dependency =
      DependencyIndicators::from_graph(batch.claims, follows_);

  StreamingBatchResult em_result = em_.observe(batch);
  result.belief = em_result.belief;
  result.log_odds = em_result.log_odds;
  for (std::size_t d = 0; d < result.clusters.size(); ++d) {
    belief_of_cluster_[result.clusters[d]] = result.belief[d];
    log_odds_of_cluster_[result.clusters[d]] = result.log_odds[d];
  }
  active_.clear();
  window_claims_ = 0;
  return result;
}

namespace {

void save_belief_map(BinWriter& writer,
                     const std::unordered_map<std::uint32_t, double>& map) {
  std::vector<std::pair<std::uint32_t, double>> entries(map.begin(),
                                                        map.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.u64(entries.size());
  for (const auto& [k, v] : entries) {
    writer.u64(k);
    writer.f64(v);
  }
}

void load_belief_map(BinReader& reader,
                     std::unordered_map<std::uint32_t, double>& map) {
  map.clear();
  std::uint64_t n = reader.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k = reader.u64();
    double v = reader.f64();
    map.emplace(static_cast<std::uint32_t>(k), v);
  }
}

}  // namespace

void LiveApollo::save_state(BinWriter& writer) const {
  clusterer_.save_state(writer);
  em_.save_state(writer);
  std::vector<std::uint32_t> keys;
  keys.reserve(claims_of_cluster_.size());
  for (const auto& [k, v] : claims_of_cluster_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  writer.u64(keys.size());
  for (std::uint32_t k : keys) {
    const std::vector<Claim>& claims = claims_of_cluster_.at(k);
    writer.u64(k);
    writer.u64(claims.size());
    for (const Claim& c : claims) {
      writer.u64(c.source);
      writer.u64(c.assertion);
      writer.f64(c.time);
    }
  }
  writer.u64(active_.size());
  for (std::uint32_t c : active_) writer.u64(c);
  writer.u64(window_claims_);
  writer.u64(dropped_tweets_);
  save_belief_map(writer, belief_of_cluster_);
  save_belief_map(writer, log_odds_of_cluster_);
}

void LiveApollo::load_state(BinReader& reader) {
  clusterer_.load_state(reader);
  em_.load_state(reader);
  claims_of_cluster_.clear();
  std::uint64_t clusters = reader.u64();
  for (std::uint64_t i = 0; i < clusters; ++i) {
    std::uint32_t k = static_cast<std::uint32_t>(reader.u64());
    std::uint64_t count = reader.u64();
    std::vector<Claim> claims;
    claims.reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      Claim c;
      c.source = static_cast<std::uint32_t>(reader.u64());
      c.assertion = static_cast<std::uint32_t>(reader.u64());
      c.time = reader.f64();
      claims.push_back(c);
    }
    claims_of_cluster_.emplace(k, std::move(claims));
  }
  std::uint64_t actives = reader.u64();
  active_.clear();
  active_.reserve(actives);
  for (std::uint64_t i = 0; i < actives; ++i) {
    active_.push_back(static_cast<std::uint32_t>(reader.u64()));
  }
  window_claims_ = reader.u64();
  dropped_tweets_ = reader.u64();
  load_belief_map(reader, belief_of_cluster_);
  load_belief_map(reader, log_odds_of_cluster_);
}

std::vector<std::pair<std::uint32_t, double>> LiveApollo::top(
    std::size_t k) const {
  std::vector<std::pair<std::uint32_t, double>> entries(
      log_odds_of_cluster_.begin(), log_odds_of_cluster_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace ss
