#include "apollo/live.h"

#include <algorithm>
#include <string>

#include "util/status.h"

namespace ss {

LiveApollo::LiveApollo(Digraph follows, LiveApolloConfig config)
    : config_(config),
      follows_(std::move(follows)),
      clusterer_(config.clustering),
      em_(follows_.node_count(), config.em) {}

std::uint32_t LiveApollo::ingest(const Tweet& tweet) {
  if (tweet.user >= follows_.node_count()) {
    if (!config_.drop_unknown_users) {
      throw TaxonomyError(
          ErrorCode::kIndexOutOfRange,
          "LiveApollo::ingest: user " + std::to_string(tweet.user) +
              " outside follower graph of " +
              std::to_string(follows_.node_count()) + " nodes");
    }
    ++dropped_tweets_;
    return kDroppedTweet;
  }
  std::uint32_t cluster = clusterer_.add(tweet);
  auto [it, inserted] = claims_of_cluster_.emplace(
      cluster, std::vector<Claim>{});
  it->second.push_back({tweet.user, /*assertion=*/0, tweet.time});
  if (it->second.size() == 1 || inserted ||
      std::find(active_.begin(), active_.end(), cluster) ==
          active_.end()) {
    active_.push_back(cluster);
  }
  ++window_claims_;
  return cluster;
}

LiveRefreshResult LiveApollo::refresh() {
  LiveRefreshResult result;
  if (active_.empty()) return result;
  result.window_claims = window_claims_;

  // Dense assertion space over the clusters touched this window; each
  // brings its full claim history.
  std::sort(active_.begin(), active_.end());
  active_.erase(std::unique(active_.begin(), active_.end()),
                active_.end());
  result.clusters = active_;
  std::vector<Claim> claims;
  for (std::size_t d = 0; d < active_.size(); ++d) {
    for (Claim c : claims_of_cluster_.at(active_[d])) {
      c.assertion = static_cast<std::uint32_t>(d);
      claims.push_back(c);
    }
  }

  Dataset batch;
  batch.name = "live-window";
  batch.claims =
      SourceClaimMatrix(follows_.node_count(), active_.size(), claims);
  batch.dependency =
      DependencyIndicators::from_graph(batch.claims, follows_);

  StreamingBatchResult em_result = em_.observe(batch);
  result.belief = em_result.belief;
  result.log_odds = em_result.log_odds;
  for (std::size_t d = 0; d < result.clusters.size(); ++d) {
    belief_of_cluster_[result.clusters[d]] = result.belief[d];
    log_odds_of_cluster_[result.clusters[d]] = result.log_odds[d];
  }
  active_.clear();
  window_claims_ = 0;
  return result;
}

std::vector<std::pair<std::uint32_t, double>> LiveApollo::top(
    std::size_t k) const {
  std::vector<std::pair<std::uint32_t, double>> entries(
      log_odds_of_cluster_.begin(), log_odds_of_cluster_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace ss
