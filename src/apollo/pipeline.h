// Apollo-style fact-finding pipeline.
//
// The paper integrates EM-Ext into the Apollo fact-finding tool; this
// module is that tool's equivalent: it ties together ingestion (the
// Twitter substrate's clustering + dependency extraction), an estimator
// chosen by name, and ranked credible-assertion output.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "twitter/builder.h"

namespace ss {

struct RankedAssertion {
  std::uint32_t assertion = 0;
  double belief = 0.0;
  Label truth = Label::kUnknown;  // ground truth when available
  std::size_t support = 0;        // number of claimants
};

struct PipelineReport {
  std::string estimator;
  EstimateResult estimate;
  std::vector<RankedAssertion> ranked;  // descending belief

  // Top-k slice.
  std::vector<RankedAssertion> top(std::size_t k) const;
};

class ApolloPipeline {
 public:
  // `estimator_name` must be one of estimator_names().
  explicit ApolloPipeline(std::string estimator_name);

  const std::string& estimator_name() const { return estimator_name_; }

  // Runs the estimator on an ingested dataset.
  PipelineReport analyze(const Dataset& dataset,
                         std::uint64_t seed = 1) const;

  // Full path: raw simulation -> ingestion -> estimation.
  PipelineReport analyze(const TwitterSimulation& sim,
                         std::uint64_t seed = 1) const;

 private:
  std::string estimator_name_;
  std::unique_ptr<Estimator> estimator_;
};

}  // namespace ss
