#include "apollo/pipeline.h"

#include "estimators/registry.h"

namespace ss {

std::vector<RankedAssertion> PipelineReport::top(std::size_t k) const {
  k = std::min(k, ranked.size());
  return {ranked.begin(), ranked.begin() + static_cast<long>(k)};
}

ApolloPipeline::ApolloPipeline(std::string estimator_name)
    : estimator_name_(std::move(estimator_name)),
      estimator_(make_estimator(estimator_name_)) {}

PipelineReport ApolloPipeline::analyze(const Dataset& dataset,
                                       std::uint64_t seed) const {
  PipelineReport report;
  report.estimator = estimator_name_;
  report.estimate = estimator_->run(dataset, seed);

  auto order = report.estimate.ranking();
  report.ranked.reserve(order.size());
  for (std::uint32_t j : order) {
    RankedAssertion ra;
    ra.assertion = j;
    ra.belief = report.estimate.belief[j];
    ra.truth = dataset.truth.empty() ? Label::kUnknown : dataset.truth[j];
    ra.support = dataset.claims.support(j);
    report.ranked.push_back(ra);
  }
  return report;
}

PipelineReport ApolloPipeline::analyze(const TwitterSimulation& sim,
                                       std::uint64_t seed) const {
  BuiltDataset built = build_dataset(sim);
  return analyze(built.dataset, seed);
}

}  // namespace ss
