#include "apollo/report.h"

#include <algorithm>

#include "util/string_util.h"

namespace ss {
namespace {

void append_assertion_row(std::string& out, const Dataset& dataset,
                          const RankedAssertion& ra, bool graded) {
  out += strprintf("| %u | %.4f | %zu |", ra.assertion, ra.belief,
                   ra.support);
  if (graded) {
    out += strprintf(" %s |", label_name(ra.truth));
  }
  out += '\n';
  (void)dataset;
}

}  // namespace

std::string render_markdown_report(const Dataset& dataset,
                                   const PipelineReport& report,
                                   const EmExtResult& em_result,
                                   const ReportOptions& options) {
  bool graded = dataset.truth.size() == dataset.assertion_count() &&
                !dataset.truth.empty();
  DatasetSummary summary = dataset.summary();

  std::string out;
  out += strprintf("# Fact-finding report — %s\n\n",
                   dataset.name.c_str());
  out += strprintf(
      "%zu assertions from %zu sources (%zu claims, %zu original). "
      "Estimator: %s.\n\n",
      summary.assertions, summary.sources, summary.total_claims,
      summary.original_claims, report.estimator.c_str());

  out += "## Most credible assertions\n\n";
  out += graded ? "| assertion | belief | support | grade |\n|---|---|---|---|\n"
                : "| assertion | belief | support |\n|---|---|---|\n";
  for (const RankedAssertion& ra : report.top(options.top_credible)) {
    append_assertion_row(out, dataset, ra, graded);
  }

  out += "\n## Suspected rumours (well-supported, low belief)\n\n";
  out += graded ? "| assertion | belief | support | grade |\n|---|---|---|---|\n"
                : "| assertion | belief | support |\n|---|---|---|\n";
  std::vector<RankedAssertion> rumours;
  for (auto it = report.ranked.rbegin(); it != report.ranked.rend();
       ++it) {
    if (it->support >= options.rumour_min_support) {
      rumours.push_back(*it);
      if (rumours.size() >= options.top_rumours) break;
    }
  }
  for (const RankedAssertion& ra : rumours) {
    append_assertion_row(out, dataset, ra, graded);
  }

  out += "\n## Most reliable sources (learned behaviour)\n\n";
  out += "| source | a (indep true-claim) | b (indep false-claim) | "
         "claims |\n|---|---|---|---|\n";
  // Rank sources by discrimination a - b among those with enough claims
  // for the estimate to mean something.
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(dataset.source_count()); ++i) {
    if (dataset.claims.claims_of(i).size() >= 3) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     const auto& sx = em_result.params.source[x];
                     const auto& sy = em_result.params.source[y];
                     return sx.a - sx.b > sy.a - sy.b;
                   });
  std::size_t shown =
      std::min<std::size_t>(options.top_sources, order.size());
  for (std::size_t r = 0; r < shown; ++r) {
    const SourceParams& s = em_result.params.source[order[r]];
    out += strprintf("| %u | %.4f | %.4f | %zu |\n", order[r], s.a, s.b,
                     dataset.claims.claims_of(order[r]).size());
  }
  return out;
}

}  // namespace ss
