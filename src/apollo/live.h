// Live (incremental) Apollo pipeline.
//
// The batch pipeline re-ingests and re-estimates from scratch; during a
// breaking event the stream never stops. LiveApollo maintains
//   * an IncrementalClusterer assigning each arriving tweet to a stable
//     assertion cluster,
//   * a per-window claim buffer, and
//   * a StreamingEmExt whose per-source sufficient statistics persist
//     across refreshes,
// so each refresh() costs O(window), not O(history). Beliefs are tracked
// per global cluster id and updated by the latest refresh that touched
// the cluster.
#pragma once

#include <unordered_map>

#include "core/streaming_em.h"
#include "graph/digraph.h"
#include "twitter/clustering.h"

namespace ss {

struct LiveApolloConfig {
  ClusteringConfig clustering;
  StreamingEmConfig em;
  // A tweet from a user id outside the follower graph has no dependency
  // information and previously blew up deep inside refresh() (matrix
  // construction rejects the out-of-range source). Default: drop it at
  // ingest, count it, and return LiveApollo::kDroppedTweet. Set false
  // to throw TaxonomyError(kIndexOutOfRange) at ingest instead.
  bool drop_unknown_users = true;
};

struct LiveRefreshResult {
  // Global cluster ids active in the refreshed window, with posteriors.
  std::vector<std::uint32_t> clusters;
  std::vector<double> belief;
  std::vector<double> log_odds;
  std::size_t window_claims = 0;
};

class LiveApollo {
 public:
  // Returned by ingest() for a tweet dropped because its user is not a
  // node of the follower graph.
  static constexpr std::uint32_t kDroppedTweet = 0xffffffffu;

  // `follows` must cover all user ids that will ever tweet (edge u -> v
  // means u follows v); it drives the dependency indicators.
  LiveApollo(Digraph follows, LiveApolloConfig config = {});

  // Feeds one tweet (arrival order). Returns its cluster id, or
  // kDroppedTweet when the tweet's user is outside the follower graph
  // (see LiveApolloConfig::drop_unknown_users).
  std::uint32_t ingest(const Tweet& tweet);

  // Folds the buffered window into the streaming estimator and clears
  // the buffer. No-op result when the window is empty.
  LiveRefreshResult refresh();

  // Latest belief per cluster (clusters never refreshed are absent).
  const std::unordered_map<std::uint32_t, double>& beliefs() const {
    return belief_of_cluster_;
  }
  // Top-k clusters by latest log-odds.
  std::vector<std::pair<std::uint32_t, double>> top(std::size_t k) const;

  const ModelParams& params() const { return em_.params(); }
  std::size_t clusters_seen() const { return clusterer_.cluster_count(); }
  std::size_t refreshes() const { return em_.batches_seen(); }
  // Tweets dropped at ingest because their user was unknown.
  std::size_t dropped_tweets() const { return dropped_tweets_; }
  // Sequence number the next refresh() batch will carry (delegates to
  // the streaming estimator; see the batch-ordering contract in
  // core/streaming_em.h).
  std::uint64_t next_sequence() const { return em_.next_sequence(); }

  // Bit-exact serialization of the full pipeline state (clusterer,
  // estimator, claim history, window buffer, beliefs). The bytes are
  // canonical — unordered-map iteration order never leaks in — so two
  // pipelines that processed the same tweets serialize identically and
  // the storm harness can compare crash/resume state by byte equality.
  // The follower graph and config are not serialized; the resuming
  // caller reconstructs with the same ones (graph mismatch surfaces as
  // a source-universe error from StreamingEmExt::load_state).
  void save_state(BinWriter& writer) const;
  void load_state(BinReader& reader);

 private:
  LiveApolloConfig config_;
  Digraph follows_;
  IncrementalClusterer clusterer_;
  StreamingEmExt em_;
  // Full claim history per cluster: a refresh re-presents every claim of
  // the clusters its window touched, so an assertion's belief always
  // reflects its accumulated evidence (the window only decides *which*
  // assertions are re-evaluated).
  std::unordered_map<std::uint32_t, std::vector<Claim>>
      claims_of_cluster_;
  std::vector<std::uint32_t> active_;  // clusters touched this window
  std::size_t window_claims_ = 0;
  std::size_t dropped_tweets_ = 0;
  std::unordered_map<std::uint32_t, double> belief_of_cluster_;
  std::unordered_map<std::uint32_t, double> log_odds_of_cluster_;
};

}  // namespace ss
