// Level-two dependency forests (Section V-A of the paper).
//
// The simulation generator organizes sources as a forest of tau trees of
// depth two: each tree has one independent "root source" and zero or more
// "leaf sources" that follow (only) their root. tau = n reduces to fully
// independent sources; tau = 1 makes a single root followed by everyone.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"

namespace ss {

struct DependencyForest {
  // root_of[i] == i for roots; otherwise the index of i's (single) root.
  std::vector<std::size_t> root_of;
  std::vector<std::size_t> roots;  // the tau root indices

  std::size_t source_count() const { return root_of.size(); }
  bool is_root(std::size_t i) const { return root_of[i] == i; }

  // The equivalent follows-graph: each leaf follows its root.
  Digraph to_digraph() const;
};

// Builds a forest of `tau` level-two trees over `n` sources.
// Roots are the first `tau` sources after a random permutation; remaining
// sources are assigned to roots uniformly at random. Requires
// 1 <= tau <= n.
DependencyForest make_level_two_forest(std::size_t n, std::size_t tau,
                                       Rng& rng);

// Deterministic variant used by tests: roots are sources 0..tau-1 and
// leaves are dealt round-robin.
DependencyForest make_level_two_forest_round_robin(std::size_t n,
                                                   std::size_t tau);

}  // namespace ss
