// Directed "follows" graph over sources.
//
// Edge u -> v means "u follows v", i.e. v's posts appear on u's timeline
// and v is an *ancestor* of u in the paper's terminology (Section II-A).
// The graph backs both the dependency-indicator computation (a claim by u
// is dependent iff some ancestor of u asserted the same thing earlier) and
// the Twitter substrate's cascade propagation.
#pragma once

#include <cstddef>
#include <vector>

namespace ss {

class Digraph {
 public:
  explicit Digraph(std::size_t node_count = 0);

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  // Adds edge u -> v ("u follows v"). Self-loops and duplicates are
  // ignored (a source is never its own ancestor; one following suffices).
  void add_edge(std::size_t u, std::size_t v);

  bool has_edge(std::size_t u, std::size_t v) const;

  // Sources that `u` follows (u's direct ancestors).
  const std::vector<std::size_t>& following(std::size_t u) const;
  // Sources that follow `u` (u's direct descendants / audience).
  const std::vector<std::size_t>& followers(std::size_t u) const;

  // Transitive ancestors of u (everyone whose posts can reach u along
  // follow edges), excluding u itself unless u lies on a cycle through
  // itself. BFS; O(V + E).
  std::vector<std::size_t> ancestors(std::size_t u) const;

  // Convenience: boolean reachability mask of ancestors for hot loops.
  std::vector<char> ancestor_mask(std::size_t u) const;

  std::size_t out_degree(std::size_t u) const { return out_[u].size(); }
  std::size_t in_degree(std::size_t u) const { return in_[u].size(); }

 private:
  std::vector<std::vector<std::size_t>> out_;  // u -> followees
  std::vector<std::vector<std::size_t>> in_;   // u -> followers
  std::size_t edge_count_ = 0;
};

}  // namespace ss
