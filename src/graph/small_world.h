// Watts-Strogatz small-world follower graphs.
//
// An alternative social topology to preferential attachment: high
// clustering (friend circles) with a few long-range links. Useful for
// sensitivity studies — cascade behaviour, and therefore the value of
// dependency-awareness, differs between "celebrity" (heavy-tail) and
// "community" (small-world) networks.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "util/rng.h"

namespace ss {

struct SmallWorldConfig {
  std::size_t nodes = 1000;
  // Each node follows its k nearest ring neighbours (k even, >= 2).
  std::size_t neighbors = 4;
  // Probability of rewiring each ring edge to a uniform target.
  double rewire_prob = 0.1;
};

// Directed variant of the Watts-Strogatz construction: node u follows
// its k/2 ring successors and k/2 predecessors, each edge rewired to a
// uniformly random target with probability rewire_prob (no self-loops;
// duplicate rewires are skipped). Throws std::invalid_argument on
// degenerate parameters (k odd, k >= nodes).
Digraph make_small_world(const SmallWorldConfig& config, Rng& rng);

}  // namespace ss
