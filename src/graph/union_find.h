// Disjoint-set forest (union by size, path halving).
//
// The sharding layer (src/data/shard.*) partitions the source-claim
// incidence into connected components: two assertions are connected
// when some source touches both (a claim or an exposed cell in each).
// At 10^6+ elements the find/union mix is essentially linear, so the
// component pass costs one scan of the incidence.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace ss {

class UnionFind {
 public:
  explicit UnionFind(std::size_t count)
      : parent_(count), size_(count, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::size_t count() const { return parent_.size(); }

  // Representative of x's set. Path halving: every probed node is
  // re-pointed at its grandparent, amortizing future finds without the
  // second pass full compression needs.
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Merges the sets holding a and b; returns the surviving root.
  // Union by size keeps the forest depth logarithmic before halving.
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    std::uint32_t ra = find(a);
    std::uint32_t rb = find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool same(std::uint32_t a, std::uint32_t b) {
    return find(a) == find(b);
  }

  // Size of the set holding x.
  std::size_t set_size(std::uint32_t x) { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace ss
