#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace ss {

Digraph::Digraph(std::size_t node_count)
    : out_(node_count), in_(node_count) {}

void Digraph::add_edge(std::size_t u, std::size_t v) {
  assert(u < out_.size() && v < out_.size());
  if (u == v) return;
  if (has_edge(u, v)) return;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
}

bool Digraph::has_edge(std::size_t u, std::size_t v) const {
  assert(u < out_.size() && v < out_.size());
  return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
}

const std::vector<std::size_t>& Digraph::following(std::size_t u) const {
  assert(u < out_.size());
  return out_[u];
}

const std::vector<std::size_t>& Digraph::followers(std::size_t u) const {
  assert(u < in_.size());
  return in_[u];
}

std::vector<std::size_t> Digraph::ancestors(std::size_t u) const {
  std::vector<char> mask = ancestor_mask(u);
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < mask.size(); ++v) {
    if (mask[v]) out.push_back(v);
  }
  return out;
}

std::vector<char> Digraph::ancestor_mask(std::size_t u) const {
  assert(u < out_.size());
  std::vector<char> seen(out_.size(), 0);
  std::deque<std::size_t> frontier(out_[u].begin(), out_[u].end());
  for (std::size_t v : out_[u]) seen[v] = 1;
  while (!frontier.empty()) {
    std::size_t v = frontier.front();
    frontier.pop_front();
    for (std::size_t w : out_[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        frontier.push_back(w);
      }
    }
  }
  seen[u] = 0;  // a node is not its own ancestor
  return seen;
}

}  // namespace ss
