#include "graph/pref_attach.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ss {

Digraph make_preferential_attachment(const PrefAttachConfig& config,
                                     Rng& rng) {
  if (config.nodes == 0) {
    throw std::invalid_argument("make_preferential_attachment: empty graph");
  }
  Digraph g(config.nodes);
  if (config.nodes == 1) return g;

  // repeated[i] lists target nodes once per incoming edge plus once per
  // node, implementing the classic "urn" that makes sampling proportional
  // to (in_degree + 1).
  std::vector<std::size_t> urn;
  urn.reserve(config.nodes * (config.edges_per_node + 1));
  urn.push_back(0);

  for (std::size_t u = 1; u < config.nodes; ++u) {
    std::size_t want = std::min(config.edges_per_node, u);
    std::size_t attempts = 0;
    std::size_t made = 0;
    // Rejection on duplicates; bounded attempts keep worst case linear.
    while (made < want && attempts < want * 20) {
      ++attempts;
      std::size_t v;
      if (rng.uniform() < config.uniform_mix) {
        v = rng.uniform_u32(static_cast<std::uint32_t>(u));
      } else {
        v = urn[rng.uniform_u32(static_cast<std::uint32_t>(urn.size()))];
      }
      if (v == u || g.has_edge(u, v)) continue;
      g.add_edge(u, v);
      urn.push_back(v);
      ++made;
    }
    urn.push_back(u);
  }
  return g;
}

}  // namespace ss
