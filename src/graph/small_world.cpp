#include "graph/small_world.h"

#include <stdexcept>

namespace ss {

Digraph make_small_world(const SmallWorldConfig& config, Rng& rng) {
  std::size_t n = config.nodes;
  std::size_t k = config.neighbors;
  if (n == 0) {
    throw std::invalid_argument("make_small_world: empty graph");
  }
  if (k % 2 != 0 || k == 0 || k >= n) {
    throw std::invalid_argument(
        "make_small_world: neighbors must be even, positive and < nodes");
  }
  Digraph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      for (long sign : {+1L, -1L}) {
        std::size_t v =
            (u + n + static_cast<std::size_t>(
                         (sign * static_cast<long>(d) + static_cast<long>(n)) %
                         static_cast<long>(n))) %
            n;
        if (rng.bernoulli(config.rewire_prob)) {
          v = rng.uniform_u32(static_cast<std::uint32_t>(n));
        }
        if (v != u) g.add_edge(u, v);
      }
    }
  }
  return g;
}

}  // namespace ss
