#include "graph/forest.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace ss {

Digraph DependencyForest::to_digraph() const {
  Digraph g(root_of.size());
  for (std::size_t i = 0; i < root_of.size(); ++i) {
    if (!is_root(i)) g.add_edge(i, root_of[i]);
  }
  return g;
}

DependencyForest make_level_two_forest(std::size_t n, std::size_t tau,
                                       Rng& rng) {
  if (tau == 0 || tau > n) {
    throw std::invalid_argument("make_level_two_forest: need 1 <= tau <= n");
  }
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  DependencyForest forest;
  forest.root_of.assign(n, 0);
  forest.roots.assign(perm.begin(), perm.begin() + static_cast<long>(tau));
  for (std::size_t r : forest.roots) forest.root_of[r] = r;
  for (std::size_t k = tau; k < n; ++k) {
    std::size_t leaf = perm[k];
    std::size_t root =
        forest.roots[rng.uniform_u32(static_cast<std::uint32_t>(tau))];
    forest.root_of[leaf] = root;
  }
  return forest;
}

DependencyForest make_level_two_forest_round_robin(std::size_t n,
                                                   std::size_t tau) {
  if (tau == 0 || tau > n) {
    throw std::invalid_argument(
        "make_level_two_forest_round_robin: need 1 <= tau <= n");
  }
  DependencyForest forest;
  forest.root_of.assign(n, 0);
  forest.roots.resize(tau);
  std::iota(forest.roots.begin(), forest.roots.end(), 0);
  for (std::size_t i = 0; i < tau; ++i) forest.root_of[i] = i;
  for (std::size_t i = tau; i < n; ++i) {
    forest.root_of[i] = (i - tau) % tau;
  }
  return forest;
}

}  // namespace ss
