// Preferential-attachment follower-graph generator for the Twitter
// substrate. Produces the heavy-tailed in-degree ("celebrity") structure
// real follow graphs exhibit, which is what makes a few sources' rumours
// propagate widely — the failure mode dependency-aware fact-finding
// targets.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "util/rng.h"

namespace ss {

struct PrefAttachConfig {
  std::size_t nodes = 1000;
  // Follow edges each new node creates (Barabasi-Albert m parameter).
  std::size_t edges_per_node = 3;
  // Blend toward uniform attachment in [0,1]; 0 = pure preferential.
  double uniform_mix = 0.15;
};

// Each arriving node follows `edges_per_node` earlier nodes, chosen by
// in-degree-proportional sampling (with `uniform_mix` uniform smoothing).
// Edge u -> v means u follows v; v accumulates followers.
Digraph make_preferential_attachment(const PrefAttachConfig& config,
                                     Rng& rng);

}  // namespace ss
