// .ssd — the mmap-able binary dataset format for million-source runs.
//
// A packed, sealed, random-access image of one fact-finding problem
// instance (docs/MODEL.md §14):
//
//   [fixed header]   magic | version | fingerprint | n | m | claims |
//                    exposed | section count | payload digest
//   [section table]  {id, byte offset, byte size} per section
//   [header digest]  fnv1a64 over everything above (the checkpoint
//                    convention, util/checkpoint.h)
//   [sections]       8-byte aligned CSR payloads, both orientations:
//                    per-assertion claimant/exposed lists and
//                    per-source claim/exposure lists, claim times,
//                    truth labels, dataset name
//
// Opening a file costs one mmap plus an O(sections + offsets) header
// check — milliseconds at 10^6 sources, versus seconds of JSONL/CSV
// parsing (bench_scale records the ratio). The header digest seals the
// metadata; the payload digest is stored but verified only on demand
// (`verify_payload`, ss_pack --verify), so corruption anywhere is
// detectable without taxing every open with a full-file scan.
//
// Every load failure is classified and located, never UB: kIoError for
// filesystem problems, kCheckpointCorrupt for magic/version/digest/
// truncation defects ("... at byte N"), kIndexOutOfRange for CSR
// defects. Golden corrupt files live in tests/fixtures/corrupt/ssd/.
//
// SsdWriter streams: callers emit one assertion column at a time
// (claims + exposed cells), the writer spools column sections to
// sidecar temp files and keeps only O(n + m) counters in RAM, then
// finish() assembles the final image, derives the row-oriented
// sections by a counting-sort transpose inside the mapped output, and
// commits with the atomic temp+rename convention. A 10^6-source
// cascade therefore packs without ever materializing a Dataset.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace ss {

// "ssd1" + CR LF EOF LF: like PNG's signature, the tail bytes catch
// text-mode transfer mangling before any field is trusted.
inline constexpr std::uint64_t kSsdMagic = 0x0A1A0A0D31647373ull;
inline constexpr std::uint64_t kSsdVersion = 1;

// Section ids (all required in version 1).
enum class SsdSection : std::uint64_t {
  kName = 1,          // char[...]
  kTruth = 2,         // u8[m] (Label values)
  kColClaimOff = 3,   // u64[m+1]
  kColClaimants = 4,  // u32[claims], ascending per column
  kColClaimTimes = 5, // f64[claims], aligned with kColClaimants
  kColExpOff = 6,     // u64[m+1]
  kColExposed = 7,    // u32[exposed], ascending per column
  kRowClaimOff = 8,   // u64[n+1]
  kRowClaims = 9,     // u32[claims], ascending per row
  kRowClaimTimes = 10,// f64[claims], aligned with kRowClaims
  kRowExpOff = 11,    // u64[n+1]
  kRowExposed = 12,   // u32[exposed], ascending per row
};
inline constexpr std::size_t kSsdSectionCount = 12;

struct SsdStats {
  std::size_t sources = 0;
  std::size_t assertions = 0;
  std::size_t claims = 0;
  std::size_t exposed = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t bytes = 0;
};

// Read-only mmap view. Move-only; the mapping lives as long as the
// view. All spans point into the mapping — zero copies.
class SsdView {
 public:
  SsdView() = default;
  SsdView(SsdView&& other) noexcept { *this = std::move(other); }
  SsdView& operator=(SsdView&& other) noexcept;
  SsdView(const SsdView&) = delete;
  SsdView& operator=(const SsdView&) = delete;
  ~SsdView();

  // Maps and validates `path` (header digest, section table, CSR
  // offset monotonicity — not the payload digest; see verify_payload).
  [[nodiscard]] static Expected<SsdView> open(const std::string& path);
  // Throwing form (TaxonomyError carries the classified code).
  static SsdView open_or_throw(const std::string& path);

  bool valid() const { return base_ != nullptr; }
  std::size_t source_count() const { return n_; }
  std::size_t assertion_count() const { return m_; }
  std::size_t claim_count() const { return claims_; }
  std::size_t exposed_cell_count() const { return exposed_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::size_t file_size() const { return map_size_; }
  std::string name() const { return {name_.begin(), name_.end()}; }

  // Column (per-assertion) views.
  std::span<const std::uint32_t> claimants_of(std::size_t j) const {
    return slice(col_claimants_, col_claim_off_, j);
  }
  std::span<const double> claimant_times_of(std::size_t j) const {
    return slice(col_claim_times_, col_claim_off_, j);
  }
  std::span<const std::uint32_t> exposed_sources(std::size_t j) const {
    return slice(col_exposed_, col_exp_off_, j);
  }
  // Row (per-source) views.
  std::span<const std::uint32_t> claims_of(std::size_t i) const {
    return slice(row_claims_, row_claim_off_, i);
  }
  std::span<const double> claim_times_of(std::size_t i) const {
    return slice(row_claim_times_, row_claim_off_, i);
  }
  std::span<const std::uint32_t> exposed_assertions(std::size_t i) const {
    return slice(row_exposed_, row_exp_off_, i);
  }
  Label truth(std::size_t j) const {
    return static_cast<Label>(truth_[j]);
  }
  std::span<const std::uint8_t> truth_raw() const { return truth_; }

  // Recomputes the payload digest over every section (full-file scan)
  // and checks it against the sealed header value. `why` receives the
  // classified mismatch when non-null.
  [[nodiscard]] bool verify_payload(Error* why = nullptr) const;

  // Expands the view into an ordinary in-memory Dataset (tests, small
  // files, tools). Costs the full materialization the view exists to
  // avoid — ShardedDataset::build(const SsdView&) is the scale path.
  Dataset materialize() const;

 private:
  template <typename T>
  std::span<const T> slice(std::span<const T> data,
                           std::span<const std::uint64_t> off,
                           std::size_t at) const {
    return data.subspan(off[at], off[at + 1] - off[at]);
  }

  void unmap();

  const char* base_ = nullptr;  // mmap base (or owned buffer fallback)
  std::size_t map_size_ = 0;
  bool mapped_ = false;  // true: munmap on destroy; false: delete[]
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t claims_ = 0;
  std::size_t exposed_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t payload_digest_ = 0;
  std::span<const char> name_;
  std::span<const std::uint8_t> truth_;
  std::span<const std::uint64_t> col_claim_off_;
  std::span<const std::uint32_t> col_claimants_;
  std::span<const double> col_claim_times_;
  std::span<const std::uint64_t> col_exp_off_;
  std::span<const std::uint32_t> col_exposed_;
  std::span<const std::uint64_t> row_claim_off_;
  std::span<const std::uint32_t> row_claims_;
  std::span<const double> row_claim_times_;
  std::span<const std::uint64_t> row_exp_off_;
  std::span<const std::uint32_t> row_exposed_;
  // Section table copy (id -> offset/size) for verify_payload.
  std::vector<std::uint64_t> table_;
};

// Streaming writer; see the file comment for the lifecycle. Claims and
// exposed cells within one assertion may arrive in any source order —
// the writer sorts each column before spooling it (columns are small;
// the file stores ascending lists). Throws std::runtime_error on IO
// failure and std::invalid_argument on misuse (source id out of range,
// claim outside begin_assertion).
class SsdWriter {
 public:
  SsdWriter(std::string path, std::size_t sources,
            std::string name = "dataset");
  ~SsdWriter();
  SsdWriter(const SsdWriter&) = delete;
  SsdWriter& operator=(const SsdWriter&) = delete;

  void begin_assertion(Label truth = Label::kUnknown);
  void claim(std::uint32_t source, double time);
  void exposed(std::uint32_t source);

  // Assembles and atomically commits the file; returns the final
  // shape. The writer is spent afterwards.
  SsdStats finish();

 private:
  void flush_column();
  struct Impl;
  Impl* impl_;
};

// Convenience one-shots.
SsdStats write_ssd(const Dataset& dataset, const std::string& path);
// open + materialize, throwing form.
Dataset load_ssd(const std::string& path);

}  // namespace ss
