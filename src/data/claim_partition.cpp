#include "data/claim_partition.h"

#include <stdexcept>

namespace ss {
namespace {

// Splits `ids` (ascending) into members / non-members of `marks`
// (ascending) with one two-pointer sweep, appending to flat CSR arrays.
// Returns the aligned membership flags.
void split_sorted(const std::vector<std::uint32_t>& ids,
                  const std::vector<std::uint32_t>& marks,
                  std::vector<std::uint32_t>& in_out,
                  std::vector<std::uint32_t>& out_out,
                  std::vector<char>* flags_out) {
  std::size_t k = 0;
  for (std::uint32_t id : ids) {
    while (k < marks.size() && marks[k] < id) ++k;
    bool marked = k < marks.size() && marks[k] == id;
    if (marked) {
      in_out.push_back(id);
    } else {
      out_out.push_back(id);
    }
    if (flags_out) flags_out->push_back(marked ? 1 : 0);
  }
}

}  // namespace

ClaimPartition ClaimPartition::build(const SourceClaimMatrix& sc,
                                     const DependencyIndicators& dep) {
  if (dep.source_count() != sc.source_count() ||
      dep.assertion_count() != sc.assertion_count()) {
    throw std::invalid_argument(
        "ClaimPartition::build: dependency/matrix shape mismatch");
  }
  std::size_t n = sc.source_count();
  std::size_t m = sc.assertion_count();

  ClaimPartition part;
  part.flag_off_.reserve(m + 1);
  part.a_dep_off_.reserve(m + 1);
  part.a_indep_off_.reserve(m + 1);
  part.flags_.reserve(sc.claim_count());
  part.flag_off_.push_back(0);
  part.a_dep_off_.push_back(0);
  part.a_indep_off_.push_back(0);
  for (std::size_t j = 0; j < m; ++j) {
    split_sorted(sc.claimants_of(j), dep.exposed_sources(j), part.a_dep_,
                 part.a_indep_, &part.flags_);
    part.flag_off_.push_back(part.flags_.size());
    part.a_dep_off_.push_back(part.a_dep_.size());
    part.a_indep_off_.push_back(part.a_indep_.size());
  }

  part.s_dep_off_.reserve(n + 1);
  part.s_indep_off_.reserve(n + 1);
  part.s_dep_off_.push_back(0);
  part.s_indep_off_.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    split_sorted(sc.claims_of(i), dep.exposed_assertions(i), part.s_dep_,
                 part.s_indep_, nullptr);
    part.s_dep_off_.push_back(part.s_dep_.size());
    part.s_indep_off_.push_back(part.s_indep_.size());
  }
  return part;
}

}  // namespace ss
