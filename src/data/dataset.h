// A complete fact-finding problem instance: the source-claim matrix, its
// dependency indicators, and (when known) ground-truth assertion labels.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/claim_partition.h"
#include "data/dependency.h"
#include "data/source_claim_matrix.h"

namespace ss {

// Assertion ground truth. The empirical protocol (Section V-C) grades
// assertions as True, False or Opinion; Opinion counts against an
// algorithm's top-k accuracy exactly like False.
enum class Label : std::uint8_t {
  kFalse = 0,
  kTrue = 1,
  kOpinion = 2,
  kUnknown = 3,
};

const char* label_name(Label label);

struct DatasetSummary {
  std::size_t assertions = 0;
  std::size_t sources = 0;
  std::size_t total_claims = 0;
  std::size_t original_claims = 0;  // claims with D_ij == 0
  std::size_t true_assertions = 0;
  std::size_t false_assertions = 0;
  std::size_t opinion_assertions = 0;
};

struct Dataset {
  std::string name;
  SourceClaimMatrix claims;
  DependencyIndicators dependency;
  // One label per assertion; empty when ground truth is unavailable.
  std::vector<Label> truth;

  Dataset() = default;
  // Copies share no cache: a copy is routinely mutated (tests build
  // perturbed variants), so it must re-derive its own partition.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  std::size_t source_count() const { return claims.source_count(); }
  std::size_t assertion_count() const { return claims.assertion_count(); }

  // Table-III style statistics.
  DatasetSummary summary() const;

  // Throws std::invalid_argument when shapes disagree (claims vs
  // dependency vs truth sizes).
  void validate() const;

  // The claim/dependency partition cache, built on first use and reused
  // by every LikelihoodTable / EM iteration afterwards. Thread-safe.
  // Invariant: `claims` and `dependency` must not change after the first
  // call — reassigning them requires invalidate_partition().
  const ClaimPartition& partition() const;
  void invalidate_partition() const;

 private:
  mutable std::shared_ptr<const ClaimPartition> partition_cache_;
};

}  // namespace ss
