#include "data/io.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ss {
namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  return out;
}

bool parse_label(const std::string& s, Label* out) {
  if (s == "True") *out = Label::kTrue;
  else if (s == "False") *out = Label::kFalse;
  else if (s == "Opinion") *out = Label::kOpinion;
  else if (s == "Unknown") *out = Label::kUnknown;
  else return false;
  return true;
}

// Shared state of one load: options, the report sink (caller's or a
// local one so counting never branches on null), and the first error
// for strict mode.
struct LoadContext {
  IngestOptions options;
  IngestReport* report;
  IngestReport local;

  IngestReport& rep() { return report != nullptr ? *report : local; }

  // Classifies one defective row. Returns true when the row may be
  // *kept* (repair mode and the caller has a fix); false when it must
  // be skipped. Throws in strict mode.
  bool defect(ErrorCode code, const std::string& file, std::size_t line,
              std::string detail, bool repairable) {
    IngestReport& r = rep();
    r.note(code, file, line, detail, options.max_recorded_errors);
    if (options.mode == IngestMode::kStrict) {
      throw TaxonomyError(
          code, RecordError{code, file, line, std::move(detail)}
                    .to_string());
    }
    if (options.mode == IngestMode::kRepair && repairable) {
      ++r.rows_repaired;
      return true;
    }
    ++r.rows_skipped;
    return false;
  }
};

// Iterates the data rows of one CSV file (header skipped, blank lines
// ignored), handing each parsed field list to `row(line_no, fields)`.
// Returns false (or throws, per mode) when the file cannot be opened.
template <typename RowFn>
bool for_each_csv_row(const std::string& path, LoadContext& ctx,
                      const RowFn& row) {
  std::ifstream in(path);
  if (!in) return false;  // the caller notes the kIoError once
  std::string line;
  std::size_t line_no = 1;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    ++ctx.rep().rows_total;
    row(line_no, csv_parse_line(line));
  }
  return true;
}

Expected<Dataset> load_dataset_impl(const std::string& directory,
                                    LoadContext& ctx) {
  auto fail = [&](ErrorCode code, const std::string& file,
                  std::size_t line,
                  const std::string& detail) -> Error {
    ctx.rep().note(code, file, line, detail,
                   ctx.options.max_recorded_errors);
    return Error{code,
                 RecordError{code, file, line, detail}.to_string()};
  };

  // meta.csv: fatal in every mode — the dimensions gate all validation.
  std::string name;
  std::uint64_t sources = 0;
  std::uint64_t assertions = 0;
  {
    std::string path = directory + "/meta.csv";
    std::ifstream in(path);
    if (!in) return fail(ErrorCode::kIoError, path, 0, "cannot open");
    std::string line;
    std::getline(in, line);  // header
    if (!std::getline(in, line)) {
      return fail(ErrorCode::kBadRow, path, 2, "missing data row");
    }
    auto fields = csv_parse_line(line);
    if (fields.size() != 3) {
      return fail(ErrorCode::kBadRow, path, 2,
                  strprintf("expected 3 fields, got %zu",
                            fields.size()));
    }
    name = fields[0];
    if (!try_parse_u64(fields[1], &sources) ||
        !try_parse_u64(fields[2], &assertions)) {
      return fail(ErrorCode::kBadNumber, path, 2,
                  "unparseable dimensions: " + fields[1] + "," +
                      fields[2]);
    }
  }

  std::vector<Claim> claims;
  {
    std::string path = directory + "/claims.csv";
    bool opened = for_each_csv_row(
        path, ctx,
        [&](std::size_t line_no, const std::vector<std::string>& f) {
          if (f.size() != 3) {
            ctx.defect(ErrorCode::kBadRow, path, line_no,
                       strprintf("expected 3 fields, got %zu", f.size()),
                       /*repairable=*/false);
            return;
          }
          Claim c;
          if (!try_parse_u32(f[0], &c.source) ||
              !try_parse_u32(f[1], &c.assertion)) {
            ctx.defect(ErrorCode::kBadNumber, path, line_no,
                       "unparseable index: " + f[0] + "," + f[1],
                       /*repairable=*/false);
            return;
          }
          if (c.source >= sources || c.assertion >= assertions) {
            ctx.defect(
                ErrorCode::kIndexOutOfRange, path, line_no,
                strprintf("claim (%u,%u) outside declared %llu x %llu",
                          c.source, c.assertion,
                          static_cast<unsigned long long>(sources),
                          static_cast<unsigned long long>(assertions)),
                /*repairable=*/false);
            return;
          }
          if (!try_parse_f64(f[2], &c.time)) {
            ctx.defect(ErrorCode::kBadNumber, path, line_no,
                       "unparseable time: " + f[2],
                       /*repairable=*/false);
            return;
          }
          if (!std::isfinite(c.time)) {
            if (!ctx.defect(ErrorCode::kNonFinite, path, line_no,
                            "non-finite time: " + f[2],
                            /*repairable=*/true)) {
              return;
            }
            c.time = 0.0;  // repair: order-neutral sentinel time
          } else {
            ++ctx.rep().rows_ok;
          }
          claims.push_back(c);
        });
    if (!opened) {
      return fail(ErrorCode::kIoError, path, 0, "cannot open");
    }
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> exposed;
  {
    std::string path = directory + "/exposure.csv";
    bool opened = for_each_csv_row(
        path, ctx,
        [&](std::size_t line_no, const std::vector<std::string>& f) {
          if (f.size() != 2) {
            ctx.defect(ErrorCode::kBadRow, path, line_no,
                       strprintf("expected 2 fields, got %zu", f.size()),
                       /*repairable=*/false);
            return;
          }
          std::uint32_t s = 0, a = 0;
          if (!try_parse_u32(f[0], &s) || !try_parse_u32(f[1], &a)) {
            ctx.defect(ErrorCode::kBadNumber, path, line_no,
                       "unparseable index: " + f[0] + "," + f[1],
                       /*repairable=*/false);
            return;
          }
          if (s >= sources || a >= assertions) {
            ctx.defect(
                ErrorCode::kIndexOutOfRange, path, line_no,
                strprintf("cell (%u,%u) outside declared %llu x %llu",
                          s, a,
                          static_cast<unsigned long long>(sources),
                          static_cast<unsigned long long>(assertions)),
                /*repairable=*/false);
            return;
          }
          ++ctx.rep().rows_ok;
          exposed.emplace_back(s, a);
        });
    if (!opened) {
      return fail(ErrorCode::kIoError, path, 0, "cannot open");
    }
  }

  std::vector<Label> truth;
  {
    std::string path = directory + "/truth.csv";
    bool opened = for_each_csv_row(
        path, ctx,
        [&](std::size_t line_no, const std::vector<std::string>& f) {
          if (f.size() != 2) {
            ctx.defect(ErrorCode::kBadRow, path, line_no,
                       strprintf("expected 2 fields, got %zu", f.size()),
                       /*repairable=*/false);
            return;
          }
          std::uint64_t j = 0;
          if (!try_parse_u64(f[0], &j)) {
            ctx.defect(ErrorCode::kBadNumber, path, line_no,
                       "unparseable assertion id: " + f[0],
                       /*repairable=*/false);
            return;
          }
          // Previously a row with j >= assertions silently grew the
          // vector and was truncated again later; now it is a
          // classified per-row defect.
          if (j >= assertions) {
            ctx.defect(
                ErrorCode::kIndexOutOfRange, path, line_no,
                strprintf("assertion %llu outside declared %llu",
                          static_cast<unsigned long long>(j),
                          static_cast<unsigned long long>(assertions)),
                /*repairable=*/false);
            return;
          }
          Label label = Label::kUnknown;
          if (!parse_label(f[1], &label)) {
            if (!ctx.defect(ErrorCode::kBadLabel, path, line_no,
                            "bad label: " + f[1],
                            /*repairable=*/true)) {
              return;
            }
            label = Label::kUnknown;  // repair: grade as ungraded
          } else {
            ++ctx.rep().rows_ok;
          }
          if (truth.size() <= j) truth.resize(j + 1, Label::kUnknown);
          truth[j] = label;
        });
    if (!opened) {
      return fail(ErrorCode::kIoError, path, 0, "cannot open");
    }
  }
  if (!truth.empty()) truth.resize(assertions, Label::kUnknown);

  Dataset dataset;
  dataset.name = name;
  dataset.claims = SourceClaimMatrix(sources, assertions, claims);
  dataset.dependency =
      DependencyIndicators::from_cells(sources, assertions, exposed);
  dataset.truth = std::move(truth);
  dataset.validate();
  return dataset;
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& directory) {
  dataset.validate();
  std::filesystem::create_directories(directory);

  {
    auto out = open_out(directory + "/meta.csv");
    out << "name,sources,assertions\n";
    out << csv_escape(dataset.name) << ',' << dataset.source_count() << ','
        << dataset.assertion_count() << '\n';
  }
  {
    auto out = open_out(directory + "/claims.csv");
    out << "source,assertion,time\n";
    for (const Claim& c : dataset.claims.to_claims()) {
      out << c.source << ',' << c.assertion << ','
          << strprintf("%.9g", c.time) << '\n';
    }
  }
  {
    auto out = open_out(directory + "/exposure.csv");
    out << "source,assertion\n";
    for (std::size_t i = 0; i < dataset.source_count(); ++i) {
      for (std::uint32_t j : dataset.dependency.exposed_assertions(i)) {
        out << i << ',' << j << '\n';
      }
    }
  }
  {
    auto out = open_out(directory + "/truth.csv");
    out << "assertion,label\n";
    for (std::size_t j = 0; j < dataset.truth.size(); ++j) {
      out << j << ',' << label_name(dataset.truth[j]) << '\n';
    }
  }
}

Dataset load_dataset(const std::string& directory) {
  return load_dataset(directory, IngestOptions{});
}

Dataset load_dataset(const std::string& directory,
                     const IngestOptions& options, IngestReport* report) {
  Expected<Dataset> loaded = try_load_dataset(directory, options, report);
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message);
  return std::move(loaded).value();
}

Expected<Dataset> try_load_dataset(const std::string& directory,
                                   const IngestOptions& options,
                                   IngestReport* report) {
  LoadContext ctx;
  ctx.options = options;
  ctx.report = report;
  try {
    return load_dataset_impl(directory, ctx);
  } catch (const TaxonomyError& e) {
    return Error{e.code(), e.what()};  // strict-mode row defect
  } catch (const std::exception& e) {
    // Shape error surfaced by validate() or matrix construction.
    return Error{ErrorCode::kBadRow, e.what()};
  }
}

// --- JSONL stream ----------------------------------------------------

namespace {

// Targeted JSON-line scanning (the writer controls the format: flat
// objects, known keys — same approach as twitter/tweet_io).

// `"key":value` where value is a number (terminated by , } ]) or a
// quoted string with backslash escapes.
bool extract_field(const std::string& line, const std::string& key,
                   std::string& out) {
  std::string marker = "\"" + key + "\":";
  auto pos = line.find(marker);
  if (pos == std::string::npos) return false;
  pos += marker.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    std::string value;
    for (std::size_t i = pos + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        char next = line[++i];
        switch (next) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default: value += next;
        }
      } else if (c == '"') {
        out = std::move(value);
        return true;
      } else {
        value += c;
      }
    }
    return false;
  }
  auto end = line.find_first_of(",}]", pos);
  if (end == std::string::npos) return false;
  out = trim(line.substr(pos, end - pos));
  return true;
}

// Extracts the bracketed payload of `"key":[...]` split on commas.
bool extract_json_array(const std::string& line, const std::string& key,
                        std::vector<std::string>& out) {
  std::string marker = "\"" + key + "\":[";
  auto pos = line.find(marker);
  if (pos == std::string::npos) return false;
  pos += marker.size();
  auto end = line.find(']', pos);
  if (end == std::string::npos) return false;
  out.clear();
  std::size_t at = pos;
  while (at < end) {
    std::size_t comma = line.find(',', at);
    if (comma == std::string::npos || comma > end) comma = end;
    out.push_back(trim(line.substr(at, comma - at)));
    at = comma + 1;
  }
  return !out.empty();
}

// Strips the quotes of a JSON string element ("True" -> True). Labels
// contain no escapes, so unquoting is a slice.
bool unquote(const std::string& s, std::string& out) {
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return false;
  out = s.substr(1, s.size() - 2);
  return true;
}

[[noreturn]] void jsonl_defect(ErrorCode code, const std::string& path,
                               std::size_t line, std::string detail) {
  throw TaxonomyError(
      code,
      RecordError{code, path, line, std::move(detail)}.to_string());
}

}  // namespace

void save_dataset_jsonl(const Dataset& dataset, const std::string& path) {
  dataset.validate();
  auto out = open_out(path);
  out << "{\"meta\":{\"name\":\"" << json_escape(dataset.name)
      << "\",\"sources\":" << dataset.source_count()
      << ",\"assertions\":" << dataset.assertion_count() << "}}\n";
  for (const Claim& c : dataset.claims.to_claims()) {
    out << "{\"claim\":[" << c.source << ',' << c.assertion << ','
        << strprintf("%.17g", c.time) << "]}\n";
  }
  for (std::size_t i = 0; i < dataset.source_count(); ++i) {
    for (std::uint32_t j : dataset.dependency.exposed_assertions(i)) {
      out << "{\"exposure\":[" << i << ',' << j << "]}\n";
    }
  }
  for (std::size_t j = 0; j < dataset.truth.size(); ++j) {
    if (dataset.truth[j] == Label::kUnknown) continue;
    out << "{\"truth\":[" << j << ",\"" << label_name(dataset.truth[j])
        << "\"]}\n";
  }
  if (!out) throw std::runtime_error("short write: " + path);
}

Dataset load_dataset_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw TaxonomyError(ErrorCode::kIoError, "cannot open: " + path);
  }
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(in, line)) {
    jsonl_defect(ErrorCode::kBadRow, path, 1, "missing meta line");
  }
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  {
    std::string field;
    if (line.find("\"meta\"") == std::string::npos ||
        !extract_field(line, "name", name) ||
        !extract_field(line, "sources", field) ||
        !try_parse_u64(field, &n) ||
        !extract_field(line, "assertions", field) ||
        !try_parse_u64(field, &m)) {
      jsonl_defect(ErrorCode::kBadRow, path, 1, "malformed meta line");
    }
  }

  std::vector<Claim> claims;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> exposed;
  std::vector<Label> truth(static_cast<std::size_t>(m), Label::kUnknown);
  bool labeled = false;
  std::vector<std::string> f;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    auto index = [&](const std::string& s, std::uint64_t limit,
                     const char* what) -> std::uint32_t {
      std::uint64_t v = 0;
      if (!try_parse_u64(s, &v)) {
        jsonl_defect(ErrorCode::kBadNumber, path, lineno,
                     std::string("unparseable ") + what + " '" + s + "'");
      }
      if (v >= limit) {
        jsonl_defect(ErrorCode::kIndexOutOfRange, path, lineno,
                     strprintf("%s %llu outside declared %llu", what,
                               static_cast<unsigned long long>(v),
                               static_cast<unsigned long long>(limit)));
      }
      return static_cast<std::uint32_t>(v);
    };
    if (extract_json_array(line, "claim", f)) {
      if (f.size() != 3) {
        jsonl_defect(ErrorCode::kBadRow, path, lineno,
                     strprintf("expected 3 claim fields, got %zu",
                               f.size()));
      }
      double time = 0.0;
      if (!try_parse_f64(f[2], &time)) {
        jsonl_defect(ErrorCode::kBadNumber, path, lineno,
                     "unparseable time '" + f[2] + "'");
      }
      if (!std::isfinite(time)) {
        jsonl_defect(ErrorCode::kNonFinite, path, lineno,
                     "non-finite time '" + f[2] + "'");
      }
      claims.push_back(
          {index(f[0], n, "source"), index(f[1], m, "assertion"), time});
    } else if (extract_json_array(line, "exposure", f)) {
      if (f.size() != 2) {
        jsonl_defect(ErrorCode::kBadRow, path, lineno,
                     strprintf("expected 2 exposure fields, got %zu",
                               f.size()));
      }
      exposed.emplace_back(index(f[0], n, "source"),
                           index(f[1], m, "assertion"));
    } else if (extract_json_array(line, "truth", f)) {
      std::string text;
      Label label = Label::kUnknown;
      if (f.size() != 2 || !unquote(f[1], text) ||
          !parse_label(text, &label)) {
        jsonl_defect(ErrorCode::kBadLabel, path, lineno,
                     "malformed truth record");
      }
      truth[index(f[0], m, "assertion")] = label;
      labeled = true;
    } else {
      jsonl_defect(ErrorCode::kBadRow, path, lineno,
                   "unrecognized record");
    }
  }

  Dataset dataset;
  dataset.name = std::move(name);
  dataset.claims = SourceClaimMatrix(static_cast<std::size_t>(n),
                                     static_cast<std::size_t>(m), claims);
  dataset.dependency = DependencyIndicators::from_cells(
      static_cast<std::size_t>(n), static_cast<std::size_t>(m), exposed);
  if (labeled) dataset.truth = std::move(truth);
  dataset.validate();
  return dataset;
}

}  // namespace ss
