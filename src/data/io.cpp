#include "data/io.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ss {
namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return in;
}

Label parse_label(const std::string& s) {
  if (s == "True") return Label::kTrue;
  if (s == "False") return Label::kFalse;
  if (s == "Opinion") return Label::kOpinion;
  if (s == "Unknown") return Label::kUnknown;
  throw std::runtime_error("bad label: " + s);
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& directory) {
  dataset.validate();
  std::filesystem::create_directories(directory);

  {
    auto out = open_out(directory + "/meta.csv");
    out << "name,sources,assertions\n";
    out << csv_escape(dataset.name) << ',' << dataset.source_count() << ','
        << dataset.assertion_count() << '\n';
  }
  {
    auto out = open_out(directory + "/claims.csv");
    out << "source,assertion,time\n";
    for (const Claim& c : dataset.claims.to_claims()) {
      out << c.source << ',' << c.assertion << ','
          << strprintf("%.9g", c.time) << '\n';
    }
  }
  {
    auto out = open_out(directory + "/exposure.csv");
    out << "source,assertion\n";
    for (std::size_t i = 0; i < dataset.source_count(); ++i) {
      for (std::uint32_t j : dataset.dependency.exposed_assertions(i)) {
        out << i << ',' << j << '\n';
      }
    }
  }
  {
    auto out = open_out(directory + "/truth.csv");
    out << "assertion,label\n";
    for (std::size_t j = 0; j < dataset.truth.size(); ++j) {
      out << j << ',' << label_name(dataset.truth[j]) << '\n';
    }
  }
}

Dataset load_dataset(const std::string& directory) {
  std::string name;
  std::size_t sources = 0;
  std::size_t assertions = 0;
  {
    auto in = open_in(directory + "/meta.csv");
    std::string line;
    std::getline(in, line);  // header
    if (!std::getline(in, line)) {
      throw std::runtime_error("meta.csv: missing data row");
    }
    auto fields = csv_parse_line(line);
    if (fields.size() != 3) throw std::runtime_error("meta.csv: bad row");
    name = fields[0];
    sources = std::stoull(fields[1]);
    assertions = std::stoull(fields[2]);
  }

  std::vector<Claim> claims;
  {
    auto in = open_in(directory + "/claims.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      auto fields = csv_parse_line(line);
      if (fields.size() != 3) {
        throw std::runtime_error("claims.csv: bad row: " + line);
      }
      claims.push_back({static_cast<std::uint32_t>(std::stoul(fields[0])),
                        static_cast<std::uint32_t>(std::stoul(fields[1])),
                        std::stod(fields[2])});
    }
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> exposed;
  {
    auto in = open_in(directory + "/exposure.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      auto fields = csv_parse_line(line);
      if (fields.size() != 2) {
        throw std::runtime_error("exposure.csv: bad row: " + line);
      }
      exposed.emplace_back(
          static_cast<std::uint32_t>(std::stoul(fields[0])),
          static_cast<std::uint32_t>(std::stoul(fields[1])));
    }
  }

  std::vector<Label> truth;
  {
    auto in = open_in(directory + "/truth.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (trim(line).empty()) continue;
      auto fields = csv_parse_line(line);
      if (fields.size() != 2) {
        throw std::runtime_error("truth.csv: bad row: " + line);
      }
      std::size_t j = std::stoull(fields[0]);
      if (truth.size() <= j) truth.resize(j + 1, Label::kUnknown);
      truth[j] = parse_label(fields[1]);
    }
  }
  if (!truth.empty()) truth.resize(assertions, Label::kUnknown);

  Dataset dataset;
  dataset.name = name;
  dataset.claims = SourceClaimMatrix(sources, assertions, claims);
  dataset.dependency =
      DependencyIndicators::from_cells(sources, assertions, exposed);
  dataset.truth = std::move(truth);
  dataset.validate();
  return dataset;
}

}  // namespace ss
