// Connected-component sharding of the source-claim incidence.
//
// ShardedDataset partitions the assertion columns by connected
// component — two assertions are connected when some source touches
// both (claims or exposed cells), so components are exactly the units
// with no shared source and no dependency (exposure) edge between them
// (docs/MODEL.md §14). Components are bin-packed into shards, and each
// shard carries its own CSR slices in the ClaimPartition layout:
// per-column claimant lists with aligned D_ij flags, per-column
// exposed-source lists, and per-source dependent/independent claim
// splits. All ids stay GLOBAL: the sharded EM engine
// (core/sharded_em.*) gathers from global value tables and scatters
// into global posterior/stats buffers, which is what makes it
// bit-identical to the flat engine — the likelihood base, the pooled
// shrinkage rates and the prior z couple every source to every column,
// so sharding here is an execution/data-layout strategy, never an
// approximation.
//
// A shard's columns reference only that shard's sources (claimants and
// exposed sources both), so shard-parallel E/M passes touch disjoint
// index ranges of the value tables and disjoint slots of the output
// buffers — no cross-shard false sharing beyond chunk-boundary cache
// lines, exactly like the flat engine's fixed-grain chunks.
//
// Build sources: an in-memory Dataset, or an mmap-ed SsdView
// (data/ssd.h) — the latter never materializes the global Dataset, so
// a 10^6-source problem shards straight out of the file.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ss {

class SsdView;
class ThreadPool;

struct ShardConfig {
  // Upper bound on assertions per shard; a single component larger
  // than the cap still becomes one (oversized) shard — components are
  // never split, so the no-cross-shard-edge property holds
  // unconditionally. 0 = auto: max(1024, ceil(m / 64)), i.e. at most
  // ~64 shards, deterministic and independent of the thread count.
  std::size_t max_shard_assertions = 0;
  // When non-null, the per-shard CSR fill runs as one LPT-scheduled
  // task per shard on this pool, so under SS_AFFINITY pinning each
  // shard's CSR slices are first-touched (allocated and written) by a
  // worker rather than the calling thread — the same workers that
  // later gather from them in the EM passes. The shard layout and
  // every CSR byte are decided before the parallel phase and each task
  // writes only its own shard, so the result is bit-identical to the
  // serial build for any pool size.
  ThreadPool* pool = nullptr;
};

// One shard: a group of whole components. Ids are global; per-column
// arrays are indexed by position in `assertions`, per-source arrays by
// position in `sources`. All lists are ascending, preserving the
// addition order of the flat engine's kernels.
class DatasetShard {
 public:
  std::span<const std::uint32_t> source_ids() const { return sources_; }
  std::span<const std::uint32_t> assertion_ids() const {
    return assertions_;
  }
  std::size_t claim_count() const { return claimants_.size(); }
  std::size_t exposed_count() const { return exposed_.size(); }
  std::size_t component_count() const { return components_; }

  // Column views, c = position within the shard (global id
  // assertion_ids()[c]).
  std::span<const std::uint32_t> claimants(std::size_t c) const {
    return {claimants_.data() + cl_off_[c], cl_off_[c + 1] - cl_off_[c]};
  }
  std::span<const char> claimant_dependent(std::size_t c) const {
    return {cl_flags_.data() + cl_off_[c], cl_off_[c + 1] - cl_off_[c]};
  }
  std::span<const std::uint32_t> exposed_sources(std::size_t c) const {
    return {exposed_.data() + ex_off_[c], ex_off_[c + 1] - ex_off_[c]};
  }

  // Row views, s = position within the shard (global id
  // source_ids()[s]); elements are global assertion ids.
  std::span<const std::uint32_t> dependent_claims(std::size_t s) const {
    return {dep_claims_.data() + dep_off_[s], dep_off_[s + 1] - dep_off_[s]};
  }
  std::span<const std::uint32_t> independent_claims(std::size_t s) const {
    return {indep_claims_.data() + indep_off_[s],
            indep_off_[s + 1] - indep_off_[s]};
  }
  std::span<const std::uint32_t> exposed_assertions(std::size_t s) const {
    return {exp_asserts_.data() + expa_off_[s],
            expa_off_[s + 1] - expa_off_[s]};
  }

 private:
  friend class ShardedDataset;
  std::vector<std::uint32_t> sources_;     // ascending global ids
  std::vector<std::uint32_t> assertions_;  // ascending global ids
  std::size_t components_ = 0;
  // Column CSR (offsets sized assertions_.size() + 1).
  std::vector<std::size_t> cl_off_;
  std::vector<std::uint32_t> claimants_;  // global source ids
  std::vector<char> cl_flags_;            // aligned D_ij flags
  std::vector<std::size_t> ex_off_;
  std::vector<std::uint32_t> exposed_;  // global source ids
  // Row CSR (offsets sized sources_.size() + 1).
  std::vector<std::size_t> dep_off_;
  std::vector<std::uint32_t> dep_claims_;  // global assertion ids
  std::vector<std::size_t> indep_off_;
  std::vector<std::uint32_t> indep_claims_;
  std::vector<std::size_t> expa_off_;
  std::vector<std::uint32_t> exp_asserts_;  // global assertion ids
};

class ShardedDataset {
 public:
  // Partitions `dataset` (which stays untouched; the shards hold
  // copies). Throws std::invalid_argument on shape defects (via
  // Dataset::validate).
  static ShardedDataset build(const Dataset& dataset,
                              const ShardConfig& config = {});
  // Shards straight out of an mmap-ed .ssd file; the global Dataset is
  // never materialized. The view must outlive the call only (shards
  // copy their slices out).
  static ShardedDataset build(const SsdView& view,
                              const ShardConfig& config = {});

  std::size_t source_count() const { return source_shard_.size(); }
  std::size_t assertion_count() const { return assertion_shard_.size(); }
  std::size_t claim_count() const { return claim_count_; }
  std::size_t exposed_cell_count() const { return exposed_count_; }
  std::size_t component_count() const { return component_count_; }
  const std::string& name() const { return name_; }
  const std::vector<Label>& truth() const { return truth_; }

  std::size_t shard_count() const { return shards_.size(); }
  const DatasetShard& shard(std::size_t s) const { return shards_[s]; }

  // Global-id lookups (tests, Gibbs memoization, diagnostics).
  std::uint32_t shard_of_assertion(std::size_t j) const {
    return assertion_shard_[j];
  }
  std::uint32_t position_of_assertion(std::size_t j) const {
    return assertion_pos_[j];
  }
  std::uint32_t shard_of_source(std::size_t i) const {
    return source_shard_[i];
  }
  std::uint32_t position_of_source(std::size_t i) const {
    return source_pos_[i];
  }

  // Exposed-source list of global column j (the shard's slice).
  std::span<const std::uint32_t> exposed_sources(std::size_t j) const {
    return shards_[assertion_shard_[j]].exposed_sources(assertion_pos_[j]);
  }

  // Verifies the partition invariants (every assertion/source in
  // exactly one shard, totals add up, column lists confined to the
  // shard's sources, lists ascending). Throws std::logic_error naming
  // the violated property; tests call it on every build.
  void check() const;

 private:
  template <typename Access>
  static ShardedDataset build_impl(const Access& a,
                                   const ShardConfig& config);

  std::string name_;
  std::vector<Label> truth_;
  std::size_t claim_count_ = 0;
  std::size_t exposed_count_ = 0;
  std::size_t component_count_ = 0;
  std::vector<DatasetShard> shards_;
  std::vector<std::uint32_t> assertion_shard_;  // size m
  std::vector<std::uint32_t> assertion_pos_;    // position within shard
  std::vector<std::uint32_t> source_shard_;     // size n
  std::vector<std::uint32_t> source_pos_;
};

}  // namespace ss
