#include "data/ssd.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/checkpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define SS_SSD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SS_SSD_HAVE_MMAP 0
#endif

namespace ss {
namespace {

constexpr std::size_t kHeaderWords = 9;  // fixed u64 fields before table

std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

Error io_error(const std::string& path, const std::string& what) {
  return {ErrorCode::kIoError, path + ": " + what};
}

Error corrupt(const std::string& path, const std::string& what,
              std::size_t byte) {
  return {ErrorCode::kCheckpointCorrupt,
          path + ": " + what + " at byte " + std::to_string(byte)};
}

Error csr_error(const std::string& path, const std::string& what) {
  return {ErrorCode::kIndexOutOfRange, path + ": " + what};
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Identity stamp: name + shape. Deliberately independent of the claim
// bytes (the payload digest covers those) so re-generations of the
// same logical dataset keep one id.
std::uint64_t ssd_fingerprint(const std::string& name, std::uint64_t n,
                              std::uint64_t m, std::uint64_t claims,
                              std::uint64_t exposed) {
  std::uint64_t fp = fnv1a64(name.data(), name.size());
  fp = fingerprint_combine(fp, n);
  fp = fingerprint_combine(fp, m);
  fp = fingerprint_combine(fp, claims);
  fp = fingerprint_combine(fp, exposed);
  return fp;
}

// One read-only file image: mmap where available, a heap copy
// otherwise. The reader never writes, so MAP_PRIVATE read-only is
// safe against concurrent writers only in the usual rename-commit
// sense (SsdWriter commits atomically).
struct FileImage {
  const char* base = nullptr;
  std::size_t size = 0;
  bool mapped = false;

  static Expected<FileImage> load(const std::string& path) {
    FileImage img;
#if SS_SSD_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);  // ss-lint: allow(raw-mmap): this is the one sanctioned mapping site (data/ssd)
    if (fd < 0) return io_error(path, "cannot open");
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return io_error(path, "cannot stat");
    }
    img.size = static_cast<std::size_t>(st.st_size);
    if (img.size == 0) {
      ::close(fd);
      return corrupt(path, "empty file", 0);
    }
    void* p = ::mmap(nullptr, img.size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) return io_error(path, "mmap failed");
    img.base = static_cast<const char*>(p);
    img.mapped = true;
#else
    std::ifstream in(path, std::ios::binary);
    if (!in) return io_error(path, "cannot open");
    in.seekg(0, std::ios::end);
    img.size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    char* buf = new char[img.size > 0 ? img.size : 1];
    in.read(buf, static_cast<std::streamsize>(img.size));
    if (!in) {
      delete[] buf;
      return io_error(path, "short read");
    }
    img.base = buf;
#endif
    return img;
  }

  void release() {
    if (base == nullptr) return;
#if SS_SSD_HAVE_MMAP
    if (mapped) {
      ::munmap(const_cast<char*>(base), size);  // ss-lint: allow(raw-mmap): paired unmap of the sanctioned mapping
    }
#else
    delete[] base;
#endif
    base = nullptr;
    size = 0;
  }
};

struct SectionEntry {
  std::uint64_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

}  // namespace

// --- SsdView ---------------------------------------------------------

SsdView& SsdView::operator=(SsdView&& other) noexcept {
  if (this != &other) {
    unmap();
    base_ = other.base_;
    map_size_ = other.map_size_;
    mapped_ = other.mapped_;
    n_ = other.n_;
    m_ = other.m_;
    claims_ = other.claims_;
    exposed_ = other.exposed_;
    fingerprint_ = other.fingerprint_;
    payload_digest_ = other.payload_digest_;
    name_ = other.name_;
    truth_ = other.truth_;
    col_claim_off_ = other.col_claim_off_;
    col_claimants_ = other.col_claimants_;
    col_claim_times_ = other.col_claim_times_;
    col_exp_off_ = other.col_exp_off_;
    col_exposed_ = other.col_exposed_;
    row_claim_off_ = other.row_claim_off_;
    row_claims_ = other.row_claims_;
    row_claim_times_ = other.row_claim_times_;
    row_exp_off_ = other.row_exp_off_;
    row_exposed_ = other.row_exposed_;
    table_ = std::move(other.table_);
    other.base_ = nullptr;
    other.map_size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

SsdView::~SsdView() { unmap(); }

void SsdView::unmap() {
  if (base_ == nullptr) return;
  FileImage img{base_, map_size_, mapped_};
  img.release();
  base_ = nullptr;
  map_size_ = 0;
}

Expected<SsdView> SsdView::open(const std::string& path) {
  Expected<FileImage> img = FileImage::load(path);
  if (!img.ok()) return img.error();
  FileImage image = img.value();
  auto fail = [&](Error e) -> Expected<SsdView> {
    image.release();
    return e;
  };

  const char* base = image.base;
  const std::size_t size = image.size;
  const std::size_t fixed = kHeaderWords * 8;
  if (size < fixed + 8) {
    return fail(corrupt(path, "truncated header", size));
  }
  if (read_u64(base) != kSsdMagic) {
    return fail(corrupt(path, "bad magic", 0));
  }
  if (read_u64(base + 8) != kSsdVersion) {
    return fail(corrupt(path, "unsupported version", 8));
  }
  const std::uint64_t fingerprint = read_u64(base + 16);
  const std::uint64_t n = read_u64(base + 24);
  const std::uint64_t m = read_u64(base + 32);
  const std::uint64_t claims = read_u64(base + 40);
  const std::uint64_t exposed = read_u64(base + 48);
  const std::uint64_t sections = read_u64(base + 56);
  const std::uint64_t payload_digest = read_u64(base + 64);
  if (sections != kSsdSectionCount) {
    return fail(corrupt(path, "bad section count", 56));
  }
  const std::size_t table_bytes = static_cast<std::size_t>(sections) * 24;
  const std::size_t digest_at = fixed + table_bytes;
  if (size < digest_at + 8) {
    return fail(corrupt(path, "truncated section table", size));
  }
  const std::uint64_t want = read_u64(base + digest_at);
  const std::uint64_t got = fnv1a64(base, digest_at);
  if (want != got) {
    return fail(corrupt(path, "header checksum mismatch", digest_at));
  }

  // Section table: every id exactly once, 8-aligned, in bounds.
  std::vector<SectionEntry> table(kSsdSectionCount);
  bool seen[kSsdSectionCount + 1] = {};
  for (std::size_t s = 0; s < kSsdSectionCount; ++s) {
    const char* e = base + fixed + s * 24;
    SectionEntry entry{read_u64(e), read_u64(e + 8), read_u64(e + 16)};
    if (entry.id < 1 || entry.id > kSsdSectionCount || seen[entry.id]) {
      return fail(corrupt(path, "bad section table", fixed + s * 24));
    }
    seen[entry.id] = true;
    if ((entry.offset & 7) != 0 || entry.offset > size ||
        entry.size > size - entry.offset) {
      return fail(
          corrupt(path, "section out of bounds", fixed + s * 24 + 8));
    }
    table[entry.id - 1] = entry;
  }

  auto expect_size = [&](SsdSection id, std::uint64_t bytes) {
    return table[static_cast<std::size_t>(id) - 1].size == bytes;
  };
  if (!expect_size(SsdSection::kTruth, m) ||
      !expect_size(SsdSection::kColClaimOff, (m + 1) * 8) ||
      !expect_size(SsdSection::kColClaimants, claims * 4) ||
      !expect_size(SsdSection::kColClaimTimes, claims * 8) ||
      !expect_size(SsdSection::kColExpOff, (m + 1) * 8) ||
      !expect_size(SsdSection::kColExposed, exposed * 4) ||
      !expect_size(SsdSection::kRowClaimOff, (n + 1) * 8) ||
      !expect_size(SsdSection::kRowClaims, claims * 4) ||
      !expect_size(SsdSection::kRowClaimTimes, claims * 8) ||
      !expect_size(SsdSection::kRowExpOff, (n + 1) * 8) ||
      !expect_size(SsdSection::kRowExposed, exposed * 4)) {
    return fail(corrupt(path, "section size mismatch", fixed));
  }

  SsdView view;
  view.base_ = base;
  view.map_size_ = size;
  view.mapped_ = image.mapped;
  view.n_ = static_cast<std::size_t>(n);
  view.m_ = static_cast<std::size_t>(m);
  view.claims_ = static_cast<std::size_t>(claims);
  view.exposed_ = static_cast<std::size_t>(exposed);
  view.fingerprint_ = fingerprint;
  view.payload_digest_ = payload_digest;
  view.table_.reserve(kSsdSectionCount * 2);
  for (const SectionEntry& e : table) {
    view.table_.push_back(e.offset);
    view.table_.push_back(e.size);
  }
  auto span_of = [&](SsdSection id) {
    const SectionEntry& e = table[static_cast<std::size_t>(id) - 1];
    return std::pair<const char*, std::size_t>(base + e.offset, e.size);
  };
  auto [name_p, name_len] = span_of(SsdSection::kName);
  view.name_ = {name_p, name_len};
  auto as_u8 = [&](SsdSection id) {
    auto [p, len] = span_of(id);
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(p), len);
  };
  auto as_u32 = [&](SsdSection id) {
    auto [p, len] = span_of(id);
    return std::span<const std::uint32_t>(
        reinterpret_cast<const std::uint32_t*>(p), len / 4);
  };
  auto as_u64 = [&](SsdSection id) {
    auto [p, len] = span_of(id);
    return std::span<const std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(p), len / 8);
  };
  auto as_f64 = [&](SsdSection id) {
    auto [p, len] = span_of(id);
    return std::span<const double>(reinterpret_cast<const double*>(p),
                                   len / 8);
  };
  view.truth_ = as_u8(SsdSection::kTruth);
  view.col_claim_off_ = as_u64(SsdSection::kColClaimOff);
  view.col_claimants_ = as_u32(SsdSection::kColClaimants);
  view.col_claim_times_ = as_f64(SsdSection::kColClaimTimes);
  view.col_exp_off_ = as_u64(SsdSection::kColExpOff);
  view.col_exposed_ = as_u32(SsdSection::kColExposed);
  view.row_claim_off_ = as_u64(SsdSection::kRowClaimOff);
  view.row_claims_ = as_u32(SsdSection::kRowClaims);
  view.row_claim_times_ = as_f64(SsdSection::kRowClaimTimes);
  view.row_exp_off_ = as_u64(SsdSection::kRowExpOff);
  view.row_exposed_ = as_u32(SsdSection::kRowExposed);

  // CSR offset sanity (O(n + m); ids are range-checked by consumers as
  // they copy, so a flipped index bit cannot read out of bounds).
  auto check_csr = [&](std::span<const std::uint64_t> off,
                       std::uint64_t total, const char* what) {
    if (off.empty() || off.front() != 0 || off.back() != total) {
      return false;
    }
    for (std::size_t k = 1; k < off.size(); ++k) {
      if (off[k] < off[k - 1]) return false;
    }
    (void)what;
    return true;
  };
  if (!check_csr(view.col_claim_off_, claims, "col claims") ||
      !check_csr(view.col_exp_off_, exposed, "col exposure") ||
      !check_csr(view.row_claim_off_, claims, "row claims") ||
      !check_csr(view.row_exp_off_, exposed, "row exposure")) {
    // The view still owns the mapping; detach before releasing.
    SsdView dead = std::move(view);
    (void)dead;
    return csr_error(path, "CSR offsets not monotonic");
  }
  return view;
}

SsdView SsdView::open_or_throw(const std::string& path) {
  Expected<SsdView> v = open(path);
  if (!v.ok()) {
    throw TaxonomyError(v.error().code, v.error().message);
  }
  return std::move(v).value();
}

bool SsdView::verify_payload(Error* why) const {
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::size_t s = 0; s < kSsdSectionCount; ++s) {
    digest = fnv1a64(base_ + table_[2 * s], table_[2 * s + 1], digest);
  }
  if (digest != payload_digest_) {
    if (why != nullptr) {
      *why = {ErrorCode::kCheckpointCorrupt,
              "payload checksum mismatch (stored " +
                  std::to_string(payload_digest_) + ", computed " +
                  std::to_string(digest) + ")"};
    }
    return false;
  }
  return true;
}

Dataset SsdView::materialize() const {
  Dataset dataset;
  dataset.name = name();
  std::vector<Claim> claims;
  claims.reserve(claims_);
  for (std::size_t j = 0; j < m_; ++j) {
    std::span<const std::uint32_t> cs = claimants_of(j);
    std::span<const double> ts = claimant_times_of(j);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      claims.push_back(
          {cs[k], static_cast<std::uint32_t>(j), ts[k]});
    }
  }
  dataset.claims = SourceClaimMatrix(n_, m_, claims);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;
  cells.reserve(exposed_);
  for (std::size_t j = 0; j < m_; ++j) {
    for (std::uint32_t i : exposed_sources(j)) {
      cells.emplace_back(i, static_cast<std::uint32_t>(j));
    }
  }
  dataset.dependency = DependencyIndicators::from_cells(n_, m_, cells);
  bool any_label = false;
  for (std::size_t j = 0; j < m_; ++j) {
    if (truth(j) != Label::kUnknown) {
      any_label = true;
      break;
    }
  }
  if (any_label) {
    dataset.truth.resize(m_);
    for (std::size_t j = 0; j < m_; ++j) dataset.truth[j] = truth(j);
  }
  dataset.validate();
  return dataset;
}

// --- SsdWriter -------------------------------------------------------

struct SsdWriter::Impl {
  std::string path;
  std::string name;
  std::size_t n = 0;
  bool in_assertion = false;
  bool finished = false;

  // Column spools (sidecar temp files; RAM holds offsets + counters
  // only, so memory stays O(n + m) regardless of claim volume).
  std::ofstream cl_ids;
  std::ofstream cl_times;
  std::ofstream ex_ids;
  std::string cl_ids_path;
  std::string cl_times_path;
  std::string ex_ids_path;

  std::vector<std::uint64_t> col_claim_off{0};
  std::vector<std::uint64_t> col_exp_off{0};
  std::vector<std::uint8_t> truth;
  std::vector<std::uint32_t> row_claim_deg;
  std::vector<std::uint32_t> row_exp_deg;
  std::uint64_t claim_count = 0;
  std::uint64_t exposed_count = 0;

  // Current column buffers.
  std::vector<std::pair<std::uint32_t, double>> col_claims;
  std::vector<std::uint32_t> col_exposed;

  void remove_temps() {
    std::remove(cl_ids_path.c_str());
    std::remove(cl_times_path.c_str());
    std::remove(ex_ids_path.c_str());
  }
};

SsdWriter::SsdWriter(std::string path, std::size_t sources,
                     std::string name)
    : impl_(new Impl) {
  impl_->path = std::move(path);
  impl_->name = std::move(name);
  impl_->n = sources;
  impl_->row_claim_deg.assign(sources, 0);
  impl_->row_exp_deg.assign(sources, 0);
  impl_->cl_ids_path = impl_->path + ".tmp.cl";
  impl_->cl_times_path = impl_->path + ".tmp.ct";
  impl_->ex_ids_path = impl_->path + ".tmp.ex";
  impl_->cl_ids.open(impl_->cl_ids_path,
                     std::ios::binary | std::ios::trunc);
  impl_->cl_times.open(impl_->cl_times_path,
                       std::ios::binary | std::ios::trunc);
  impl_->ex_ids.open(impl_->ex_ids_path,
                     std::ios::binary | std::ios::trunc);
  if (!impl_->cl_ids || !impl_->cl_times || !impl_->ex_ids) {
    std::string p = impl_->path;
    impl_->remove_temps();
    delete impl_;
    impl_ = nullptr;
    throw std::runtime_error("SsdWriter: cannot create spool files for " +
                             p);
  }
}

SsdWriter::~SsdWriter() {
  if (impl_ != nullptr) {
    if (!impl_->finished) impl_->remove_temps();
    delete impl_;
  }
}

void SsdWriter::begin_assertion(Label truth) {
  if (impl_->finished) {
    throw std::invalid_argument("SsdWriter: begin_assertion after finish");
  }
  if (impl_->in_assertion) flush_column();
  impl_->in_assertion = true;
  impl_->truth.push_back(static_cast<std::uint8_t>(truth));
}

void SsdWriter::claim(std::uint32_t source, double time) {
  if (!impl_->in_assertion) {
    throw std::invalid_argument("SsdWriter: claim outside an assertion");
  }
  if (source >= impl_->n) {
    throw std::invalid_argument("SsdWriter: source id out of range");
  }
  impl_->col_claims.emplace_back(source, time);
}

void SsdWriter::exposed(std::uint32_t source) {
  if (!impl_->in_assertion) {
    throw std::invalid_argument("SsdWriter: exposed outside an assertion");
  }
  if (source >= impl_->n) {
    throw std::invalid_argument("SsdWriter: source id out of range");
  }
  impl_->col_exposed.push_back(source);
}

void SsdWriter::flush_column() {
  Impl& im = *impl_;
  std::sort(im.col_claims.begin(), im.col_claims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(im.col_exposed.begin(), im.col_exposed.end());
  for (std::size_t k = 1; k < im.col_claims.size(); ++k) {
    if (im.col_claims[k].first == im.col_claims[k - 1].first) {
      throw std::invalid_argument(
          "SsdWriter: duplicate claimant in one assertion");
    }
  }
  for (std::size_t k = 1; k < im.col_exposed.size(); ++k) {
    if (im.col_exposed[k] == im.col_exposed[k - 1]) {
      throw std::invalid_argument(
          "SsdWriter: duplicate exposed cell in one assertion");
    }
  }
  for (const auto& [i, t] : im.col_claims) {
    im.cl_ids.write(reinterpret_cast<const char*>(&i), 4);
    im.cl_times.write(reinterpret_cast<const char*>(&t), 8);
    ++im.row_claim_deg[i];
  }
  for (std::uint32_t i : im.col_exposed) {
    im.ex_ids.write(reinterpret_cast<const char*>(&i), 4);
    ++im.row_exp_deg[i];
  }
  im.claim_count += im.col_claims.size();
  im.exposed_count += im.col_exposed.size();
  im.col_claim_off.push_back(im.claim_count);
  im.col_exp_off.push_back(im.exposed_count);
  im.col_claims.clear();
  im.col_exposed.clear();
}

namespace {

// Read-write image of the output file being assembled: mmap-backed on
// POSIX (ftruncate + MAP_SHARED), a heap buffer elsewhere.
struct OutImage {
  char* base = nullptr;
  std::size_t size = 0;
  bool mapped = false;
  std::string path;

  static OutImage create(const std::string& path, std::size_t size) {
    OutImage out;
    out.path = path;
    out.size = size;
#if SS_SSD_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);  // ss-lint: allow(raw-mmap): sanctioned output mapping (data/ssd)
    if (fd < 0) throw std::runtime_error("SsdWriter: cannot create " + path);
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      ::close(fd);
      std::remove(path.c_str());
      throw std::runtime_error("SsdWriter: cannot size " + path);
    }
    void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
      std::remove(path.c_str());
      throw std::runtime_error("SsdWriter: cannot map " + path);
    }
    out.base = static_cast<char*>(p);
    out.mapped = true;
#else
    out.base = new char[size];
    std::memset(out.base, 0, size);
#endif
    return out;
  }

  void commit() {
#if SS_SSD_HAVE_MMAP
    ::msync(base, size, MS_SYNC);
    ::munmap(base, size);  // ss-lint: allow(raw-mmap): paired unmap of the sanctioned output mapping
#else
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    outf.write(base, static_cast<std::streamsize>(size));
    delete[] base;
    if (!outf) throw std::runtime_error("SsdWriter: cannot write " + path);
#endif
    base = nullptr;
  }

  void abandon() {
    if (base == nullptr) return;
#if SS_SSD_HAVE_MMAP
    ::munmap(base, size);  // ss-lint: allow(raw-mmap): paired unmap of the sanctioned output mapping
#else
    delete[] base;
#endif
    base = nullptr;
    std::remove(path.c_str());
  }
};

void read_spool(const std::string& path, char* dst, std::size_t bytes) {
  std::ifstream in(path, std::ios::binary);
  in.read(dst, static_cast<std::streamsize>(bytes));
  if (!in && bytes > 0) {
    throw std::runtime_error("SsdWriter: spool file short: " + path);
  }
}

}  // namespace

SsdStats SsdWriter::finish() {
  Impl& im = *impl_;
  if (im.finished) {
    throw std::invalid_argument("SsdWriter: finish called twice");
  }
  if (im.in_assertion) flush_column();
  im.finished = true;
  im.cl_ids.close();
  im.cl_times.close();
  im.ex_ids.close();
  if (!im.cl_ids || !im.cl_times || !im.ex_ids) {
    im.remove_temps();
    throw std::runtime_error("SsdWriter: spool write failed for " +
                             im.path);
  }

  const std::uint64_t n = im.n;
  const std::uint64_t m = im.truth.size();
  const std::uint64_t claims = im.claim_count;
  const std::uint64_t exposed = im.exposed_count;

  // Layout: header | table | header digest | sections (8-aligned).
  const std::size_t fixed = kHeaderWords * 8;
  const std::size_t digest_at = fixed + kSsdSectionCount * 24;
  std::size_t at = digest_at + 8;
  std::uint64_t sizes[kSsdSectionCount + 1] = {};
  std::uint64_t offsets[kSsdSectionCount + 1] = {};
  auto place = [&](SsdSection id, std::uint64_t bytes) {
    at = align8(at);
    offsets[static_cast<std::size_t>(id)] = at;
    sizes[static_cast<std::size_t>(id)] = bytes;
    at += static_cast<std::size_t>(bytes);
  };
  place(SsdSection::kName, im.name.size());
  place(SsdSection::kTruth, m);
  place(SsdSection::kColClaimOff, (m + 1) * 8);
  place(SsdSection::kColClaimants, claims * 4);
  place(SsdSection::kColClaimTimes, claims * 8);
  place(SsdSection::kColExpOff, (m + 1) * 8);
  place(SsdSection::kColExposed, exposed * 4);
  place(SsdSection::kRowClaimOff, (n + 1) * 8);
  place(SsdSection::kRowClaims, claims * 4);
  place(SsdSection::kRowClaimTimes, claims * 8);
  place(SsdSection::kRowExpOff, (n + 1) * 8);
  place(SsdSection::kRowExposed, exposed * 4);
  const std::size_t total = align8(at);

  const std::string tmp = im.path + ".tmp";
  OutImage out = OutImage::create(tmp, total);
  try {
    auto sec = [&](SsdSection id) {
      return out.base + offsets[static_cast<std::size_t>(id)];
    };
    // Name, truth, column offsets straight from RAM.
    std::memcpy(sec(SsdSection::kName), im.name.data(), im.name.size());
    std::memcpy(sec(SsdSection::kTruth), im.truth.data(), m);
    std::memcpy(sec(SsdSection::kColClaimOff), im.col_claim_off.data(),
                (m + 1) * 8);
    std::memcpy(sec(SsdSection::kColExpOff), im.col_exp_off.data(),
                (m + 1) * 8);
    // Column payloads from the spools.
    read_spool(im.cl_ids_path, sec(SsdSection::kColClaimants),
               claims * 4);
    read_spool(im.cl_times_path, sec(SsdSection::kColClaimTimes),
               claims * 8);
    read_spool(im.ex_ids_path, sec(SsdSection::kColExposed), exposed * 4);
    im.remove_temps();

    // Row offsets from the degree counters.
    auto* row_claim_off =
        reinterpret_cast<std::uint64_t*>(sec(SsdSection::kRowClaimOff));
    auto* row_exp_off =
        reinterpret_cast<std::uint64_t*>(sec(SsdSection::kRowExpOff));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      row_claim_off[i] = acc;
      acc += im.row_claim_deg[i];
    }
    row_claim_off[n] = acc;
    acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      row_exp_off[i] = acc;
      acc += im.row_exp_deg[i];
    }
    row_exp_off[n] = acc;

    // Counting-sort transpose: walking columns in ascending j fills
    // each row's list in ascending assertion order.
    {
      const auto* col_off = reinterpret_cast<const std::uint64_t*>(
          sec(SsdSection::kColClaimOff));
      const auto* col_ids = reinterpret_cast<const std::uint32_t*>(
          sec(SsdSection::kColClaimants));
      const auto* col_times = reinterpret_cast<const double*>(
          sec(SsdSection::kColClaimTimes));
      auto* row_ids =
          reinterpret_cast<std::uint32_t*>(sec(SsdSection::kRowClaims));
      auto* row_times = reinterpret_cast<double*>(
          sec(SsdSection::kRowClaimTimes));
      std::vector<std::uint64_t> cursor(row_claim_off, row_claim_off + n);
      for (std::size_t j = 0; j < m; ++j) {
        for (std::uint64_t k = col_off[j]; k < col_off[j + 1]; ++k) {
          std::uint64_t pos = cursor[col_ids[k]]++;
          row_ids[pos] = static_cast<std::uint32_t>(j);
          row_times[pos] = col_times[k];
        }
      }
    }
    {
      const auto* col_off = reinterpret_cast<const std::uint64_t*>(
          sec(SsdSection::kColExpOff));
      const auto* col_ids = reinterpret_cast<const std::uint32_t*>(
          sec(SsdSection::kColExposed));
      auto* row_ids =
          reinterpret_cast<std::uint32_t*>(sec(SsdSection::kRowExposed));
      std::vector<std::uint64_t> cursor(row_exp_off, row_exp_off + n);
      for (std::size_t j = 0; j < m; ++j) {
        for (std::uint64_t k = col_off[j]; k < col_off[j + 1]; ++k) {
          std::uint64_t pos = cursor[col_ids[k]]++;
          row_ids[pos] = static_cast<std::uint32_t>(j);
        }
      }
    }

    // Seals: payload digest over sections in id order, then the header
    // and its digest.
    std::uint64_t payload = 0xcbf29ce484222325ULL;
    for (std::size_t s = 1; s <= kSsdSectionCount; ++s) {
      payload = fnv1a64(out.base + offsets[s], sizes[s], payload);
    }
    const std::uint64_t fp =
        ssd_fingerprint(im.name, n, m, claims, exposed);
    auto* head = reinterpret_cast<std::uint64_t*>(out.base);
    head[0] = kSsdMagic;
    head[1] = kSsdVersion;
    head[2] = fp;
    head[3] = n;
    head[4] = m;
    head[5] = claims;
    head[6] = exposed;
    head[7] = kSsdSectionCount;
    head[8] = payload;
    auto* table = reinterpret_cast<std::uint64_t*>(out.base + fixed);
    for (std::size_t s = 1; s <= kSsdSectionCount; ++s) {
      table[(s - 1) * 3 + 0] = s;
      table[(s - 1) * 3 + 1] = offsets[s];
      table[(s - 1) * 3 + 2] = sizes[s];
    }
    const std::uint64_t head_digest = fnv1a64(out.base, digest_at);
    std::memcpy(out.base + digest_at, &head_digest, 8);
    out.commit();

    if (std::rename(tmp.c_str(), im.path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw std::runtime_error("SsdWriter: rename failed for " + im.path);
    }
    SsdStats stats;
    stats.sources = static_cast<std::size_t>(n);
    stats.assertions = static_cast<std::size_t>(m);
    stats.claims = static_cast<std::size_t>(claims);
    stats.exposed = static_cast<std::size_t>(exposed);
    stats.fingerprint = fp;
    stats.bytes = total;
    return stats;
  } catch (...) {
    out.abandon();
    im.remove_temps();
    throw;
  }
}

SsdStats write_ssd(const Dataset& dataset, const std::string& path) {
  dataset.validate();
  SsdWriter writer(path, dataset.source_count(),
                   dataset.name.empty() ? "dataset" : dataset.name);
  const std::size_t m = dataset.assertion_count();
  const bool labeled = !dataset.truth.empty();
  for (std::size_t j = 0; j < m; ++j) {
    writer.begin_assertion(labeled ? dataset.truth[j] : Label::kUnknown);
    const std::vector<std::uint32_t>& cs = dataset.claims.claimants_of(j);
    const std::vector<double>& ts = dataset.claims.claimant_times_of(j);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      writer.claim(cs[k], ts[k]);
    }
    for (std::uint32_t i : dataset.dependency.exposed_sources(j)) {
      writer.exposed(i);
    }
  }
  return writer.finish();
}

Dataset load_ssd(const std::string& path) {
  return SsdView::open_or_throw(path).materialize();
}

}  // namespace ss
