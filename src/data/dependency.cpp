#include "data/dependency.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ss {

void DependencyIndicators::finalize() {
  cell_count_ = 0;
  for (auto& v : by_source_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    cell_count_ += v.size();
  }
  for (auto& v : by_assertion_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
}

DependencyIndicators DependencyIndicators::from_graph(
    const SourceClaimMatrix& sc, const Digraph& follows,
    ExposureScope scope) {
  if (follows.node_count() != sc.source_count()) {
    throw std::invalid_argument(
        "DependencyIndicators::from_graph: graph/matrix source mismatch");
  }
  DependencyIndicators dep;
  dep.by_source_.resize(sc.source_count());
  dep.by_assertion_.resize(sc.assertion_count());

  auto expose = [&](std::size_t u, std::uint32_t j, double tv) {
    // u is exposed when it never claimed j, or claimed it strictly
    // after the influencer's time tv.
    bool exposed =
        sc.has_claim(u, j) ? tv < sc.claim_time(u, j) : true;
    if (exposed) {
      dep.by_source_[u].push_back(j);
      dep.by_assertion_[j].push_back(static_cast<std::uint32_t>(u));
    }
  };

  if (scope == ExposureScope::kDirect) {
    // For every claim (v, j, t) the direct followers of v are exposure
    // candidates.
    for (std::size_t j = 0; j < sc.assertion_count(); ++j) {
      const auto& claimants = sc.claimants_of(j);
      const auto& times = sc.claimant_times_of(j);
      for (std::size_t k = 0; k < claimants.size(); ++k) {
        for (std::size_t u : follows.followers(claimants[k])) {
          expose(u, static_cast<std::uint32_t>(j), times[k]);
        }
      }
    }
  } else {
    // Transitive: every ancestor's claim can influence u. One BFS per
    // source — O(V (V + E)) worst case, intended for analysis-scale
    // graphs, not Paris-Attack-scale ingestion.
    for (std::size_t u = 0; u < sc.source_count(); ++u) {
      std::vector<char> mask = follows.ancestor_mask(u);
      for (std::size_t v = 0; v < mask.size(); ++v) {
        if (!mask[v]) continue;
        const auto& claims = sc.claims_of(v);
        const auto& times = sc.claim_times_of(v);
        for (std::size_t k = 0; k < claims.size(); ++k) {
          expose(u, claims[k], times[k]);
        }
      }
    }
  }
  dep.finalize();
  return dep;
}

DependencyIndicators DependencyIndicators::from_forest(
    const SourceClaimMatrix& sc, const DependencyForest& forest) {
  if (forest.source_count() != sc.source_count()) {
    throw std::invalid_argument(
        "DependencyIndicators::from_forest: forest/matrix source mismatch");
  }
  DependencyIndicators dep;
  dep.by_source_.resize(sc.source_count());
  dep.by_assertion_.resize(sc.assertion_count());
  for (std::size_t i = 0; i < sc.source_count(); ++i) {
    if (forest.is_root(i)) continue;
    std::size_t r = forest.root_of[i];
    for (std::uint32_t j : sc.claims_of(r)) {
      dep.by_source_[i].push_back(j);
      dep.by_assertion_[j].push_back(static_cast<std::uint32_t>(i));
    }
  }
  dep.finalize();
  return dep;
}

DependencyIndicators DependencyIndicators::from_cells(
    std::size_t sources, std::size_t assertions,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells) {
  DependencyIndicators dep;
  dep.by_source_.resize(sources);
  dep.by_assertion_.resize(assertions);
  for (const auto& [i, j] : cells) {
    if (i >= sources || j >= assertions) {
      throw std::out_of_range(
          "DependencyIndicators::from_cells: cell out of range");
    }
    dep.by_source_[i].push_back(j);
    dep.by_assertion_[j].push_back(i);
  }
  dep.finalize();
  return dep;
}

bool DependencyIndicators::dependent(std::size_t source,
                                     std::size_t assertion) const {
  const auto& v = by_source_.at(source);
  return std::binary_search(v.begin(), v.end(),
                            static_cast<std::uint32_t>(assertion));
}

const std::vector<std::uint32_t>& DependencyIndicators::exposed_assertions(
    std::size_t source) const {
  return by_source_.at(source);
}

const std::vector<std::uint32_t>& DependencyIndicators::exposed_sources(
    std::size_t assertion) const {
  return by_assertion_.at(assertion);
}

std::size_t count_original_claims(const SourceClaimMatrix& sc,
                                  const DependencyIndicators& dep) {
  std::size_t original = 0;
  for (std::size_t i = 0; i < sc.source_count(); ++i) {
    for (std::uint32_t j : sc.claims_of(i)) {
      if (!dep.dependent(i, j)) ++original;
    }
  }
  return original;
}

}  // namespace ss
