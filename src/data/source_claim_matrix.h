// The source-claim matrix SC (Section II-A).
//
// SC is an n x m binary matrix where SC[i][j] = 1 iff source i asserted
// assertion j. Real social-sensing matrices are extremely sparse (the
// paper's Table III datasets average ~1.3 claims per source over thousands
// of assertions), so the matrix is stored as sorted adjacency in both
// orientations: claims-by-source (rows) and claimants-by-assertion
// (columns). Each claim optionally carries a timestamp, which the
// dependency-indicator computation uses to decide whether an ancestor's
// matching claim happened *before* this one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ss {

struct Claim {
  std::uint32_t source = 0;
  std::uint32_t assertion = 0;
  // Event time; claims without meaningful time should use 0. When a source
  // repeats the same assertion, only its earliest claim is kept.
  double time = 0.0;
};

class SourceClaimMatrix {
 public:
  SourceClaimMatrix() = default;

  // Builds from a claim list. Duplicate (source, assertion) pairs collapse
  // to the earliest timestamp. Throws std::out_of_range on indices outside
  // [0, sources) x [0, assertions).
  SourceClaimMatrix(std::size_t sources, std::size_t assertions,
                    const std::vector<Claim>& claims);

  std::size_t source_count() const { return rows_.size(); }
  std::size_t assertion_count() const { return cols_.size(); }
  std::size_t claim_count() const { return claim_count_; }

  // Assertion ids claimed by source i, ascending.
  const std::vector<std::uint32_t>& claims_of(std::size_t source) const;
  // Claim times aligned with claims_of(source).
  const std::vector<double>& claim_times_of(std::size_t source) const;

  // Source ids that claimed assertion j, ascending.
  const std::vector<std::uint32_t>& claimants_of(
      std::size_t assertion) const;
  // Claim times aligned with claimants_of(assertion).
  const std::vector<double>& claimant_times_of(
      std::size_t assertion) const;

  // True iff SC[source][assertion] == 1. O(log deg).
  bool has_claim(std::size_t source, std::size_t assertion) const;
  // Timestamp of the claim; requires has_claim.
  double claim_time(std::size_t source, std::size_t assertion) const;

  std::size_t support(std::size_t assertion) const {
    return claimants_of(assertion).size();
  }

  // Flat claim list (earliest-per-cell), ordered by (source, assertion).
  std::vector<Claim> to_claims() const;

 private:
  struct Adjacency {
    std::vector<std::uint32_t> ids;
    std::vector<double> times;
  };
  std::vector<Adjacency> rows_;  // per source
  std::vector<Adjacency> cols_;  // per assertion
  std::size_t claim_count_ = 0;
};

}  // namespace ss
