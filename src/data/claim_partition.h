// Immutable claim/dependency partition cache.
//
// The hot loops of EM-Ext touch, for every claim cell, the predicate
// D_ij ("was this claim dependent?"). DependencyIndicators answers it
// with an O(log deg) binary search — paid per claimant, per column, per
// EM iteration in the E-step, and again per claim in the M-step.
// ClaimPartition evaluates every claim's indicator exactly once per
// dataset (a linear two-pointer merge of the sorted claim and exposure
// lists) and stores the answers in flat CSR arrays:
//
//  * per assertion j, a char flag per claimant *aligned with
//    SourceClaimMatrix::claimants_of(j)* — the E-step walks claimants in
//    the same order as before, so log-likelihoods stay bit-identical;
//  * per assertion j and per source i, the claimants/claims split into
//    dependent and independent id lists (each ascending) — the M-step's
//    separate accumulators consume these directly.
//
// Build once via Dataset::partition(); the object is immutable and safe
// to read from any number of threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dependency.h"
#include "data/source_claim_matrix.h"

namespace ss {

class ClaimPartition {
 public:
  ClaimPartition() = default;

  // Evaluates D_ij for every claim of `sc` against `dep`. Shapes must
  // agree (throws std::invalid_argument otherwise).
  static ClaimPartition build(const SourceClaimMatrix& sc,
                              const DependencyIndicators& dep);

  std::size_t source_count() const { return s_dep_off_.size() - 1; }
  std::size_t assertion_count() const { return flag_off_.size() - 1; }
  // Number of claims with D_ij == 1.
  std::size_t dependent_claim_count() const { return a_dep_.size(); }

  // Flags aligned with claimants_of(assertion): nonzero iff D_ij == 1.
  std::span<const char> claimant_dependent(std::size_t assertion) const {
    return {flags_.data() + flag_off_[assertion],
            flag_off_[assertion + 1] - flag_off_[assertion]};
  }
  // Claimants of `assertion` with D_ij == 1 / == 0, ascending.
  std::span<const std::uint32_t> dependent_claimants(
      std::size_t assertion) const {
    return {a_dep_.data() + a_dep_off_[assertion],
            a_dep_off_[assertion + 1] - a_dep_off_[assertion]};
  }
  std::span<const std::uint32_t> independent_claimants(
      std::size_t assertion) const {
    return {a_indep_.data() + a_indep_off_[assertion],
            a_indep_off_[assertion + 1] - a_indep_off_[assertion]};
  }
  // Assertions `source` claimed with D_ij == 1 / == 0, ascending.
  std::span<const std::uint32_t> dependent_claims(
      std::size_t source) const {
    return {s_dep_.data() + s_dep_off_[source],
            s_dep_off_[source + 1] - s_dep_off_[source]};
  }
  std::span<const std::uint32_t> independent_claims(
      std::size_t source) const {
    return {s_indep_.data() + s_indep_off_[source],
            s_indep_off_[source + 1] - s_indep_off_[source]};
  }

 private:
  // CSR layouts: offsets have size (rows + 1); values are flat.
  std::vector<std::size_t> flag_off_;  // by assertion, into flags_
  std::vector<char> flags_;
  std::vector<std::size_t> a_dep_off_, a_indep_off_;  // by assertion
  std::vector<std::uint32_t> a_dep_, a_indep_;
  std::vector<std::size_t> s_dep_off_, s_indep_off_;  // by source
  std::vector<std::uint32_t> s_dep_, s_indep_;
};

}  // namespace ss
