#include "data/shard.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "data/ssd.h"
#include "graph/union_find.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// The two build sources behind one span-shaped surface. Both expose
// ascending id lists (SourceClaimMatrix/DependencyIndicators sort on
// construction; the .ssd writer sorts before spooling).
struct DatasetAccess {
  const Dataset& d;
  std::size_t n() const { return d.source_count(); }
  std::size_t m() const { return d.assertion_count(); }
  std::span<const std::uint32_t> claimants(std::size_t j) const {
    return d.claims.claimants_of(j);
  }
  std::span<const std::uint32_t> exposed(std::size_t j) const {
    return d.dependency.exposed_sources(j);
  }
  std::span<const std::uint32_t> claims_of(std::size_t i) const {
    return d.claims.claims_of(i);
  }
  std::span<const std::uint32_t> exposed_assertions(std::size_t i) const {
    return d.dependency.exposed_assertions(i);
  }
  std::string name() const { return d.name; }
  Label truth(std::size_t j) const {
    return d.truth.empty() ? Label::kUnknown : d.truth[j];
  }
  bool labeled() const { return !d.truth.empty(); }
};

struct ViewAccess {
  const SsdView& v;
  std::size_t n() const { return v.source_count(); }
  std::size_t m() const { return v.assertion_count(); }
  std::span<const std::uint32_t> claimants(std::size_t j) const {
    return v.claimants_of(j);
  }
  std::span<const std::uint32_t> exposed(std::size_t j) const {
    return v.exposed_sources(j);
  }
  std::span<const std::uint32_t> claims_of(std::size_t i) const {
    return v.claims_of(i);
  }
  std::span<const std::uint32_t> exposed_assertions(std::size_t i) const {
    return v.exposed_assertions(i);
  }
  std::string name() const { return v.name(); }
  Label truth(std::size_t j) const { return v.truth(j); }
  bool labeled() const {
    for (std::size_t j = 0; j < v.assertion_count(); ++j) {
      if (v.truth(j) != Label::kUnknown) return true;
    }
    return false;
  }
};

void require_in_range(std::span<const std::uint32_t> ids, std::size_t n,
                      const char* what) {
  for (std::uint32_t i : ids) {
    if (i >= n) {
      throw TaxonomyError(ErrorCode::kIndexOutOfRange,
                          std::string("ShardedDataset: ") + what +
                              " id " + std::to_string(i) +
                              " out of range (n = " + std::to_string(n) +
                              ")");
    }
  }
}

}  // namespace

template <typename Access>
ShardedDataset ShardedDataset::build_impl(const Access& a,
                                          const ShardConfig& config) {
  const std::size_t n = a.n();
  const std::size_t m = a.m();
  ShardedDataset out;
  out.name_ = a.name();
  if (a.labeled()) {
    out.truth_.resize(m);
    for (std::size_t j = 0; j < m; ++j) out.truth_[j] = a.truth(j);
  }
  out.assertion_shard_.assign(m, 0);
  out.assertion_pos_.assign(m, 0);
  out.source_shard_.assign(n, 0);
  out.source_pos_.assign(n, 0);

  // 1. Connected components over assertions: chain-union every
  // assertion a source touches (claims and exposure edges alike).
  UnionFind uf(m);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const std::uint32_t> cl = a.claims_of(i);
    std::span<const std::uint32_t> ex = a.exposed_assertions(i);
    require_in_range(cl, m, "claimed assertion");
    require_in_range(ex, m, "exposed assertion");
    std::uint32_t anchor = 0;
    bool have_anchor = false;
    for (std::uint32_t j : cl) {
      anchor = have_anchor ? uf.unite(anchor, j) : j;
      have_anchor = true;
    }
    for (std::uint32_t j : ex) {
      anchor = have_anchor ? uf.unite(anchor, j) : j;
      have_anchor = true;
    }
  }

  // 2. Dense component ids in first-assertion order (deterministic,
  // independent of union order).
  std::vector<std::uint32_t> comp_of(m);
  std::vector<std::uint32_t> comp_size;
  {
    std::vector<std::uint32_t> root_comp(m, UINT32_MAX);
    for (std::size_t j = 0; j < m; ++j) {
      std::uint32_t r = uf.find(static_cast<std::uint32_t>(j));
      if (root_comp[r] == UINT32_MAX) {
        root_comp[r] = static_cast<std::uint32_t>(comp_size.size());
        comp_size.push_back(0);
      }
      comp_of[j] = root_comp[r];
      ++comp_size[comp_of[j]];
    }
  }
  out.component_count_ = comp_size.size();

  // 3. Greedy packing of whole components, in component order, under
  // the assertion cap. A component above the cap becomes one oversized
  // shard — splitting it would create a cross-shard edge.
  std::size_t cap = config.max_shard_assertions;
  if (cap == 0) cap = std::max<std::size_t>(1024, (m + 63) / 64);
  std::vector<std::uint32_t> shard_of_comp(comp_size.size(), 0);
  std::vector<std::size_t> shard_components;
  {
    std::size_t filled = cap;  // force a new shard for the first component
    for (std::size_t c = 0; c < comp_size.size(); ++c) {
      if (filled + comp_size[c] > cap && filled > 0) {
        shard_components.push_back(0);
        filled = 0;
      }
      shard_of_comp[c] =
          static_cast<std::uint32_t>(shard_components.size() - 1);
      ++shard_components.back();
      filled += comp_size[c];
    }
  }
  // Sources with no incidence at all still need a home (round-robin so
  // no single shard collects every orphan); guarantee one shard exists.
  if (shard_components.empty() && n > 0) shard_components.push_back(0);
  const std::size_t shard_count = shard_components.size();
  out.shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    out.shards_[s].components_ = shard_components[s];
  }

  // 4. Assertion placement: ascending j within each shard.
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t s = shard_of_comp[comp_of[j]];
    DatasetShard& sh = out.shards_[s];
    out.assertion_shard_[j] = s;
    out.assertion_pos_[j] =
        static_cast<std::uint32_t>(sh.assertions_.size());
    sh.assertions_.push_back(static_cast<std::uint32_t>(j));
  }

  // 5. Source placement: a source's incident assertions all live in one
  // component (step 1 united them), so its shard is the shard of its
  // first incident assertion. Orphans round-robin.
  {
    std::size_t orphan = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::span<const std::uint32_t> cl = a.claims_of(i);
      std::span<const std::uint32_t> ex = a.exposed_assertions(i);
      std::uint32_t s;
      if (!cl.empty() && !ex.empty()) {
        s = out.assertion_shard_[std::min(cl.front(), ex.front())];
      } else if (!cl.empty()) {
        s = out.assertion_shard_[cl.front()];
      } else if (!ex.empty()) {
        s = out.assertion_shard_[ex.front()];
      } else {
        s = static_cast<std::uint32_t>(orphan++ % shard_count);
      }
      DatasetShard& sh = out.shards_[s];
      out.source_shard_[i] = s;
      out.source_pos_[i] = static_cast<std::uint32_t>(sh.sources_.size());
      sh.sources_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // 6+7. CSR fill, one task per shard. Column CSR: claimant list +
  // aligned D_ij flags (merge walk against the ascending exposed list)
  // + exposed list. Row CSR: dependent/independent claim split (merge
  // walk of the ascending claim and exposure lists) + exposure list.
  // Each task allocates and writes only its own shard's vectors, so
  // with an affinity-pinned pool the worker that fills a shard
  // first-touches its pages — the NUMA placement the EM passes later
  // want. The fill content depends only on the (already decided) shard
  // layout, never on scheduling; range errors propagate via
  // parallel_tasks' lowest-task-index rethrow, matching the serial
  // loop's first-failure behaviour because shards partition ascending
  // id ranges.
  auto fill_shard = [&](DatasetShard& sh) {
    sh.cl_off_.assign(sh.assertions_.size() + 1, 0);
    sh.ex_off_.assign(sh.assertions_.size() + 1, 0);
    for (std::size_t c = 0; c < sh.assertions_.size(); ++c) {
      const std::size_t j = sh.assertions_[c];
      std::span<const std::uint32_t> cl = a.claimants(j);
      std::span<const std::uint32_t> ex = a.exposed(j);
      require_in_range(cl, n, "claimant source");
      require_in_range(ex, n, "exposed source");
      std::size_t e = 0;
      for (std::uint32_t i : cl) {
        while (e < ex.size() && ex[e] < i) ++e;
        sh.claimants_.push_back(i);
        sh.cl_flags_.push_back(e < ex.size() && ex[e] == i ? 1 : 0);
      }
      sh.exposed_.insert(sh.exposed_.end(), ex.begin(), ex.end());
      sh.cl_off_[c + 1] = sh.claimants_.size();
      sh.ex_off_[c + 1] = sh.exposed_.size();
    }
    sh.dep_off_.assign(sh.sources_.size() + 1, 0);
    sh.indep_off_.assign(sh.sources_.size() + 1, 0);
    sh.expa_off_.assign(sh.sources_.size() + 1, 0);
    for (std::size_t s = 0; s < sh.sources_.size(); ++s) {
      const std::size_t i = sh.sources_[s];
      std::span<const std::uint32_t> cl = a.claims_of(i);
      std::span<const std::uint32_t> ex = a.exposed_assertions(i);
      std::size_t e = 0;
      for (std::uint32_t j : cl) {
        while (e < ex.size() && ex[e] < j) ++e;
        if (e < ex.size() && ex[e] == j) {
          sh.dep_claims_.push_back(j);
        } else {
          sh.indep_claims_.push_back(j);
        }
      }
      sh.exp_asserts_.insert(sh.exp_asserts_.end(), ex.begin(), ex.end());
      sh.dep_off_[s + 1] = sh.dep_claims_.size();
      sh.indep_off_[s + 1] = sh.indep_claims_.size();
      sh.expa_off_[s + 1] = sh.exp_asserts_.size();
    }
  };
  if (config.pool != nullptr && config.pool->size() > 1 &&
      out.shards_.size() > 1) {
    // LPT weight: incidence slots to fill, known exactly up front
    // (claimed + exposed entries per shard's assertions and sources).
    std::vector<double> weights(out.shards_.size(), 0.0);
    for (std::size_t s = 0; s < out.shards_.size(); ++s) {
      double w = 0.0;
      for (std::uint32_t j : out.shards_[s].assertions_) {
        w += static_cast<double>(a.claimants(j).size() +
                                 a.exposed(j).size());
      }
      for (std::uint32_t i : out.shards_[s].sources_) {
        w += static_cast<double>(a.claims_of(i).size() +
                                 a.exposed_assertions(i).size());
      }
      weights[s] = w;
    }
    config.pool->parallel_tasks(
        weights, [&](std::size_t s) { fill_shard(out.shards_[s]); });
  } else {
    for (DatasetShard& sh : out.shards_) fill_shard(sh);
  }
  // Totals in shard order, serial (sizes, not floats — order is
  // cosmetic, but keep it canonical anyway).
  for (const DatasetShard& sh : out.shards_) {
    out.claim_count_ += sh.claimants_.size();
    out.exposed_count_ += sh.exposed_.size();
  }
  return out;
}

ShardedDataset ShardedDataset::build(const Dataset& dataset,
                                     const ShardConfig& config) {
  dataset.validate();
  return build_impl(DatasetAccess{dataset}, config);
}

ShardedDataset ShardedDataset::build(const SsdView& view,
                                     const ShardConfig& config) {
  if (!view.valid()) {
    throw std::invalid_argument("ShardedDataset: invalid SsdView");
  }
  return build_impl(ViewAccess{view}, config);
}

void ShardedDataset::check() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("ShardedDataset invariant violated: " + what);
  };
  const std::size_t n = source_count();
  const std::size_t m = assertion_count();
  std::vector<char> seen_assert(m, 0);
  std::vector<char> seen_source(n, 0);
  std::size_t claims = 0;
  std::size_t exposed = 0;
  std::size_t components = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const DatasetShard& sh = shards_[s];
    components += sh.component_count();
    // Membership of the shard's own sources, for confinement checks.
    std::vector<char> member(n, 0);
    for (std::uint32_t i : sh.source_ids()) {
      if (i >= n || seen_source[i]) fail("source placed twice");
      seen_source[i] = 1;
      member[i] = 1;
      if (source_shard_[i] != s) fail("source_shard mismatch");
    }
    if (!std::is_sorted(sh.source_ids().begin(), sh.source_ids().end())) {
      fail("shard source list not ascending");
    }
    if (!std::is_sorted(sh.assertion_ids().begin(),
                        sh.assertion_ids().end())) {
      fail("shard assertion list not ascending");
    }
    for (std::size_t c = 0; c < sh.assertion_ids().size(); ++c) {
      const std::uint32_t j = sh.assertion_ids()[c];
      if (j >= m || seen_assert[j]) fail("assertion placed twice");
      seen_assert[j] = 1;
      if (assertion_shard_[j] != s || assertion_pos_[j] != c) {
        fail("assertion placement map mismatch");
      }
      std::span<const std::uint32_t> cl = sh.claimants(c);
      std::span<const std::uint32_t> ex = sh.exposed_sources(c);
      if (sh.claimant_dependent(c).size() != cl.size()) {
        fail("flag span misaligned");
      }
      if (!std::is_sorted(cl.begin(), cl.end()) ||
          !std::is_sorted(ex.begin(), ex.end())) {
        fail("column list not ascending");
      }
      // No cross-shard edge: every source a column touches belongs to
      // this shard.
      for (std::uint32_t i : cl) {
        if (!member[i]) fail("claimant outside shard");
      }
      std::size_t e = 0;
      for (std::size_t k = 0; k < cl.size(); ++k) {
        while (e < ex.size() && ex[e] < cl[k]) ++e;
        const bool dep = e < ex.size() && ex[e] == cl[k];
        if ((sh.claimant_dependent(c)[k] != 0) != dep) {
          fail("D_ij flag disagrees with exposed list");
        }
      }
      for (std::uint32_t i : ex) {
        if (!member[i]) fail("exposed source outside shard");
      }
      claims += cl.size();
      exposed += ex.size();
    }
    for (std::size_t p = 0; p < sh.source_ids().size(); ++p) {
      for (std::uint32_t j : sh.exposed_assertions(p)) {
        if (j >= m || assertion_shard_[j] != s) {
          fail("exposure edge crosses shards");
        }
      }
      for (std::uint32_t j : sh.dependent_claims(p)) {
        if (j >= m || assertion_shard_[j] != s) {
          fail("claim edge crosses shards");
        }
      }
      for (std::uint32_t j : sh.independent_claims(p)) {
        if (j >= m || assertion_shard_[j] != s) {
          fail("claim edge crosses shards");
        }
      }
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (!seen_assert[j]) fail("assertion missing from every shard");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen_source[i]) fail("source missing from every shard");
  }
  if (claims != claim_count_) fail("claim total mismatch");
  if (exposed != exposed_count_) fail("exposed total mismatch");
  if (components != component_count_) fail("component total mismatch");
}

}  // namespace ss
