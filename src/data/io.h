// Dataset persistence.
//
// A dataset serializes to a directory of three CSV files:
//   claims.csv    source,assertion,time
//   exposure.csv  source,assertion          (cells with D_ij == 1)
//   truth.csv     assertion,label           (True|False|Opinion|Unknown)
// plus meta.csv carrying name and matrix dimensions. The format is
// intentionally line-oriented and diff-able so collected or generated
// datasets can be inspected and versioned.
#pragma once

#include <string>

#include "data/dataset.h"

namespace ss {

// Writes the dataset; creates the directory if needed. Throws
// std::runtime_error on IO failure.
void save_dataset(const Dataset& dataset, const std::string& directory);

// Reads a dataset written by save_dataset. Throws std::runtime_error on
// missing files or parse errors.
Dataset load_dataset(const std::string& directory);

}  // namespace ss
