// Dataset persistence.
//
// A dataset serializes to a directory of three CSV files:
//   claims.csv    source,assertion,time
//   exposure.csv  source,assertion          (cells with D_ij == 1)
//   truth.csv     assertion,label           (True|False|Opinion|Unknown)
// plus meta.csv carrying name and matrix dimensions. The format is
// intentionally line-oriented and diff-able so collected or generated
// datasets can be inspected and versioned.
//
// Loading is fault-tolerant (util/status.h): every data row is
// validated individually — field count, numeric parses, source and
// assertion indices against the meta.csv dimensions, timestamp
// finiteness, label vocabulary. IngestMode decides what a defective
// row does: kStrict throws with file:line and taxonomy code (the
// legacy behaviour, and the default), kPermissive skips and counts it,
// kRepair additionally fixes rows with an unambiguous repair
// (non-finite time -> 0, unknown label -> Unknown). meta.csv defects
// are fatal in every mode — without dimensions nothing can be
// validated.
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace ss {

// Writes the dataset; creates the directory if needed. Throws
// std::runtime_error on IO failure.
void save_dataset(const Dataset& dataset, const std::string& directory);

// Reads a dataset written by save_dataset. Throws std::runtime_error on
// missing files or parse errors (strict mode).
Dataset load_dataset(const std::string& directory);

// Mode-aware load. Per-row accounting lands in `report` when non-null
// (the report is also filled on the throwing paths). In permissive and
// repair modes only unusable *rows* are dropped; IO-level failures
// (missing directory, unreadable meta.csv) still throw.
Dataset load_dataset(const std::string& directory,
                     const IngestOptions& options,
                     IngestReport* report = nullptr);

// Non-throwing variant: IO-level and strict-mode failures come back as
// a classified Error instead of an exception.
Expected<Dataset> try_load_dataset(const std::string& directory,
                                   const IngestOptions& options = {},
                                   IngestReport* report = nullptr);

}  // namespace ss
