// Dataset persistence.
//
// A dataset serializes to a directory of three CSV files:
//   claims.csv    source,assertion,time
//   exposure.csv  source,assertion          (cells with D_ij == 1)
//   truth.csv     assertion,label           (True|False|Opinion|Unknown)
// plus meta.csv carrying name and matrix dimensions. The format is
// intentionally line-oriented and diff-able so collected or generated
// datasets can be inspected and versioned.
//
// Loading is fault-tolerant (util/status.h): every data row is
// validated individually — field count, numeric parses, source and
// assertion indices against the meta.csv dimensions, timestamp
// finiteness, label vocabulary. IngestMode decides what a defective
// row does: kStrict throws with file:line and taxonomy code (the
// legacy behaviour, and the default), kPermissive skips and counts it,
// kRepair additionally fixes rows with an unambiguous repair
// (non-finite time -> 0, unknown label -> Unknown). meta.csv defects
// are fatal in every mode — without dimensions nothing can be
// validated.
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace ss {

// Writes the dataset; creates the directory if needed. Throws
// std::runtime_error on IO failure.
void save_dataset(const Dataset& dataset, const std::string& directory);

// Reads a dataset written by save_dataset. Throws std::runtime_error on
// missing files or parse errors (strict mode).
Dataset load_dataset(const std::string& directory);

// Mode-aware load. Per-row accounting lands in `report` when non-null
// (the report is also filled on the throwing paths). In permissive and
// repair modes only unusable *rows* are dropped; IO-level failures
// (missing directory, unreadable meta.csv) still throw.
Dataset load_dataset(const std::string& directory,
                     const IngestOptions& options,
                     IngestReport* report = nullptr);

// Non-throwing variant: IO-level and strict-mode failures come back as
// a classified Error instead of an exception.
[[nodiscard]] Expected<Dataset> try_load_dataset(const std::string& directory,
                                   const IngestOptions& options = {},
                                   IngestReport* report = nullptr);

// Single-file JSONL dataset stream: line 1 is a meta record, then one
// flat object per claim / exposure cell / truth label,
//   {"meta":{"name":"...","sources":N,"assertions":M}}
//   {"claim":[source,assertion,time]}
//   {"exposure":[source,assertion]}
//   {"truth":[assertion,"True"]}
// Times use %.17g so values round-trip exactly (unlike the diff-able
// CSV directory, which trades precision for readability). This is the
// interchange format ss_pack converts to .ssd — and the text baseline
// bench_scale measures the binary format's load speedup against.
void save_dataset_jsonl(const Dataset& dataset, const std::string& path);

// Strict load: throws TaxonomyError with file:line and taxonomy code
// on the first defective line (kIoError for an unreadable file).
Dataset load_dataset_jsonl(const std::string& path);

}  // namespace ss
