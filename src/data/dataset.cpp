#include "data/dataset.h"

#include <stdexcept>

namespace ss {

const char* label_name(Label label) {
  switch (label) {
    case Label::kFalse: return "False";
    case Label::kTrue: return "True";
    case Label::kOpinion: return "Opinion";
    case Label::kUnknown: return "Unknown";
  }
  return "?";
}

DatasetSummary Dataset::summary() const {
  DatasetSummary s;
  s.assertions = claims.assertion_count();
  s.sources = claims.source_count();
  s.total_claims = claims.claim_count();
  s.original_claims = count_original_claims(claims, dependency);
  for (Label l : truth) {
    switch (l) {
      case Label::kTrue: ++s.true_assertions; break;
      case Label::kFalse: ++s.false_assertions; break;
      case Label::kOpinion: ++s.opinion_assertions; break;
      case Label::kUnknown: break;
    }
  }
  return s;
}

void Dataset::validate() const {
  if (dependency.source_count() != claims.source_count() ||
      dependency.assertion_count() != claims.assertion_count()) {
    throw std::invalid_argument(
        "Dataset: dependency indicator shape does not match claim matrix");
  }
  if (!truth.empty() && truth.size() != claims.assertion_count()) {
    throw std::invalid_argument(
        "Dataset: truth label count does not match assertion count");
  }
}

}  // namespace ss
