#include "data/dataset.h"

#include <mutex>
#include <stdexcept>

namespace ss {
namespace {

// Guards lazy partition construction. Builds are rare (once per
// dataset), so one process-wide mutex is cheaper than a per-Dataset one
// (which would also break copyability).
std::mutex& partition_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

Dataset::Dataset(const Dataset& other)
    : name(other.name),
      claims(other.claims),
      dependency(other.dependency),
      truth(other.truth) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this != &other) {
    name = other.name;
    claims = other.claims;
    dependency = other.dependency;
    truth = other.truth;
    partition_cache_.reset();
  }
  return *this;
}

const ClaimPartition& Dataset::partition() const {
  std::lock_guard<std::mutex> lock(partition_mutex());
  if (!partition_cache_) {
    partition_cache_ = std::make_shared<const ClaimPartition>(
        ClaimPartition::build(claims, dependency));
  }
  return *partition_cache_;
}

void Dataset::invalidate_partition() const {
  std::lock_guard<std::mutex> lock(partition_mutex());
  partition_cache_.reset();
}

const char* label_name(Label label) {
  switch (label) {
    case Label::kFalse: return "False";
    case Label::kTrue: return "True";
    case Label::kOpinion: return "Opinion";
    case Label::kUnknown: return "Unknown";
  }
  return "?";
}

DatasetSummary Dataset::summary() const {
  DatasetSummary s;
  s.assertions = claims.assertion_count();
  s.sources = claims.source_count();
  s.total_claims = claims.claim_count();
  s.original_claims = count_original_claims(claims, dependency);
  for (Label l : truth) {
    switch (l) {
      case Label::kTrue: ++s.true_assertions; break;
      case Label::kFalse: ++s.false_assertions; break;
      case Label::kOpinion: ++s.opinion_assertions; break;
      case Label::kUnknown: break;
    }
  }
  return s;
}

void Dataset::validate() const {
  if (dependency.source_count() != claims.source_count() ||
      dependency.assertion_count() != claims.assertion_count()) {
    throw std::invalid_argument(
        "Dataset: dependency indicator shape does not match claim matrix");
  }
  if (!truth.empty() && truth.size() != claims.assertion_count()) {
    throw std::invalid_argument(
        "Dataset: truth label count does not match assertion count");
  }
}

}  // namespace ss
