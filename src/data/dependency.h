// Dependency indicators D (Section II-A), generalized to *exposure*.
//
// The paper defines D_ij = 1 when source i's claim of assertion j is
// "dependent": some ancestor of i (a source i follows) asserted j earlier.
// The EM-Ext M-step (Eq. 10-14) also sums over *unclaimed* cells split by
// D_ij, so D must be defined for every (i, j) pair, not just claims. The
// natural extension — and the only one under which those sums are
// well-formed — is exposure: D_ij = 1 iff some ancestor of i asserted j
// before i's claim (or at any time, when i never claimed j). See DESIGN.md
// §5.
//
// Exposure is stored sparsely in both orientations because exposed cells
// are rare in realistic data: per-source sorted assertion lists and
// per-assertion sorted source lists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/source_claim_matrix.h"
#include "graph/digraph.h"
#include "graph/forest.h"

namespace ss {

// Which sources count as a claim's potential influencers. The paper's
// Figure-1 walkthrough uses direct followees; its prose definition says
// "ancestors", which reads as transitive reachability. Both are
// supported; kDirect is the default (and the cheaper one — transitive
// closure on a celebrity graph explodes).
enum class ExposureScope { kDirect, kTransitive };

class DependencyIndicators {
 public:
  DependencyIndicators() = default;

  // Computes exposure from a follows-graph: source u is exposed to
  // assertion j iff some followee (direct, or any ancestor under
  // kTransitive) v of u claimed j, and (when u itself claimed j) v's
  // claim strictly precedes u's.
  static DependencyIndicators from_graph(
      const SourceClaimMatrix& sc, const Digraph& follows,
      ExposureScope scope = ExposureScope::kDirect);

  // Forest shortcut: leaves are exposed to exactly the assertions their
  // root claimed (roots always claim "first" in the generators).
  static DependencyIndicators from_forest(const SourceClaimMatrix& sc,
                                          const DependencyForest& forest);

  // Builds directly from explicit exposed cells (tests, file IO).
  static DependencyIndicators from_cells(
      std::size_t sources, std::size_t assertions,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells);

  std::size_t source_count() const { return by_source_.size(); }
  std::size_t assertion_count() const { return by_assertion_.size(); }
  std::size_t exposed_cell_count() const { return cell_count_; }

  // D_ij. O(log deg).
  bool dependent(std::size_t source, std::size_t assertion) const;

  // Assertions source i is exposed to, ascending.
  const std::vector<std::uint32_t>& exposed_assertions(
      std::size_t source) const;
  // Sources exposed to assertion j, ascending.
  const std::vector<std::uint32_t>& exposed_sources(
      std::size_t assertion) const;

 private:
  void finalize();

  std::vector<std::vector<std::uint32_t>> by_source_;
  std::vector<std::vector<std::uint32_t>> by_assertion_;
  std::size_t cell_count_ = 0;
};

// Counts claims with D_ij == 0, the paper's "#Original Claims" column in
// Table III.
std::size_t count_original_claims(const SourceClaimMatrix& sc,
                                  const DependencyIndicators& dep);

}  // namespace ss
