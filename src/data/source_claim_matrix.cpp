#include "data/source_claim_matrix.h"

#include <algorithm>
#include <stdexcept>

namespace ss {

SourceClaimMatrix::SourceClaimMatrix(std::size_t sources,
                                     std::size_t assertions,
                                     const std::vector<Claim>& claims)
    : rows_(sources), cols_(assertions) {
  std::vector<Claim> sorted = claims;
  for (const Claim& c : sorted) {
    if (c.source >= sources || c.assertion >= assertions) {
      throw std::out_of_range("SourceClaimMatrix: claim index out of range");
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Claim& a, const Claim& b) {
              if (a.source != b.source) return a.source < b.source;
              if (a.assertion != b.assertion) return a.assertion < b.assertion;
              return a.time < b.time;
            });
  // Deduplicate keeping the earliest time per (source, assertion) cell.
  std::vector<Claim> unique;
  unique.reserve(sorted.size());
  for (const Claim& c : sorted) {
    if (!unique.empty() && unique.back().source == c.source &&
        unique.back().assertion == c.assertion) {
      continue;
    }
    unique.push_back(c);
  }
  claim_count_ = unique.size();
  for (const Claim& c : unique) {
    rows_[c.source].ids.push_back(c.assertion);
    rows_[c.source].times.push_back(c.time);
  }
  // Column adjacency must itself be sorted by source id; iterating claims
  // sorted by (source, assertion) appends sources in ascending order.
  for (const Claim& c : unique) {
    cols_[c.assertion].ids.push_back(c.source);
    cols_[c.assertion].times.push_back(c.time);
  }
}

const std::vector<std::uint32_t>& SourceClaimMatrix::claims_of(
    std::size_t source) const {
  return rows_.at(source).ids;
}

const std::vector<double>& SourceClaimMatrix::claim_times_of(
    std::size_t source) const {
  return rows_.at(source).times;
}

const std::vector<std::uint32_t>& SourceClaimMatrix::claimants_of(
    std::size_t assertion) const {
  return cols_.at(assertion).ids;
}

const std::vector<double>& SourceClaimMatrix::claimant_times_of(
    std::size_t assertion) const {
  return cols_.at(assertion).times;
}

bool SourceClaimMatrix::has_claim(std::size_t source,
                                  std::size_t assertion) const {
  const auto& ids = rows_.at(source).ids;
  return std::binary_search(ids.begin(), ids.end(),
                            static_cast<std::uint32_t>(assertion));
}

double SourceClaimMatrix::claim_time(std::size_t source,
                                     std::size_t assertion) const {
  const auto& row = rows_.at(source);
  auto it = std::lower_bound(row.ids.begin(), row.ids.end(),
                             static_cast<std::uint32_t>(assertion));
  if (it == row.ids.end() || *it != assertion) {
    throw std::out_of_range("SourceClaimMatrix::claim_time: no such claim");
  }
  return row.times[static_cast<std::size_t>(it - row.ids.begin())];
}

std::vector<Claim> SourceClaimMatrix::to_claims() const {
  std::vector<Claim> out;
  out.reserve(claim_count_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t k = 0; k < rows_[i].ids.size(); ++k) {
      out.push_back({static_cast<std::uint32_t>(i), rows_[i].ids[k],
                     rows_[i].times[k]});
    }
  }
  return out;
}

}  // namespace ss
