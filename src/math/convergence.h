// Convergence detection shared by the iterative algorithms (EM variants,
// Sums, Average.Log, Truth-Finder, Gibbs bound estimation).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace ss {

// Declares convergence when the monitored scalar changes by less than
// `tol` for `patience` consecutive updates, or when `max_iters` is hit.
class ConvergenceMonitor {
 public:
  ConvergenceMonitor(double tol, std::size_t max_iters,
                     std::size_t patience = 1)
      : tol_(tol), max_iters_(max_iters), patience_(patience) {}

  // Feeds the iteration's summary value (e.g. max parameter delta or the
  // value itself when monitoring a moving estimate). Returns true when
  // iteration should stop.
  bool update(double value) {
    ++iters_;
    bool small_change =
        std::fabs(value - last_) <= tol_ && iters_ > 1;
    last_ = value;
    streak_ = small_change ? streak_ + 1 : 0;
    return streak_ >= patience_ || iters_ >= max_iters_;
  }

  // Variant for callers that already computed a delta themselves.
  bool update_delta(double delta) {
    ++iters_;
    streak_ = (delta <= tol_) ? streak_ + 1 : 0;
    return streak_ >= patience_ || iters_ >= max_iters_;
  }

  std::size_t iterations() const { return iters_; }
  bool hit_max() const { return iters_ >= max_iters_; }

 private:
  double tol_;
  std::size_t max_iters_;
  std::size_t patience_;
  std::size_t iters_ = 0;
  std::size_t streak_ = 0;
  double last_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace ss
