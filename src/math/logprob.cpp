#include "math/logprob.h"

namespace ss {

double logsumexp(const std::vector<double>& v) {
  double acc = -std::numeric_limits<double>::infinity();
  double hi = acc;
  for (double x : v) hi = std::max(hi, x);
  if (hi == -std::numeric_limits<double>::infinity()) return hi;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - hi);
  acc = hi + std::log(sum);
  return acc;
}

}  // namespace ss
