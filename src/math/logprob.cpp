#include "math/logprob.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ss {

double safe_log(double p) {
  assert(p >= 0.0);
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(p);
}

double logsumexp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double logsumexp(const std::vector<double>& v) {
  double acc = -std::numeric_limits<double>::infinity();
  double hi = acc;
  for (double x : v) hi = std::max(hi, x);
  if (hi == -std::numeric_limits<double>::infinity()) return hi;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - hi);
  acc = hi + std::log(sum);
  return acc;
}

double logit(double p) {
  assert(p > 0.0 && p < 1.0);
  return std::log(p) - std::log1p(-p);
}

double sigmoid(double x) {
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

double normalize_log_pair(double la, double lb) {
  const double ninf = -std::numeric_limits<double>::infinity();
  if (la == ninf && lb == ninf) return 0.5;
  if (la == ninf) return 0.0;
  if (lb == ninf) return 1.0;
  // sigmoid(la - lb) == exp(la) / (exp(la) + exp(lb))
  return sigmoid(la - lb);
}

double clamp_prob(double p, double eps) {
  return std::clamp(p, eps, 1.0 - eps);
}

}  // namespace ss
