// Hoisted log-parameter kernels for the inference hot loops.
//
// Every estimator in this codebase spends its inner loops summing
// per-source log-likelihood terms over sparse incidence lists (CSR spans
// from ClaimPartition / SourceClaimMatrix). The terms themselves are
// iteration-constant: they change only when the parameters change, i.e.
// once per EM iteration or once per Gibbs run — never per incidence.
// This header is the one place where those terms are hoisted into
// contiguous structure-of-arrays buffers and where the per-incidence
// work is reduced to pure adds:
//
//  * LogPair / ExtLogTable / RateLogTable — per-source log terms for the
//    true and false hypotheses, stored *interleaved* so one cache line
//    feeds both accumulators of a gather (the pre-kernel code kept six
//    parallel arrays and paid two cache misses per incidence);
//  * gather_add / gather_sub / gather_add_select — the branch-free
//    incidence loops (select replaces the per-claim D_ij branch with an
//    index into a two-pointer table);
//  * finalize_column / finalize_pair — the per-column epilogue with the
//    shared exp: sigmoid(d) and logsumexp(lt, lf) both reduce to
//    exp(-|d|), so one transcendental yields posterior, log-odds and
//    the column log-likelihood (the pre-kernel path paid two);
//  * SweepWeights — the Gibbs sampler's per-source log weights, hoisted
//    out of the sweep loop (the pre-kernel sampler recomputed four
//    transcendentals per source per sweep);
//  * gather_sum / gather_mass — the M-step's posterior-mass gathers.
//
// Backends. Each entry point below resolves at runtime to one of two
// implementations (docs/MODEL.md §12):
//
//  * scalar — the loops written inline here. Bit-identity contract:
//    every scalar kernel performs exactly the additions of the
//    per-element loop it replaces, in the same order, on the same
//    values — hoisting moves computations, it never reorders floating
//    point. The *_reference functions are the pre-kernel loops kept as
//    the executable specification; tests/test_kernels.cpp asserts
//    scalar == reference bitwise (ctest label `kernels`) and golden
//    FNV-1a hashes lock all seven estimators to the pre-kernel bits.
//    The one sanctioned identity beyond "same expression" is IEEE
//    antisymmetry of subtraction under round-to-nearest, fl(b - a) ==
//    -fl(a - b), which lets finalize_* feed sigmoid and logsumexp from
//    a single difference; the reference comparison locks it in.
//  * avx2 — vectorized implementations in simd/kernels_avx2.cpp
//    (AVX2+FMA, selected by CPUID dispatch or SS_KERNEL_BACKEND; see
//    math/simd/dispatch.h). These ARE allowed to break partial sums
//    into independent lanes and to evaluate exp/log/log1p by
//    polynomial, so their results differ from scalar at the ULP level.
//    The contract is accuracy, not identity: tests/test_simd.cpp
//    bounds the per-kernel ULP distance against the scalar reference
//    (ctest label `simd`) and bench_perf_scaling's backend sweep
//    records the full ULP ablation plus an end-to-end estimator
//    agreement check in bench_results/.
//
// To add a new estimator on the kernel layer: hoist its per-source log
// terms into a table rebuilt once per iteration (reuse the buffers —
// build() only allocates when the source count grows), express the
// inner loops as gathers over the incidence spans, and keep one
// accumulator per term of the original loop so the addition order is
// preserved. See docs/MODEL.md §10 and — before adding an AVX2
// counterpart — §12.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "math/logprob.h"
#include "math/simd/dispatch.h"
#include "util/thread_pool.h"

namespace ss {
namespace kernels {

// ---------------------------------------------------------------------
// Deterministic fixed-shape tree reduction (docs/MODEL.md §16).
//
// The reduction tree's shape is a pure function of the element count:
// [0, count) splits into ceil(count / kTreeReduceBlock) fixed blocks,
// each block is summed serially in element order, and the per-block
// partials are folded pairwise (p[i] = p[2i] (+) p[2i+1], odd tail
// carried) until one value remains. Thread count, shard layout and
// arrival order never enter the shape, so the result is bit-identical
// whether the block partials were computed serially, by
// parallel_for_chunks, or by a work-stealing parallel_tasks schedule —
// and a count <= kTreeReduceBlock reduction degenerates to the plain
// serial left fold it replaces.
// ---------------------------------------------------------------------

// Block size of the reduction tree. Chosen so per-block sums amortize
// scheduling and the combine tree stays tiny (10^6 elements -> 245
// partials -> 8 pairwise rounds).
inline constexpr std::size_t kTreeReduceBlock = 4096;

// Number of leaf blocks the tree has for `count` elements.
inline std::size_t tree_block_count(std::size_t count) {
  return (count + kTreeReduceBlock - 1) / kTreeReduceBlock;
}

// Folds `partials` pairwise in place until one value remains and
// returns it. The fold shape depends only on partials.size().
template <typename T, typename CombineFn>
T tree_combine(std::vector<T>& partials, CombineFn&& combine) {
  std::size_t width = partials.size();
  while (width > 1) {
    std::size_t half = width / 2;
    for (std::size_t i = 0; i < half; ++i) {
      partials[i] = combine(partials[2 * i], partials[2 * i + 1]);
    }
    if (width % 2 != 0) partials[half] = partials[width - 1];
    width = (width + 1) / 2;
  }
  return partials[0];
}

// Tree reduction over [0, count): block_fn(begin, end) -> T computes one
// leaf partial (serially, in element order), combine(a, b) -> T merges
// two. Leaves are evaluated through `pool` when given (each leaf writes
// its own slot — parallel-safe), serially otherwise; the combine rounds
// run on the calling thread. Identical bits either way.
template <typename T, typename BlockFn, typename CombineFn>
T tree_reduce(ThreadPool* pool, std::size_t count, T zero,
              BlockFn&& block_fn, CombineFn&& combine) {
  std::size_t blocks = tree_block_count(count);
  if (blocks == 0) return zero;
  if (blocks == 1) return block_fn(std::size_t{0}, count);
  std::vector<T> partials(blocks);
  if (pool != nullptr) {
    pool->parallel_for_chunks(
        count, kTreeReduceBlock,
        [&](std::size_t c, std::size_t b, std::size_t e) {
          partials[c] = block_fn(b, e);
        });
  } else {
    for (std::size_t c = 0; c < blocks; ++c) {
      std::size_t b = c * kTreeReduceBlock;
      std::size_t e = std::min(count, b + kTreeReduceBlock);
      partials[c] = block_fn(b, e);
    }
  }
  return tree_combine(partials, combine);
}

// Tree sum of values[0..n): the deterministic replacement for the
// serial `for (double v : xs) acc += v` folds on the column
// log-likelihood and M-step pooling paths. Bit-identical for any
// thread count; equal to the serial left fold whenever
// n <= kTreeReduceBlock.
double tree_sum(ThreadPool* pool, const double* values, std::size_t n);

// ---------------------------------------------------------------------
// Value types shared by both backends.
// ---------------------------------------------------------------------

// One per-source log term under both hypotheses, interleaved so a
// single gather touches one cache line instead of two.
struct LogPair {
  double t = 0.0;  // true-hypothesis term
  double f = 0.0;  // false-hypothesis term
};

// Posterior mass pair over a claim list (M-step accumulators).
struct MassPair {
  double z = 0.0;
  double y = 0.0;
};

// Everything the fused E-step needs from one column, given the two
// prior-weighted log-likelihoods la = lt + log z, lb = lf + log(1-z).
struct ColumnStats {
  double posterior = 0.5;       // Eq. 9
  double log_odds = 0.0;        // la - lb (unsaturated ranking score)
  double log_likelihood = 0.0;  // logsumexp(la, lb) (Eq. 7 summand)
};

// Posterior + log-odds only (estimators that do not track the data
// log-likelihood).
struct PairStats {
  double posterior = 0.5;
  double log_odds = 0.0;
};

// The Gibbs sampler's per-source log weights — constant over an entire
// chain, recomputed four-transcendentals-per-source-per-sweep by the
// pre-kernel sampler. One contiguous record per source keeps the sweep
// loop a sequential walk (and hands the AVX2 refresh one full 32-byte
// register per source).
struct SweepWeights {
  double log_t1 = 0.0;   // log p(claim | C=1)
  double log_t1n = 0.0;  // log(1 - p(claim | C=1))
  double log_f1 = 0.0;   // log p(claim | C=0)
  double log_f1n = 0.0;  // log(1 - p(claim | C=0))
};

}  // namespace kernels

// ---------------------------------------------------------------------
// AVX2 backend entry points, implemented in simd/kernels_avx2.cpp
// (the only translation unit built with -mavx2 -mfma, and the only
// place intrinsics are allowed — lint rule R7). The signatures are
// intrinsic-free on purpose so including this header never drags in
// <immintrin.h>. Callers never use these directly: the kernels::
// wrappers below dispatch to them when the avx2 backend is active.
// ---------------------------------------------------------------------
namespace simd {

kernels::LogPair gather_add_avx2(kernels::LogPair acc,
                                 std::span<const std::uint32_t> idx,
                                 const kernels::LogPair* terms);
void gather_add2_avx2(kernels::LogPair& acc0,
                      std::span<const std::uint32_t> idx0,
                      kernels::LogPair& acc1,
                      std::span<const std::uint32_t> idx1,
                      const kernels::LogPair* terms);
// Precompiled column-pair gather schedule (see LikelihoodTable, which
// builds these from the dataset structure): `pair_offs` interleaves
// [col0, col1] byte offsets of 32-byte two-row granules (two adjacent
// LogPair rows summed into one 256-bit add), `single_offs` of 16-byte
// one-row granules, both into a caller-concatenated value table whose
// sentinel rows are zero (so padded slots are no-ops). Sums are
// grouped per accumulator chain (ULP contract only).
void gather_schedule_avx2(kernels::LogPair& acc0, kernels::LogPair& acc1,
                          std::span<const std::uint32_t> pair_offs,
                          std::span<const std::uint32_t> single_offs,
                          const double* table);
kernels::LogPair gather_add_select_avx2(kernels::LogPair acc,
                                        std::span<const std::uint32_t> idx,
                                        std::span<const char> flags,
                                        const kernels::LogPair* indep,
                                        const kernels::LogPair* dep);
double gather_sum_avx2(std::span<const std::uint32_t> idx,
                       const double* values);
kernels::MassPair gather_mass_avx2(std::span<const std::uint32_t> idx,
                                   const double* posterior);
// Batch epilogues; aliasing contract documented on the kernels::
// wrappers below.
void finalize_columns_avx2(const double* la, const double* lb,
                           std::size_t n, double* posterior,
                           double* log_odds, double* column_ll);
void finalize_pairs_avx2(const double* la, const double* lb, std::size_t n,
                         double* posterior, double* log_odds);
// Table builds over a caller-packed rate scratch: `rates` holds
// {a, b, f, g} (ext) or {p_true, p_false} (rate) per source,
// contiguously. `base` is overwritten with the all-silent sums,
// accumulated in source order.
void ext_table_rows_avx2(std::size_t n, const double* rates,
                         kernels::LogPair* exposed_silent,
                         kernels::LogPair* claim_indep,
                         kernels::LogPair* claim_dep,
                         kernels::LogPair* base);
// As ext_table_rows_avx2, but `rates` holds *unclamped* {a, b, f, g}
// rows (the SourceParams memory layout) and the kernel applies the
// canonical clamp_prob clamp in-register before the row math. The
// clamp replicates std::clamp's branch semantics with ordered
// compare + blend — a NaN rate survives the clamp and takes the
// scalar degenerate row, exactly like clamp_prob(NaN) fed to the
// scratch path — so the output bits equal build() over
// clamp_prob-wrapped rates, without the 4n-double scratch round trip.
void ext_table_rows_clamped_avx2(std::size_t n, const double* rates,
                                 kernels::LogPair* exposed_silent,
                                 kernels::LogPair* claim_indep,
                                 kernels::LogPair* claim_dep,
                                 kernels::LogPair* base);
void rate_table_rows_avx2(std::size_t n, const double* rates,
                          kernels::LogPair* silent, kernels::LogPair* claim,
                          kernels::LogPair* base);
void sweep_weights_avx2(std::size_t n, const double* p_claim_true,
                        const double* p_claim_false,
                        kernels::SweepWeights* out);
kernels::LogPair sum_state_logs_avx2(std::span<const char> bits,
                                     const kernels::SweepWeights* w);
// Masked contiguous sums over the packed (SoA) sweep-weight layout:
// returns { sum_{bits[i]} delta_t[i], sum_{bits[i]} delta_f[i] } — the
// caller adds the all-silent base sums (see SweepWeightsTable).
kernels::LogPair sum_packed_state_logs_avx2(std::span<const char> bits,
                                            const double* delta_t,
                                            const double* delta_f);
// In-place M-step parameter finalize; EXACT contract (not ULP): every
// operation used (add, div, compare/blend, max/min clamp, 0.5*(f+g)
// tie, |diff|) is correctly rounded and the kernel is written without
// FMA contraction, so its bits equal the scalar loop's for all inputs
// including NaN/inf stats. See kernels::finalize_params.
std::size_t finalize_params_avx2(std::size_t n, const double* stats6,
                                 double total_z, double total_y,
                                 const double* cells, const double* cmu,
                                 double lo, double hi, bool tie_fg,
                                 double* params4, double* delta_max);

}  // namespace simd

namespace kernels {

// ---------------------------------------------------------------------
// Backend validation helper: ordered-integer ULP distance. 0 for
// bitwise-equal values (and for +0.0 vs -0.0, which are adjacent in
// the ordering but equal as reals — callers that care about the sign
// of zero should compare bits directly). NaN against anything is
// "infinitely far". Used by tests/test_simd.cpp and the bench ULP
// ablation; not a hot-path function.
// ---------------------------------------------------------------------
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  auto ordered = [](double x) {
    std::int64_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    if (bits < 0) bits = std::numeric_limits<std::int64_t>::min() - bits;
    // Shift the sign-symmetric ordering into unsigned space so the
    // distance below cannot overflow.
    return static_cast<std::uint64_t>(bits) + 0x8000000000000000ull;
  };
  std::uint64_t ua = ordered(a);
  std::uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

// ---------------------------------------------------------------------
// Gather kernels: pure adds over incidence spans.
// ---------------------------------------------------------------------

// acc += sum_{u in idx} terms[u], both hypotheses per element.
inline LogPair gather_add(LogPair acc, std::span<const std::uint32_t> idx,
                          const LogPair* terms) {
  if (idx.size() >= 4 && simd::avx2_active()) {
    return simd::gather_add_avx2(acc, idx, terms);
  }
  double at = acc.t;
  double af = acc.f;
  for (std::uint32_t u : idx) {
    const LogPair& p = terms[u];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// Two gather_add chains advanced in lockstep: acc0 over idx0 and acc1
// over idx1, same `terms` table. The chains belong to different
// columns, so interleaving them doubles the FP-add ILP the column scan
// exposes — each chain's own element order is untouched, so both
// results are bit-identical to two gather_add calls. (This is the
// allowed form of scalar "unrolling": more *independent* accumulator
// chains, never extra partial accumulators within one chain.)
inline void gather_add2(LogPair& acc0, std::span<const std::uint32_t> idx0,
                        LogPair& acc1, std::span<const std::uint32_t> idx1,
                        const LogPair* terms) {
  if (idx0.size() + idx1.size() >= 8 && simd::avx2_active()) {
    simd::gather_add2_avx2(acc0, idx0, acc1, idx1, terms);
    return;
  }
  double a0t = acc0.t, a0f = acc0.f;
  double a1t = acc1.t, a1f = acc1.f;
  const std::size_t n0 = idx0.size();
  const std::size_t n1 = idx1.size();
  const std::size_t shared = n0 < n1 ? n0 : n1;
  std::size_t k = 0;
  for (; k < shared; ++k) {
    const LogPair& p0 = terms[idx0[k]];
    const LogPair& p1 = terms[idx1[k]];
    a0t += p0.t;
    a0f += p0.f;
    a1t += p1.t;
    a1f += p1.f;
  }
  for (; k < n0; ++k) {
    const LogPair& p = terms[idx0[k]];
    a0t += p.t;
    a0f += p.f;
  }
  for (; k < n1; ++k) {
    const LogPair& p = terms[idx1[k]];
    a1t += p.t;
    a1f += p.f;
  }
  acc0 = {a0t, a0f};
  acc1 = {a1t, a1f};
}

// Executes a precompiled column-pair gather schedule (built by
// LikelihoodTable from dataset structure): adjacent table rows are
// fetched as one 32-byte granule, remaining rows as 16-byte granules,
// all addressed by byte offset into one concatenated value table.
// Schedules only exist on datasets where the AVX2 column fold applies,
// so the scalar walk here is a reference implementation for tests, not
// a production path; it uses the same per-granule grouping as the
// vector kernel's tail-free layout.
inline void gather_schedule(LogPair& acc0, LogPair& acc1,
                            std::span<const std::uint32_t> pair_offs,
                            std::span<const std::uint32_t> single_offs,
                            const double* table) {
  if (simd::avx2_active()) {
    simd::gather_schedule_avx2(acc0, acc1, pair_offs, single_offs, table);
    return;
  }
  auto row = [table](std::uint32_t off) {
    return table + off / sizeof(double);
  };
  for (std::size_t k = 0; k + 2 <= pair_offs.size(); k += 2) {
    const double* p0 = row(pair_offs[k]);
    const double* p1 = row(pair_offs[k + 1]);
    acc0.t += p0[0] + p0[2];
    acc0.f += p0[1] + p0[3];
    acc1.t += p1[0] + p1[2];
    acc1.f += p1[1] + p1[3];
  }
  for (std::size_t k = 0; k + 2 <= single_offs.size(); k += 2) {
    const double* p0 = row(single_offs[k]);
    const double* p1 = row(single_offs[k + 1]);
    acc0.t += p0[0];
    acc0.f += p0[1];
    acc1.t += p1[0];
    acc1.f += p1[1];
  }
}

// acc -= sum_{u in idx} terms[u] (EM-Social removes exposed sources
// from its silent baseline instead of correcting them). Scalar-only:
// the exposure lists this walks are short and the kernel is off the
// critical path, so a vector backend would be dead weight.
inline LogPair gather_sub(LogPair acc, std::span<const std::uint32_t> idx,
                          const LogPair* terms) {
  double at = acc.t;
  double af = acc.f;
  for (std::uint32_t u : idx) {
    const LogPair& p = terms[u];
    at -= p.t;
    af -= p.f;
  }
  return {at, af};
}

// acc += sum_k table(flags[k])[idx[k]] where table(0) = indep and
// table(1) = dep. `flags` is aligned with `idx` (ClaimPartition's
// claimant_dependent view). The two-pointer select compiles to a
// conditional move — the per-claim D_ij branch of the pre-kernel loop
// is gone, but the element order (and therefore the floating-point
// result) is exactly the branchy loop's.
inline LogPair gather_add_select(LogPair acc,
                                 std::span<const std::uint32_t> idx,
                                 std::span<const char> flags,
                                 const LogPair* indep,
                                 const LogPair* dep) {
  if (idx.size() >= 4 && simd::avx2_active()) {
    return simd::gather_add_select_avx2(acc, idx, flags, indep, dep);
  }
  const LogPair* const sel[2] = {indep, dep};
  double at = acc.t;
  double af = acc.f;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const LogPair& p = sel[flags[k] != 0][idx[k]];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// sum_{j in idx} values[j] (TruthFinder's claim-weight sums,
// Average.Log's belief/trust sums, the M-step's exposed-mass sums).
inline double gather_sum(std::span<const std::uint32_t> idx,
                         const double* values) {
  if (idx.size() >= 8 && simd::avx2_active()) {
    return simd::gather_sum_avx2(idx, values);
  }
  double acc = 0.0;
  for (std::uint32_t j : idx) acc += values[j];
  return acc;
}

// Posterior mass pair over a claim list: z += Z_j, y += 1 - Z_j, in
// list order with one accumulator each — exactly the M-step loop it
// replaces.
inline MassPair gather_mass(std::span<const std::uint32_t> idx,
                            const double* posterior) {
  if (idx.size() >= 8 && simd::avx2_active()) {
    return simd::gather_mass_avx2(idx, posterior);
  }
  MassPair acc;
  for (std::uint32_t j : idx) {
    acc.z += posterior[j];
    acc.y += 1.0 - posterior[j];
  }
  return acc;
}

// ---------------------------------------------------------------------
// Column epilogues: one exp instead of two.
// ---------------------------------------------------------------------

// Bit-identical fusion of {normalize_log_pair(la, lb), la - lb,
// logsumexp(la, lb)}: with d = la - lb, sigmoid needs exp(-|d|) and
// logsumexp needs exp(lo - hi) == exp(-|d|) (IEEE subtraction is
// antisymmetric under round-to-nearest), so one exp serves both.
// -inf inputs delegate to the reference forms to keep their exact
// degenerate-case semantics. Always scalar: single-column callers are
// not worth a dispatch; the batch form below is the vectorized shape.
inline ColumnStats finalize_column(double la, double lb) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double d = la - lb;
  if (la == kNegInf || lb == kNegInf) {
    return {normalize_log_pair(la, lb), d, logsumexp(la, lb)};
  }
  if (d >= 0.0) {
    double e = std::exp(-d);
    return {1.0 / (1.0 + e), d, la + std::log1p(e)};
  }
  double e = std::exp(d);
  return {e / (1.0 + e), d, lb + std::log1p(e)};
}

inline PairStats finalize_pair(double la, double lb) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double d = la - lb;
  if (la == kNegInf || lb == kNegInf) {
    return {normalize_log_pair(la, lb), d};
  }
  if (d >= 0.0) {
    double e = std::exp(-d);
    return {1.0 / (1.0 + e), d};
  }
  double e = std::exp(d);
  return {e / (1.0 + e), d};
}

// Batch epilogues over n columns — the dispatched form the fused
// E-step uses. Scalar backend: exactly finalize_column/finalize_pair
// per column, ascending j. AVX2 backend: four columns per iteration
// with polynomial exp/log1p (±inf/NaN lanes fall back to the scalar
// form for exact degenerate semantics).
//
// Aliasing contract: the output arrays may alias the inputs
// elementwise — posterior.cpp passes log_odds == la and column_ll ==
// lb (the E-step parks its intermediates in the output buffers). Any
// backend must therefore read la[j]/lb[j] (or the whole vector block)
// before writing the corresponding outputs. Beyond elementwise
// aliasing the arrays must not overlap.
void finalize_columns(const double* la, const double* lb, std::size_t n,
                      double* posterior, double* log_odds,
                      double* column_ll);
void finalize_pairs(const double* la, const double* lb, std::size_t n,
                    double* posterior, double* log_odds);

// Fused M-step parameter finalize over n sources, in place. `stats6`
// is n rows of 6 doubles laid out as em_detail::SourceMStatsPacked —
// nums {claim_indep_z, claim_indep_y, claim_dep_z, claim_dep_y}, then
// {exposed_z, exposed_count}. The four update denominators, aligned
// lane-for-lane with the `params4` rows {a, b, f, g}, are derived per
// row from the exposure pair and the loop constants total_z / total_y
// with this exact operation order (each a single correctly-rounded
// subtraction, so the derived values are bitwise the historical
// fill-time denom fields):
//   t1 = exposed_count - exposed_z;
//   denom = {total_z - exposed_z, total_y - t1, exposed_z, t1}.
// `cells` and `cmu` hold the four loop-constant MAP
// terms cells_x = shrinkage / max(mu_x, 1e-9) and cmu_x = cells_x *
// mu_x. Per lane, in this exact order:
//   d = denom + cells; raw = d > 0 ? (num + cmu) / d : prev;
//   clamped = min(hi, max(lo, raw))   [NaN-propagating operand order];
//   if clamped is NaN -> prev, counted as sanitized;
//   if tie_fg        -> f = g = 0.5 * (f + g);
//   delta_max accumulates |new - prev| (plus |new - prev| of every
//   other lane; max is order-independent).
// Returns the sanitized-lane count. Unlike the ULP-contract kernels,
// the AVX2 backend of this epilogue is EXACT: div/add/max/min/blend
// are correctly rounded, cmu is precomputed so no FMA opportunity
// exists, and tests/test_simd.cpp asserts bitwise equality — so the
// dispatch never perturbs the golden hashes.
std::size_t finalize_params(std::size_t n, const double* stats6,
                            double total_z, double total_y,
                            const double* cells, const double* cmu,
                            double lo, double hi, bool tie_fg,
                            double* params4, double* delta_max);

// ---------------------------------------------------------------------
// Log-parameter tables: per-source terms hoisted once per iteration.
// ---------------------------------------------------------------------

// Four-rate table for the dependency-aware model (Table II): baseline
// "everyone silent and unexposed" sums plus the three correction pairs
// LikelihoodTable applies per column. `rates(i)` must return the
// already-clamped {a, b, f, g} for source i; the scalar build performs
// exactly the eight transcendentals per source of the pre-kernel
// constructor, in the same order, and reallocates only when the source
// count grows. The avx2 build packs the rates into a scratch row and
// evaluates all four log/log1p pairs of a source as one vector
// (simd::ext_table_rows_avx2); the base sums still accumulate in
// source order, so the only divergence from scalar is the polynomial
// transcendental itself.
class ExtLogTable {
 public:
  template <typename Rates>
  void build(std::size_t n, double z, Rates&& rates) {
    resize(n);
    log_z_ = std::log(z);
    log_1mz_ = std::log1p(-z);
    if (n > 0 && simd::avx2_active()) {
      if (rate_scratch_.size() < 4 * n) rate_scratch_.resize(4 * n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = rates(i);  // {a, b, f, g}, clamped by the caller
        rate_scratch_[4 * i + 0] = r[0];
        rate_scratch_[4 * i + 1] = r[1];
        rate_scratch_[4 * i + 2] = r[2];
        rate_scratch_[4 * i + 3] = r[3];
      }
      simd::ext_table_rows_avx2(n, rate_scratch_.data(),
                                exposed_silent_.data(), claim_indep_.data(),
                                claim_dep_.data(), &base_);
      return;
    }
    double base_t = 0.0;
    double base_f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rates(i);  // {a, b, f, g}, clamped by the caller
      double log_na = std::log1p(-r[0]);
      double log_nb = std::log1p(-r[1]);
      double log_nf = std::log1p(-r[2]);
      double log_ng = std::log1p(-r[3]);
      base_t += log_na;
      base_f += log_nb;
      exposed_silent_[i] = {log_nf - log_na, log_ng - log_nb};
      claim_indep_[i] = {std::log(r[0]) - log_na, std::log(r[1]) - log_nb};
      claim_dep_[i] = {std::log(r[2]) - log_nf, std::log(r[3]) - log_ng};
    }
    base_ = {base_t, base_f};
  }

  // Builds straight from n contiguous *unclamped* {a, b, f, g} rate
  // rows (the SourceParams memory layout; callers static_assert the
  // 4-double layout at the reinterpret_cast site), applying the
  // default clamp_prob per rate in flight. Bit-identical to build()
  // over clamp_prob-wrapped rates — the scalar path clamps then runs
  // the exact eight transcendentals above, the avx2 path clamps
  // in-register with std::clamp's branch semantics — but skips the
  // per-iteration 4n-double scratch pack the lambda build pays, which
  // at 10^6 sources is a 32 MB write + read per EM iteration.
  void build_from_rows(std::size_t n, double z, const double* rates4) {
    resize(n);
    log_z_ = std::log(z);
    log_1mz_ = std::log1p(-z);
    if (n > 0 && simd::avx2_active()) {
      simd::ext_table_rows_clamped_avx2(n, rates4, exposed_silent_.data(),
                                        claim_indep_.data(),
                                        claim_dep_.data(), &base_);
      return;
    }
    double base_t = 0.0;
    double base_f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* r = rates4 + 4 * i;
      double a = clamp_prob(r[0]);
      double b = clamp_prob(r[1]);
      double f = clamp_prob(r[2]);
      double g = clamp_prob(r[3]);
      double log_na = std::log1p(-a);
      double log_nb = std::log1p(-b);
      double log_nf = std::log1p(-f);
      double log_ng = std::log1p(-g);
      base_t += log_na;
      base_f += log_nb;
      exposed_silent_[i] = {log_nf - log_na, log_ng - log_nb};
      claim_indep_[i] = {std::log(a) - log_na, std::log(b) - log_nb};
      claim_dep_[i] = {std::log(f) - log_nf, std::log(g) - log_ng};
    }
    base_ = {base_t, base_f};
  }

  std::size_t source_count() const { return exposed_silent_.size(); }
  LogPair base() const { return base_; }
  double log_z() const { return log_z_; }
  double log_1mz() const { return log_1mz_; }
  // Correction term arrays, indexed by source:
  //   exposed_silent: log(1-f)-log(1-a) | log(1-g)-log(1-b)
  //   claim_indep:    log(a)-log(1-a)   | log(b)-log(1-b)
  //   claim_dep:      log(f)-log(1-f)   | log(g)-log(1-g)
  const LogPair* exposed_silent() const { return exposed_silent_.data(); }
  const LogPair* claim_indep() const { return claim_indep_.data(); }
  const LogPair* claim_dep() const { return claim_dep_.data(); }

 private:
  void resize(std::size_t n) {
    if (exposed_silent_.size() != n) {
      exposed_silent_.resize(n);
      claim_indep_.resize(n);
      claim_dep_.resize(n);
    }
  }

  std::vector<LogPair> exposed_silent_;
  std::vector<LogPair> claim_indep_;
  std::vector<LogPair> claim_dep_;
  std::vector<double> rate_scratch_;  // avx2 build input, {a,b,f,g} rows
  LogPair base_;
  double log_z_ = 0.0;
  double log_1mz_ = 0.0;
};

// Two-rate table for the independent-cell baselines (EM-Social,
// EM-IPSN12): silent pairs {log(1-p_t), log(1-p_f)} for baseline /
// exposure removal, claim correction pairs {log p - log(1-p)}, and the
// all-silent baseline sums. `rates(i)` returns clamped {p_true,
// p_false} for source i. Backend split mirrors ExtLogTable.
class RateLogTable {
 public:
  template <typename Rates>
  void build(std::size_t n, Rates&& rates) {
    if (silent_.size() != n) {
      silent_.resize(n);
      claim_.resize(n);
    }
    if (n > 0 && simd::avx2_active()) {
      if (rate_scratch_.size() < 2 * n) rate_scratch_.resize(2 * n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = rates(i);  // {p_true, p_false}, clamped
        rate_scratch_[2 * i + 0] = r[0];
        rate_scratch_[2 * i + 1] = r[1];
      }
      simd::rate_table_rows_avx2(n, rate_scratch_.data(), silent_.data(),
                                 claim_.data(), &base_);
      return;
    }
    double base_t = 0.0;
    double base_f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rates(i);  // {p_true, p_false}, clamped
      double log_pt = std::log(r[0]);
      double log_nt = std::log1p(-r[0]);
      double log_pf = std::log(r[1]);
      double log_nf = std::log1p(-r[1]);
      silent_[i] = {log_nt, log_nf};
      claim_[i] = {log_pt - log_nt, log_pf - log_nf};
      base_t += log_nt;
      base_f += log_nf;
    }
    base_ = {base_t, base_f};
  }

  std::size_t source_count() const { return silent_.size(); }
  LogPair base() const { return base_; }
  const LogPair* silent() const { return silent_.data(); }
  const LogPair* claim() const { return claim_.data(); }

 private:
  std::vector<LogPair> silent_;
  std::vector<LogPair> claim_;
  std::vector<double> rate_scratch_;  // avx2 build input, {pt,pf} rows
  LogPair base_;
};

// ---------------------------------------------------------------------
// Gibbs sweep weights.
// ---------------------------------------------------------------------

// Fills `out` (resized to match) from the clamped claim probabilities.
void build_sweep_weights(std::span<const double> p_claim_true,
                         std::span<const double> p_claim_false,
                         std::vector<SweepWeights>& out);

// Full-state log-likelihood refresh: sum over sources of the selected
// weight per bit, in source order (the drift-cancelling resync the
// sampler runs once per sweep).
inline LogPair sum_state_logs(std::span<const char> bits,
                              const SweepWeights* w) {
  if (bits.size() >= 8 && simd::avx2_active()) {
    return simd::sum_state_logs_avx2(bits, w);
  }
  double lt = 0.0;
  double lf = 0.0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    lt += bits[i] ? w[i].log_t1 : w[i].log_t1n;
    lf += bits[i] ? w[i].log_f1 : w[i].log_f1n;
  }
  return {lt, lf};
}

// Chain-constant sweep weights with a backend-matched refresh layout.
//
// The AoS records are the scalar contract: sum_state_logs() over them
// reproduces the pre-kernel sampler bit-for-bit, and the per-flip
// leave-one-out updates read them directly. When the AVX2 backend is
// active at build() time the table additionally packs a delta/base
// (SoA) companion — delta_t[i] = log_t1 - log_t1n, delta_f[i] =
// log_f1 - log_f1n, plus the all-silent base sums (source order) —
// which turns the full-state refresh into two masked contiguous sums
//   lt = base_t + sum_{bits[i]} delta_t[i]
// at half the memory traffic of the AoS walk, with no per-lane
// shuffles. Each delta rounds once and the sum reassociates, so the
// packed refresh lives under the AVX2 ULP contract; the scalar backend
// never uses it.
class SweepWeightsTable {
 public:
  // Rebuilds from clamped claim probabilities (the records come from
  // build_sweep_weights; the packed companion is derived from the
  // records, so both layouts always describe the same table).
  void build(std::span<const double> p_claim_true,
             std::span<const double> p_claim_false);

  std::size_t size() const { return records_.size(); }
  const SweepWeights* data() const { return records_.data(); }
  const SweepWeights& operator[](std::size_t i) const {
    return records_[i];
  }

  // Full-state refresh: the packed AVX2 sum when the companion exists
  // and the backend is active, the AoS kernel otherwise (scalar order
  // on the scalar backend).
  LogPair sum_state_logs(std::span<const char> bits) const {
    if (packed_ && bits.size() >= 8 && simd::avx2_active()) {
      LogPair d = simd::sum_packed_state_logs_avx2(
          bits, delta_t_.data(), delta_f_.data());
      return {silent_base_.t + d.t, silent_base_.f + d.f};
    }
    return kernels::sum_state_logs(bits, records_.data());
  }

 private:
  std::vector<SweepWeights> records_;
  std::vector<double> delta_t_, delta_f_;  // avx2 companion
  LogPair silent_base_;
  bool packed_ = false;
};

// ---------------------------------------------------------------------
// Reference kernels: the pre-kernel per-element loops, kept as the
// executable specification for the property tests and as the baseline
// leg of the perf harness. Deliberately structured like the code they
// replaced — separate per-hypothesis arrays, a branch per claim, two
// transcendentals per column epilogue.
// ---------------------------------------------------------------------

inline void gather_add_reference(double& lt, double& lf,
                                 std::span<const std::uint32_t> idx,
                                 const double* t_terms,
                                 const double* f_terms) {
  for (std::uint32_t u : idx) {
    lt += t_terms[u];
    lf += f_terms[u];
  }
}

inline void gather_add_select_reference(
    double& lt, double& lf, std::span<const std::uint32_t> idx,
    std::span<const char> flags, const double* indep_t,
    const double* indep_f, const double* dep_t, const double* dep_f) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    std::uint32_t v = idx[k];
    if (flags[k]) {
      lt += dep_t[v];
      lf += dep_f[v];
    } else {
      lt += indep_t[v];
      lf += indep_f[v];
    }
  }
}

inline ColumnStats finalize_column_reference(double la, double lb) {
  return {normalize_log_pair(la, lb), la - lb, logsumexp(la, lb)};
}

inline PairStats finalize_pair_reference(double la, double lb) {
  return {normalize_log_pair(la, lb), la - lb};
}

}  // namespace kernels
}  // namespace ss
