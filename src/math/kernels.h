// Hoisted log-parameter kernels for the inference hot loops.
//
// Every estimator in this codebase spends its inner loops summing
// per-source log-likelihood terms over sparse incidence lists (CSR spans
// from ClaimPartition / SourceClaimMatrix). The terms themselves are
// iteration-constant: they change only when the parameters change, i.e.
// once per EM iteration or once per Gibbs run — never per incidence.
// This header is the one place where those terms are hoisted into
// contiguous structure-of-arrays buffers and where the per-incidence
// work is reduced to pure adds:
//
//  * LogPair / ExtLogTable / RateLogTable — per-source log terms for the
//    true and false hypotheses, stored *interleaved* so one cache line
//    feeds both accumulators of a gather (the pre-kernel code kept six
//    parallel arrays and paid two cache misses per incidence);
//  * gather_add / gather_sub / gather_add_select — the branch-free
//    incidence loops (select replaces the per-claim D_ij branch with an
//    index into a two-pointer table);
//  * finalize_column / finalize_pair — the per-column epilogue with the
//    shared exp: sigmoid(d) and logsumexp(lt, lf) both reduce to
//    exp(-|d|), so one transcendental yields posterior, log-odds and
//    the column log-likelihood (the pre-kernel path paid two);
//  * SweepWeights — the Gibbs sampler's per-source log weights, hoisted
//    out of the sweep loop (the pre-kernel sampler recomputed four
//    transcendentals per source per sweep);
//  * gather_sum / gather_mass — the M-step's posterior-mass gathers.
//
// Bit-identity contract: every kernel performs exactly the additions of
// the per-element loop it replaces, in the same order, on the same
// values — hoisting moves computations, it never reorders floating
// point. The *_reference functions are the pre-kernel loops kept as the
// executable specification; tests/test_kernels.cpp asserts optimized ==
// reference bitwise (ctest label `kernels`), and the perf harness
// (`bench_perf_scaling`, ctest label `perf-smoke`) times one against the
// other. The one sanctioned identity beyond "same expression" is IEEE
// antisymmetry of subtraction under round-to-nearest, fl(b - a) ==
// -fl(a - b), which lets finalize_* feed sigmoid and logsumexp from a
// single difference; the reference comparison locks it in.
//
// To add a new estimator on the kernel layer: hoist its per-source log
// terms into a table rebuilt once per iteration (reuse the buffers —
// build() only allocates when the source count grows), express the
// inner loops as gathers over the incidence spans, and keep one
// accumulator per term of the original loop so the addition order is
// preserved. See docs/MODEL.md §10.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "math/logprob.h"

namespace ss {
namespace kernels {

// One per-source log term under both hypotheses, interleaved so a
// single gather touches one cache line instead of two.
struct LogPair {
  double t = 0.0;  // true-hypothesis term
  double f = 0.0;  // false-hypothesis term
};

// ---------------------------------------------------------------------
// Gather kernels: pure adds over incidence spans.
// ---------------------------------------------------------------------

// acc += sum_{u in idx} terms[u], both hypotheses per element.
inline LogPair gather_add(LogPair acc, std::span<const std::uint32_t> idx,
                          const LogPair* terms) {
  double at = acc.t;
  double af = acc.f;
  for (std::uint32_t u : idx) {
    const LogPair& p = terms[u];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// Two gather_add chains advanced in lockstep: acc0 over idx0 and acc1
// over idx1, same `terms` table. The chains belong to different
// columns, so interleaving them doubles the FP-add ILP the column scan
// exposes — each chain's own element order is untouched, so both
// results are bit-identical to two gather_add calls. (This is the
// allowed form of "unrolling": more *independent* accumulator chains,
// never extra partial accumulators within one chain.)
inline void gather_add2(LogPair& acc0, std::span<const std::uint32_t> idx0,
                        LogPair& acc1, std::span<const std::uint32_t> idx1,
                        const LogPair* terms) {
  double a0t = acc0.t, a0f = acc0.f;
  double a1t = acc1.t, a1f = acc1.f;
  const std::size_t n0 = idx0.size();
  const std::size_t n1 = idx1.size();
  const std::size_t shared = n0 < n1 ? n0 : n1;
  std::size_t k = 0;
  for (; k < shared; ++k) {
    const LogPair& p0 = terms[idx0[k]];
    const LogPair& p1 = terms[idx1[k]];
    a0t += p0.t;
    a0f += p0.f;
    a1t += p1.t;
    a1f += p1.f;
  }
  for (; k < n0; ++k) {
    const LogPair& p = terms[idx0[k]];
    a0t += p.t;
    a0f += p.f;
  }
  for (; k < n1; ++k) {
    const LogPair& p = terms[idx1[k]];
    a1t += p.t;
    a1f += p.f;
  }
  acc0 = {a0t, a0f};
  acc1 = {a1t, a1f};
}

// acc -= sum_{u in idx} terms[u] (EM-Social removes exposed sources
// from its silent baseline instead of correcting them).
inline LogPair gather_sub(LogPair acc, std::span<const std::uint32_t> idx,
                          const LogPair* terms) {
  double at = acc.t;
  double af = acc.f;
  for (std::uint32_t u : idx) {
    const LogPair& p = terms[u];
    at -= p.t;
    af -= p.f;
  }
  return {at, af};
}

// acc += sum_k table(flags[k])[idx[k]] where table(0) = indep and
// table(1) = dep. `flags` is aligned with `idx` (ClaimPartition's
// claimant_dependent view). The two-pointer select compiles to a
// conditional move — the per-claim D_ij branch of the pre-kernel loop
// is gone, but the element order (and therefore the floating-point
// result) is exactly the branchy loop's.
inline LogPair gather_add_select(LogPair acc,
                                 std::span<const std::uint32_t> idx,
                                 std::span<const char> flags,
                                 const LogPair* indep,
                                 const LogPair* dep) {
  const LogPair* const sel[2] = {indep, dep};
  double at = acc.t;
  double af = acc.f;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const LogPair& p = sel[flags[k] != 0][idx[k]];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// sum_{j in idx} values[j] (TruthFinder's claim-weight sums,
// Average.Log's belief/trust sums, the M-step's exposed-mass sums).
inline double gather_sum(std::span<const std::uint32_t> idx,
                         const double* values) {
  double acc = 0.0;
  for (std::uint32_t j : idx) acc += values[j];
  return acc;
}

// Posterior mass pair over a claim list: z += Z_j, y += 1 - Z_j, in
// list order with one accumulator each — exactly the M-step loop it
// replaces.
struct MassPair {
  double z = 0.0;
  double y = 0.0;
};

inline MassPair gather_mass(std::span<const std::uint32_t> idx,
                            const double* posterior) {
  MassPair acc;
  for (std::uint32_t j : idx) {
    acc.z += posterior[j];
    acc.y += 1.0 - posterior[j];
  }
  return acc;
}

// ---------------------------------------------------------------------
// Column epilogues: one exp instead of two.
// ---------------------------------------------------------------------

// Everything the fused E-step needs from one column, given the two
// prior-weighted log-likelihoods la = lt + log z, lb = lf + log(1-z).
struct ColumnStats {
  double posterior = 0.5;        // Eq. 9
  double log_odds = 0.0;         // la - lb (unsaturated ranking score)
  double log_likelihood = 0.0;   // logsumexp(la, lb) (Eq. 7 summand)
};

// Bit-identical fusion of {normalize_log_pair(la, lb), la - lb,
// logsumexp(la, lb)}: with d = la - lb, sigmoid needs exp(-|d|) and
// logsumexp needs exp(lo - hi) == exp(-|d|) (IEEE subtraction is
// antisymmetric under round-to-nearest), so one exp serves both.
// -inf inputs delegate to the reference forms to keep their exact
// degenerate-case semantics.
inline ColumnStats finalize_column(double la, double lb) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double d = la - lb;
  if (la == kNegInf || lb == kNegInf) {
    return {normalize_log_pair(la, lb), d, logsumexp(la, lb)};
  }
  if (d >= 0.0) {
    double e = std::exp(-d);
    return {1.0 / (1.0 + e), d, la + std::log1p(e)};
  }
  double e = std::exp(d);
  return {e / (1.0 + e), d, lb + std::log1p(e)};
}

// Posterior + log-odds only (estimators that do not track the data
// log-likelihood); same fusion, one exp, one subtraction.
struct PairStats {
  double posterior = 0.5;
  double log_odds = 0.0;
};

inline PairStats finalize_pair(double la, double lb) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double d = la - lb;
  if (la == kNegInf || lb == kNegInf) {
    return {normalize_log_pair(la, lb), d};
  }
  if (d >= 0.0) {
    double e = std::exp(-d);
    return {1.0 / (1.0 + e), d};
  }
  double e = std::exp(d);
  return {e / (1.0 + e), d};
}

// ---------------------------------------------------------------------
// Log-parameter tables: per-source terms hoisted once per iteration.
// ---------------------------------------------------------------------

// Four-rate table for the dependency-aware model (Table II): baseline
// "everyone silent and unexposed" sums plus the three correction pairs
// LikelihoodTable applies per column. `rates(i)` must return the
// already-clamped {a, b, f, g} for source i; build() performs exactly
// the eight transcendentals per source of the pre-kernel constructor,
// in the same order, and reallocates only when the source count grows.
class ExtLogTable {
 public:
  template <typename Rates>
  void build(std::size_t n, double z, Rates&& rates) {
    resize(n);
    log_z_ = std::log(z);
    log_1mz_ = std::log1p(-z);
    double base_t = 0.0;
    double base_f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rates(i);  // {a, b, f, g}, clamped by the caller
      double log_na = std::log1p(-r[0]);
      double log_nb = std::log1p(-r[1]);
      double log_nf = std::log1p(-r[2]);
      double log_ng = std::log1p(-r[3]);
      base_t += log_na;
      base_f += log_nb;
      exposed_silent_[i] = {log_nf - log_na, log_ng - log_nb};
      claim_indep_[i] = {std::log(r[0]) - log_na, std::log(r[1]) - log_nb};
      claim_dep_[i] = {std::log(r[2]) - log_nf, std::log(r[3]) - log_ng};
    }
    base_ = {base_t, base_f};
  }

  std::size_t source_count() const { return exposed_silent_.size(); }
  LogPair base() const { return base_; }
  double log_z() const { return log_z_; }
  double log_1mz() const { return log_1mz_; }
  // Correction term arrays, indexed by source:
  //   exposed_silent: log(1-f)-log(1-a) | log(1-g)-log(1-b)
  //   claim_indep:    log(a)-log(1-a)   | log(b)-log(1-b)
  //   claim_dep:      log(f)-log(1-f)   | log(g)-log(1-g)
  const LogPair* exposed_silent() const { return exposed_silent_.data(); }
  const LogPair* claim_indep() const { return claim_indep_.data(); }
  const LogPair* claim_dep() const { return claim_dep_.data(); }

 private:
  void resize(std::size_t n) {
    if (exposed_silent_.size() != n) {
      exposed_silent_.resize(n);
      claim_indep_.resize(n);
      claim_dep_.resize(n);
    }
  }

  std::vector<LogPair> exposed_silent_;
  std::vector<LogPair> claim_indep_;
  std::vector<LogPair> claim_dep_;
  LogPair base_;
  double log_z_ = 0.0;
  double log_1mz_ = 0.0;
};

// Two-rate table for the independent-cell baselines (EM-Social,
// EM-IPSN12): silent pairs {log(1-p_t), log(1-p_f)} for baseline /
// exposure removal, claim correction pairs {log p - log(1-p)}, and the
// all-silent baseline sums. `rates(i)` returns clamped {p_true,
// p_false} for source i.
class RateLogTable {
 public:
  template <typename Rates>
  void build(std::size_t n, Rates&& rates) {
    if (silent_.size() != n) {
      silent_.resize(n);
      claim_.resize(n);
    }
    double base_t = 0.0;
    double base_f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rates(i);  // {p_true, p_false}, clamped
      double log_pt = std::log(r[0]);
      double log_nt = std::log1p(-r[0]);
      double log_pf = std::log(r[1]);
      double log_nf = std::log1p(-r[1]);
      silent_[i] = {log_nt, log_nf};
      claim_[i] = {log_pt - log_nt, log_pf - log_nf};
      base_t += log_nt;
      base_f += log_nf;
    }
    base_ = {base_t, base_f};
  }

  std::size_t source_count() const { return silent_.size(); }
  LogPair base() const { return base_; }
  const LogPair* silent() const { return silent_.data(); }
  const LogPair* claim() const { return claim_.data(); }

 private:
  std::vector<LogPair> silent_;
  std::vector<LogPair> claim_;
  LogPair base_;
};

// ---------------------------------------------------------------------
// Gibbs sweep weights.
// ---------------------------------------------------------------------

// The Gibbs sampler's per-source log weights — constant over an entire
// chain, recomputed four-transcendentals-per-source-per-sweep by the
// pre-kernel sampler. One contiguous record per source keeps the sweep
// loop a sequential walk.
struct SweepWeights {
  double log_t1 = 0.0;   // log p(claim | C=1)
  double log_t1n = 0.0;  // log(1 - p(claim | C=1))
  double log_f1 = 0.0;   // log p(claim | C=0)
  double log_f1n = 0.0;  // log(1 - p(claim | C=0))
};

// Fills `out` (resized to match) from the clamped claim probabilities.
void build_sweep_weights(std::span<const double> p_claim_true,
                         std::span<const double> p_claim_false,
                         std::vector<SweepWeights>& out);

// Full-state log-likelihood refresh: sum over sources of the selected
// weight per bit, in source order (the drift-cancelling resync the
// sampler runs once per sweep).
inline LogPair sum_state_logs(std::span<const char> bits,
                              const SweepWeights* w) {
  double lt = 0.0;
  double lf = 0.0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    lt += bits[i] ? w[i].log_t1 : w[i].log_t1n;
    lf += bits[i] ? w[i].log_f1 : w[i].log_f1n;
  }
  return {lt, lf};
}

// ---------------------------------------------------------------------
// Reference kernels: the pre-kernel per-element loops, kept as the
// executable specification for the property tests and as the baseline
// leg of the perf harness. Deliberately structured like the code they
// replaced — separate per-hypothesis arrays, a branch per claim, two
// transcendentals per column epilogue.
// ---------------------------------------------------------------------

inline void gather_add_reference(double& lt, double& lf,
                                 std::span<const std::uint32_t> idx,
                                 const double* t_terms,
                                 const double* f_terms) {
  for (std::uint32_t u : idx) {
    lt += t_terms[u];
    lf += f_terms[u];
  }
}

inline void gather_add_select_reference(
    double& lt, double& lf, std::span<const std::uint32_t> idx,
    std::span<const char> flags, const double* indep_t,
    const double* indep_f, const double* dep_t, const double* dep_f) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    std::uint32_t v = idx[k];
    if (flags[k]) {
      lt += dep_t[v];
      lf += dep_f[v];
    } else {
      lt += indep_t[v];
      lf += indep_f[v];
    }
  }
}

inline ColumnStats finalize_column_reference(double la, double lb) {
  return {normalize_log_pair(la, lb), la - lb, logsumexp(la, lb)};
}

inline PairStats finalize_pair_reference(double la, double lb) {
  return {normalize_log_pair(la, lb), la - lb};
}

}  // namespace kernels
}  // namespace ss
