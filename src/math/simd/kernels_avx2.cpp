// AVX2+FMA backend for the kernel layer (docs/MODEL.md §12).
//
// This is the only translation unit in the tree compiled with
// -mavx2 -mfma, and — with vecmath_avx2.h — the only place intrinsics
// are allowed (lint rule R7). When the toolchain cannot build AVX2
// code the stubs at the bottom take over: avx2_compiled() reports
// false, dispatch never selects the backend, and the entry points
// abort if reached anyway.
//
// Numerical contract (vs the scalar backend, which is the bit-exact
// reference): these implementations may split one accumulation chain
// into independent partial sums (the whole point — the scalar chains
// are FP-add-latency-bound) and may evaluate exp/log/log1p by
// polynomial. Each kernel documents its summation order; the ULP
// budget is enforced by tests/test_simd.cpp and measured end-to-end by
// bench_perf_scaling's backend sweep.

#include "math/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstring>

#include "math/simd/vecmath_avx2.h"

namespace ss::simd {

using kernels::LogPair;
using kernels::MassPair;
using kernels::SweepWeights;

bool avx2_compiled() { return true; }

namespace {

// [p.t, p.f] of one LogPair as a 128-bit lane pair.
inline __m128d load_pair(const LogPair* terms, std::uint32_t u) {
  return _mm_loadu_pd(reinterpret_cast<const double*>(terms + u));
}

// Two LogPairs side by side: [lo.t, lo.f, hi.t, hi.f].
inline __m256d join_pairs(__m128d lo, __m128d hi) {
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1);
}

// True (all-ones lane mask) in lanes {0,2} for b0 and {1,3} for b1.
inline __m256d byte_mask2(char b0, char b1) {
  __m128i m = _mm_cmpgt_epi64(
      _mm_set_epi64x(b1 != 0, b0 != 0), _mm_setzero_si128());
  return _mm256_castsi256_pd(_mm256_set_m128i(m, m));
}

}  // namespace

// Summation order: two 256-bit partial chains over elements
// {k, k+1 | k ≡ 0 mod 4} and {k+2, k+3}, lane-reduced low-half +
// high-half, then seed + tail in element order.
LogPair gather_add_avx2(LogPair acc, std::span<const std::uint32_t> idx,
                        const LogPair* terms) {
  const std::size_t n = idx.size();
  const std::uint32_t* ix = idx.data();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 = _mm256_add_pd(
        acc0, join_pairs(load_pair(terms, ix[k]),
                         load_pair(terms, ix[k + 1])));
    acc1 = _mm256_add_pd(
        acc1, join_pairs(load_pair(terms, ix[k + 2]),
                         load_pair(terms, ix[k + 3])));
  }
  __m256d s = _mm256_add_pd(acc0, acc1);
  __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(s),
                            _mm256_extractf128_pd(s, 1));
  double at = acc.t + _mm_cvtsd_f64(pair);
  double af = acc.f + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; k < n; ++k) {
    const LogPair& p = terms[ix[k]];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// Summation order: per column, two partial chains over even/odd shared
// ks; the leftover of the longer column continues through
// gather_add_avx2's order.
void gather_add2_avx2(LogPair& acc0, std::span<const std::uint32_t> idx0,
                      LogPair& acc1, std::span<const std::uint32_t> idx1,
                      const LogPair* terms) {
  const std::size_t n0 = idx0.size();
  const std::size_t n1 = idx1.size();
  const std::size_t shared = n0 < n1 ? n0 : n1;
  const std::uint32_t* i0 = idx0.data();
  const std::uint32_t* i1 = idx1.data();
  __m256d accA = _mm256_setzero_pd();  // lanes [c0.t, c0.f, c1.t, c1.f]
  __m256d accB = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 2 <= shared; k += 2) {
    accA = _mm256_add_pd(
        accA, join_pairs(load_pair(terms, i0[k]),
                         load_pair(terms, i1[k])));
    accB = _mm256_add_pd(
        accB, join_pairs(load_pair(terms, i0[k + 1]),
                         load_pair(terms, i1[k + 1])));
  }
  __m256d s = _mm256_add_pd(accA, accB);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, s);
  LogPair r0{acc0.t + lanes[0], acc0.f + lanes[1]};
  LogPair r1{acc1.t + lanes[2], acc1.f + lanes[3]};
  for (; k < shared; ++k) {
    const LogPair& p0 = terms[i0[k]];
    const LogPair& p1 = terms[i1[k]];
    r0.t += p0.t;
    r0.f += p0.f;
    r1.t += p1.t;
    r1.f += p1.f;
  }
  if (k < n0) r0 = gather_add_avx2(r0, idx0.subspan(k), terms);
  if (k < n1) r1 = gather_add_avx2(r1, idx1.subspan(k), terms);
  acc0 = r0;
  acc1 = r1;
}

// Precompiled-schedule executor, the fused E-step column-pair walk.
// The offset streams interleave [col 2p, col 2p+1] slots, so one
// 8-byte load yields both columns' byte offsets and the loop body is
// branch-free: 32-byte granules (two adjacent table rows) feed 256-bit
// chains whose lanes are [t, f, t', f'] — folding low and high halves
// at the end finishes the row-pair sums — and 16-byte granules feed
// 128-bit chains. Sentinel-padded slots read the table's zero rows and
// add 0.0, so no per-column length tests survive into the loop.
// Summation is grouped per chain (ULP contract only; the scalar
// wrapper in kernels.h walks granules in stream order).
void gather_schedule_avx2(LogPair& acc0, LogPair& acc1,
                          std::span<const std::uint32_t> pair_offs,
                          std::span<const std::uint32_t> single_offs,
                          const double* table) {
  const char* sb = reinterpret_cast<const char*>(table);
  auto row2 = [sb](std::uint32_t off) {
    return _mm256_loadu_pd(reinterpret_cast<const double*>(sb + off));
  };
  auto row1 = [sb](std::uint32_t off) {
    return _mm_loadu_pd(reinterpret_cast<const double*>(sb + off));
  };
  auto two_offs = [](const std::uint32_t* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  };
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd();
  __m256d b1 = _mm256_setzero_pd();
  const std::uint32_t* po = pair_offs.data();
  const std::size_t np = pair_offs.size() / 2;
  std::size_t k = 0;
  for (; k + 2 <= np; k += 2) {
    std::uint64_t v = two_offs(po + 2 * k);
    std::uint64_t w = two_offs(po + 2 * k + 2);
    a0 = _mm256_add_pd(a0, row2(static_cast<std::uint32_t>(v)));
    a1 = _mm256_add_pd(a1, row2(static_cast<std::uint32_t>(v >> 32)));
    b0 = _mm256_add_pd(b0, row2(static_cast<std::uint32_t>(w)));
    b1 = _mm256_add_pd(b1, row2(static_cast<std::uint32_t>(w >> 32)));
  }
  for (; k < np; ++k) {
    a0 = _mm256_add_pd(a0, row2(po[2 * k]));
    a1 = _mm256_add_pd(a1, row2(po[2 * k + 1]));
  }
  __m128d x0 = _mm_setzero_pd();
  __m128d x1 = _mm_setzero_pd();
  __m128d y0 = _mm_setzero_pd();
  __m128d y1 = _mm_setzero_pd();
  const std::uint32_t* so = single_offs.data();
  const std::size_t ns = single_offs.size() / 2;
  std::size_t q = 0;
  for (; q + 2 <= ns; q += 2) {
    std::uint64_t v = two_offs(so + 2 * q);
    std::uint64_t w = two_offs(so + 2 * q + 2);
    x0 = _mm_add_pd(x0, row1(static_cast<std::uint32_t>(v)));
    x1 = _mm_add_pd(x1, row1(static_cast<std::uint32_t>(v >> 32)));
    y0 = _mm_add_pd(y0, row1(static_cast<std::uint32_t>(w)));
    y1 = _mm_add_pd(y1, row1(static_cast<std::uint32_t>(w >> 32)));
  }
  for (; q < ns; ++q) {
    x0 = _mm_add_pd(x0, row1(so[2 * q]));
    x1 = _mm_add_pd(x1, row1(so[2 * q + 1]));
  }
  __m256d t0 = _mm256_add_pd(a0, b0);
  __m256d t1 = _mm256_add_pd(a1, b1);
  __m128d r0 = _mm_add_pd(_mm_add_pd(_mm256_castpd256_pd128(t0),
                                     _mm256_extractf128_pd(t0, 1)),
                          _mm_add_pd(x0, y0));
  __m128d r1 = _mm_add_pd(_mm_add_pd(_mm256_castpd256_pd128(t1),
                                     _mm256_extractf128_pd(t1, 1)),
                          _mm_add_pd(x1, y1));
  acc0.t += _mm_cvtsd_f64(r0);
  acc0.f += _mm_cvtsd_f64(_mm_unpackhi_pd(r0, r0));
  acc1.t += _mm_cvtsd_f64(r1);
  acc1.f += _mm_cvtsd_f64(_mm_unpackhi_pd(r1, r1));
}

// The per-element table select stays a scalar conditional move on the
// row pointer (exactly the scalar kernel's trick); only the
// accumulation is vectorized, with the same partial-chain order as
// gather_add_avx2.
LogPair gather_add_select_avx2(LogPair acc,
                               std::span<const std::uint32_t> idx,
                               std::span<const char> flags,
                               const LogPair* indep, const LogPair* dep) {
  const std::size_t n = idx.size();
  const std::uint32_t* ix = idx.data();
  const char* fl = flags.data();
  const LogPair* const sel[2] = {indep, dep};
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 = _mm256_add_pd(
        acc0, join_pairs(load_pair(sel[fl[k] != 0], ix[k]),
                         load_pair(sel[fl[k + 1] != 0], ix[k + 1])));
    acc1 = _mm256_add_pd(
        acc1, join_pairs(load_pair(sel[fl[k + 2] != 0], ix[k + 2]),
                         load_pair(sel[fl[k + 3] != 0], ix[k + 3])));
  }
  __m256d s = _mm256_add_pd(acc0, acc1);
  __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(s),
                            _mm256_extractf128_pd(s, 1));
  double at = acc.t + _mm_cvtsd_f64(pair);
  double af = acc.f + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; k < n; ++k) {
    const LogPair& p = sel[fl[k] != 0][ix[k]];
    at += p.t;
    af += p.f;
  }
  return {at, af};
}

// Summation order: two 4-lane hardware-gather chains (elements k mod 8
// in {0..3} vs {4..7}), reduced (lo+hi per chain pair) then lane 0 +
// lane 1, then the tail in element order.
double gather_sum_avx2(std::span<const std::uint32_t> idx,
                       const double* values) {
  const std::size_t n = idx.size();
  const std::uint32_t* ix = idx.data();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ix + k));
    __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ix + k + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(values, v0, 8));
    acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(values, v1, 8));
  }
  __m256d s = _mm256_add_pd(acc0, acc1);
  __m128d r = _mm_add_pd(_mm256_castpd256_pd128(s),
                         _mm256_extractf128_pd(s, 1));
  double sum =
      _mm_cvtsd_f64(r) + _mm_cvtsd_f64(_mm_unpackhi_pd(r, r));
  for (; k < n; ++k) sum += values[ix[k]];
  return sum;
}

// Same chain layout as gather_sum_avx2, for both the z and the 1-z
// accumulators.
MassPair gather_mass_avx2(std::span<const std::uint32_t> idx,
                          const double* posterior) {
  const std::size_t n = idx.size();
  const std::uint32_t* ix = idx.data();
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d z0 = _mm256_setzero_pd(), z1 = _mm256_setzero_pd();
  __m256d y0 = _mm256_setzero_pd(), y1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ix + k));
    __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ix + k + 4));
    __m256d p0 = _mm256_i32gather_pd(posterior, v0, 8);
    __m256d p1 = _mm256_i32gather_pd(posterior, v1, 8);
    z0 = _mm256_add_pd(z0, p0);
    z1 = _mm256_add_pd(z1, p1);
    y0 = _mm256_add_pd(y0, _mm256_sub_pd(one, p0));
    y1 = _mm256_add_pd(y1, _mm256_sub_pd(one, p1));
  }
  __m256d zs = _mm256_add_pd(z0, z1);
  __m256d ys = _mm256_add_pd(y0, y1);
  __m128d zr = _mm_add_pd(_mm256_castpd256_pd128(zs),
                          _mm256_extractf128_pd(zs, 1));
  __m128d yr = _mm_add_pd(_mm256_castpd256_pd128(ys),
                          _mm256_extractf128_pd(ys, 1));
  MassPair acc;
  acc.z = _mm_cvtsd_f64(zr) + _mm_cvtsd_f64(_mm_unpackhi_pd(zr, zr));
  acc.y = _mm_cvtsd_f64(yr) + _mm_cvtsd_f64(_mm_unpackhi_pd(yr, yr));
  for (; k < n; ++k) {
    acc.z += posterior[ix[k]];
    acc.y += 1.0 - posterior[ix[k]];
  }
  return acc;
}

// Four columns per iteration with polynomial exp/log1p; lanes holding
// ±inf/NaN inputs delegate to the scalar finalize_column for exact
// degenerate semantics. Reads the whole 4-lane block before storing,
// so the elementwise aliasing contract (log_odds == la, column_ll ==
// lb) holds.
void finalize_columns_avx2(const double* la, const double* lb,
                           std::size_t n, double* posterior,
                           double* log_odds, double* column_ll) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d a = _mm256_loadu_pd(la + j);
    __m256d b = _mm256_loadu_pd(lb + j);
    __m256d mag = _mm256_max_pd(_mm256_andnot_pd(sign, a),
                                _mm256_andnot_pd(sign, b));
    // NaN lanes fail the `< inf` compare and take the scalar path too.
    if (_mm256_movemask_pd(_mm256_cmp_pd(mag, inf, _CMP_LT_OQ)) != 0xF) {
      for (std::size_t l = j; l < j + 4; ++l) {
        kernels::ColumnStats s = kernels::finalize_column(la[l], lb[l]);
        posterior[l] = s.posterior;
        log_odds[l] = s.log_odds;
        column_ll[l] = s.log_likelihood;
      }
      continue;
    }
    __m256d d = _mm256_sub_pd(a, b);
    __m256d e = vec::exp_pd(vec::negate_pd(_mm256_andnot_pd(sign, d)));
    __m256d inv = _mm256_div_pd(one, _mm256_add_pd(one, e));
    __m256d dge = _mm256_cmp_pd(d, _mm256_setzero_pd(), _CMP_GE_OQ);
    __m256d pos = _mm256_blendv_pd(_mm256_mul_pd(e, inv), inv, dge);
    __m256d hi = _mm256_blendv_pd(b, a, dge);
    __m256d ll = _mm256_add_pd(hi, vec::log1p_pd(e));
    _mm256_storeu_pd(posterior + j, pos);
    _mm256_storeu_pd(log_odds + j, d);
    _mm256_storeu_pd(column_ll + j, ll);
  }
  for (; j < n; ++j) {
    kernels::ColumnStats s = kernels::finalize_column(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
    column_ll[j] = s.log_likelihood;
  }
}

void finalize_pairs_avx2(const double* la, const double* lb, std::size_t n,
                         double* posterior, double* log_odds) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d a = _mm256_loadu_pd(la + j);
    __m256d b = _mm256_loadu_pd(lb + j);
    __m256d mag = _mm256_max_pd(_mm256_andnot_pd(sign, a),
                                _mm256_andnot_pd(sign, b));
    if (_mm256_movemask_pd(_mm256_cmp_pd(mag, inf, _CMP_LT_OQ)) != 0xF) {
      for (std::size_t l = j; l < j + 4; ++l) {
        kernels::PairStats s = kernels::finalize_pair(la[l], lb[l]);
        posterior[l] = s.posterior;
        log_odds[l] = s.log_odds;
      }
      continue;
    }
    __m256d d = _mm256_sub_pd(a, b);
    __m256d e = vec::exp_pd(vec::negate_pd(_mm256_andnot_pd(sign, d)));
    __m256d inv = _mm256_div_pd(one, _mm256_add_pd(one, e));
    __m256d dge = _mm256_cmp_pd(d, _mm256_setzero_pd(), _CMP_GE_OQ);
    __m256d pos = _mm256_blendv_pd(_mm256_mul_pd(e, inv), inv, dge);
    _mm256_storeu_pd(posterior + j, pos);
    _mm256_storeu_pd(log_odds + j, d);
  }
  for (; j < n; ++j) {
    kernels::PairStats s = kernels::finalize_pair(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
  }
}

namespace {

// True when any lane of r lies outside the open interval (0, 1) — the
// clamped-rate domain the polynomial log paths assume. NaN lanes trip
// the unordered compares and count as degenerate.
inline bool any_degenerate_rate(__m256d r) {
  __m256d bad = _mm256_or_pd(
      _mm256_cmp_pd(r, _mm256_setzero_pd(), _CMP_NGT_UQ),
      _mm256_cmp_pd(r, _mm256_set1_pd(1.0), _CMP_NLT_UQ));
  return _mm256_movemask_pd(bad) != 0;
}

}  // namespace

// One source per iteration: its four rates occupy the four lanes, so
// the eight scalar transcendentals become one log1p_pd and one log_pd.
// The base sums accumulate in source order, exactly like scalar — the
// only divergence is the polynomial evaluation itself. Degenerate
// (unclamped) rates fall back to the scalar row.
void ext_table_rows_avx2(std::size_t n, const double* rates,
                         LogPair* exposed_silent, LogPair* claim_indep,
                         LogPair* claim_dep, LogPair* base) {
  __m128d base_acc = _mm_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    __m256d r = _mm256_loadu_pd(rates + 4 * i);  // [a, b, f, g]
    if (any_degenerate_rate(r)) {
      double a = rates[4 * i], b = rates[4 * i + 1];
      double f = rates[4 * i + 2], g = rates[4 * i + 3];
      double log_na = std::log1p(-a);
      double log_nb = std::log1p(-b);
      double log_nf = std::log1p(-f);
      double log_ng = std::log1p(-g);
      base_acc = _mm_add_pd(base_acc, _mm_setr_pd(log_na, log_nb));
      exposed_silent[i] = {log_nf - log_na, log_ng - log_nb};
      claim_indep[i] = {std::log(a) - log_na, std::log(b) - log_nb};
      claim_dep[i] = {std::log(f) - log_nf, std::log(g) - log_ng};
      continue;
    }
    __m256d ln = vec::log1p_pd(vec::negate_pd(r));  // log(1-rate) lanes
    __m256d lp = vec::log_pd(r);                  // log(rate) lanes
    __m256d diff = _mm256_sub_pd(lp, ln);
    __m128d ln_lo = _mm256_castpd256_pd128(ln);   // [log_na, log_nb]
    __m128d ln_hi = _mm256_extractf128_pd(ln, 1); // [log_nf, log_ng]
    base_acc = _mm_add_pd(base_acc, ln_lo);
    _mm_storeu_pd(&exposed_silent[i].t, _mm_sub_pd(ln_hi, ln_lo));
    _mm_storeu_pd(&claim_indep[i].t, _mm256_castpd256_pd128(diff));
    _mm_storeu_pd(&claim_dep[i].t, _mm256_extractf128_pd(diff, 1));
  }
  _mm_storeu_pd(&base->t, base_acc);
}

// As ext_table_rows_avx2 over *unclamped* rate rows: each loaded
// vector is clamped to [kProbEps, 1 - kProbEps] in-register before
// the row math. The compare + blend pair replicates std::clamp's
// branch semantics exactly — both ordered compares are false on a NaN
// lane, so NaN survives both blends (clamp_prob(NaN) == NaN) and the
// degenerate check routes the row to the scalar fallback, which
// re-clamps with the identical scalar expression. Clamped lanes are
// bitwise what clamp_prob produced in the caller-packed scratch path,
// so the table bits are unchanged.
void ext_table_rows_clamped_avx2(std::size_t n, const double* rates,
                                 LogPair* exposed_silent,
                                 LogPair* claim_indep, LogPair* claim_dep,
                                 LogPair* base) {
  constexpr double kProbEps = 1e-9;  // clamp_prob's default eps
  const __m256d lo = _mm256_set1_pd(kProbEps);
  const __m256d hi = _mm256_set1_pd(1.0 - kProbEps);
  // Scalar twin of the vector clamp, for the degenerate fallback row;
  // written as std::clamp's branch chain so NaN propagates.
  auto clamp1 = [](double v) {
    constexpr double l = 1e-9;
    constexpr double h = 1.0 - 1e-9;
    return v < l ? l : (h < v ? h : v);
  };
  __m128d base_acc = _mm_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    __m256d r = _mm256_loadu_pd(rates + 4 * i);  // [a, b, f, g]
    r = _mm256_blendv_pd(r, lo, _mm256_cmp_pd(r, lo, _CMP_LT_OQ));
    r = _mm256_blendv_pd(r, hi, _mm256_cmp_pd(hi, r, _CMP_LT_OQ));
    if (any_degenerate_rate(r)) {
      double a = clamp1(rates[4 * i]), b = clamp1(rates[4 * i + 1]);
      double f = clamp1(rates[4 * i + 2]), g = clamp1(rates[4 * i + 3]);
      double log_na = std::log1p(-a);
      double log_nb = std::log1p(-b);
      double log_nf = std::log1p(-f);
      double log_ng = std::log1p(-g);
      base_acc = _mm_add_pd(base_acc, _mm_setr_pd(log_na, log_nb));
      exposed_silent[i] = {log_nf - log_na, log_ng - log_nb};
      claim_indep[i] = {std::log(a) - log_na, std::log(b) - log_nb};
      claim_dep[i] = {std::log(f) - log_nf, std::log(g) - log_ng};
      continue;
    }
    __m256d ln = vec::log1p_pd(vec::negate_pd(r));  // log(1-rate) lanes
    __m256d lp = vec::log_pd(r);                  // log(rate) lanes
    __m256d diff = _mm256_sub_pd(lp, ln);
    __m128d ln_lo = _mm256_castpd256_pd128(ln);   // [log_na, log_nb]
    __m128d ln_hi = _mm256_extractf128_pd(ln, 1); // [log_nf, log_ng]
    base_acc = _mm_add_pd(base_acc, ln_lo);
    _mm_storeu_pd(&exposed_silent[i].t, _mm_sub_pd(ln_hi, ln_lo));
    _mm_storeu_pd(&claim_indep[i].t, _mm256_castpd256_pd128(diff));
    _mm_storeu_pd(&claim_dep[i].t, _mm256_extractf128_pd(diff, 1));
  }
  _mm_storeu_pd(&base->t, base_acc);
}

// Two sources per iteration ([pt0, pf0, pt1, pf1] lanes); base sums
// accumulate source-ordered (lane pair i before i+1).
void rate_table_rows_avx2(std::size_t n, const double* rates,
                          LogPair* silent, LogPair* claim, LogPair* base) {
  __m128d base_acc = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m256d r = _mm256_loadu_pd(rates + 2 * i);
    if (any_degenerate_rate(r)) {
      for (std::size_t l = i; l < i + 2; ++l) {
        double pt = rates[2 * l], pf = rates[2 * l + 1];
        double log_nt = std::log1p(-pt);
        double log_nf = std::log1p(-pf);
        silent[l] = {log_nt, log_nf};
        claim[l] = {std::log(pt) - log_nt, std::log(pf) - log_nf};
        base_acc = _mm_add_pd(base_acc, _mm_setr_pd(log_nt, log_nf));
      }
      continue;
    }
    __m256d ln = vec::log1p_pd(vec::negate_pd(r));
    __m256d lp = vec::log_pd(r);
    __m256d diff = _mm256_sub_pd(lp, ln);
    __m128d ln_lo = _mm256_castpd256_pd128(ln);
    __m128d ln_hi = _mm256_extractf128_pd(ln, 1);
    _mm_storeu_pd(&silent[i].t, ln_lo);
    _mm_storeu_pd(&silent[i + 1].t, ln_hi);
    _mm_storeu_pd(&claim[i].t, _mm256_castpd256_pd128(diff));
    _mm_storeu_pd(&claim[i + 1].t, _mm256_extractf128_pd(diff, 1));
    base_acc = _mm_add_pd(base_acc, ln_lo);
    base_acc = _mm_add_pd(base_acc, ln_hi);
  }
  for (; i < n; ++i) {
    double pt = rates[2 * i], pf = rates[2 * i + 1];
    double log_nt = std::log1p(-pt);
    double log_nf = std::log1p(-pf);
    silent[i] = {log_nt, log_nf};
    claim[i] = {std::log(pt) - log_nt, std::log(pf) - log_nf};
    base_acc = _mm_add_pd(base_acc, _mm_setr_pd(log_nt, log_nf));
  }
  _mm_storeu_pd(&base->t, base_acc);
}

// Four sources per iteration: the four log vectors are built
// lane-parallel, then 4×4-transposed into the AoS SweepWeights
// records. Degenerate probabilities fall back to the scalar rows.
void sweep_weights_avx2(std::size_t n, const double* p_claim_true,
                        const double* p_claim_false, SweepWeights* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d p1 = _mm256_loadu_pd(p_claim_true + i);
    __m256d p0 = _mm256_loadu_pd(p_claim_false + i);
    if (any_degenerate_rate(p1) || any_degenerate_rate(p0)) {
      for (std::size_t l = i; l < i + 4; ++l) {
        out[l] = {std::log(p_claim_true[l]), std::log1p(-p_claim_true[l]),
                  std::log(p_claim_false[l]),
                  std::log1p(-p_claim_false[l])};
      }
      continue;
    }
    __m256d l1 = vec::log_pd(p1);
    __m256d l1n = vec::log1p_pd(vec::negate_pd(p1));
    __m256d l0 = vec::log_pd(p0);
    __m256d l0n = vec::log1p_pd(vec::negate_pd(p0));
    __m256d t0 = _mm256_unpacklo_pd(l1, l1n);  // [s0: t1,t1n | s2: t1,t1n]
    __m256d t1 = _mm256_unpackhi_pd(l1, l1n);  // [s1 | s3]
    __m256d t2 = _mm256_unpacklo_pd(l0, l0n);  // [s0: f1,f1n | s2: ...]
    __m256d t3 = _mm256_unpackhi_pd(l0, l0n);
    _mm256_storeu_pd(&out[i].log_t1, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(&out[i + 1].log_t1,
                     _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(&out[i + 2].log_t1,
                     _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(&out[i + 3].log_t1,
                     _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; i < n; ++i) {
    out[i] = {std::log(p_claim_true[i]), std::log1p(-p_claim_true[i]),
              std::log(p_claim_false[i]), std::log1p(-p_claim_false[i])};
  }
}

// Two sources per unpack step, four per iteration across two partial
// chains; the selected weights themselves are exact table values (a
// lane blend, not arithmetic), so the only divergence from scalar is
// the partial-sum order. Reduction: (chainA + chainB) lanewise, then
// per-hypothesis lane pairs low-to-high, then the tail in source
// order.
LogPair sum_state_logs_avx2(std::span<const char> bits,
                            const SweepWeights* w) {
  const std::size_t n = bits.size();
  const char* bp = bits.data();
  const double* base = &w[0].log_t1;
  __m256d accA = _mm256_setzero_pd();
  __m256d accB = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d w0 = _mm256_loadu_pd(base + 4 * i);
    __m256d w1 = _mm256_loadu_pd(base + 4 * (i + 1));
    __m256d w2 = _mm256_loadu_pd(base + 4 * (i + 2));
    __m256d w3 = _mm256_loadu_pd(base + 4 * (i + 3));
    // unpacklo = claim weights [t1_i, t1_i1, f1_i, f1_i1], unpackhi =
    // the silent counterparts; blend picks per-source by its bit.
    __m256d claim01 = _mm256_unpacklo_pd(w0, w1);
    __m256d silent01 = _mm256_unpackhi_pd(w0, w1);
    __m256d claim23 = _mm256_unpacklo_pd(w2, w3);
    __m256d silent23 = _mm256_unpackhi_pd(w2, w3);
    accA = _mm256_add_pd(
        accA,
        _mm256_blendv_pd(silent01, claim01, byte_mask2(bp[i], bp[i + 1])));
    accB = _mm256_add_pd(
        accB, _mm256_blendv_pd(silent23, claim23,
                               byte_mask2(bp[i + 2], bp[i + 3])));
  }
  __m256d s = _mm256_add_pd(accA, accB);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, s);
  double lt = lanes[0] + lanes[1];
  double lf = lanes[2] + lanes[3];
  for (; i < n; ++i) {
    lt += bp[i] ? w[i].log_t1 : w[i].log_t1n;
    lf += bp[i] ? w[i].log_f1 : w[i].log_f1n;
  }
  return {lt, lf};
}

// Masked contiguous sums over the SoA delta layout: eight sources per
// iteration across two chains per hypothesis. The 0/1 state bytes
// widen to 64-bit lanes and negate into full and-masks, so a silent
// source contributes an exact +0.0 — no blends, no per-lane shuffles
// beyond the byte widening, and 16 data bytes per source instead of
// the AoS walk's 32. Reduction: (chain0 + chain1) lanewise, low half +
// high half, lane 0 + lane 1, then the tail in source order.
LogPair sum_packed_state_logs_avx2(std::span<const char> bits,
                                   const double* delta_t,
                                   const double* delta_f) {
  const std::size_t n = bits.size();
  const char* bp = bits.data();
  const __m256i zero = _mm256_setzero_si256();
  __m256d t0 = _mm256_setzero_pd(), t1 = _mm256_setzero_pd();
  __m256d f0 = _mm256_setzero_pd(), f1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bp + i));
    __m256i m0 = _mm256_cvtepi8_epi64(b8);
    __m256i m1 = _mm256_cvtepi8_epi64(_mm_srli_epi64(b8, 32));
    __m256d k0 = _mm256_castsi256_pd(_mm256_sub_epi64(zero, m0));
    __m256d k1 = _mm256_castsi256_pd(_mm256_sub_epi64(zero, m1));
    t0 = _mm256_add_pd(t0, _mm256_and_pd(k0, _mm256_loadu_pd(delta_t + i)));
    t1 = _mm256_add_pd(
        t1, _mm256_and_pd(k1, _mm256_loadu_pd(delta_t + i + 4)));
    f0 = _mm256_add_pd(f0, _mm256_and_pd(k0, _mm256_loadu_pd(delta_f + i)));
    f1 = _mm256_add_pd(
        f1, _mm256_and_pd(k1, _mm256_loadu_pd(delta_f + i + 4)));
  }
  __m256d ts = _mm256_add_pd(t0, t1);
  __m256d fs = _mm256_add_pd(f0, f1);
  __m128d tr = _mm_add_pd(_mm256_castpd256_pd128(ts),
                          _mm256_extractf128_pd(ts, 1));
  __m128d fr = _mm_add_pd(_mm256_castpd256_pd128(fs),
                          _mm256_extractf128_pd(fs, 1));
  double dt = _mm_cvtsd_f64(tr) + _mm_cvtsd_f64(_mm_unpackhi_pd(tr, tr));
  double df = _mm_cvtsd_f64(fr) + _mm_cvtsd_f64(_mm_unpackhi_pd(fr, fr));
  for (; i < n; ++i) {
    if (bp[i]) {
      dt += delta_t[i];
      df += delta_f[i];
    }
  }
  return {dt, df};
}

// Fused M-step parameter finalize; the one EXACT (non-ULP) kernel in
// this TU. One 256-bit row per source: lanes {a, b, f, g} of params4
// line up with stats6's num lanes (row[0..3]); the denom lanes are
// derived from the packed exposure pair (row[4..5]) and the total_z /
// total_y loop constants per the kernels::finalize_params contract.
// Every operation is correctly rounded (add, div, max,
// min, blend, and, sub) and — critically — cmu is a precomputed input,
// so there is no a*b+c shape the compiler or this code could contract
// into an FMA: the bits equal the scalar loop's for ALL inputs.
//
// Clamp operand order is load-bearing: vmaxpd/vminpd return the SECOND
// operand when either input is NaN, so max(lo, raw) then min(hi, ·)
// with the data in the second slot propagates a NaN raw value to the
// sanitize blend, while ±inf still clamps to a finite bound — exactly
// the scalar `raw < lo ? lo : raw; c > hi ? hi : c` semantics.
std::size_t finalize_params_avx2(std::size_t n, const double* stats6,
                                 double total_z, double total_y,
                                 const double* cells, const double* cmu,
                                 double lo, double hi, bool tie_fg,
                                 double* params4, double* delta_max) {
  const __m256d cells_v = _mm256_loadu_pd(cells);
  const __m256d cmu_v = _mm256_loadu_pd(cmu);
  const __m256d lo_v = _mm256_set1_pd(lo);
  const __m256d hi_v = _mm256_set1_pd(hi);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  __m256d dmax = _mm256_setzero_pd();
  std::size_t sanitized = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = stats6 + 6 * i;
    double* p = params4 + 4 * i;
    const __m256d num = _mm256_loadu_pd(row);
    // Derived denominator lanes from the packed exposure pair; each a
    // single correctly-rounded scalar subtraction in the documented
    // order, so the lanes are bitwise the historical stored fields.
    const double ez = row[4];
    const double t1 = row[5] - ez;
    const __m256d denom = _mm256_setr_pd(total_z - ez, total_y - t1, ez, t1);
    const __m256d prev = _mm256_loadu_pd(p);
    const __m256d d = _mm256_add_pd(denom, cells_v);
    const __m256d q = _mm256_div_pd(_mm256_add_pd(num, cmu_v), d);
    // d > 0 ? q : prev (ordered compare: d == NaN keeps prev, like the
    // scalar `d > 0.0` test).
    const __m256d pos = _mm256_cmp_pd(d, zero, _CMP_GT_OQ);
    const __m256d raw = _mm256_blendv_pd(prev, q, pos);
    __m256d c = _mm256_min_pd(hi_v, _mm256_max_pd(lo_v, raw));
    // Sanitize: only NaN survives the clamp non-finite.
    const __m256d is_nan = _mm256_cmp_pd(c, c, _CMP_UNORD_Q);
    c = _mm256_blendv_pd(c, prev, is_nan);
    sanitized += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(is_nan))));
    if (tie_fg) {
      // 0.5 * (f + g) into both upper lanes; swapping within the upper
      // 128-bit half makes lane2 compute f+g and lane3 g+f — addition
      // is commutative bitwise, so both lanes hold identical bits.
      const __m256d swapped = _mm256_permute_pd(c, 0b0101);
      const __m256d avg = _mm256_mul_pd(half, _mm256_add_pd(c, swapped));
      c = _mm256_blend_pd(c, avg, 0b1100);
    }
    dmax = _mm256_max_pd(
        dmax, _mm256_and_pd(abs_mask, _mm256_sub_pd(c, prev)));
    _mm256_storeu_pd(p, c);
  }
  // Horizontal max (order-independent; all values finite by now).
  __m128d m2 = _mm_max_pd(_mm256_castpd256_pd128(dmax),
                          _mm256_extractf128_pd(dmax, 1));
  double m = _mm_cvtsd_f64(_mm_max_sd(m2, _mm_unpackhi_pd(m2, m2)));
  if (m > *delta_max) *delta_max = m;
  return sanitized;
}

}  // namespace ss::simd

#else  // !(__AVX2__ && __FMA__)

#include <cstdlib>

// Portable stub build: the dispatcher sees avx2_compiled() == false
// and never routes here; the aborts are a belt-and-braces guard
// against calling the entry points directly on a non-AVX2 build.
namespace ss::simd {

using kernels::LogPair;
using kernels::MassPair;
using kernels::SweepWeights;

bool avx2_compiled() { return false; }

LogPair gather_add_avx2(LogPair, std::span<const std::uint32_t>,
                        const LogPair*) {
  std::abort();
}
void gather_add2_avx2(LogPair&, std::span<const std::uint32_t>, LogPair&,
                      std::span<const std::uint32_t>, const LogPair*) {
  std::abort();
}
void gather_schedule_avx2(LogPair&, LogPair&,
                          std::span<const std::uint32_t>,
                          std::span<const std::uint32_t>, const double*) {
  std::abort();
}
LogPair gather_add_select_avx2(LogPair, std::span<const std::uint32_t>,
                               std::span<const char>, const LogPair*,
                               const LogPair*) {
  std::abort();
}
double gather_sum_avx2(std::span<const std::uint32_t>, const double*) {
  std::abort();
}
MassPair gather_mass_avx2(std::span<const std::uint32_t>, const double*) {
  std::abort();
}
void finalize_columns_avx2(const double*, const double*, std::size_t,
                           double*, double*, double*) {
  std::abort();
}
void finalize_pairs_avx2(const double*, const double*, std::size_t,
                         double*, double*) {
  std::abort();
}
void ext_table_rows_avx2(std::size_t, const double*, LogPair*, LogPair*,
                         LogPair*, LogPair*) {
  std::abort();
}
void ext_table_rows_clamped_avx2(std::size_t, const double*, LogPair*,
                                 LogPair*, LogPair*, LogPair*) {
  std::abort();
}
void rate_table_rows_avx2(std::size_t, const double*, LogPair*, LogPair*,
                          LogPair*) {
  std::abort();
}
void sweep_weights_avx2(std::size_t, const double*, const double*,
                        SweepWeights*) {
  std::abort();
}
LogPair sum_state_logs_avx2(std::span<const char>, const SweepWeights*) {
  std::abort();
}
LogPair sum_packed_state_logs_avx2(std::span<const char>, const double*,
                                   const double*) {
  std::abort();
}
std::size_t finalize_params_avx2(std::size_t, const double*, double, double,
                                 const double*, const double*, double,
                                 double, bool, double*, double*) {
  std::abort();
}

}  // namespace ss::simd

#endif  // __AVX2__ && __FMA__
