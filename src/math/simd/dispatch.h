// Runtime backend selection for the kernel layer (docs/MODEL.md §12).
//
// Every kernels:: entry point that has a vectorized implementation
// branches on avx2_active() — a relaxed atomic load plus a perfectly
// predicted compare once the backend is resolved — so estimators keep
// calling the same API and never mention a backend. Resolution order:
//
//   1. SS_KERNEL_BACKEND env var: "scalar" | "avx2" | "auto" (default).
//   2. "avx2" (or "auto" on a capable host) requires BOTH that this
//      binary carries the AVX2 translation unit (the compiler accepted
//      -mavx2 -mfma at build time) and that CPUID + the OS report
//      AVX2/FMA usable. Requesting "avx2" on an unusable host warns
//      once and falls back to scalar.
//   3. Tests and benches may pin the backend programmatically with
//      force_backend(); the env var is only read at first resolution.
//
// The scalar backend is the executable reference: it is bit-identical
// to the pre-SIMD kernels and the golden FNV-1a hashes in
// tests/test_kernels.cpp are recorded against it. The AVX2 backend is
// held to a ULP contract instead (see §12 and tests/test_simd.cpp).
#pragma once

#include <atomic>

namespace ss::simd {

enum class Backend : int { kScalar = 0, kAvx2 = 1 };

namespace detail {

// -1 = unresolved; otherwise a Backend value. Exposed only so
// avx2_active() can stay a header inline on the hot path.
extern std::atomic<int> g_backend;

// Reads SS_KERNEL_BACKEND, validates against host support, caches the
// result and returns it. Concurrent first calls are benign: every
// racer computes the same value.
int resolve_backend();

}  // namespace detail

inline Backend active_backend() {
  int b = detail::g_backend.load(std::memory_order_relaxed);
  if (b < 0) b = detail::resolve_backend();
  return static_cast<Backend>(b);
}

// The one check the dispatched kernels perform.
inline bool avx2_active() { return active_backend() == Backend::kAvx2; }

// True when the AVX2 translation unit was actually compiled with
// -mavx2 -mfma (false if the toolchain rejected the flags).
bool avx2_compiled();

// avx2_compiled() plus CPUID/OS support on the running host.
bool avx2_runtime_supported();

// Pins the backend, overriding the environment. Returns false (and
// leaves the selection unchanged) when the request cannot be honored
// on this build/host. force_backend(kScalar) always succeeds.
bool force_backend(Backend backend);

// Drops any pin and re-resolves from the environment on next use.
void reset_backend();

const char* backend_name(Backend backend);
const char* active_backend_name();

}  // namespace ss::simd
