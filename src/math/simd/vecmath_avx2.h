// Polynomial exp/log/log1p over __m256d lanes, for the AVX2 kernel
// backend only (docs/MODEL.md §12). Cephes-style argument reduction
// and minimax rationals; measured accuracy is ~1-2 ULP against libm
// over the kernels' input domains, and the bench backend sweep records
// the realized ULP histograms in bench_results/.
//
// Domain contracts (callers in kernels_avx2.cpp pre-screen lanes and
// fall back to scalar libm on violations):
//  * log_pd:   x positive, finite, normal.
//  * log1p_pd: 1 + x positive, finite, normal (x > -1 away from -1).
//  * exp_pd:   any finite/infinite x; saturates to 0 below -708 and to
//    +inf above 708 instead of producing subnormals, which is exact
//    enough for the epilogues' exp(-|d|) uses.
//
// This header may only be included from translation units compiled
// with -mavx2 -mfma (the #error below enforces it).
#pragma once

#if !defined(__AVX2__) || !defined(__FMA__)
#error "vecmath_avx2.h requires -mavx2 -mfma"
#endif

#include <immintrin.h>

#include <limits>

namespace ss::simd::vec {

inline __m256d negate_pd(__m256d x) {
  return _mm256_xor_pd(x, _mm256_set1_pd(-0.0));
}

// e^x per lane. Reduction: n = round(x * log2(e)), r = x - n*ln2 with
// ln2 split in two parts, e^r by the Cephes expansion
// 1 + 2r·P(r²)/(Q(r²) − r·P(r²)), then scale by 2^n through the
// exponent field.
inline __m256d exp_pd(__m256d x) {
  const __m256d kMax = _mm256_set1_pd(708.0);
  const __m256d kMin = _mm256_set1_pd(-708.0);
  __m256d xc = _mm256_min_pd(_mm256_max_pd(x, kMin), kMax);

  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  __m256d n = _mm256_round_pd(
      _mm256_mul_pd(xc, kLog2e),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - n*ln2, two-part reduction keeps r exact to ~2^-60.
  __m256d r = _mm256_fnmadd_pd(n, _mm256_set1_pd(6.93145751953125e-1), xc);
  r = _mm256_fnmadd_pd(n, _mm256_set1_pd(1.42860682030941723212e-6), r);
  __m256d rr = _mm256_mul_pd(r, r);

  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);

  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(2.00000000000000000005e0));

  __m256d y = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  y = _mm256_fmadd_pd(y, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));

  // ldexp(y, n): n is integral in [-1022, 1022] after the clamp.
  __m128i n32 = _mm256_cvtpd_epi32(n);
  __m256i n64 = _mm256_cvtepi32_epi64(n32);
  __m256i pow2 = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  y = _mm256_mul_pd(y, _mm256_castsi256_pd(pow2));

  // Saturate lanes the clamp touched (the true result is subnormal or
  // overflowing there).
  y = _mm256_blendv_pd(y, _mm256_setzero_pd(),
                       _mm256_cmp_pd(x, kMin, _CMP_LT_OQ));
  y = _mm256_blendv_pd(
      y, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      _mm256_cmp_pd(x, kMax, _CMP_GT_OQ));
  return y;
}

// ln(x) per lane, x normal-positive. Splits mantissa/exponent so the
// mantissa lands in [√½, √2), then the Cephes log rational in
// t = mantissa - 1 with the usual -t²/2 correction and a two-part ln2
// recombination of the exponent.
inline __m256d log_pd(__m256d x) {
  __m256i xi = _mm256_castpd_si256(x);
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(xi, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
      _mm256_set1_epi64x(0x3FE0000000000000ll)));  // mantissa in [0.5, 1)
  // Exponent as a double via the 1.5·2^52 bit trick (x > 0, so the
  // shifted sign bit is zero and the biased exponent fits in 11 bits).
  __m256i e64 = _mm256_sub_epi64(_mm256_srli_epi64(xi, 52),
                                 _mm256_set1_epi64x(1022));
  __m256d e = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(
          e64, _mm256_set1_epi64x(0x4338000000000000ll))),
      _mm256_set1_pd(6755399441055744.0));

  // If m < √½: halve the exponent's claim on it (e -= 1, m *= 2) so
  // t = m - 1 stays in [√½ - 1, √2 - 1).
  __m256d low = _mm256_cmp_pd(
      m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  e = _mm256_sub_pd(e, _mm256_and_pd(low, _mm256_set1_pd(1.0)));
  m = _mm256_add_pd(m, _mm256_and_pd(low, m));
  __m256d t = _mm256_sub_pd(m, _mm256_set1_pd(1.0));
  __m256d z = _mm256_mul_pd(t, t);

  __m256d p = _mm256_set1_pd(1.01875663804580931796e-4);
  p = _mm256_fmadd_pd(p, t, _mm256_set1_pd(4.97494994976747001425e-1));
  p = _mm256_fmadd_pd(p, t, _mm256_set1_pd(4.70579119878881725854e0));
  p = _mm256_fmadd_pd(p, t, _mm256_set1_pd(1.44989225341610930846e1));
  p = _mm256_fmadd_pd(p, t, _mm256_set1_pd(1.79368678507819816313e1));
  p = _mm256_fmadd_pd(p, t, _mm256_set1_pd(7.70838733755885391666e0));

  __m256d q = _mm256_add_pd(t, _mm256_set1_pd(1.12873587189167450590e1));
  q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(4.52279145837532221105e1));
  q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(8.29875266912776603211e1));
  q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(7.11544750618563894466e1));
  q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(2.31251620126765340583e1));

  __m256d y = _mm256_div_pd(
      _mm256_mul_pd(_mm256_mul_pd(t, z), p), q);
  y = _mm256_fnmadd_pd(e, _mm256_set1_pd(2.121944400546905827679e-4), y);
  y = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, y);
  __m256d res = _mm256_add_pd(t, y);
  return _mm256_fmadd_pd(e, _mm256_set1_pd(0.693359375), res);
}

// ln(1+x) per lane via the exact-correction trick: with u = fl(1+x),
// log1p(x) ≈ log(u) · x / (u − 1) — the factor x/(u−1) undoes the
// rounding of 1+x. Lanes where u == 1 return x (correct to within the
// neglected x²/2 < ulp there).
inline __m256d log1p_pd(__m256d x) {
  const __m256d kOne = _mm256_set1_pd(1.0);
  __m256d u = _mm256_add_pd(kOne, x);
  __m256d lg = log_pd(u);
  __m256d d = _mm256_sub_pd(u, kOne);
  __m256d tiny = _mm256_cmp_pd(d, _mm256_setzero_pd(), _CMP_EQ_OQ);
  __m256d safe_d = _mm256_blendv_pd(d, kOne, tiny);
  __m256d res = _mm256_mul_pd(lg, _mm256_div_pd(x, safe_d));
  return _mm256_blendv_pd(res, x, tiny);
}

}  // namespace ss::simd::vec
