#include "math/simd/dispatch.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "util/cpu.h"
#include "util/env.h"
#include "util/log.h"

namespace ss::simd {

namespace detail {

std::atomic<int> g_backend{-1};

int resolve_backend() {
  std::string value = env_string("SS_KERNEL_BACKEND", "auto");
  std::transform(value.begin(), value.end(), value.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });

  Backend chosen = Backend::kScalar;
  if (value == "scalar") {
    chosen = Backend::kScalar;
  } else if (value == "avx2") {
    if (avx2_runtime_supported()) {
      chosen = Backend::kAvx2;
    } else {
      SS_WARN << "SS_KERNEL_BACKEND=avx2 requested but "
              << (avx2_compiled() ? "the host CPU/OS lacks AVX2+FMA"
                                  : "this build carries no AVX2 code")
              << "; falling back to the scalar backend";
    }
  } else {
    if (value != "auto") {
      SS_WARN << "unknown SS_KERNEL_BACKEND value \"" << value
              << "\" (expected auto|scalar|avx2); treating as auto";
    }
    if (avx2_runtime_supported()) chosen = Backend::kAvx2;
  }

  int as_int = static_cast<int>(chosen);
  g_backend.store(as_int, std::memory_order_relaxed);
  SS_DEBUG << "kernel backend resolved to " << backend_name(chosen);
  return as_int;
}

}  // namespace detail

bool avx2_runtime_supported() {
  const CpuFeatures& f = cpu_features();
  return avx2_compiled() && f.avx2 && f.fma;
}

bool force_backend(Backend backend) {
  if (backend == Backend::kAvx2 && !avx2_runtime_supported()) return false;
  detail::g_backend.store(static_cast<int>(backend),
                          std::memory_order_relaxed);
  return true;
}

void reset_backend() {
  detail::g_backend.store(-1, std::memory_order_relaxed);
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* active_backend_name() {
  return backend_name(active_backend());
}

}  // namespace ss::simd
