#include "math/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/logprob.h"

namespace ss {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::stderror() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double StreamingStats::ci95_halfwidth() const { return 1.96 * stderror(); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double quantile(std::vector<double> v, double q) {
  assert(!v.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  double mx = mean(x);
  double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  // Exact zero is structural: a centered sum of squares is 0.0 only
  // when the series is perfectly constant, where the correlation is
  // undefined and 0.0 is the conventional answer.
  if (math::exactly_zero(sxx) || math::exactly_zero(syy)) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ss
