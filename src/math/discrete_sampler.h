// O(log n) sampling from a fixed discrete distribution via cumulative
// weights + binary search. Built once, sampled millions of times (e.g.
// tweet authorship in the Twitter simulator, where per-draw O(n) zipf
// sampling would dominate the whole simulation).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace ss {

class DiscreteSampler {
 public:
  // Weights must be non-negative with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights) {
    cumulative_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      if (w < 0.0) {
        throw std::invalid_argument("DiscreteSampler: negative weight");
      }
      acc += w;
      cumulative_.push_back(acc);
    }
    if (cumulative_.empty() || acc <= 0.0) {
      throw std::invalid_argument("DiscreteSampler: no positive weight");
    }
  }

  // Zipf-like weights 1/(i+1)^exponent over n items.
  static DiscreteSampler zipf(std::size_t n, double exponent) {
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    }
    return DiscreteSampler(weights);
  }

  std::size_t size() const { return cumulative_.size(); }

  std::size_t sample(Rng& rng) const {
    double r = rng.uniform() * cumulative_.back();
    auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), r);
    if (it == cumulative_.end()) return cumulative_.size() - 1;
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace ss
