// Log-space probability arithmetic.
//
// Posterior computations multiply hundreds of per-source likelihood terms
// (Eq. 4/5 of the paper); in linear space those products underflow double
// precision well before n = 100 sources. Everything that aggregates per-
// source likelihoods therefore works with natural-log probabilities and
// converts back only at the final normalization, where logsumexp keeps the
// result exact to double rounding.
#pragma once

#include <vector>

namespace ss {

// Natural log of p with p == 0 mapped to -infinity (well-defined in IEEE
// arithmetic and handled by logsumexp/log1p downstream).
double safe_log(double p);

// log(exp(a) + exp(b)) without overflow/underflow.
double logsumexp(double a, double b);

// log(sum_i exp(v_i)); returns -infinity for an empty input.
double logsumexp(const std::vector<double>& v);

// log(p / (1-p)); p must be in (0, 1).
double logit(double p);

// 1 / (1 + exp(-x)).
double sigmoid(double x);

// Given log-numerators la = log(w1) and lb = log(w0), returns
// w1 / (w1 + w0) computed stably. Handles the all--inf case by returning
// 0.5 (uninformative).
double normalize_log_pair(double la, double lb);

// Clamps a probability into [eps, 1-eps]; EM parameter updates use this to
// keep likelihood terms finite (a source with an empirical rate of exactly
// 0 or 1 would otherwise veto every other source's evidence).
double clamp_prob(double p, double eps = 1e-9);

}  // namespace ss
