// Log-space probability arithmetic.
//
// Posterior computations multiply hundreds of per-source likelihood terms
// (Eq. 4/5 of the paper); in linear space those products underflow double
// precision well before n = 100 sources. Everything that aggregates per-
// source likelihoods therefore works with natural-log probabilities and
// converts back only at the final normalization, where logsumexp keeps the
// result exact to double rounding.
//
// These are the *scalar* primitives, defined inline so the kernel layer
// (math/kernels.h) and the estimator hot loops pay no cross-TU call for
// them. They are the single home for this arithmetic — estimators must
// not open-code log(p) - log1p(-p) style variants (several used to; the
// kernel migration deleted them).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace ss {
namespace math {

// Exact IEEE comparison against zero. Floating-point ==/!= is banned in
// library code (lint rule R4, float-equality) because it silently turns
// into "compare a rounded result to a constant". The few comparisons
// that *should* be exact — a sum that is zero only when no term was ever
// added (cosine_similarity, pearson), a probability that is the literal
// sentinel 0 rather than a small number (safe_log) — go through this
// helper so the intent is visible and the linter can tell the sanctioned
// cases from accidents.
inline bool exactly_zero(double x) {
  // ss-lint: allow(float-equality): this helper IS the sanctioned exact-zero compare
  return x == 0.0;
}

}  // namespace math

// Natural log of p with p == 0 mapped to -infinity (well-defined in IEEE
// arithmetic and handled by logsumexp/log1p downstream).
inline double safe_log(double p) {
  assert(p >= 0.0);
  if (math::exactly_zero(p)) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::log(p);
}

// log(1 - p) computed as log1p(-p), the cancellation-free form for small
// p; p == 1 maps to -infinity (IEEE log1p(-1)). The complement-side twin
// of safe_log: estimator code takes logs of probabilities only through
// these two entry points (lint rule R1).
inline double safe_log1m(double p) {
  assert(p <= 1.0);
  return std::log1p(-p);
}

// exp() of a log-space value: the sanctioned conversion from log scale
// back to linear (lint rule R1 keeps raw std::exp out of estimator
// code). The caller asserts nothing about the argument — -infinity maps
// to 0 and large values to +infinity, both well-defined in IEEE.
inline double from_log(double lx) { return std::exp(lx); }

// log(exp(a) + exp(b)) without overflow/underflow.
inline double logsumexp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

// log(sum_i exp(v_i)); returns -infinity for an empty input.
double logsumexp(const std::vector<double>& v);

// log(p / (1-p)); p must be in (0, 1).
inline double logit(double p) {
  assert(p > 0.0 && p < 1.0);
  return std::log(p) - std::log1p(-p);
}

// 1 / (1 + exp(-x)).
inline double sigmoid(double x) {
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

// Given log-numerators la = log(w1) and lb = log(w0), returns
// w1 / (w1 + w0) computed stably. Handles the all--inf case by returning
// 0.5 (uninformative).
inline double normalize_log_pair(double la, double lb) {
  const double ninf = -std::numeric_limits<double>::infinity();
  if (la == ninf && lb == ninf) return 0.5;
  if (la == ninf) return 0.0;
  if (lb == ninf) return 1.0;
  // sigmoid(la - lb) == exp(la) / (exp(la) + exp(lb))
  return sigmoid(la - lb);
}

// Clamps a probability into [eps, 1-eps]; EM parameter updates use this to
// keep likelihood terms finite (a source with an empirical rate of exactly
// 0 or 1 would otherwise veto every other source's evidence).
inline double clamp_prob(double p, double eps = 1e-9) {
  return std::clamp(p, eps, 1.0 - eps);
}

}  // namespace ss
