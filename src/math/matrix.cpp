#include "math/matrix.h"

#include <algorithm>
#include <cmath>

#include "math/logprob.h"

namespace ss {

double Matrix::row_sum(std::size_t r) const {
  const double* p = row(r);
  double acc = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) acc += p[c];
  return acc;
}

double Matrix::col_sum(std::size_t c) const {
  assert(c < cols_);
  double acc = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) acc += data_[r * cols_ + c];
  return acc;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double l1_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b) {
  assert(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

void axpy(double s, const std::vector<double>& b, std::vector<double>& a) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  double ab = 0.0;
  double aa = 0.0;
  double bb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ab += a[i] * b[i];
    aa += a[i] * a[i];
    bb += b[i] * b[i];
  }
  // Exact zero is structural here: a sum of squares is 0.0 only when
  // every entry was exactly 0.0, i.e. the vector has no direction at
  // all. Tolerance would misclassify genuinely tiny vectors.
  if (math::exactly_zero(aa) || math::exactly_zero(bb)) return 1.0;
  return ab / std::sqrt(aa * bb);
}

bool normalize_sum(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total <= 0.0) return false;
  for (double& x : v) x /= total;
  return true;
}

bool normalize_max(std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, x);
  if (best <= 0.0) return false;
  for (double& x : v) x /= best;
  return true;
}

}  // namespace ss
