#include "math/kernels.h"

#include <stdexcept>

namespace ss {
namespace kernels {

void build_sweep_weights(std::span<const double> p_claim_true,
                         std::span<const double> p_claim_false,
                         std::vector<SweepWeights>& out) {
  if (p_claim_true.size() != p_claim_false.size()) {
    throw std::invalid_argument(
        "build_sweep_weights: rate vector size mismatch");
  }
  std::size_t n = p_claim_true.size();
  if (out.size() != n) out.resize(n);
  if (n >= 4 && simd::avx2_active()) {
    simd::sweep_weights_avx2(n, p_claim_true.data(), p_claim_false.data(),
                             out.data());
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double p1 = p_claim_true[i];
    double p0 = p_claim_false[i];
    out[i] = {std::log(p1), std::log1p(-p1), std::log(p0),
              std::log1p(-p0)};
  }
}

void SweepWeightsTable::build(std::span<const double> p_claim_true,
                              std::span<const double> p_claim_false) {
  build_sweep_weights(p_claim_true, p_claim_false, records_);
  // The packed companion only pays off when the masked-sum kernel can
  // run, so it is built exactly when that kernel would be picked.
  packed_ = records_.size() >= 8 && simd::avx2_active();
  if (!packed_) {
    delta_t_.clear();
    delta_f_.clear();
    silent_base_ = {0.0, 0.0};
    return;
  }
  std::size_t n = records_.size();
  delta_t_.resize(n);
  delta_f_.resize(n);
  double base_t = 0.0;
  double base_f = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const SweepWeights& w = records_[i];
    delta_t_[i] = w.log_t1 - w.log_t1n;
    delta_f_[i] = w.log_f1 - w.log_f1n;
    base_t += w.log_t1n;
    base_f += w.log_f1n;
  }
  silent_base_ = {base_t, base_f};
}

void finalize_columns(const double* la, const double* lb, std::size_t n,
                      double* posterior, double* log_odds,
                      double* column_ll) {
  if (n >= 4 && simd::avx2_active()) {
    simd::finalize_columns_avx2(la, lb, n, posterior, log_odds, column_ll);
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    ColumnStats s = finalize_column(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
    column_ll[j] = s.log_likelihood;
  }
}

void finalize_pairs(const double* la, const double* lb, std::size_t n,
                    double* posterior, double* log_odds) {
  if (n >= 4 && simd::avx2_active()) {
    simd::finalize_pairs_avx2(la, lb, n, posterior, log_odds);
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    PairStats s = finalize_pair(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
  }
}

}  // namespace kernels
}  // namespace ss
