#include "math/kernels.h"

#include <stdexcept>

namespace ss {
namespace kernels {

double tree_sum(ThreadPool* pool, const double* values, std::size_t n) {
  return tree_reduce(
      pool, n, 0.0,
      [values](std::size_t b, std::size_t e) {
        double acc = 0.0;
        for (std::size_t i = b; i < e; ++i) acc += values[i];
        return acc;
      },
      [](double a, double b) { return a + b; });
}

std::size_t finalize_params(std::size_t n, const double* stats6,
                            double total_z, double total_y,
                            const double* cells, const double* cmu,
                            double lo, double hi, bool tie_fg,
                            double* params4, double* delta_max) {
  if (n >= 4 && simd::avx2_active()) {
    return simd::finalize_params_avx2(n, stats6, total_z, total_y, cells,
                                      cmu, lo, hi, tie_fg, params4,
                                      delta_max);
  }
  std::size_t sanitized = 0;
  double dmax = *delta_max;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = stats6 + 6 * i;
    double* p = params4 + 4 * i;
    double prev[4] = {p[0], p[1], p[2], p[3]};
    // Derived denominators; single correctly-rounded subtractions in
    // the documented order, bitwise the historical fill-time fields.
    const double ez = row[4];
    const double t1 = row[5] - ez;
    const double denoms[4] = {total_z - ez, total_y - t1, ez, t1};
    for (std::size_t k = 0; k < 4; ++k) {
      double denom = denoms[k];
      double d = denom + cells[k];
      double raw = d > 0.0 ? (row[k] + cmu[k]) / d : prev[k];
      // NaN-propagating clamp (comparisons are false on NaN, so a NaN
      // raw value survives to the sanitize check; ±inf clamps to a
      // bound and is NOT counted — matching the historical
      // clamp-then-sanitize order).
      double c = raw < lo ? lo : raw;
      c = c > hi ? hi : c;
      if (!(c == c)) {
        c = prev[k];
        ++sanitized;
      }
      p[k] = c;
    }
    if (tie_fg) {
      double fg = 0.5 * (p[2] + p[3]);
      p[2] = fg;
      p[3] = fg;
    }
    for (std::size_t k = 0; k < 4; ++k) {
      double diff = std::fabs(p[k] - prev[k]);
      if (diff > dmax) dmax = diff;
    }
  }
  *delta_max = dmax;
  return sanitized;
}

void build_sweep_weights(std::span<const double> p_claim_true,
                         std::span<const double> p_claim_false,
                         std::vector<SweepWeights>& out) {
  if (p_claim_true.size() != p_claim_false.size()) {
    throw std::invalid_argument(
        "build_sweep_weights: rate vector size mismatch");
  }
  std::size_t n = p_claim_true.size();
  if (out.size() != n) out.resize(n);
  if (n >= 4 && simd::avx2_active()) {
    simd::sweep_weights_avx2(n, p_claim_true.data(), p_claim_false.data(),
                             out.data());
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double p1 = p_claim_true[i];
    double p0 = p_claim_false[i];
    out[i] = {std::log(p1), std::log1p(-p1), std::log(p0),
              std::log1p(-p0)};
  }
}

void SweepWeightsTable::build(std::span<const double> p_claim_true,
                              std::span<const double> p_claim_false) {
  build_sweep_weights(p_claim_true, p_claim_false, records_);
  // The packed companion only pays off when the masked-sum kernel can
  // run, so it is built exactly when that kernel would be picked.
  packed_ = records_.size() >= 8 && simd::avx2_active();
  if (!packed_) {
    delta_t_.clear();
    delta_f_.clear();
    silent_base_ = {0.0, 0.0};
    return;
  }
  std::size_t n = records_.size();
  delta_t_.resize(n);
  delta_f_.resize(n);
  double base_t = 0.0;
  double base_f = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const SweepWeights& w = records_[i];
    delta_t_[i] = w.log_t1 - w.log_t1n;
    delta_f_[i] = w.log_f1 - w.log_f1n;
    base_t += w.log_t1n;
    base_f += w.log_f1n;
  }
  silent_base_ = {base_t, base_f};
}

void finalize_columns(const double* la, const double* lb, std::size_t n,
                      double* posterior, double* log_odds,
                      double* column_ll) {
  if (n >= 4 && simd::avx2_active()) {
    simd::finalize_columns_avx2(la, lb, n, posterior, log_odds, column_ll);
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    ColumnStats s = finalize_column(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
    column_ll[j] = s.log_likelihood;
  }
}

void finalize_pairs(const double* la, const double* lb, std::size_t n,
                    double* posterior, double* log_odds) {
  if (n >= 4 && simd::avx2_active()) {
    simd::finalize_pairs_avx2(la, lb, n, posterior, log_odds);
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    PairStats s = finalize_pair(la[j], lb[j]);
    posterior[j] = s.posterior;
    log_odds[j] = s.log_odds;
  }
}

}  // namespace kernels
}  // namespace ss
