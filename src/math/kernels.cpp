#include "math/kernels.h"

#include <stdexcept>

namespace ss {
namespace kernels {

void build_sweep_weights(std::span<const double> p_claim_true,
                         std::span<const double> p_claim_false,
                         std::vector<SweepWeights>& out) {
  if (p_claim_true.size() != p_claim_false.size()) {
    throw std::invalid_argument(
        "build_sweep_weights: rate vector size mismatch");
  }
  std::size_t n = p_claim_true.size();
  if (out.size() != n) out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double p1 = p_claim_true[i];
    double p0 = p_claim_false[i];
    out[i] = {std::log(p1), std::log1p(-p1), std::log(p0),
              std::log1p(-p0)};
  }
}

}  // namespace kernels
}  // namespace ss
