// Streaming and batch statistics used by the experiment harness to
// aggregate independent repetitions into the mean ± CI rows the paper's
// figures plot.
#pragma once

#include <cstddef>
#include <vector>

namespace ss {

// Welford online mean/variance accumulator.
class StreamingStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean.
  double stderror() const;
  // Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }

  // Merges another accumulator (parallel reduction).
  void merge(const StreamingStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch helpers.
double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);
// Linear-interpolated quantile, q in [0,1]. Copies and sorts.
double quantile(std::vector<double> v, double q);
// Pearson correlation; returns 0 when either side is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ss
