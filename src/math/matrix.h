// Small dense row-major matrix used for posterior tables, Gibbs sample
// buffers and the handful of places the algorithms want 2-D indexing.
// This is deliberately not a BLAS: the paper's linear algebra is all
// element-wise products and reductions over modest shapes.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace ss {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // Raw row access for tight loops.
  double* row(std::size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row(std::size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  void fill(double v) { data_.assign(data_.size(), v); }

  double row_sum(std::size_t r) const;
  double col_sum(std::size_t c) const;
  double sum() const;

  // Frobenius-style max absolute difference; shapes must match.
  double max_abs_diff(const Matrix& other) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Element-wise helpers on vectors (the "manual linear algebra").
double dot(const std::vector<double>& a, const std::vector<double>& b);
double l1_distance(const std::vector<double>& a,
                   const std::vector<double>& b);
double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b);
// a := a + s*b
void axpy(double s, const std::vector<double>& b, std::vector<double>& a);
// Cosine similarity; returns 1 when either vector is all-zero (treated as
// "no change" by iterative convergence checks).
double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b);
// Normalizes v to sum 1; leaves v untouched (and returns false) when the
// sum is non-positive.
bool normalize_sum(std::vector<double>& v);
// Normalizes v by its max element (Sums/Average.Log style damping);
// returns false when max <= 0.
bool normalize_max(std::vector<double>& v);

}  // namespace ss
