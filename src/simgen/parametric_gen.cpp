#include "simgen/parametric_gen.h"

#include <cmath>
#include <stdexcept>

#include "math/logprob.h"

namespace ss {

namespace {

// Draws the claim matrix for fixed (params, forest, truth): roots claim
// each assertion at rate a/b by its truth (t = 0); leaves are exposed to
// exactly their root's claims and claim exposed cells at f/g, unexposed
// at a/b (t = 1).
void fill_claims(const ModelParams& params, const DependencyForest& forest,
                 const std::vector<Label>& truth, Rng& rng,
                 SimInstance& inst) {
  std::size_t n = forest.source_count();
  std::size_t m = truth.size();
  std::vector<Claim> claims;
  for (std::size_t r : forest.roots) {
    const SourceParams& s = params.source[r];
    for (std::size_t j = 0; j < m; ++j) {
      double rate = truth[j] == Label::kTrue ? s.a : s.b;
      if (rng.bernoulli(rate)) {
        claims.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(j), 0.0});
      }
    }
  }
  SourceClaimMatrix root_claims(n, m, claims);

  for (std::size_t i = 0; i < n; ++i) {
    if (forest.is_root(i)) continue;
    std::size_t r = forest.root_of[i];
    const SourceParams& s = params.source[i];
    for (std::size_t j = 0; j < m; ++j) {
      bool exposed = root_claims.has_claim(r, j);
      bool is_true = truth[j] == Label::kTrue;
      double rate = is_true ? (exposed ? s.f : s.a)
                            : (exposed ? s.g : s.b);
      if (rng.bernoulli(rate)) {
        claims.push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), 1.0});
      }
    }
  }

  inst.dataset.claims = SourceClaimMatrix(n, m, claims);
  inst.dataset.dependency =
      DependencyIndicators::from_forest(inst.dataset.claims, forest);
  inst.dataset.truth = truth;
  inst.dataset.validate();
}

std::vector<Label> make_labels(double d, std::size_t m, Rng& rng) {
  std::size_t true_count = static_cast<std::size_t>(
      std::lround(d * static_cast<double>(m)));
  true_count = std::min(true_count, m);
  std::vector<Label> truth(m, Label::kFalse);
  for (std::size_t j = 0; j < true_count; ++j) truth[j] = Label::kTrue;
  rng.shuffle(truth);
  return truth;
}

}  // namespace

SimInstance generate_parametric(const SimKnobs& knobs, Rng& rng) {
  std::size_t n = knobs.sources;
  std::size_t m = knobs.assertions;

  SimInstance inst;
  inst.tau = knobs.sample_tau(rng);
  inst.d = knobs.d.sample(rng);
  inst.forest = make_level_two_forest(n, inst.tau, rng);

  std::vector<Label> truth = make_labels(inst.d, m, rng);

  // Per-source behaviour parameters.
  inst.true_params.source.resize(n);
  inst.true_params.z = inst.d;
  for (std::size_t i = 0; i < n; ++i) {
    double p_on = knobs.p_on.sample(rng);
    double p_it = knobs.p_indep_true.sample(rng);
    double p_dt = knobs.p_dep_true.sample(rng);
    SourceParams& s = inst.true_params.source[i];
    s.a = clamp_prob(p_on * p_it);
    s.b = clamp_prob(p_on * (1.0 - p_it));
    s.f = clamp_prob(p_on * p_dt);
    s.g = clamp_prob(p_on * (1.0 - p_dt));
  }

  inst.dataset.name = "parametric";
  fill_claims(inst.true_params, inst.forest, truth, rng, inst);
  return inst;
}

SimInstance generate_parametric_batch(const ModelParams& params,
                                      const DependencyForest& forest,
                                      std::size_t assertions, Rng& rng) {
  if (params.source_count() != forest.source_count()) {
    throw std::invalid_argument(
        "generate_parametric_batch: params/forest source mismatch");
  }
  SimInstance inst;
  inst.true_params = params;
  inst.forest = forest;
  inst.d = params.z;
  inst.tau = forest.roots.size();
  std::vector<Label> truth = make_labels(params.z, assertions, rng);
  inst.dataset.name = "parametric-batch";
  fill_claims(params, forest, truth, rng, inst);
  return inst;
}

}  // namespace ss
