// Parametric synthetic-data generator.
//
// Generates instances whose true source-behaviour parameters theta are
// known exactly — the prerequisite for computing the error bound and the
// "Optimal" curve of Figs. 7-10. Knobs map to theta as (DESIGN.md §5):
//   a_i = p_on_i * p_indepT_i      b_i = p_on_i * (1 - p_indepT_i)
//   f_i = p_on_i * p_depT_i        g_i = p_on_i * (1 - p_depT_i)
//   z   = d
// Process per instance:
//   1. draw tau, d; build a level-two forest; label round(d*m)
//      assertions true (positions shuffled);
//   2. root sources claim each assertion j independently with rate
//      a_r / b_r by its truth (roots are never exposed);
//   3. a leaf is exposed to exactly the assertions its root claimed;
//      it claims exposed cells at rate f_i / g_i and unexposed cells at
//      a_i / b_i.
// Roots carry timestamp 0 and leaves timestamp 1, so the exposure
// semantics agree with DependencyIndicators::from_graph as well.
#pragma once

#include "core/params.h"
#include "data/dataset.h"
#include "graph/forest.h"
#include "simgen/knobs.h"

namespace ss {

struct SimInstance {
  Dataset dataset;
  // Exact generating parameters; drives bound computations.
  ModelParams true_params;
  DependencyForest forest;
  double d = 0.0;          // realized true-assertion ratio parameter
  std::size_t tau = 0;     // realized tree count
};

SimInstance generate_parametric(const SimKnobs& knobs, Rng& rng);

// Generates a fresh batch of `assertions` under a *fixed* source
// population: the same behaviour parameters and dependency forest, with
// z = params.z controlling the true-assertion ratio. This is the
// streaming workload — each batch is a new window of events observed by
// the same sources — used by StreamingEmExt demos and tests.
SimInstance generate_parametric_batch(const ModelParams& params,
                                      const DependencyForest& forest,
                                      std::size_t assertions, Rng& rng);

}  // namespace ss
