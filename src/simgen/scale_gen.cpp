#include "simgen/scale_gen.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace ss {
namespace {

// 53-bit uniform in [0, 1) from a hash word.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Claim rates of one source, derived from (seed, id) by a splitmix64
// chain — the SimKnobs theta mapping without any per-source storage.
struct SourceProfile {
  double a, b, f, g;
};

SourceProfile profile_of(std::uint64_t seed, std::uint64_t id,
                         const ScaleKnobs& knobs) {
  std::uint64_t h = splitmix64(seed ^ (id + 0x9e3779b97f4a7c15ULL));
  double p_on = knobs.p_on.lo + unit(h) * (knobs.p_on.hi - knobs.p_on.lo);
  h = splitmix64(h);
  double p_it = knobs.p_indep_true.lo +
                unit(h) * (knobs.p_indep_true.hi - knobs.p_indep_true.lo);
  h = splitmix64(h);
  double p_dt = knobs.p_dep_true.lo +
                unit(h) * (knobs.p_dep_true.hi - knobs.p_dep_true.lo);
  return {p_on * p_it, p_on * (1.0 - p_it), p_on * p_dt,
          p_on * (1.0 - p_dt)};
}

}  // namespace

std::size_t generate_scale_stream(const ScaleKnobs& knobs,
                                  std::uint64_t seed, SsdWriter& writer) {
  std::size_t n = knobs.sources;
  std::size_t m = knobs.assertions;
  if (n == 0 || m == 0) {
    throw std::invalid_argument("generate_scale_stream: empty shape");
  }
  if (knobs.community_lo == 0 || knobs.community_hi < knobs.community_lo) {
    throw std::invalid_argument(
        "generate_scale_stream: bad community range");
  }

  // Community layout: sizes hashed from the seed, last one truncated to
  // land exactly on n. O(communities) memory.
  std::vector<std::uint64_t> base{0};
  {
    std::uint64_t h = splitmix64(seed ^ 0x636f6d6dULL);  // 'comm'
    std::size_t span = knobs.community_hi - knobs.community_lo + 1;
    while (base.back() < n) {
      h = splitmix64(h);
      std::size_t size = knobs.community_lo + h % span;
      base.push_back(std::min<std::uint64_t>(base.back() + size, n));
    }
  }
  std::size_t communities = base.size() - 1;

  // Global truth ratio, one draw (the paper's per-experiment d).
  double d;
  {
    Rng rng(seed, /*stream=*/0x5d);
    d = knobs.d.sample(rng);
  }

  // Per-community working set, reused across communities.
  std::vector<SourceProfile> profile;
  std::vector<std::uint32_t> followee;  // local rank; roots self-map
  std::vector<std::uint8_t> claimed;
  std::vector<double> time;

  bool burst = knobs.time_model == ScaleTimeModel::kBurst;
  for (std::size_t c = 0; c < communities; ++c) {
    std::size_t lo = static_cast<std::size_t>(base[c]);
    std::size_t size = static_cast<std::size_t>(base[c + 1]) - lo;
    std::size_t roots = std::max<std::size_t>(
        1, static_cast<std::size_t>(knobs.root_fraction *
                                        static_cast<double>(size) +
                                    0.5));
    roots = std::min(roots, size);

    // Each community owns its Rng stream: its columns are identical no
    // matter what the other communities do.
    Rng rng(seed, /*stream=*/c + 1);

    profile.resize(size);
    followee.resize(size);
    for (std::size_t r = 0; r < size; ++r) {
      profile[r] = profile_of(seed, lo + r, knobs);
      if (r < roots) {
        followee[r] = static_cast<std::uint32_t>(r);
      } else {
        // Low-rank bias: u^follow_bias concentrates follows on early
        // members, yielding the long-tailed in-degree of a real graph.
        double u = std::pow(rng.uniform(), knobs.follow_bias);
        followee[r] = static_cast<std::uint32_t>(
            std::min<std::size_t>(r - 1,
                                  static_cast<std::size_t>(
                                      u * static_cast<double>(r))));
      }
    }

    // Largest-remainder-free proportional split of the m assertions:
    // community c owns [floor(m*base[c]/n), floor(m*base[c+1]/n)).
    std::size_t columns =
        static_cast<std::size_t>(base[c + 1] * m / n) -
        static_cast<std::size_t>(base[c] * m / n);

    claimed.assign(size, 0);
    time.assign(size, 0.0);
    for (std::size_t col = 0; col < columns; ++col) {
      bool truth = rng.uniform() < d;
      writer.begin_assertion(truth ? Label::kTrue : Label::kFalse);
      for (std::size_t r = 0; r < size; ++r) {
        const SourceProfile& p = profile[r];
        bool exposed = r >= roots && claimed[followee[r]] != 0;
        double rate = exposed ? (truth ? p.f : p.g)
                              : (truth ? p.a : p.b);
        bool claims = rng.uniform() < rate;
        double t;
        if (exposed) {
          t = time[followee[r]] +
              (burst ? rng.exponential(knobs.hop_mean_hours) : 1.0);
          writer.exposed(static_cast<std::uint32_t>(lo + r));
        } else {
          t = burst ? rng.uniform(0.0, knobs.burst_hours) : 0.0;
        }
        claimed[r] = claims ? 1 : 0;
        time[r] = t;
        if (claims) {
          writer.claim(static_cast<std::uint32_t>(lo + r), t);
        }
      }
      // Reset for the next column (assign keeps capacity).
      claimed.assign(size, 0);
    }
  }
  return communities;
}

ScaleStats generate_scale_ssd(const ScaleKnobs& knobs, std::uint64_t seed,
                              const std::string& path) {
  SsdWriter writer(path, knobs.sources, knobs.name);
  ScaleStats stats;
  stats.communities = generate_scale_stream(knobs, seed, writer);
  stats.ssd = writer.finish();
  return stats;
}

}  // namespace ss
