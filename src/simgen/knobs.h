// Simulation knobs (Section V-A).
//
// Default values reproduce the paper's stated defaults:
//   n = 20/50, m = 50, p_on in [0.5, 0.7], tau in [8, 10],
//   p_dep in [0.4, 0.6], d in [0.55, 0.75],
//   p_indepT in [7/12, 3/4], p_depT in [0.4, 0.6].
// Range-valued parameters are drawn uniformly per source (reliabilities,
// participation) or per experiment (d, tau), matching "parameters with
// ranges are chosen uniformly within the range".
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace ss {

struct Range {
  double lo = 0.0;
  double hi = 0.0;

  static Range fixed(double v) { return {v, v}; }

  double sample(Rng& rng) const {
    return lo == hi ? lo : rng.uniform(lo, hi);
  }
  double midpoint() const { return 0.5 * (lo + hi); }
};

// Converts a true-claim odds value p/(1-p) back to the probability p —
// convenient for the Fig. 5 / Fig. 10 sweeps expressed in odds.
double prob_from_odds(double odds);

struct SimKnobs {
  std::size_t sources = 50;      // n
  std::size_t assertions = 50;   // m
  std::size_t tau_lo = 8;        // dependency trees, inclusive range
  std::size_t tau_hi = 10;
  Range p_on{0.5, 0.7};          // participation
  Range p_dep{0.4, 0.6};         // leaf picks the dependent branch
  Range d{0.55, 0.75};           // fraction of true assertions
  Range p_indep_true{7.0 / 12.0, 0.75};  // p^indepT
  Range p_dep_true{0.4, 0.6};            // p^depT
  // Claim opportunities per source for the procedural generator; 0 means
  // assertions / 2, which matches the parametric generator's density.
  std::size_t opportunities = 0;

  // Paper defaults with n overridden (n = 20 in the bound simulations,
  // n = 50 in the estimator simulations).
  static SimKnobs paper_defaults(std::size_t n, std::size_t m = 50);

  std::size_t sample_tau(Rng& rng) const;
};

}  // namespace ss
