// Streaming million-source generator.
//
// The parametric generator (parametric_gen.h) materializes a Dataset,
// which caps it near 10^5 sources. This generator targets the 10^6
// regime by streaming straight into an SsdWriter (data/ssd.h): working
// memory is one community at a time plus the writer's own O(n + m)
// counters, never the claim list.
//
// Structure: sources partition into communities of community_lo..hi
// members. Each community opens with a block of independent "root"
// accounts; every later member follows one earlier member, chosen with
// a low-rank bias (follow_bias) so in-degree is long-tailed like a real
// follower graph. Each assertion belongs to exactly one community and
// cascades over its follower edges: roots claim at their independent
// rates (a_i true / b_i false), a follower whose followee claimed is
// *exposed* and claims at its dependent rates (f_i / g_i), and an
// unexposed follower falls back to its independent rates. Claims and
// exposures therefore never cross a community boundary, so the claim
// graph keeps ~sources/avg_community connected components and
// ShardedDataset gets real parallelism instead of one giant component.
//
// Per-source behaviour parameters are derived from splitmix64 hashes of
// (seed, source id) — no O(n) parameter arrays — using the same knob
// ranges and theta mapping as SimKnobs (a = p_on * p_indepT, ...).
// Everything is deterministic in the single seed; community c draws
// from its own Rng stream, so output is independent of how many other
// communities exist.
#pragma once

#include <cstdint>
#include <string>

#include "data/ssd.h"
#include "simgen/knobs.h"

namespace ss {

// Claim timestamps: kUnitDepth stamps cascade depth (root 0, follower
// followee+1), matching the parametric generator's root-0 / leaf-1
// convention; kBurst stamps event-style hours (root uniform in
// [0, burst_hours), each hop adding an exponential delay) for
// Twitter-shaped data (twitter/scale_bridge.h).
enum class ScaleTimeModel { kUnitDepth, kBurst };

struct ScaleKnobs {
  std::size_t sources = 1'000'000;
  std::size_t assertions = 100'000;
  std::size_t community_lo = 128;   // members per community, inclusive
  std::size_t community_hi = 512;
  double root_fraction = 0.05;      // independent members per community
  double follow_bias = 2.0;         // higher -> stronger hub formation
  ScaleTimeModel time_model = ScaleTimeModel::kUnitDepth;
  double burst_hours = 48.0;        // kBurst: root arrival window
  double hop_mean_hours = 0.5;      // kBurst: mean follower delay
  // Behaviour ranges; defaults repeat SimKnobs' paper values.
  Range p_on{0.5, 0.7};
  Range d{0.55, 0.75};
  Range p_indep_true{7.0 / 12.0, 0.75};
  Range p_dep_true{0.4, 0.6};
  std::string name = "scale";
};

struct ScaleStats {
  SsdStats ssd;                 // shape of the committed file
  std::size_t communities = 0;  // community (= component ceiling) count
};

// Streams all assertions into `writer` (already constructed for
// knobs.sources sources) without finishing it; returns the community
// count. Lets callers append their own columns or control commit.
std::size_t generate_scale_stream(const ScaleKnobs& knobs,
                                  std::uint64_t seed, SsdWriter& writer);

// One-shot: construct the writer, stream, commit atomically.
ScaleStats generate_scale_ssd(const ScaleKnobs& knobs, std::uint64_t seed,
                              const std::string& path);

}  // namespace ss
