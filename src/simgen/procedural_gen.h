// Procedural synthetic-data generator — a literal implementation of the
// pool/opportunity process of Section V-A.
//
// Assertions are split into "True" and "False" pools by ratio d. Sources
// are organized as a level-two forest. Each source gets a number of claim
// opportunities; at each opportunity it participates with probability
// p_on. Root sources then pick an assertion they have not claimed yet
// from the True pool with probability p_indepT, else from the False pool.
// Leaf sources first choose the dependent branch with probability p_dep
// (candidates: assertions their root claimed) or the independent branch
// (candidates: the rest), then pick True vs False within the branch with
// p_depT / p_indepT. Empty candidate subsets fall through to the other
// branch, and an opportunity with no candidates anywhere is skipped.
//
// Unlike the parametric generator this process does not expose exact
// per-cell Bernoulli parameters, so SimInstance::true_params is *not*
// meaningful here (left defaulted); the procedural generator exists to
// validate estimator rankings against the paper's own description
// (ablation A2).
#pragma once

#include "simgen/parametric_gen.h"

namespace ss {

SimInstance generate_procedural(const SimKnobs& knobs, Rng& rng);

}  // namespace ss
