#include "simgen/knobs.h"

#include <algorithm>
#include <stdexcept>

namespace ss {

double prob_from_odds(double odds) {
  if (odds <= 0.0) {
    throw std::invalid_argument("prob_from_odds: odds must be positive");
  }
  return odds / (1.0 + odds);
}

SimKnobs SimKnobs::paper_defaults(std::size_t n, std::size_t m) {
  SimKnobs knobs;
  knobs.sources = n;
  knobs.assertions = m;
  // tau must not exceed n; the paper's [8, 10] default assumes n >= 10.
  knobs.tau_lo = std::min<std::size_t>(8, n);
  knobs.tau_hi = std::min<std::size_t>(10, n);
  return knobs;
}

std::size_t SimKnobs::sample_tau(Rng& rng) const {
  if (tau_lo > tau_hi || tau_hi > sources || tau_lo == 0) {
    throw std::invalid_argument("SimKnobs: invalid tau range");
  }
  if (tau_lo == tau_hi) return tau_lo;
  return tau_lo + rng.uniform_u32(
                      static_cast<std::uint32_t>(tau_hi - tau_lo + 1));
}

}  // namespace ss
