#include "simgen/procedural_gen.h"

#include <algorithm>
#include <cmath>

namespace ss {
namespace {

// Mutable per-source candidate tracking: which assertions this source has
// not claimed yet, maintained as a flat "claimed" bitmap (m is small in
// the simulation experiments, so linear scans over candidates are fine).
struct PickContext {
  const std::vector<Label>* truth;
  std::vector<char> claimed_by_me;

  // Picks uniformly an assertion from `candidates` whose truth label
  // matches `want_true` and which this source has not claimed yet.
  // Returns m (invalid) when no candidate qualifies.
  std::size_t pick(const std::vector<std::uint32_t>& candidates,
                   bool want_true, Rng& rng) const {
    std::vector<std::uint32_t> eligible;
    for (std::uint32_t j : candidates) {
      bool is_true = (*truth)[j] == Label::kTrue;
      if (is_true == want_true && !claimed_by_me[j]) {
        eligible.push_back(j);
      }
    }
    if (eligible.empty()) return truth->size();
    return eligible[rng.uniform_u32(
        static_cast<std::uint32_t>(eligible.size()))];
  }
};

}  // namespace

SimInstance generate_procedural(const SimKnobs& knobs, Rng& rng) {
  std::size_t n = knobs.sources;
  std::size_t m = knobs.assertions;
  std::size_t opportunities =
      knobs.opportunities > 0 ? knobs.opportunities : m / 2;

  SimInstance inst;
  inst.tau = knobs.sample_tau(rng);
  inst.d = knobs.d.sample(rng);
  inst.forest = make_level_two_forest(n, inst.tau, rng);

  std::size_t true_count = static_cast<std::size_t>(
      std::lround(inst.d * static_cast<double>(m)));
  true_count = std::min(true_count, m);
  std::vector<Label> truth(m, Label::kFalse);
  for (std::size_t j = 0; j < true_count; ++j) truth[j] = Label::kTrue;
  rng.shuffle(truth);

  std::vector<std::uint32_t> all_assertions(m);
  for (std::size_t j = 0; j < m; ++j) {
    all_assertions[j] = static_cast<std::uint32_t>(j);
  }

  std::vector<Claim> claims;
  double clock = 0.0;  // strictly increasing claim timestamps

  // Phase 1: roots make independent claims.
  for (std::size_t r : inst.forest.roots) {
    double p_on = knobs.p_on.sample(rng);
    double p_it = knobs.p_indep_true.sample(rng);
    PickContext ctx{&truth, std::vector<char>(m, 0)};
    for (std::size_t k = 0; k < opportunities; ++k) {
      if (!rng.bernoulli(p_on)) continue;
      bool want_true = rng.bernoulli(p_it);
      std::size_t j = ctx.pick(all_assertions, want_true, rng);
      if (j >= m) j = ctx.pick(all_assertions, !want_true, rng);
      if (j >= m) continue;  // source exhausted every assertion
      ctx.claimed_by_me[j] = 1;
      clock += 1.0;
      claims.push_back({static_cast<std::uint32_t>(r),
                        static_cast<std::uint32_t>(j), clock});
    }
  }

  // Root claims define each leaf's dependent candidate subset.
  SourceClaimMatrix root_claims(n, m, claims);

  // Phase 2: leaves claim, mixing dependent and independent picks.
  for (std::size_t i = 0; i < n; ++i) {
    if (inst.forest.is_root(i)) continue;
    std::size_t r = inst.forest.root_of[i];
    const auto& dep_candidates = root_claims.claims_of(r);
    std::vector<std::uint32_t> indep_candidates;
    for (std::uint32_t j : all_assertions) {
      if (!root_claims.has_claim(r, j)) indep_candidates.push_back(j);
    }

    double p_on = knobs.p_on.sample(rng);
    double p_dep = knobs.p_dep.sample(rng);
    double p_it = knobs.p_indep_true.sample(rng);
    double p_dt = knobs.p_dep_true.sample(rng);
    PickContext ctx{&truth, std::vector<char>(m, 0)};
    for (std::size_t k = 0; k < opportunities; ++k) {
      if (!rng.bernoulli(p_on)) continue;
      bool dependent_branch = rng.bernoulli(p_dep);
      std::size_t j = m;
      if (dependent_branch) {
        bool want_true = rng.bernoulli(p_dt);
        j = ctx.pick(dep_candidates, want_true, rng);
        if (j >= m) j = ctx.pick(dep_candidates, !want_true, rng);
      }
      if (j >= m) {
        bool want_true = rng.bernoulli(p_it);
        j = ctx.pick(indep_candidates, want_true, rng);
        if (j >= m) j = ctx.pick(indep_candidates, !want_true, rng);
      }
      if (j >= m) continue;
      ctx.claimed_by_me[j] = 1;
      clock += 1.0;
      claims.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(j), clock});
    }
  }

  inst.dataset.name = "procedural";
  inst.dataset.claims = SourceClaimMatrix(n, m, claims);
  inst.dataset.dependency =
      DependencyIndicators::from_forest(inst.dataset.claims, inst.forest);
  inst.dataset.truth = std::move(truth);
  inst.dataset.validate();
  return inst;
}

}  // namespace ss
