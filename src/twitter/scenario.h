// Scenario configurations for the five simulated Twitter datasets.
//
// Each preset mirrors one dataset of the paper's Table III in scale
// (#sources, #assertions, #claims within the same order of magnitude) and
// personality: Paris Attack is a huge, bursty, rumour-heavy event;
// LA Marathon is benign with mostly true observations; Ukraine carries a
// high rumour load (the Putin-disappearance speculation wave); etc.
// SS_SCALE (a float, default 1.0) scales user/assertion counts for quick
// runs without changing the qualitative behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/pref_attach.h"

namespace ss {

struct TwitterScenario {
  std::string name;
  std::size_t users = 5000;
  // Hidden assertion inventory.
  std::size_t true_facts = 1500;
  std::size_t false_rumours = 800;
  std::size_t opinions = 700;
  // Original (non-retweet) tweet volume.
  std::size_t seed_tweets = 4000;
  // Probability a follower retweets a tweet it is exposed to.
  double retweet_rate = 0.02;
  // Multiplier on retweet_rate for rumours ("falsehood travels faster").
  double rumour_virality = 2.0;
  // Per-user reliability (probability an original tweet states a true
  // fact rather than a rumour) is bimodal, as in real events: a majority
  // of mostly-credible accounts and a minority of rumour-mongers. The
  // separation is what lets reliability-learning fact-finders label
  // rumours false via their originators.
  double reliability_mean = 0.7;
  double reliability_stddev = 0.15;
  double unreliable_fraction = 0.3;
  double unreliable_mean = 0.25;
  double unreliable_stddev = 0.1;
  // Probability an original tweet voices an opinion instead of a claim.
  double opinion_rate = 0.12;
  // Probability that an original false tweet *invents a fresh rumour*
  // rather than independently asserting an existing one. Real rumours
  // have a single originator and spread by repetition, while true facts
  // accumulate independent witnesses — the asymmetry dependency-aware
  // fact-finding feeds on.
  double rumour_invention = 0.8;
  // Zipf exponent of per-user activity (heavier tail = fewer loud users).
  double activity_exponent = 0.8;
  // Zipf exponent of assertion popularity.
  double popularity_exponent = 0.9;
  double duration_hours = 72.0;
  PrefAttachConfig graph{/*nodes=*/5000, /*edges_per_node=*/4,
                         /*uniform_mix=*/0.15};
  std::vector<std::string> topic_words;

  // Applies a linear scale factor to users / assertions / tweet volume.
  TwitterScenario scaled(double factor) const;
};

// The five presets, in the paper's Table III order.
std::vector<TwitterScenario> paper_scenarios();

// One preset by name ("Ukraine", "Kirkuk", "Superbug", "LA Marathon",
// "Paris Attack"); throws std::invalid_argument otherwise.
TwitterScenario scenario_by_name(const std::string& name);

// Scale factor from SS_SCALE (default 1.0, clamped to [0.01, 10]).
double scenario_scale_from_env();

}  // namespace ss
