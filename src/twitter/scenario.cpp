#include "twitter/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/env.h"

namespace ss {
namespace {

std::size_t scale_count(std::size_t v, double f) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(v * f)));
}

}  // namespace

TwitterScenario TwitterScenario::scaled(double factor) const {
  TwitterScenario s = *this;
  s.users = scale_count(users, factor);
  s.true_facts = scale_count(true_facts, factor);
  s.false_rumours = scale_count(false_rumours, factor);
  s.opinions = scale_count(opinions, factor);
  s.seed_tweets = scale_count(seed_tweets, factor);
  s.graph.nodes = s.users;
  return s;
}

std::vector<TwitterScenario> paper_scenarios() {
  std::vector<TwitterScenario> out;

  {
    // Ukraine: Putin-disappearance speculation — heavy rumour load,
    // moderately viral, month-long window. Table III: 3703 assertions,
    // 5403 sources, 7192 claims, 4242 original.
    TwitterScenario s;
    s.name = "Ukraine";
    s.users = 10000;
    s.true_facts = 3000;
    s.false_rumours = 1300;
    s.opinions = 700;
    s.seed_tweets = 4700;
    s.retweet_rate = 0.022;
    s.rumour_virality = 2.5;
    s.reliability_mean = 0.82;
    s.reliability_stddev = 0.08;
    s.unreliable_fraction = 0.35;
    s.unreliable_mean = 0.22;
    s.unreliable_stddev = 0.10;
    s.opinion_rate = 0.15;
    s.activity_exponent = 0.4;
    s.popularity_exponent = 0.3;
    s.duration_hours = 24.0 * 40;
    s.graph = {s.users, 4, 0.15};
    s.topic_words = {"putin",   "russia",  "kremlin", "moscow",
                     "ukraine", "missing", "health",  "treaty",
                     "kazakhstan", "ossetia", "president", "dead",
                     "alive",   "public",  "appearance"};
    out.push_back(s);
  }
  {
    // Kirkuk: military offensive commentary — mid-size, mixed quality.
    // Table III: 2795 assertions, 4816 sources, 6188 claims, 3079 orig.
    TwitterScenario s;
    s.name = "Kirkuk";
    s.users = 9500;
    s.true_facts = 2300;
    s.false_rumours = 1000;
    s.opinions = 600;
    s.seed_tweets = 3700;
    s.retweet_rate = 0.028;
    s.rumour_virality = 2.0;
    s.reliability_mean = 0.84;
    s.reliability_stddev = 0.08;
    s.unreliable_fraction = 0.30;
    s.unreliable_mean = 0.25;
    s.unreliable_stddev = 0.10;
    s.opinion_rate = 0.14;
    s.activity_exponent = 0.4;
    s.popularity_exponent = 0.3;
    s.duration_hours = 24.0 * 60;
    s.graph = {s.users, 4, 0.15};
    s.topic_words = {"kirkuk", "kurdish", "peshmerga", "isis",
                     "iraq",   "offensive", "oil",     "forces",
                     "attack", "north",   "city",     "front",
                     "airstrike", "village", "liberated"};
    out.push_back(s);
  }
  {
    // Superbug: hospital infection story — smallest, factual, low
    // virality. Table III: 2873 assertions, 7764 sources, 9426 claims.
    TwitterScenario s;
    s.name = "Superbug";
    s.users = 15500;
    s.true_facts = 2400;
    s.false_rumours = 700;
    s.opinions = 650;
    s.seed_tweets = 6400;
    s.retweet_rate = 0.028;
    s.rumour_virality = 1.8;
    s.reliability_mean = 0.88;
    s.reliability_stddev = 0.06;
    s.unreliable_fraction = 0.20;
    s.unreliable_mean = 0.30;
    s.unreliable_stddev = 0.10;
    s.opinion_rate = 0.10;
    s.activity_exponent = 0.4;
    s.popularity_exponent = 0.55;
    s.duration_hours = 24.0 * 50;
    s.graph = {s.users, 3, 0.2};
    s.topic_words = {"superbug", "cre",     "hospital", "patients",
                     "infected", "antibiotic", "resistant", "outbreak",
                     "losangeles", "endoscope", "cdc",   "scope",
                     "bacteria", "cedars",  "ucla"};
    out.push_back(s);
  }
  {
    // LA Marathon: benign sporting event, mostly true observations.
    // Table III: 3537 assertions, 5174 sources, 7148 claims, 4332 orig.
    TwitterScenario s;
    s.name = "LA Marathon";
    s.users = 10200;
    s.true_facts = 3400;
    s.false_rumours = 450;
    s.opinions = 850;
    s.seed_tweets = 4800;
    s.retweet_rate = 0.025;
    s.rumour_virality = 1.5;
    s.reliability_mean = 0.90;
    s.reliability_stddev = 0.05;
    s.unreliable_fraction = 0.12;
    s.unreliable_mean = 0.35;
    s.unreliable_stddev = 0.10;
    s.opinion_rate = 0.16;
    s.activity_exponent = 0.4;
    s.popularity_exponent = 0.3;
    s.duration_hours = 24.0 * 6;
    s.graph = {s.users, 4, 0.2};
    s.topic_words = {"marathon", "runners", "mile",    "finish",
                     "dodger",   "stadium", "santamonica", "pier",
                     "race",     "street",  "closed",  "cheering",
                     "heat",     "water",   "course"};
    out.push_back(s);
  }
  {
    // Paris Attack: breaking terror event — an order of magnitude
    // larger, extremely bursty, rumour-heavy, little retweet-free time.
    // Table III: 23513 assertions, 38844 sources, 41249 claims.
    TwitterScenario s;
    s.name = "Paris Attack";
    s.users = 80000;
    s.true_facts = 16000;
    s.false_rumours = 7500;
    s.opinions = 3500;
    s.seed_tweets = 43000;
    s.retweet_rate = 0.0015;
    s.rumour_virality = 3.0;
    s.reliability_mean = 0.80;
    s.reliability_stddev = 0.08;
    s.unreliable_fraction = 0.35;
    s.unreliable_mean = 0.20;
    s.unreliable_stddev = 0.10;
    s.opinion_rate = 0.13;
    s.activity_exponent = 0.1;
    s.popularity_exponent = 0.35;
    s.duration_hours = 24.0 * 10;
    s.graph = {s.users, 5, 0.1};
    s.topic_words = {"paris",    "attack",   "bataclan", "explosion",
                     "shooting", "stade",    "france",   "hostages",
                     "police",   "suspects", "eagles",   "concert",
                     "borders",  "casualties", "raid"};
    out.push_back(s);
  }
  return out;
}

TwitterScenario scenario_by_name(const std::string& name) {
  for (TwitterScenario& s : paper_scenarios()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("scenario_by_name: unknown scenario " + name);
}

double scenario_scale_from_env() {
  double scale = env_double("SS_SCALE", 1.0);
  return std::clamp(scale, 0.01, 10.0);
}

}  // namespace ss
