#include "twitter/tweet_io.h"

#include <fstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ss {
namespace {

// Minimal targeted JSON-line parsing: the writer controls the format
// (flat object, known keys, no nesting), so a small scanner suffices and
// keeps the module dependency-free.
bool extract_field(const std::string& line, const std::string& key,
                   std::string& out) {
  std::string marker = "\"" + key + "\":";
  auto pos = line.find(marker);
  if (pos == std::string::npos) return false;
  pos += marker.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    // String value with escapes.
    std::string value;
    for (std::size_t i = pos + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        char next = line[++i];
        switch (next) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default: value += next;
        }
      } else if (c == '"') {
        out = std::move(value);
        return true;
      } else {
        value += c;
      }
    }
    return false;
  }
  auto end = line.find_first_of(",}", pos);
  if (end == std::string::npos) return false;
  out = trim(line.substr(pos, end - pos));
  return true;
}

}  // namespace

void save_tweets(const std::vector<Tweet>& tweets,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_tweets: cannot write " + path);
  for (const Tweet& t : tweets) {
    out << "{\"id\":" << t.id << ",\"user\":" << t.user
        << ",\"time\":" << strprintf("%.17g", t.time) << ",\"text\":\""
        << json_escape(t.text) << "\"";
    if (t.is_retweet()) out << ",\"parent\":" << t.parent;
    out << "}\n";
  }
}

std::vector<Tweet> load_tweets(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_tweets: cannot read " + path);
  std::vector<Tweet> tweets;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    Tweet t;
    std::string field;
    auto require = [&](const char* key) {
      if (!extract_field(line, key, field)) {
        throw std::runtime_error(
            strprintf("load_tweets: %s:%zu missing field \"%s\"",
                      path.c_str(), line_no, key));
      }
    };
    require("id");
    t.id = static_cast<std::uint32_t>(std::stoul(field));
    require("user");
    t.user = static_cast<std::uint32_t>(std::stoul(field));
    require("time");
    t.time = std::stod(field);
    require("text");
    t.text = field;
    if (extract_field(line, "parent", field)) {
      t.parent = static_cast<std::uint32_t>(std::stoul(field));
    }
    tweets.push_back(std::move(t));
  }
  return tweets;
}

void save_assertion_labels(const std::vector<Label>& labels,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_assertion_labels: cannot write " +
                             path);
  }
  out << "assertion,label\n";
  for (std::size_t k = 0; k < labels.size(); ++k) {
    out << k << ',' << label_name(labels[k]) << '\n';
  }
}

void save_tweet_labels(const std::vector<Tweet>& tweets,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_tweet_labels: cannot write " + path);
  }
  out << "tweet,label\n";
  for (const Tweet& t : tweets) {
    out << t.id << ',' << label_name(t.hidden_label) << '\n';
  }
}

std::unordered_map<std::uint32_t, Label> load_tweet_labels(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_tweet_labels: cannot read " + path);
  }
  std::unordered_map<std::uint32_t, Label> labels;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    auto fields = csv_parse_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("load_tweet_labels: bad row " + line);
    }
    Label label = Label::kUnknown;
    if (fields[1] == "True") label = Label::kTrue;
    else if (fields[1] == "False") label = Label::kFalse;
    else if (fields[1] == "Opinion") label = Label::kOpinion;
    labels[static_cast<std::uint32_t>(std::stoul(fields[0]))] = label;
  }
  return labels;
}

std::vector<Label> load_assertion_labels(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_assertion_labels: cannot read " +
                             path);
  }
  std::vector<Label> labels;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    auto fields = csv_parse_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("load_assertion_labels: bad row " + line);
    }
    std::size_t k = std::stoull(fields[0]);
    if (labels.size() <= k) labels.resize(k + 1, Label::kUnknown);
    if (fields[1] == "True") labels[k] = Label::kTrue;
    else if (fields[1] == "False") labels[k] = Label::kFalse;
    else if (fields[1] == "Opinion") labels[k] = Label::kOpinion;
    else labels[k] = Label::kUnknown;
  }
  return labels;
}

}  // namespace ss
