#include "twitter/tweet_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ss {
namespace {

// Minimal targeted JSON-line parsing: the writer controls the format
// (flat object, known keys, no nesting), so a small scanner suffices and
// keeps the module dependency-free.
bool extract_field(const std::string& line, const std::string& key,
                   std::string& out) {
  std::string marker = "\"" + key + "\":";
  auto pos = line.find(marker);
  if (pos == std::string::npos) return false;
  pos += marker.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    // String value with escapes.
    std::string value;
    for (std::size_t i = pos + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        char next = line[++i];
        switch (next) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default: value += next;
        }
      } else if (c == '"') {
        out = std::move(value);
        return true;
      } else {
        value += c;
      }
    }
    return false;
  }
  auto end = line.find_first_of(",}", pos);
  if (end == std::string::npos) return false;
  out = trim(line.substr(pos, end - pos));
  return true;
}

}  // namespace

std::string tweets_to_jsonl(const std::vector<Tweet>& tweets) {
  std::ostringstream out;
  for (const Tweet& t : tweets) {
    out << "{\"id\":" << t.id << ",\"user\":" << t.user
        << ",\"time\":" << strprintf("%.17g", t.time) << ",\"text\":\""
        << json_escape(t.text) << "\"";
    if (t.is_retweet()) out << ",\"parent\":" << t.parent;
    out << "}\n";
  }
  return out.str();
}

void save_tweets(const std::vector<Tweet>& tweets,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_tweets: cannot write " + path);
  out << tweets_to_jsonl(tweets);
  if (!out) throw std::runtime_error("save_tweets: short write to " + path);
}

std::vector<Tweet> load_tweets(const std::string& path) {
  return load_tweets(path, IngestOptions{});
}

std::vector<Tweet> load_tweets(const std::string& path,
                               const IngestOptions& options,
                               IngestReport* report) {
  Expected<std::vector<Tweet>> loaded =
      try_load_tweets(path, options, report);
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message);
  return std::move(loaded).value();
}

Expected<std::vector<Tweet>> try_load_tweets(
    const std::string& path, const IngestOptions& options,
    IngestReport* report) {
  std::ifstream in(path);
  if (!in) {
    Error error{ErrorCode::kIoError,
                "load_tweets: cannot read " + path};
    if (report != nullptr) {
      report->note(ErrorCode::kIoError, path, 0, "cannot open for read",
                   options.max_recorded_errors);
    }
    return error;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return parse_tweets_jsonl(bytes, path, options, report);
}

Expected<std::vector<Tweet>> parse_tweets_jsonl(
    const std::string& text, const std::string& origin,
    const IngestOptions& options, IngestReport* report) {
  std::istringstream in(text);
  const std::string& path = origin;  // defect locations name the origin
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;

  std::vector<Tweet> tweets;
  std::string line;
  std::size_t line_no = 0;
  // Per-record defect handling; returns true when the record may be
  // kept after repair, false when it must be skipped. Throws (with the
  // taxonomy code) in strict mode. Row-level ok/repaired/skipped
  // accounting stays with the caller so a record with several repaired
  // fields still counts as one repaired row.
  auto defect = [&](ErrorCode code, std::string detail,
                    bool repairable) {
    rep.note(code, path, line_no, detail, options.max_recorded_errors);
    if (options.mode == IngestMode::kStrict) {
      throw TaxonomyError(
          code,
          RecordError{code, path, line_no, std::move(detail)}
              .to_string());
    }
    return options.mode == IngestMode::kRepair && repairable;
  };

  try {
    while (std::getline(in, line)) {
      ++line_no;
      if (trim(line).empty()) continue;
      ++rep.rows_total;
      Tweet t;
      std::string field;

      // Identity fields: never repairable.
      if (!extract_field(line, "id", field)) {
        defect(ErrorCode::kMissingField, "missing field \"id\"", false);
        ++rep.rows_skipped;
        continue;
      }
      if (!try_parse_u32(field, &t.id)) {
        defect(ErrorCode::kBadNumber, "bad id: " + field, false);
        ++rep.rows_skipped;
        continue;
      }
      if (!extract_field(line, "user", field)) {
        defect(ErrorCode::kMissingField, "missing field \"user\"",
               false);
        ++rep.rows_skipped;
        continue;
      }
      if (!try_parse_u32(field, &t.user)) {
        defect(ErrorCode::kBadNumber, "bad user: " + field, false);
        ++rep.rows_skipped;
        continue;
      }

      bool repaired = false;
      // Payload fields: each has an unambiguous repair.
      if (!extract_field(line, "time", field)) {
        if (!defect(ErrorCode::kMissingField, "missing field \"time\"",
                    true)) {
          ++rep.rows_skipped;
          continue;
        }
        t.time = 0.0;
        repaired = true;
      } else if (!try_parse_f64(field, &t.time)) {
        if (!defect(ErrorCode::kBadNumber, "bad time: " + field, true)) {
          ++rep.rows_skipped;
          continue;
        }
        t.time = 0.0;
        repaired = true;
      } else if (!std::isfinite(t.time)) {
        if (!defect(ErrorCode::kNonFinite, "non-finite time: " + field,
                    true)) {
          ++rep.rows_skipped;
          continue;
        }
        t.time = 0.0;
        repaired = true;
      }
      if (!extract_field(line, "text", field)) {
        if (!defect(ErrorCode::kMissingField, "missing field \"text\"",
                    true)) {
          ++rep.rows_skipped;
          continue;
        }
        field.clear();
        repaired = true;
      }
      t.text = field;
      if (extract_field(line, "parent", field)) {
        if (!try_parse_u32(field, &t.parent)) {
          if (!defect(ErrorCode::kBadNumber, "bad parent: " + field,
                      true)) {
            ++rep.rows_skipped;
            continue;
          }
          t.parent = Tweet::kNoParent;  // repair: treat as original
          repaired = true;
        }
      }
      if (repaired) ++rep.rows_repaired;
      else ++rep.rows_ok;
      tweets.push_back(std::move(t));
    }
  } catch (const TaxonomyError& e) {
    return Error{e.code(), e.what()};
  }
  return tweets;
}

void save_assertion_labels(const std::vector<Label>& labels,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_assertion_labels: cannot write " +
                             path);
  }
  out << "assertion,label\n";
  for (std::size_t k = 0; k < labels.size(); ++k) {
    out << k << ',' << label_name(labels[k]) << '\n';
  }
}

void save_tweet_labels(const std::vector<Tweet>& tweets,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_tweet_labels: cannot write " + path);
  }
  out << "tweet,label\n";
  for (const Tweet& t : tweets) {
    out << t.id << ',' << label_name(t.hidden_label) << '\n';
  }
}

std::unordered_map<std::uint32_t, Label> load_tweet_labels(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_tweet_labels: cannot read " + path);
  }
  std::unordered_map<std::uint32_t, Label> labels;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    auto fields = csv_parse_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("load_tweet_labels: bad row " + line);
    }
    Label label = Label::kUnknown;
    if (fields[1] == "True") label = Label::kTrue;
    else if (fields[1] == "False") label = Label::kFalse;
    else if (fields[1] == "Opinion") label = Label::kOpinion;
    labels[static_cast<std::uint32_t>(std::stoul(fields[0]))] = label;
  }
  return labels;
}

std::vector<Label> load_assertion_labels(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_assertion_labels: cannot read " +
                             path);
  }
  std::vector<Label> labels;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    auto fields = csv_parse_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("load_assertion_labels: bad row " + line);
    }
    std::size_t k = std::stoull(fields[0]);
    if (labels.size() <= k) labels.resize(k + 1, Label::kUnknown);
    if (fields[1] == "True") labels[k] = Label::kTrue;
    else if (fields[1] == "False") labels[k] = Label::kFalse;
    else if (fields[1] == "Opinion") labels[k] = Label::kOpinion;
    else labels[k] = Label::kUnknown;
  }
  return labels;
}

}  // namespace ss
