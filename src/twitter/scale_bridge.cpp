#include "twitter/scale_bridge.h"

namespace ss {

ScaleKnobs cascade_knobs(const ScaleCascadeSpec& spec) {
  ScaleKnobs knobs;
  knobs.sources = spec.users;
  knobs.assertions = spec.assertions;
  knobs.community_lo = spec.community_lo;
  knobs.community_hi = spec.community_hi;
  knobs.root_fraction = spec.verified_fraction;
  knobs.follow_bias = spec.hub_bias;
  knobs.time_model = ScaleTimeModel::kBurst;
  knobs.burst_hours = spec.burst_hours;
  knobs.hop_mean_hours = spec.hop_mean_hours;
  knobs.name = spec.name;
  return knobs;
}

ScaleStats write_cascade_ssd(const ScaleCascadeSpec& spec,
                             std::uint64_t seed, const std::string& path) {
  return generate_scale_ssd(cascade_knobs(spec), seed, path);
}

}  // namespace ss
