#include "twitter/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "math/discrete_sampler.h"
#include "twitter/text.h"
#include "util/log.h"
#include "util/string_util.h"

namespace ss {
namespace {

struct AssertionInfo {
  Label label;
  std::string canonical;
  double popularity;  // unnormalized sampling weight
};

}  // namespace

TwitterSimulation simulate_twitter(const TwitterScenario& scenario,
                                   std::uint64_t seed) {
  Rng rng(seed, /*stream=*/0x712);
  TwitterSimulation sim;
  sim.scenario = scenario;
  sim.follows = make_preferential_attachment(scenario.graph, rng);

  // Hidden assertion inventory with Zipf popularity.
  std::size_t total_assertions =
      scenario.true_facts + scenario.false_rumours + scenario.opinions;
  TweetTextGenerator text_gen(scenario.topic_words, seed ^ 0x7357);
  std::vector<AssertionInfo> assertions;
  assertions.reserve(total_assertions);
  sim.assertion_labels.reserve(total_assertions);
  for (std::size_t k = 0; k < total_assertions; ++k) {
    Label label = k < scenario.true_facts ? Label::kTrue
                  : k < scenario.true_facts + scenario.false_rumours
                      ? Label::kFalse
                      : Label::kOpinion;
    AssertionInfo info;
    info.label = label;
    info.canonical = text_gen.make_canonical(k, label == Label::kOpinion);
    assertions.push_back(std::move(info));
    sim.assertion_labels.push_back(label);
  }
  // Popularity ranks are shuffled so label blocks don't correlate with
  // popularity; rumour virality is modelled separately.
  {
    std::vector<std::size_t> rank(total_assertions);
    for (std::size_t k = 0; k < total_assertions; ++k) rank[k] = k;
    rng.shuffle(rank);
    for (std::size_t k = 0; k < total_assertions; ++k) {
      assertions[k].popularity = 1.0 / std::pow(
          static_cast<double>(rank[k] + 1), scenario.popularity_exponent);
    }
  }
  // Cumulative weights for popularity sampling.
  std::vector<double> cum(total_assertions);
  double acc = 0.0;
  for (std::size_t k = 0; k < total_assertions; ++k) {
    acc += assertions[k].popularity;
    cum[k] = acc;
  }
  // Unclaimed false assertions, for rumour invention: a fresh rumour has
  // exactly one originator; its support can then only grow by echoes.
  std::vector<std::size_t> fresh_rumours;
  for (std::size_t k = 0; k < total_assertions; ++k) {
    if (assertions[k].label == Label::kFalse) fresh_rumours.push_back(k);
  }
  rng.shuffle(fresh_rumours);

  auto sample_assertion_with_label = [&](bool want_true,
                                         bool want_opinion) -> std::size_t {
    // Rejection-sample popularity-weighted assertions until the label
    // class matches; class frequencies make this terminate quickly.
    for (std::size_t tries = 0; tries < 256; ++tries) {
      double r = rng.uniform() * acc;
      std::size_t k = static_cast<std::size_t>(
          std::lower_bound(cum.begin(), cum.end(), r) - cum.begin());
      if (k >= total_assertions) k = total_assertions - 1;
      Label l = assertions[k].label;
      if (want_opinion) {
        if (l == Label::kOpinion) return k;
      } else if (want_true) {
        if (l == Label::kTrue) return k;
      } else {
        if (l == Label::kFalse) return k;
      }
    }
    // Degenerate scenario (e.g. zero rumours): fall back to any index of
    // the wanted class by linear scan.
    for (std::size_t k = 0; k < total_assertions; ++k) {
      Label l = assertions[k].label;
      if ((want_opinion && l == Label::kOpinion) ||
          (!want_opinion && want_true && l == Label::kTrue) ||
          (!want_opinion && !want_true && l == Label::kFalse)) {
        return k;
      }
    }
    return 0;
  };

  // Per-user hidden reliability: bimodal mixture (see scenario docs).
  std::vector<double> reliability(scenario.users);
  for (double& r : reliability) {
    bool unreliable = rng.bernoulli(scenario.unreliable_fraction);
    double mean = unreliable ? scenario.unreliable_mean
                             : scenario.reliability_mean;
    double stddev = unreliable ? scenario.unreliable_stddev
                               : scenario.reliability_stddev;
    r = std::clamp(rng.normal(mean, stddev), 0.02, 0.98);
  }

  // Original tweets: authors drawn Zipf over users (heavy-tailed
  // activity), timestamps uniform over the event window, then sorted.
  struct Seed {
    std::uint32_t user;
    double time;
  };
  DiscreteSampler author_sampler = DiscreteSampler::zipf(
      scenario.users, scenario.activity_exponent);
  std::vector<Seed> seeds(scenario.seed_tweets);
  for (auto& s : seeds) {
    s.user = static_cast<std::uint32_t>(author_sampler.sample(rng));
    s.time = rng.uniform(0.0, scenario.duration_hours);
  }
  std::sort(seeds.begin(), seeds.end(),
            [](const Seed& x, const Seed& y) { return x.time < y.time; });

  // Emit originals and breadth-first retweet cascades.
  std::uint32_t next_id = 0;
  std::deque<std::uint32_t> cascade;  // tweet ids pending propagation
  auto propagate = [&](std::uint32_t tweet_id) {
    cascade.push_back(tweet_id);
    while (!cascade.empty()) {
      std::uint32_t cur_id = cascade.front();
      cascade.pop_front();
      // Copy the fields needed before push_back can reallocate.
      const Tweet cur = sim.tweets[cur_id];
      const AssertionInfo& info = assertions[cur.hidden_assertion];
      double rate = scenario.retweet_rate;
      if (info.label == Label::kFalse) rate *= scenario.rumour_virality;
      for (std::size_t follower : sim.follows.followers(cur.user)) {
        if (!rng.bernoulli(rate)) continue;
        Tweet rt;
        rt.id = next_id++;
        rt.user = static_cast<std::uint32_t>(follower);
        rt.time = cur.time + rng.uniform(0.02, 1.5);  // minutes to ~1.5h
        rt.text = TweetTextGenerator::make_retweet(
            cur.text, strprintf("user%u", cur.user));
        rt.parent = cur.id;
        rt.hidden_assertion = cur.hidden_assertion;
        rt.hidden_label = cur.hidden_label;
        sim.tweets.push_back(rt);
        cascade.push_back(rt.id);
      }
    }
  };

  for (const Seed& s : seeds) {
    bool opinion = rng.bernoulli(scenario.opinion_rate);
    bool truthful = rng.bernoulli(reliability[s.user]);
    std::size_t k;
    if (!opinion && !truthful && !fresh_rumours.empty() &&
        rng.bernoulli(scenario.rumour_invention)) {
      k = fresh_rumours.back();
      fresh_rumours.pop_back();
    } else {
      k = sample_assertion_with_label(truthful, opinion);
    }
    Tweet t;
    t.id = next_id++;
    t.user = s.user;
    t.time = s.time;
    t.text = text_gen.make_variant(assertions[k].canonical, rng);
    t.hidden_assertion = static_cast<std::uint32_t>(k);
    t.hidden_label = assertions[k].label;
    sim.tweets.push_back(t);
    propagate(t.id);
  }

  std::stable_sort(sim.tweets.begin(), sim.tweets.end(),
                   [](const Tweet& x, const Tweet& y) {
                     return x.time < y.time;
                   });
  SS_DEBUG << "simulate_twitter(" << scenario.name << "): "
           << sim.tweets.size() << " tweets over " << scenario.users
           << " users";
  return sim;
}

}  // namespace ss
