#include "twitter/retweet_detect.h"

#include <stdexcept>
#include <unordered_map>

#include "util/string_util.h"

namespace ss {

bool parse_retweet_text(const std::string& text, std::string& name,
                        std::string& body) {
  if (!starts_with(text, "RT @")) return false;
  auto colon = text.find(": ", 4);
  if (colon == std::string::npos || colon == 4) return false;
  name = text.substr(4, colon - 4);
  body = text.substr(colon + 2);
  return !name.empty();
}

std::string username_of(std::uint32_t user) {
  return strprintf("user%u", user);
}

RetweetDetectionResult detect_retweet_parents(
    std::vector<Tweet>& tweets) {
  RetweetDetectionResult result;
  // (author name, exact text) -> id of the earliest tweet with that
  // content. Keys are built lazily as tweets arrive so only earlier
  // tweets are candidates — timestamps enforce causality for free.
  std::unordered_map<std::string, std::uint32_t> earliest;
  for (Tweet& t : tweets) {
    std::string name;
    std::string body;
    if (parse_retweet_text(t.text, name, body)) {
      ++result.retweets_seen;
      auto it = earliest.find(name + "\x1f" + body);
      if (it != earliest.end()) {
        t.parent = it->second;
        ++result.parents_resolved;
      } else {
        t.parent = Tweet::kNoParent;
      }
    } else {
      t.parent = Tweet::kNoParent;
    }
    // Register this tweet's own content (retweets too: a retweet can be
    // re-retweeted with the RT prefix chained by this tweet's author).
    earliest.emplace(username_of(t.user) + "\x1f" + t.text, t.id);
  }
  return result;
}

Digraph infer_dependency_network(const std::vector<Tweet>& tweets,
                                 std::size_t user_count) {
  std::unordered_map<std::uint32_t, std::uint32_t> author_of;
  for (const Tweet& t : tweets) {
    if (t.user >= user_count) {
      throw std::invalid_argument(
          "infer_dependency_network: user id out of range");
    }
    author_of.emplace(t.id, t.user);
  }
  Digraph follows(user_count);
  for (const Tweet& t : tweets) {
    if (!t.is_retweet()) continue;
    auto it = author_of.find(t.parent);
    if (it == author_of.end()) continue;
    follows.add_edge(t.user, it->second);
  }
  return follows;
}

}  // namespace ss
