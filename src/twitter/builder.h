// Ingestion: raw tweet stream -> fact-finding Dataset.
//
// Maps active users to source ids and tweet clusters to assertion ids,
// builds the source-claim matrix (earliest claim per user/assertion
// cell), restricts the follower graph to active users, and derives the
// dependency indicators from follow edges + timestamps exactly as the
// paper defines them: a claim is dependent iff a followed user asserted
// the same thing earlier.
#pragma once

#include "data/dataset.h"
#include "twitter/clustering.h"
#include "twitter/simulator.h"

namespace ss {

struct BuiltDataset {
  Dataset dataset;
  // source id -> original user id (sources are active users only).
  std::vector<std::uint32_t> user_of_source;
  // The follow graph restricted to active sources (the graph the
  // dependency indicators were derived from).
  Digraph follows;
  ClusteringResult clustering;
};

BuiltDataset build_dataset(const TwitterSimulation& sim,
                           const ClusteringConfig& config = {});

// End-to-end convenience: simulate + cluster + build.
BuiltDataset make_twitter_dataset(const TwitterScenario& scenario,
                                  std::uint64_t seed,
                                  const ClusteringConfig& config = {});

// Ingestion for *external* tweet streams (e.g. loaded from JSONL): no
// parent pointers and no follower graph are assumed. Retweet parents
// are resolved from the "RT @name: body" convention and the dependency
// network is inferred from retweet behaviour, exactly as the paper's
// empirical pipeline does. `user_count` bounds user ids (0 = derive
// from the stream). Tweets are re-sorted by time.
BuiltDataset build_dataset_from_stream(std::vector<Tweet> tweets,
                                       std::size_t user_count = 0,
                                       const ClusteringConfig& config = {});

}  // namespace ss
