// Assertion extraction: clustering near-duplicate tweets.
//
// The Apollo pipeline turns free-text tweets into assertion columns by
// grouping tweets that say the same thing. Retweets join their parent's
// cluster directly (the text is verbatim); original tweets are clustered
// by token-set Jaccard similarity using a greedy single-pass scheme with
// an inverted token index for candidate generation, so the pass stays
// near-linear in total token count even at Paris-Attack scale.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "twitter/simulator.h"

namespace ss {

class BinReader;
class BinWriter;

struct ClusteringConfig {
  // Minimum Jaccard similarity to join an existing cluster.
  double jaccard_threshold = 0.5;
  // Candidate clusters examined per tweet (most-overlapping first).
  std::size_t max_candidates = 8;
  // Index lists longer than this are skipped during candidate lookup:
  // a token shared by thousands of clusters (a topic word) carries no
  // discriminating signal, and walking its list per tweet would turn
  // the pass quadratic at Paris-Attack scale. Rare tokens — in
  // particular each assertion's entity tokens — stay below the cap.
  std::size_t max_token_fanout = 64;
};

struct ClusteringResult {
  // cluster id per tweet, aligned with the input tweet vector.
  std::vector<std::uint32_t> cluster_of;
  std::size_t cluster_count = 0;

  // Majority hidden label per cluster — the "ground truth" a human
  // grader would assign to the assertion.
  std::vector<Label> cluster_labels;
  // Fraction of tweets whose hidden assertion agrees with their
  // cluster's majority hidden assertion (clustering quality diagnostic).
  double purity = 0.0;
};

ClusteringResult cluster_tweets(const std::vector<Tweet>& tweets,
                                const ClusteringConfig& config = {});

// Online form of the same algorithm: feed tweets in arrival order (live
// pipelines); cluster ids are stable once assigned. cluster_tweets is a
// thin wrapper over this class.
class IncrementalClusterer {
 public:
  explicit IncrementalClusterer(ClusteringConfig config = {});

  // Assigns the tweet to an existing or fresh cluster and returns its
  // cluster id. Retweets (parent set and previously seen) join their
  // parent's cluster directly.
  std::uint32_t add(const Tweet& tweet);

  std::size_t cluster_count() const { return cluster_tokens_.size(); }
  std::size_t tweets_seen() const { return position_of_.size(); }

  // Bit-exact state round-trip via the checkpoint binary codec. Maps
  // are serialized in sorted-key order (canonical bytes: two clusterers
  // with equal state serialize identically); the inverted token index
  // is rebuilt on load by replaying clusters in id order, which
  // reproduces the original postings-list order exactly. Config is the
  // caller's responsibility, as everywhere else in the codebase.
  void save_state(BinWriter& writer) const;
  void load_state(BinReader& reader);

 private:
  std::uint32_t assign_by_text(const Tweet& tweet);

  ClusteringConfig config_;
  std::vector<std::vector<std::string>> cluster_tokens_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> index_;
  std::unordered_map<std::uint32_t, std::uint32_t> cluster_of_id_;
  std::unordered_map<std::uint32_t, std::size_t> position_of_;
};

}  // namespace ss
