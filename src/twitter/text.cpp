#include "twitter/text.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace ss {
namespace {

const char* const kFillerWords[] = {
    "breaking", "just",  "now",   "report", "update", "confirmed",
    "witness",  "photo", "video", "live",   "alert",  "developing",
};
constexpr std::size_t kFillerCount =
    sizeof(kFillerWords) / sizeof(kFillerWords[0]);

const char* const kOpinionWords[] = {
    "think", "believe", "hope", "pray", "feel", "should", "must",
};
constexpr std::size_t kOpinionCount =
    sizeof(kOpinionWords) / sizeof(kOpinionWords[0]);

}  // namespace

std::vector<std::string> tokenize_tweet(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      if (current != "rt" && current[0] != '@') {
        tokens.push_back(current);
      }
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) || raw == '@' || raw == '#') {
      current += static_cast<char>(std::tolower(c));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

TweetTextGenerator::TweetTextGenerator(std::vector<std::string> topic_words,
                                       std::uint64_t seed)
    : topic_words_(std::move(topic_words)), rng_(seed, /*stream=*/0x7e7) {}

std::string TweetTextGenerator::make_canonical(std::size_t assertion_id,
                                               bool opinion) {
  // 4-6 topic words + 2 unique entity tokens guarantee every canonical
  // text shares < 50% of its tokens with any other assertion's text.
  std::vector<std::string> words;
  std::size_t topic_count = 4 + rng_.uniform_u32(3);
  for (std::size_t k = 0; k < topic_count; ++k) {
    words.push_back(topic_words_[rng_.uniform_u32(
        static_cast<std::uint32_t>(topic_words_.size()))]);
  }
  if (opinion) {
    words.push_back(kOpinionWords[rng_.uniform_u32(kOpinionCount)]);
  }
  words.push_back(strprintf("entity%zua", assertion_id));
  words.push_back(strprintf("entity%zub", assertion_id));
  rng_.shuffle(words);
  return join(words, " ");
}

std::string TweetTextGenerator::make_variant(const std::string& canonical,
                                             Rng& rng) const {
  std::vector<std::string> tokens = split(canonical, ' ');
  // Drop one non-entity token half the time.
  if (tokens.size() > 4 && rng.bernoulli(0.5)) {
    std::size_t idx = rng.uniform_u32(
        static_cast<std::uint32_t>(tokens.size()));
    if (!starts_with(tokens[idx], "entity")) {
      tokens.erase(tokens.begin() + static_cast<long>(idx));
    }
  }
  std::size_t extra = rng.uniform_u32(3);
  for (std::size_t k = 0; k < extra; ++k) {
    tokens.push_back(kFillerWords[rng.uniform_u32(kFillerCount)]);
  }
  return join(tokens, " ");
}

std::string TweetTextGenerator::make_retweet(const std::string& original,
                                             const std::string& username) {
  return "RT @" + username + ": " + original;
}

}  // namespace ss
