// Twitter event simulator.
//
// Produces a raw tweet stream over a preferential-attachment follower
// graph. Original tweets are authored according to each user's (hidden)
// reliability and the assertion popularity distribution; every tweet then
// cascades: each follower of the author retweets independently with the
// scenario's retweet rate (scaled up for rumours), recursively, giving the
// long-tailed cascade structure that creates correlated errors — the
// phenomenon the paper's dependency model addresses.
//
// The hidden assertion id and label carried by each tweet are ground
// truth for grading only; the ingestion pipeline (clustering + dependency
// extraction) never reads them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/digraph.h"
#include "twitter/scenario.h"
#include "util/rng.h"

namespace ss {

struct Tweet {
  std::uint32_t id = 0;
  std::uint32_t user = 0;
  double time = 0.0;  // hours since event start
  std::string text;
  // id of the retweeted tweet, or kNoParent for originals.
  std::uint32_t parent = kNoParent;

  // Ground truth (hidden from the pipeline).
  std::uint32_t hidden_assertion = 0;
  Label hidden_label = Label::kUnknown;

  static constexpr std::uint32_t kNoParent = 0xffffffffu;
  bool is_retweet() const { return parent != kNoParent; }
};

struct TwitterSimulation {
  TwitterScenario scenario;
  Digraph follows;            // over all scenario.users
  std::vector<Tweet> tweets;  // time-ordered
  // Hidden label per assertion id.
  std::vector<Label> assertion_labels;
};

TwitterSimulation simulate_twitter(const TwitterScenario& scenario,
                                   std::uint64_t seed);

}  // namespace ss
