#include "twitter/builder.h"

#include <algorithm>
#include <unordered_map>

#include "twitter/retweet_detect.h"

namespace ss {

BuiltDataset build_dataset(const TwitterSimulation& sim,
                           const ClusteringConfig& config) {
  BuiltDataset out;
  out.clustering = cluster_tweets(sim.tweets, config);

  // Active users -> dense source ids (Table III counts sources that
  // actually tweeted, not the full user universe).
  std::unordered_map<std::uint32_t, std::uint32_t> source_of_user;
  for (const Tweet& t : sim.tweets) {
    if (source_of_user.emplace(t.user, 0).second) {
      out.user_of_source.push_back(t.user);
    }
  }
  std::sort(out.user_of_source.begin(), out.user_of_source.end());
  for (std::size_t s = 0; s < out.user_of_source.size(); ++s) {
    source_of_user[out.user_of_source[s]] = static_cast<std::uint32_t>(s);
  }

  std::size_t n = out.user_of_source.size();
  std::size_t m = out.clustering.cluster_count;

  // Claims: earliest tweet per (source, cluster) — SourceClaimMatrix
  // deduplicates keeping the smallest timestamp.
  std::vector<Claim> claims;
  claims.reserve(sim.tweets.size());
  for (std::size_t t = 0; t < sim.tweets.size(); ++t) {
    const Tweet& tweet = sim.tweets[t];
    claims.push_back({source_of_user.at(tweet.user),
                      out.clustering.cluster_of[t], tweet.time});
  }

  // Follower graph restricted to active users.
  out.follows = Digraph(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::uint32_t user = out.user_of_source[s];
    for (std::size_t followee : sim.follows.following(user)) {
      auto it = source_of_user.find(static_cast<std::uint32_t>(followee));
      if (it != source_of_user.end()) {
        out.follows.add_edge(s, it->second);
      }
    }
  }

  out.dataset.name = sim.scenario.name;
  out.dataset.claims = SourceClaimMatrix(n, m, claims);
  out.dataset.dependency =
      DependencyIndicators::from_graph(out.dataset.claims, out.follows);
  out.dataset.truth = out.clustering.cluster_labels;
  out.dataset.validate();
  return out;
}

BuiltDataset make_twitter_dataset(const TwitterScenario& scenario,
                                  std::uint64_t seed,
                                  const ClusteringConfig& config) {
  TwitterSimulation sim = simulate_twitter(scenario, seed);
  return build_dataset(sim, config);
}

BuiltDataset build_dataset_from_stream(std::vector<Tweet> tweets,
                                       std::size_t user_count,
                                       const ClusteringConfig& config) {
  // Deterministic (time, id) order so callers can reproduce the
  // tweet-index alignment of the returned clustering.
  std::sort(tweets.begin(), tweets.end(),
            [](const Tweet& a, const Tweet& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.id < b.id;
            });
  if (user_count == 0) {
    for (const Tweet& t : tweets) {
      user_count = std::max<std::size_t>(user_count, t.user + 1);
    }
  }
  detect_retweet_parents(tweets);
  TwitterSimulation sim;
  sim.scenario.name = "external-stream";
  sim.scenario.users = user_count;
  sim.follows = infer_dependency_network(tweets, user_count);
  sim.tweets = std::move(tweets);
  return build_dataset(sim, config);
}

}  // namespace ss
