// Synthetic tweet text.
//
// The empirical pipeline must demonstrate the full ingestion path the
// paper's Apollo tool implements: free-text tweets arrive, near-duplicate
// texts are clustered into assertions, and the clusters become the
// columns of the source-claim matrix. To exercise that path without the
// (unavailable) 2015 crawls, each hidden assertion gets a canonical
// token sequence built from event-specific vocabulary plus two unique
// entity tokens; individual tweets emit noisy variants (dropped/extra
// filler tokens) and retweets copy their parent verbatim with an
// "RT @user:" prefix — the signal the dependency extractor keys on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ss {

// Lowercases, strips punctuation, splits on whitespace, removes the
// "rt" marker and @mentions. The clustering operates on these tokens.
std::vector<std::string> tokenize_tweet(const std::string& text);

class TweetTextGenerator {
 public:
  // `topic_words`: event-specific vocabulary (e.g. {"kirkuk","isis",...}).
  TweetTextGenerator(std::vector<std::string> topic_words,
                     std::uint64_t seed);

  // Canonical text for a new hidden assertion; successive calls create
  // distinct assertions (unique entity tokens keep clusters separable).
  std::string make_canonical(std::size_t assertion_id, bool opinion);

  // A noisy restatement of a canonical text: drops up to one content
  // token and appends 0-2 filler tokens.
  std::string make_variant(const std::string& canonical, Rng& rng) const;

  // The verbatim retweet form.
  static std::string make_retweet(const std::string& original,
                                  const std::string& username);

 private:
  std::vector<std::string> topic_words_;
  Rng rng_;
};

}  // namespace ss
