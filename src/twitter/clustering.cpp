#include "twitter/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "twitter/text.h"
#include "util/checkpoint.h"
#include "util/log.h"

namespace ss {
namespace {

double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  // Inputs are sorted unique token lists.
  std::size_t inter = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) /
                              static_cast<double>(uni);
}

std::vector<std::string> sorted_tokens(const std::string& text) {
  auto tokens = tokenize_tweet(text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(ClusteringConfig config)
    : config_(config) {}

std::uint32_t IncrementalClusterer::assign_by_text(const Tweet& tweet) {
  auto tokens = sorted_tokens(tweet.text);

  // Candidate clusters ranked by shared-token count; very common tokens
  // are skipped (see ClusteringConfig::max_token_fanout).
  std::unordered_map<std::uint32_t, std::size_t> overlap;
  for (const auto& tok : tokens) {
    auto it = index_.find(tok);
    if (it == index_.end()) continue;
    if (it->second.size() > config_.max_token_fanout) continue;
    for (std::uint32_t c : it->second) ++overlap[c];
  }
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
  ranked.reserve(overlap.size());
  for (const auto& [c, count] : overlap) ranked.emplace_back(count, c);
  std::sort(ranked.rbegin(), ranked.rend());

  std::uint32_t best_cluster = 0;
  double best_sim = 0.0;
  std::size_t examined = 0;
  for (const auto& [count, c] : ranked) {
    if (examined++ >= config_.max_candidates) break;
    double sim = jaccard(tokens, cluster_tokens_[c]);
    if (sim > best_sim) {
      best_sim = sim;
      best_cluster = c;
    }
  }
  if (best_sim >= config_.jaccard_threshold) return best_cluster;

  // New cluster keyed by this tweet's token set.
  auto c = static_cast<std::uint32_t>(cluster_tokens_.size());
  for (const auto& tok : tokens) index_[tok].push_back(c);
  cluster_tokens_.push_back(std::move(tokens));
  return c;
}

std::uint32_t IncrementalClusterer::add(const Tweet& tweet) {
  std::uint32_t cluster;
  auto parent_pos = tweet.is_retweet()
                        ? cluster_of_id_.find(tweet.parent)
                        : cluster_of_id_.end();
  if (parent_pos != cluster_of_id_.end()) {
    cluster = parent_pos->second;
  } else {
    // Original, or orphaned retweet: fall back to the text path.
    cluster = assign_by_text(tweet);
  }
  position_of_.emplace(tweet.id, position_of_.size());
  cluster_of_id_[tweet.id] = cluster;
  return cluster;
}

namespace {

// Canonical (sorted-key) serialization of an unordered u32 -> u64 map.
template <typename Map>
void save_u32_map(BinWriter& writer, const Map& map) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> entries;
  entries.reserve(map.size());
  for (const auto& [k, v] : map) {
    entries.emplace_back(k, static_cast<std::uint64_t>(v));
  }
  std::sort(entries.begin(), entries.end());
  writer.u64(entries.size());
  for (const auto& [k, v] : entries) {
    writer.u64(k);
    writer.u64(v);
  }
}

template <typename Map>
void load_u32_map(BinReader& reader, Map& map) {
  map.clear();
  std::uint64_t n = reader.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k = reader.u64();
    std::uint64_t v = reader.u64();
    map.emplace(static_cast<std::uint32_t>(k),
                static_cast<typename Map::mapped_type>(v));
  }
}

}  // namespace

void IncrementalClusterer::save_state(BinWriter& writer) const {
  writer.u64(cluster_tokens_.size());
  for (const auto& tokens : cluster_tokens_) {
    writer.u64(tokens.size());
    for (const auto& tok : tokens) writer.str(tok);
  }
  save_u32_map(writer, cluster_of_id_);
  save_u32_map(writer, position_of_);
}

void IncrementalClusterer::load_state(BinReader& reader) {
  std::uint64_t clusters = reader.u64();
  cluster_tokens_.clear();
  cluster_tokens_.reserve(clusters);
  index_.clear();
  for (std::uint64_t c = 0; c < clusters; ++c) {
    std::uint64_t count = reader.u64();
    std::vector<std::string> tokens;
    tokens.reserve(count);
    for (std::uint64_t t = 0; t < count; ++t) {
      tokens.push_back(reader.str());
    }
    // Replaying clusters in id order rebuilds every postings list in
    // its original order.
    for (const auto& tok : tokens) {
      index_[tok].push_back(static_cast<std::uint32_t>(c));
    }
    cluster_tokens_.push_back(std::move(tokens));
  }
  load_u32_map(reader, cluster_of_id_);
  load_u32_map(reader, position_of_);
}

ClusteringResult cluster_tweets(const std::vector<Tweet>& tweets,
                                const ClusteringConfig& config) {
  ClusteringResult result;
  result.cluster_of.resize(tweets.size());

  IncrementalClusterer clusterer(config);
  for (std::size_t t = 0; t < tweets.size(); ++t) {
    result.cluster_of[t] = clusterer.add(tweets[t]);
  }
  result.cluster_count = clusterer.cluster_count();

  // Majority hidden assertion / label per cluster, plus purity.
  std::vector<std::unordered_map<std::uint32_t, std::size_t>> votes(
      result.cluster_count);
  for (std::size_t t = 0; t < tweets.size(); ++t) {
    ++votes[result.cluster_of[t]][tweets[t].hidden_assertion];
  }
  std::vector<std::uint32_t> majority(result.cluster_count, 0);
  result.cluster_labels.assign(result.cluster_count, Label::kUnknown);
  std::size_t agree = 0;
  for (std::size_t c = 0; c < result.cluster_count; ++c) {
    std::size_t best = 0;
    for (const auto& [assertion, count] : votes[c]) {
      if (count > best) {
        best = count;
        majority[c] = assertion;
      }
    }
  }
  for (std::size_t t = 0; t < tweets.size(); ++t) {
    std::uint32_t c = result.cluster_of[t];
    if (tweets[t].hidden_assertion == majority[c]) {
      ++agree;
      result.cluster_labels[c] = tweets[t].hidden_label;
    }
  }
  result.purity = tweets.empty()
                      ? 1.0
                      : static_cast<double>(agree) /
                            static_cast<double>(tweets.size());
  SS_DEBUG << "cluster_tweets: " << tweets.size() << " tweets -> "
           << result.cluster_count << " clusters, purity "
           << result.purity;
  return result;
}

}  // namespace ss
