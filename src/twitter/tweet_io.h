// Raw tweet-stream persistence (JSONL).
//
// One JSON object per line: {"id":..,"user":..,"time":..,"text":"..",
// "parent":..}. `parent` is omitted for originals. Ground-truth fields
// are intentionally NOT serialized — a stored stream looks exactly like
// crawled data, so the ingestion pipeline (clustering, retweet
// detection, dependency extraction) can be exercised on files the same
// way Apollo consumed crawler output. A sidecar labels file carries the
// hidden assertion labels for grading when the stream came from the
// simulator.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "twitter/simulator.h"
#include "util/status.h"

namespace ss {

// Writes tweets as JSONL. Throws std::runtime_error on IO failure.
void save_tweets(const std::vector<Tweet>& tweets,
                 const std::string& path);

// In-memory forms of the same format. The deterministic simulation
// (src/sim/stream.*) serializes each batch, corrupts the bytes "on the
// wire", and re-parses through the ordinary repair path — no filesystem
// involved. `origin` stands in for the path in defect locations.
std::string tweets_to_jsonl(const std::vector<Tweet>& tweets);
Expected<std::vector<Tweet>> parse_tweets_jsonl(
    const std::string& text, const std::string& origin,
    const IngestOptions& options = {}, IngestReport* report = nullptr);

// Reads a JSONL tweet stream written by save_tweets (hidden fields come
// back as kUnknown / 0). Throws std::runtime_error on parse errors
// (strict mode).
std::vector<Tweet> load_tweets(const std::string& path);

// Mode-aware load (util/status.h). Crawled streams carry truncated and
// mangled lines; kPermissive skips and counts them per line, kRepair
// additionally keeps records whose only defect has an unambiguous fix:
// non-finite or unparseable time -> 0.0, missing text -> "", bad
// "parent" value -> original (no parent). Records without a usable id
// or user are always skipped — identity cannot be invented.
std::vector<Tweet> load_tweets(const std::string& path,
                               const IngestOptions& options,
                               IngestReport* report = nullptr);

// Non-throwing variant: IO-level and strict-mode failures come back as
// a classified Error instead of an exception.
[[nodiscard]] Expected<std::vector<Tweet>> try_load_tweets(
    const std::string& path, const IngestOptions& options = {},
    IngestReport* report = nullptr);

// Sidecar grading labels: "assertion_id,label" CSV.
void save_assertion_labels(const std::vector<Label>& labels,
                           const std::string& path);
std::vector<Label> load_assertion_labels(const std::string& path);

// Per-tweet grading labels ("tweet_id,label" CSV) — the shape human
// grading takes in the paper's protocol. Keyed by tweet id so the file
// survives any reordering of the stream.
void save_tweet_labels(const std::vector<Tweet>& tweets,
                       const std::string& path);
std::unordered_map<std::uint32_t, Label> load_tweet_labels(
    const std::string& path);

}  // namespace ss
