// Retweet detection and dependency-network inference from raw text.
//
// External tweet streams carry no parent pointers and no follower graph.
// The paper's empirical pipeline derives both from behaviour: a tweet of
// the form "RT @name: body" repeats an earlier tweet by `name` with the
// same body, and a source that retweets another is taken to depend on it
// ("a link indicated that a source tends to repeat claims of another",
// Section I). These helpers reconstruct exactly that: parent resolution
// by (author, body) matching with timestamps, and a follows-graph whose
// edge u -> v means "u retweeted v at least once".
#pragma once

#include <cstddef>
#include <string>

#include "graph/digraph.h"
#include "twitter/simulator.h"

namespace ss {

// Splits "RT @name: body" into (name, body). Returns false when the
// text is not a retweet form.
bool parse_retweet_text(const std::string& text, std::string& name,
                        std::string& body);

// The username convention used by the simulator's retweet texts.
std::string username_of(std::uint32_t user);

struct RetweetDetectionResult {
  std::size_t retweets_seen = 0;      // texts in RT form
  std::size_t parents_resolved = 0;   // matched to an earlier tweet
};

// Fills Tweet::parent for every tweet whose text matches an earlier
// tweet "RT @name: body" (earliest matching original wins). Existing
// parent pointers are overwritten; unresolved retweets keep kNoParent.
// Tweets must be time-sorted.
RetweetDetectionResult detect_retweet_parents(std::vector<Tweet>& tweets);

// Dependency network from retweet behaviour: edge u -> v ("u depends on
// v") for every resolved retweet by u of a tweet authored by v.
// `user_count` sizes the graph (user ids must be < user_count).
Digraph infer_dependency_network(const std::vector<Tweet>& tweets,
                                 std::size_t user_count);

}  // namespace ss
