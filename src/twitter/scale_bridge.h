// Twitter-shaped front end of the streaming scale generator.
//
// The full Twitter simulator (simulator.h) synthesizes tweets, text,
// and retweet timing for scenario-scale studies; it materializes
// everything and tops out far below 10^6 users. This bridge maps a
// Twitter-flavoured spec onto simgen's streaming generator
// (simgen/scale_gen.h) so follower-graph cascade datasets of a million
// accounts stream straight into an .ssd file: verified accounts play
// the independent roots, everyone else retweets what their followee
// posted, and timestamps are event-style hours (burst window + per-hop
// exponential delays) like the simulator's cascades.
#pragma once

#include <cstdint>
#include <string>

#include "simgen/scale_gen.h"

namespace ss {

struct ScaleCascadeSpec {
  std::size_t users = 1'000'000;
  std::size_t assertions = 100'000;
  std::size_t community_lo = 128;  // accounts per community
  std::size_t community_hi = 512;
  double verified_fraction = 0.05;  // independent accounts per community
  double hub_bias = 2.0;            // follower-graph hub formation
  double burst_hours = 48.0;        // event window for original posts
  double hop_mean_hours = 0.5;      // mean retweet delay per hop
  std::string name = "twitter-scale";
};

// Expands the spec into ScaleKnobs (kBurst time model, paper behaviour
// ranges) — exposed so tools can report the effective knobs.
ScaleKnobs cascade_knobs(const ScaleCascadeSpec& spec);

// Streams the cascade dataset into `path` (atomic commit).
ScaleStats write_cascade_ssd(const ScaleCascadeSpec& spec,
                             std::uint64_t seed, const std::string& path);

}  // namespace ss
