// The EM-Ext outer driver, shared by the flat and sharded engines.
//
// em_ext.cpp's original run_detailed mixed two concerns: the numerical
// E/M iteration (engine-specific — the flat engine runs a
// LikelihoodTable over one global CSR, the sharded engine runs the same
// kernels shard-parallel) and everything around it: initialization,
// the f=g warm-up, convergence, divergence retries, random restarts,
// checkpoint/resume, winner selection, health accounting. The
// surrounding machinery is engine-independent and lives here once,
// templated over an Engine, so the sharded path inherits the exact
// retry/restart/checkpoint semantics — same split keys, same
// fingerprint chain, same attempt encoding — instead of a diverging
// copy.
//
// Engine contract (duck-typed; FlatEmEngine in em_ext.cpp and
// ShardedEmEngine in sharded_em.cpp are the two implementations):
//
//   std::size_t source_count() const;
//   std::size_t assertion_count() const;
//   std::uint64_t claim_count() const;     // checkpoint fingerprint
//   ThreadPool* pool() const;              // resolved, never nullptr
//   using Scratch = ...;                   // per-attempt state
//   Scratch make_scratch() const;
//   // E-step under `params`: fills scratch.e (posterior, log_odds,
//   // log_likelihood). May produce non-finite values; the driver
//   // guards them.
//   void e_step(const ModelParams& params, Scratch& scratch) const;
//   // Closed-form M-step given the posterior, applied to `params` IN
//   // PLACE (params holds the previous estimates on entry, the new
//   // ones on return). Fuses what used to be four separate driver
//   // passes — non-finite sanitize, the optional f=g warm-up tie, and
//   // the max-norm convergence delta — into the update itself
//   // (em_detail::finalize_m_step_fused), reporting them via
//   // MStepOutcome. Must be bit-identical across engines (both
//   // delegate to the shared fused tail).
//   void m_step(const std::vector<double>& posterior, ModelParams& params,
//               bool tie_fg, Scratch& scratch,
//               em_detail::MStepOutcome& out) const;
//   // Support-based initial posterior (em_ext.h vote_prior_posterior
//   // semantics).
//   std::vector<double> vote_prior(bool independent_only) const;
//   // True when source i carries no evidence (no claims, no exposure).
//   bool degenerate_source(std::size_t i) const;
//
// Determinism inventory (docs/MODEL.md §14/§16): every floating-point
// reduction the driver or the engines own is either serial in
// canonical order or a fixed-shape tree reduction over a global array
// (kernels::tree_reduce — shape depends only on the element count, so
// thread counts, shard layouts and work-stealing schedules cannot
// perturb it): log-likelihood via kernels::tree_sum in assertion
// order, M-step statistics slot-addressed with a tree-pooled
// reduction, per-source updates combined by order-independent +/max.
// Integer health counters are the only values merged without ordering.
#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/em_ext.h"
#include "core/em_mstep.h"
#include "core/params.h"
#include "math/convergence.h"
#include "math/logprob.h"
#include "util/checkpoint.h"
#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ss {
namespace em_detail {

// CheckpointStore kind tag for EM restart attempts.
inline constexpr std::uint64_t kEmExtCheckpointKind = 1;
// Split-key base for divergence-recovery re-seeds; offset past any
// plausible attempt index so retry streams never collide with the
// attempts' own init streams.
inline constexpr std::uint64_t kReseedKeyBase = 0x52450000ull;

inline bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Replaces non-finite parameter estimates with their previous values.
// A non-finite rate cannot come from clean data — every M-step ratio is
// clamped — so keep-previous is the only update that cannot make things
// worse. Returns the number of replacements.
inline std::size_t sanitize_params(ModelParams& next,
                                   const ModelParams& prev) {
  std::size_t fixed = 0;
  auto fix = [&fixed](double& value, double fallback) {
    if (!std::isfinite(value)) {
      value = fallback;
      ++fixed;
    }
  };
  for (std::size_t i = 0; i < next.source.size(); ++i) {
    fix(next.source[i].a, prev.source[i].a);
    fix(next.source[i].b, prev.source[i].b);
    fix(next.source[i].f, prev.source[i].f);
    fix(next.source[i].g, prev.source[i].g);
  }
  fix(next.z, prev.z);
  return fixed;
}

// One completed restart attempt, serialized bit-exact for
// CheckpointStore — everything the winner selection and the final
// result need, so a resumed run is indistinguishable from an
// uninterrupted one.
inline std::string encode_attempt(const EmExtResult& r) {
  BinWriter w;
  w.vec_f64(r.estimate.belief);
  w.vec_f64(r.estimate.log_odds);
  w.u64(r.estimate.iterations);
  w.u8(r.estimate.converged ? 1 : 0);
  w.vec_f64(r.likelihood_trace);
  w.f64(r.log_likelihood);
  w.f64(r.params.z);
  w.u64(r.params.source.size());
  for (const SourceParams& s : r.params.source) {
    w.f64(s.a);
    w.f64(s.b);
    w.f64(s.f);
    w.f64(s.g);
  }
  w.u64(r.health.nonfinite_events);
  w.u64(r.health.reseeded_attempts);
  w.u64(r.health.failed_attempts);
  w.u64(r.health.sanitized_params);
  return w.take();
}

// Throws std::runtime_error on any malformed payload; the caller treats
// that as "record absent" and recomputes the attempt.
inline EmExtResult decode_attempt(const std::string& bytes) {
  BinReader rd(bytes);
  EmExtResult r;
  r.estimate.belief = rd.vec_f64();
  r.estimate.log_odds = rd.vec_f64();
  r.estimate.iterations = static_cast<std::size_t>(rd.u64());
  r.estimate.converged = rd.u8() != 0;
  r.estimate.probabilistic = true;
  r.likelihood_trace = rd.vec_f64();
  r.log_likelihood = rd.f64();
  r.params.z = rd.f64();
  std::uint64_t n = rd.u64();
  if (n > bytes.size()) {  // 32 bytes per source; reject garbage counts
    throw std::runtime_error("checkpoint: truncated payload");
  }
  r.params.source.resize(static_cast<std::size_t>(n));
  for (SourceParams& s : r.params.source) {
    s.a = rd.f64();
    s.b = rd.f64();
    s.f = rd.f64();
    s.g = rd.f64();
  }
  r.health.nonfinite_events = static_cast<std::size_t>(rd.u64());
  r.health.reseeded_attempts = static_cast<std::size_t>(rd.u64());
  r.health.failed_attempts = static_cast<std::size_t>(rd.u64());
  r.health.sanitized_params = static_cast<std::size_t>(rd.u64());
  r.health.resumed_attempts = 1;
  if (!rd.done()) {
    throw std::runtime_error("checkpoint: trailing bytes");
  }
  return r;
}

// The full EM-Ext outer loop over `engine`. Semantically identical to
// the pre-refactor em_ext.cpp run_detailed — same RNG streams, same
// checkpoint fingerprint chain, same winner selection — so existing
// golden hashes pin this driver through the flat engine.
template <typename Engine>
EmExtResult run_em_driver(const Engine& engine, const EmExtConfig& config,
                          std::uint64_t seed) {
  const std::size_t n = engine.source_count();
  const std::size_t m = engine.assertion_count();
  if (m == 0) {
    // Nothing to estimate; return a well-formed empty result.
    EmExtResult empty;
    empty.estimate.probabilistic = true;
    empty.params.source.assign(n, SourceParams{});
    return empty;
  }
  ThreadPool* pool = engine.pool();
  Rng rng(seed, /*stream=*/0x37);

  bool random_init =
      !config.init.has_value() && config.init_kind == EmInit::kRandom;
  std::size_t restarts =
      random_init ? std::max<std::size_t>(1, config.restarts) : 1;

  // One guarded EM run. Returns nullopt when an E-step went non-finite
  // (injected fault or pathological input) — the caller re-seeds and
  // retries rather than letting a NaN reach winner selection. retry > 0
  // always draws fresh random parameters: replaying a deterministic
  // initialization that already diverged would diverge again.
  auto run_attempt_once =
      [&](std::size_t attempt, std::size_t retry,
          EmHealth& health) -> std::optional<EmExtResult> {
    // Per-attempt scratch, reused by every EM iteration below (tables
    // rebuilt in place, buffers keep their capacity, so the iteration
    // loops run allocation-free).
    typename Engine::Scratch scratch = engine.make_scratch();
    ModelParams params;
    if (retry > 0) {
      Rng retry_rng = rng.split(kReseedKeyBase + attempt * 64 + retry);
      params = random_init_params(n, retry_rng);
    } else if (config.init.has_value()) {
      params = *config.init;
    } else if (random_init) {
      Rng attempt_rng = rng.split(attempt);
      params = random_init_params(n, attempt_rng);
    } else {
      // Vote prior: derive the initial parameters from a support-based
      // posterior via one M-step (in place over neutral parameters;
      // the outcome's sanitize count and delta are meaningless here
      // and dropped). Only independent claims count toward the
      // initial support — seeding belief from echo counts would let
      // a viral rumour enter the first M-step as "true", inflating f
      // relative to g and locking the dependent-claim semantics in
      // backwards.
      params.source.assign(n, SourceParams{});
      MStepOutcome ignored;
      engine.m_step(engine.vote_prior(/*independent_only=*/true), params,
                    /*tie_fg=*/false, scratch, ignored);
    }
    clamp_params(params, config.clamp_eps);

    EmExtResult result;
    // One guarded E-step: posterior + likelihood with the driver's
    // non-finite check, shared by both phases below.
    auto guarded_e_step = [&]() -> bool {
      engine.e_step(params, scratch);
      fault::maybe_corrupt_posterior(scratch.e.posterior);
      if (!std::isfinite(scratch.e.log_likelihood) ||
          !all_finite(scratch.e.posterior)) {
        ++health.nonfinite_events;
        return false;
      }
      return true;
    };

    // Phase 1 (warm-up): f and g tied per source, which cancels every
    // dependent-branch factor from the posterior — labels form from
    // independent evidence only (see EmExtConfig::warmup_iters).
    std::size_t warmup = config.init.has_value() || random_init
                             ? 0
                             : config.warmup_iters;
    if (warmup > 0) {
      ConvergenceMonitor warm_monitor(config.tol, warmup);
      bool warm_done = false;
      while (!warm_done) {
        if (!guarded_e_step()) return std::nullopt;
        result.likelihood_trace.push_back(scratch.e.log_likelihood);
        // In-place M-step with the f=g tie and the sanitize/delta
        // bookkeeping fused into the update pass (same per-element
        // order as the historical separate walks).
        MStepOutcome mo;
        engine.m_step(scratch.e.posterior, params, /*tie_fg=*/true,
                      scratch, mo);
        health.sanitized_params += mo.sanitized;
        warm_done = warm_monitor.update_delta(mo.delta);
      }
    }

    // Phase 2: the full model (Eq. 9 / Eq. 10-14).
    ConvergenceMonitor monitor(config.tol, config.max_iters);
    bool done = false;
    while (!done) {
      if (!guarded_e_step()) return std::nullopt;  // E-step (Eq. 9)
      result.likelihood_trace.push_back(scratch.e.log_likelihood);
      // M-step (Eq. 10-14), in place.
      MStepOutcome mo;
      engine.m_step(scratch.e.posterior, params, /*tie_fg=*/false,
                    scratch, mo);
      health.sanitized_params += mo.sanitized;
      done = monitor.update_delta(mo.delta);
    }

    // Final posterior under the converged parameters — one fused pass
    // supplies beliefs, log-odds and the final likelihood together.
    if (!guarded_e_step()) return std::nullopt;
    result.estimate.belief = std::move(scratch.e.posterior);
    result.estimate.log_odds = std::move(scratch.e.log_odds);
    result.estimate.probabilistic = true;
    result.estimate.iterations = monitor.iterations();
    result.estimate.converged = !monitor.hit_max();
    result.params = std::move(params);
    result.log_likelihood = scratch.e.log_likelihood;
    return result;
  };

  // Retry wrapper: re-seed a diverged attempt up to
  // max_divergence_retries times; after that, fall back to the
  // data-driven vote prior with -inf likelihood, which can win only
  // when every attempt diverged — and even then the returned beliefs
  // are finite.
  auto run_attempt = [&](std::size_t attempt) -> EmExtResult {
    EmHealth health;
    for (std::size_t retry = 0; retry <= config.max_divergence_retries;
         ++retry) {
      if (retry > 0) ++health.reseeded_attempts;
      std::optional<EmExtResult> r =
          run_attempt_once(attempt, retry, health);
      if (r.has_value()) {
        r->health = health;
        return *std::move(r);
      }
    }
    ++health.failed_attempts;
    EmExtResult r;
    r.estimate.belief = engine.vote_prior(/*independent_only=*/false);
    r.estimate.log_odds.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      double b = r.estimate.belief[j];  // clamped to [0.05, 0.95]
      r.estimate.log_odds[j] = logit(b);
    }
    r.estimate.probabilistic = true;
    r.estimate.converged = false;
    r.params.source.assign(n, SourceParams{});
    clamp_params(r.params, config.clamp_eps);
    r.log_likelihood = -std::numeric_limits<double>::infinity();
    r.health = health;
    return r;
  };

  // Checkpoint store bound to everything that determines an attempt's
  // output; a stale file (different data, seed or config) is ignored.
  std::unique_ptr<CheckpointStore> ckpt;
  if (!config.checkpoint_path.empty()) {
    std::uint64_t fp = fingerprint_combine(0x454d4558ull, seed);
    fp = fingerprint_combine(fp, static_cast<std::uint64_t>(n));
    fp = fingerprint_combine(fp, static_cast<std::uint64_t>(m));
    fp = fingerprint_combine(fp, engine.claim_count());
    fp = fingerprint_combine(fp, config.tol);
    fp = fingerprint_combine(fp,
                             static_cast<std::uint64_t>(config.max_iters));
    fp = fingerprint_combine(fp, config.clamp_eps);
    fp = fingerprint_combine(fp, config.shrinkage);
    fp = fingerprint_combine(fp, config.z_floor);
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.warmup_iters));
    fp = fingerprint_combine(fp,
                             static_cast<std::uint64_t>(config.init_kind));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.max_divergence_retries));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.init.has_value()));
    ckpt = std::make_unique<CheckpointStore>(
        config.checkpoint_path, kEmExtCheckpointKind, fp, restarts);
  }

  auto run_or_resume = [&](std::size_t attempt) -> EmExtResult {
    if (ckpt != nullptr && ckpt->has(attempt)) {
      try {
        return decode_attempt(ckpt->payload(attempt));
      } catch (const std::exception&) {
        // Undecodable record: recompute. A checkpoint can only save
        // work, never poison a run.
      }
    }
    EmExtResult r = run_attempt(attempt);
    if (ckpt != nullptr) {
      ckpt->commit(attempt, encode_attempt(r));
      fault::unit_committed();  // kill-after-commit injection point
    }
    return r;
  };

  std::vector<EmExtResult> attempts(restarts);
  if (restarts > 1) {
    // Random restarts are independent; run them across the pool (grain
    // 1: one attempt per chunk). Nested parallel sections inside each
    // attempt are safe because parallel_for_chunks callers participate.
    pool->parallel_for_chunks(
        restarts, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t a = begin; a < end; ++a) {
            attempts[a] = run_or_resume(a);
          }
        });
  } else {
    attempts[0] = run_or_resume(0);
  }

  // Winner selection in attempt order (first best wins ties), identical
  // to the sequential loop it replaces. Health aggregates over every
  // attempt, not just the winner.
  EmExtResult best;
  bool have_best = false;
  EmHealth total;
  for (EmExtResult& result : attempts) {
    total.nonfinite_events += result.health.nonfinite_events;
    total.reseeded_attempts += result.health.reseeded_attempts;
    total.failed_attempts += result.health.failed_attempts;
    total.sanitized_params += result.health.sanitized_params;
    total.resumed_attempts += result.health.resumed_attempts;
    if (!have_best || result.log_likelihood > best.log_likelihood) {
      best = std::move(result);
      have_best = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (engine.degenerate_source(i)) ++total.degenerate_sources;
  }
  best.health = total;
  if (ckpt != nullptr && !config.keep_checkpoint) ckpt->remove_file();
  return best;
}

}  // namespace em_detail
}  // namespace ss
