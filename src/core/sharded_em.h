// EM-Ext over a ShardedDataset: the million-source execution strategy.
//
// The flat engine (em_ext.cpp) walks one global CSR; at 10^6 sources
// its fixed-grain column chunks still work, but every chunk touches the
// whole value table and the whole incidence image. ShardedEmEstimator
// runs the *same* E/M kernels over the per-shard CSR slices built by
// ShardedDataset (data/shard.h): each work unit reads one shard's
// claimant/exposed lists — which reference only that shard's sources —
// so the hot loops stay within a shard-sized working set, and shards
// spread across the thread pool.
//
// Sharding is an execution strategy, never an approximation: all ids
// stay global, the likelihood base / pooled shrinkage rates / prior z
// are computed over all sources exactly as the flat engine computes
// them, and every per-column and per-source gather walks the same
// element order as its flat counterpart. Work units (shard-confined
// column/source ranges) are dispatched through the LPT work-stealing
// scheduler (ThreadPool::parallel_tasks) — heaviest shards first, idle
// workers steal — so a skewed shard histogram no longer serializes on
// its largest shard. Scheduling freedom is safe because units only
// scatter into disjoint index-addressed slots; every global
// floating-point reduction (column log-likelihood, M-step pooling,
// update deltas) then runs through the fixed-shape tree reductions of
// math/kernels.h, whose shape depends only on the element count. On
// the scalar backend the results are therefore bit-identical to
// EmExtEstimator for any shard layout, any thread count and any
// steal order — tests/test_shard.cpp pins this with golden FNV-1a
// hashes; on the AVX2 backend both engines live under the same
// exactness contract (docs/MODEL.md §12, §16). The outer loop (init,
// warm-up, retries, restarts, checkpointing) is
// em_detail::run_em_driver, shared with the flat engine, so checkpoint
// files are interchangeable between the two.
#pragma once

#include <cstdint>

#include "core/em_ext.h"
#include "data/shard.h"

namespace ss {

class ShardedEmEstimator {
 public:
  explicit ShardedEmEstimator(EmExtConfig config = {});

  // Same contract as EmExtEstimator::run / run_detailed, with the
  // incidence supplied as shards. The EmExtConfig semantics (tol,
  // warm-up, shrinkage, restarts, checkpointing, pool) carry over
  // unchanged — including the checkpoint fingerprint, which depends
  // only on the dataset shape, not the shard layout.
  EstimateResult run(const ShardedDataset& sharded,
                     std::uint64_t seed) const;
  EmExtResult run_detailed(const ShardedDataset& sharded,
                           std::uint64_t seed) const;

 private:
  EmExtConfig config_;
};

}  // namespace ss
