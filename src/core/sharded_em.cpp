#include "core/sharded_em.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

#include "core/em_driver.h"
#include "core/em_mstep.h"
#include "core/posterior.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// Same fixed grains as the flat engine (posterior.cpp / em_ext.cpp):
// work-unit boundaries depend only on the shard layout, never on the
// worker count, so slot writes are identical for any SS_THREADS value.
constexpr std::size_t kColumnGrain = 256;
constexpr std::size_t kSourceGrain = 256;

// One fixed block of one shard's columns (or sources). The flat list
// of units — not shard-per-task — is what keeps the pool busy when one
// giant component swallows most of the data: an oversized shard simply
// contributes many units. Each unit carries its incidence mass (claim
// + exposure entries it touches), the LPT scheduling weight for
// parallel_tasks — weights steer placement only, never results.
struct WorkUnit {
  std::uint32_t shard;
  std::uint32_t begin;  // position range within the shard
  std::uint32_t end;
};

struct UnitPlan {
  std::vector<WorkUnit> units;
  std::vector<double> weights;  // parallel to `units`
};

UnitPlan chunk_units(const ShardedDataset& sharded, bool columns,
                     std::size_t grain) {
  UnitPlan plan;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const DatasetShard& sh = sharded.shard(s);
    std::size_t count =
        columns ? sh.assertion_ids().size() : sh.source_ids().size();
    for (std::size_t begin = 0; begin < count; begin += grain) {
      std::size_t end = std::min(begin + grain, count);
      double mass = 0.0;
      for (std::size_t p = begin; p < end; ++p) {
        if (columns) {
          mass += static_cast<double>(sh.claimants(p).size() +
                                      sh.exposed_sources(p).size());
        } else {
          mass += static_cast<double>(sh.dependent_claims(p).size() +
                                      sh.independent_claims(p).size() +
                                      sh.exposed_assertions(p).size());
        }
      }
      plan.units.push_back({static_cast<std::uint32_t>(s),
                            static_cast<std::uint32_t>(begin),
                            static_cast<std::uint32_t>(end)});
      plan.weights.push_back(mass);
    }
  }
  return plan;
}

// The shard-parallel engine behind em_detail::run_em_driver. Gathers
// run over per-shard CSR slices; values are read from (and results
// scattered into) global tables, so every column and every source
// computes exactly what the flat engine computes for it.
class ShardedEmEngine {
 public:
  ShardedEmEngine(const ShardedDataset& sharded, const EmExtConfig& config,
                  ThreadPool* pool)
      : sharded_(sharded),
        config_(config),
        pool_(pool),
        column_plan_(chunk_units(sharded, /*columns=*/true, kColumnGrain)),
        source_plan_(
            chunk_units(sharded, /*columns=*/false, kSourceGrain)) {}

  struct Scratch {
    kernels::ExtLogTable table;
    EStepResult e;
    std::vector<double> column_ll;
    std::vector<em_detail::SourceMStatsPacked> mstats;
    // Per-unit wall-clock seconds from the last parallel_tasks call;
    // only filled when EmExtConfig::shard_time_accum is set.
    std::vector<double> unit_seconds;
  };

  std::size_t source_count() const { return sharded_.source_count(); }
  std::size_t assertion_count() const {
    return sharded_.assertion_count();
  }
  std::uint64_t claim_count() const {
    return static_cast<std::uint64_t>(sharded_.claim_count());
  }
  ThreadPool* pool() const { return pool_; }

  Scratch make_scratch() const { return Scratch{}; }

  // Fused E-step, sharded. Same two-pass shape as posterior.cpp's
  // fused_e_step: a gather pass parks the prior-shifted column
  // log-likelihoods la/lb in the output buffers (slot-addressed by
  // global assertion id), then the elementwise finalize_columns
  // epilogue runs over contiguous global ranges — chunking-invariant —
  // and the data log-likelihood sums serially in assertion order. Per
  // column the gathers are gather_add + gather_add_select in shard
  // list order, which is the flat scalar column walk exactly
  // (gather_add2 interleaves two independent chains without reordering
  // either, so pairing is not load-bearing for the result).
  void e_step(const ModelParams& params, Scratch& s) const {
    const std::size_t n = sharded_.source_count();
    const std::size_t m = sharded_.assertion_count();
    if (params.source.size() != n) {
      throw std::invalid_argument(
          "ShardedEmEngine: params/source count mismatch");
    }
    // SourceParams is {a, b, f, g} as four contiguous doubles (the
    // static_assert lives in em_mstep.h's fused tail, same contract):
    // build_from_rows reads the params array directly and clamps each
    // rate in flight — bit-identical to the historical clamp_prob
    // lambda build, minus its 4n-double scratch pack.
    s.table.build_from_rows(
        n, clamp_prob(params.z),
        reinterpret_cast<const double*>(params.source.data()));
    s.e.posterior.resize(m);
    s.e.log_odds.resize(m);
    s.column_ll.resize(m);

    const double log_z = s.table.log_z();
    const double log_1mz = s.table.log_1mz();
    double* la_buf = s.e.log_odds.data();
    double* lb_buf = s.column_ll.data();
    double* post = s.e.posterior.data();
    auto gather_unit = [&](const WorkUnit& u) {
      const DatasetShard& sh = sharded_.shard(u.shard);
      std::span<const std::uint32_t> ids = sh.assertion_ids();
      for (std::size_t c = u.begin; c < u.end; ++c) {
        kernels::LogPair acc =
            kernels::gather_add(s.table.base(), sh.exposed_sources(c),
                                s.table.exposed_silent());
        acc = kernels::gather_add_select(
            acc, sh.claimants(c), sh.claimant_dependent(c),
            s.table.claim_indep(), s.table.claim_dep());
        std::uint32_t j = ids[c];
        la_buf[j] = acc.t + log_z;
        lb_buf[j] = acc.f + log_1mz;
      }
    };
    run_units(column_plan_, gather_unit, s);

    // Epilogue over global assertion ranges (sanctioned elementwise
    // aliasing: log_odds == la, column_ll == lb; see kernels.h).
    auto epilogue = [&](std::size_t, std::size_t begin, std::size_t end) {
      kernels::finalize_columns(la_buf + begin, lb_buf + begin,
                                end - begin, post + begin, la_buf + begin,
                                lb_buf + begin);
    };
    if (pool_ != nullptr && pool_->size() > 1 && m > kColumnGrain) {
      pool_->parallel_for_chunks(m, kColumnGrain, epilogue);
    } else {
      for (std::size_t begin = 0; begin < m; begin += kColumnGrain) {
        epilogue(0, begin, std::min(begin + kColumnGrain, m));
      }
    }
    // Canonical fixed-shape tree sum over the *global* column_ll array
    // (same reduction as the flat engine, independent of shard layout,
    // thread count and steal order).
    s.e.log_likelihood = kernels::tree_sum(pool_, s.column_ll.data(), m);
  }

  // Closed-form M-step, sharded, applied to `params` in place:
  // per-source statistics fill in shard-parallel units (each source
  // owns its global slot, every field written; the shard's row lists
  // are elementwise equal to the flat engine's exposed_assertions /
  // dependent_claims / independent_claims views, so each gather
  // performs the same additions in the same order), then the shared
  // fused tail in em_detail::finalize_m_step_fused — tree-pooled over
  // the same global stats array the flat engine fills, so both engines
  // reduce identical values through an identical shape.
  void m_step(const std::vector<double>& posterior, ModelParams& params,
              bool tie_fg, Scratch& s,
              em_detail::MStepOutcome& out) const {
    const std::size_t n = sharded_.source_count();
    const std::size_t m = sharded_.assertion_count();
    double total_z =
        kernels::tree_sum(pool_, posterior.data(), posterior.size());

    std::vector<em_detail::SourceMStatsPacked>& stats = s.mstats;
    stats.resize(n);
    auto fill_unit = [&](const WorkUnit& u) {
      const DatasetShard& sh = sharded_.shard(u.shard);
      std::span<const std::uint32_t> ids = sh.source_ids();
      for (std::size_t p = u.begin; p < u.end; ++p) {
        em_detail::SourceMStatsPacked& st = stats[ids[p]];
        double exposed_z = kernels::gather_sum(sh.exposed_assertions(p),
                                               posterior.data());
        double exposed_count =
            static_cast<double>(sh.exposed_assertions(p).size());
        kernels::MassPair dep =
            kernels::gather_mass(sh.dependent_claims(p), posterior.data());
        kernels::MassPair indep = kernels::gather_mass(
            sh.independent_claims(p), posterior.data());
        st.claim_dep_z = dep.z;
        st.claim_dep_y = dep.y;
        st.claim_indep_z = indep.z;
        st.claim_indep_y = indep.y;
        // Packed exposure pair; the update denominators are derived at
        // consumption time with the identical fl-op order (see
        // SourceMStatsPacked in em_mstep.h).
        st.exposed_z = exposed_z;
        st.exposed_count = exposed_count;
      }
    };
    run_units(source_plan_, fill_unit, s);
    em_detail::finalize_m_step_fused(stats, total_z, m, params,
                                     config_.clamp_eps, config_.shrinkage,
                                     config_.z_floor, tie_fg, pool_, out);
  }

  // Support-based initial posterior: per-column support counts scatter
  // from the shards into a global array, then the vote_prior_posterior
  // arithmetic runs verbatim in global assertion order (integer counts
  // produce the exact same doubles as the flat path).
  std::vector<double> vote_prior(bool independent_only) const {
    const std::size_t m = sharded_.assertion_count();
    std::vector<double> posterior(m, 0.5);
    if (m == 0) return posterior;
    std::vector<double> support(m, 0.0);
    for (std::size_t sidx = 0; sidx < sharded_.shard_count(); ++sidx) {
      const DatasetShard& sh = sharded_.shard(sidx);
      std::span<const std::uint32_t> ids = sh.assertion_ids();
      for (std::size_t c = 0; c < ids.size(); ++c) {
        std::size_t count;
        if (independent_only) {
          std::span<const char> flags = sh.claimant_dependent(c);
          count = static_cast<std::size_t>(
              std::count(flags.begin(), flags.end(), char{0}));
        } else {
          count = sh.claimants(c).size();
        }
        support[ids[c]] = static_cast<double>(count);
      }
    }
    // Same tree shape as the flat vote_prior_posterior fold (exact for
    // these integer-valued supports, so flat == sharded bit for bit).
    double mean_support = kernels::tree_sum(nullptr, support.data(), m);
    mean_support /= static_cast<double>(m);
    if (mean_support <= 0.0) return posterior;
    for (std::size_t j = 0; j < m; ++j) {
      posterior[j] = std::clamp(
          support[j] / (support[j] + mean_support), 0.05, 0.95);
    }
    return posterior;
  }

  bool degenerate_source(std::size_t i) const {
    const DatasetShard& sh = sharded_.shard(sharded_.shard_of_source(i));
    std::size_t p = sharded_.position_of_source(i);
    return sh.dependent_claims(p).empty() &&
           sh.independent_claims(p).empty() &&
           sh.exposed_assertions(p).empty();
  }

 private:
  // Runs fn over every unit through the pool's LPT work-stealing
  // scheduler, weighted by incidence mass, so the giant-component
  // shard's units start first and an idle worker steals from whoever
  // has the longest backlog — placement only; every unit writes the
  // same global slots it would serially. With timing requested
  // (EmExtConfig::shard_time_accum), per-unit seconds aggregate into
  // per-shard totals serially after the parallel region (no clock
  // reads inside core code — the pool takes them; lint rule R8).
  template <typename Fn>
  void run_units(const UnitPlan& plan, const Fn& fn, Scratch& s) const {
    bool timed = config_.shard_time_accum != nullptr;
    if (pool_ != nullptr && (pool_->size() > 1 || timed) &&
        plan.units.size() > 1) {
      pool_->parallel_tasks(
          plan.weights,
          [&](std::size_t u) { fn(plan.units[u]); },
          timed ? &s.unit_seconds : nullptr);
    } else {
      for (const WorkUnit& u : plan.units) fn(u);
      return;
    }
    if (timed) {
      std::vector<double>& acc = *config_.shard_time_accum;
      if (acc.size() != sharded_.shard_count()) {
        acc.assign(sharded_.shard_count(), 0.0);
      }
      for (std::size_t u = 0; u < plan.units.size(); ++u) {
        acc[plan.units[u].shard] += s.unit_seconds[u];
      }
    }
  }

  const ShardedDataset& sharded_;
  const EmExtConfig& config_;
  ThreadPool* pool_;
  UnitPlan column_plan_;
  UnitPlan source_plan_;
};

}  // namespace

ShardedEmEstimator::ShardedEmEstimator(EmExtConfig config)
    : config_(std::move(config)) {}

EstimateResult ShardedEmEstimator::run(const ShardedDataset& sharded,
                                       std::uint64_t seed) const {
  return run_detailed(sharded, seed).estimate;
}

EmExtResult ShardedEmEstimator::run_detailed(const ShardedDataset& sharded,
                                             std::uint64_t seed) const {
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &global_pool();
  ShardedEmEngine engine(sharded, config_, pool);
  return em_detail::run_em_driver(engine, config_, seed);
}

}  // namespace ss
