// Likelihood machinery for the dependency-aware model (Table II and
// Eq. 4/5 of the paper).
//
// The E-step needs, per assertion j, the two column log-likelihoods
//   log P(SC_j | C_j = 1; D, theta) = sum_i log P(S_iC_j | C_j=1, D_ij)
//   log P(SC_j | C_j = 0; D, theta)
// where the per-cell factor is read from Table II. A naive evaluation is
// O(n) per assertion; since non-claims dominate, LikelihoodTable instead
// precomputes the "everyone silent and unexposed" baseline
//   B1 = sum_i log(1 - a_i),  B0 = sum_i log(1 - b_i)
// and per-source *correction* terms so each column costs only
// O(#claimants + #exposed) — the key to running EM on Table-III-scale
// matrices (tens of thousands of sources) in milliseconds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.h"
#include "data/dataset.h"

namespace ss {

// Per-cell probability from Table II: P(S_iC_j = s | C_j = c, D_ij = d).
double cell_probability(const SourceParams& p, bool claimed, bool truth,
                        bool dependent);

struct ColumnLogLikelihood {
  double log_given_true = 0.0;   // log P(SC_j | C_j = 1)
  double log_given_false = 0.0;  // log P(SC_j | C_j = 0)
};

class LikelihoodTable {
 public:
  // Precomputes baselines and correction terms. `params` must have one
  // entry per source in `dataset`; probabilities are clamped internally so
  // logs stay finite.
  LikelihoodTable(const Dataset& dataset, const ModelParams& params);

  std::size_t assertion_count() const {
    return dataset_.assertion_count();
  }
  const Dataset& dataset() const { return dataset_; }

  // Column log-likelihoods for assertion j (Eq. 4/5). Claim cells read
  // D_ij from the dataset's ClaimPartition cache; thread-safe.
  ColumnLogLikelihood column(std::size_t assertion) const;

  // All m columns at once.
  std::vector<ColumnLogLikelihood> all_columns() const;

  // Total data log-likelihood (Eq. 7): sum_j logsumexp over C_j of
  // log P(SC_j | C_j) + log P(C_j).
  double data_log_likelihood() const;

  double log_prior_true() const { return log_z_; }
  double log_prior_false() const { return log_1mz_; }

 private:
  const Dataset& dataset_;
  const ClaimPartition* partition_;  // owned by dataset_
  double log_z_;
  double log_1mz_;
  double base_true_ = 0.0;   // sum_i log(1 - a_i)
  double base_false_ = 0.0;  // sum_i log(1 - b_i)
  // Per-source correction terms, applied on top of the baseline:
  //   exposed silent:   log(1-f_i) - log(1-a_i)   [true hypothesis]
  //   claim, D_ij = 0:  log(a_i)   - log(1-a_i)
  //   claim, D_ij = 1:  log(f_i)   - log(1-f_i)   [after exposure corr.]
  // and the analogous b/g terms for the false hypothesis.
  std::vector<double> exposed_silent_true_;
  std::vector<double> exposed_silent_false_;
  std::vector<double> claim_indep_true_;
  std::vector<double> claim_indep_false_;
  std::vector<double> claim_dep_true_;
  std::vector<double> claim_dep_false_;
};

}  // namespace ss
