// Likelihood machinery for the dependency-aware model (Table II and
// Eq. 4/5 of the paper).
//
// The E-step needs, per assertion j, the two column log-likelihoods
//   log P(SC_j | C_j = 1; D, theta) = sum_i log P(S_iC_j | C_j=1, D_ij)
//   log P(SC_j | C_j = 0; D, theta)
// where the per-cell factor is read from Table II. A naive evaluation is
// O(n) per assertion; since non-claims dominate, LikelihoodTable instead
// precomputes the "everyone silent and unexposed" baseline
//   B1 = sum_i log(1 - a_i),  B0 = sum_i log(1 - b_i)
// and per-source *correction* terms so each column costs only
// O(#claimants + #exposed) — the key to running EM on Table-III-scale
// matrices (tens of thousands of sources) in milliseconds.
//
// Since PR 3 the hoisted terms live in a kernels::ExtLogTable
// (math/kernels.h): correction pairs are stored interleaved by
// hypothesis and the column walk is the branch-free gather kernels, so
// a column pays pure adds over contiguous memory — and set_params()
// rebuilds the table in place, so one LikelihoodTable serves a whole EM
// run without per-iteration allocation. Results are bit-identical to
// the pre-kernel six-array walk (see tests/test_kernels.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.h"
#include "data/dataset.h"
#include "math/kernels.h"

namespace ss {

// Per-cell probability from Table II: P(S_iC_j = s | C_j = c, D_ij = d).
double cell_probability(const SourceParams& p, bool claimed, bool truth,
                        bool dependent);

struct ColumnLogLikelihood {
  double log_given_true = 0.0;   // log P(SC_j | C_j = 1)
  double log_given_false = 0.0;  // log P(SC_j | C_j = 0)
};

class LikelihoodTable {
 public:
  // Binds the table to a dataset without parameters; call set_params()
  // before reading columns. EM loops use this to hoist the table out of
  // the iteration loop and rebuild it in place each M-step.
  explicit LikelihoodTable(const Dataset& dataset);

  // Convenience: bind and build in one step (one-shot callers).
  LikelihoodTable(const Dataset& dataset, const ModelParams& params);

  // Recomputes the hoisted log terms from `params`, reusing the
  // existing buffers. `params` must have one entry per source in the
  // dataset (throws std::invalid_argument otherwise); probabilities are
  // clamped internally so logs stay finite.
  void set_params(const ModelParams& params);

  std::size_t assertion_count() const {
    return dataset_.assertion_count();
  }
  const Dataset& dataset() const { return dataset_; }

  // Column log-likelihoods for assertion j (Eq. 4/5). Claim cells read
  // D_ij from the dataset's ClaimPartition cache; thread-safe. Inline:
  // the fused E-step's column loop compiles down to the gather kernels
  // with no per-column call.
  ColumnLogLikelihood column(std::size_t assertion) const {
    // Move every exposed source from the unexposed-silent baseline to
    // exposed-silent, then flip claimants from silent to claiming
    // within their branch (the partition's flag view is aligned with
    // the claimant list, so the summation order — and therefore the
    // floating-point result — matches the per-claimant search the
    // kernels replaced).
    kernels::LogPair acc = kernels::gather_add(
        logs_.base(), dataset_.dependency.exposed_sources(assertion),
        logs_.exposed_silent());
    acc = kernels::gather_add_select(
        acc, dataset_.claims.claimants_of(assertion),
        partition_->claimant_dependent(assertion), logs_.claim_indep(),
        logs_.claim_dep());
    return {acc.t, acc.f};
  }

  // Prior-shifted columns for j in [begin, end):
  //   la[j] = log P(SC_j | C_j=1) + log z
  //   lb[j] = log P(SC_j | C_j=0) + log(1-z)
  // Gathers two columns at a time (kernels::gather_add2) so the
  // independent accumulator chains of adjacent columns interleave; each
  // column's own add order is unchanged, so every slot is bit-identical
  // to column(j) plus the prior. This is the E-step's gather pass.
  void prior_columns(std::size_t begin, std::size_t end, double* la,
                     double* lb) const;

  // All m columns at once.
  std::vector<ColumnLogLikelihood> all_columns() const;

  // Total data log-likelihood (Eq. 7): sum_j logsumexp over C_j of
  // log P(SC_j | C_j) + log P(C_j).
  double data_log_likelihood() const;

  double log_prior_true() const { return logs_.log_z(); }
  double log_prior_false() const { return logs_.log_1mz(); }

 private:
  std::span<const std::uint32_t> exposed_csr(std::size_t j) const {
    return {exp_idx_.data() + exp_off_[j], exp_off_[j + 1] - exp_off_[j]};
  }
  std::span<const std::uint32_t> claimant_csr(std::size_t j) const {
    return {cl_idx_.data() + cl_off_[j], cl_off_[j + 1] - cl_off_[j]};
  }
  std::span<const std::uint32_t> pair_sched(std::size_t p) const {
    return {pair_offs_.data() + pair_off_[p], pair_off_[p + 1] - pair_off_[p]};
  }
  std::span<const std::uint32_t> single_sched(std::size_t p) const {
    return {single_offs_.data() + single_off_[p],
            single_off_[p + 1] - single_off_[p]};
  }

  const Dataset& dataset_;
  const ClaimPartition* partition_;  // owned by dataset_
  kernels::ExtLogTable logs_;        // hoisted per-source log terms

  // Structure-only CSR flattening of the dataset's per-column
  // exposed-source and claimant lists (same element order), built once
  // per table and shared by every EM iteration: the scan then streams
  // one contiguous index array instead of chasing per-column vector
  // allocations.
  std::vector<std::uint32_t> exp_idx_;
  std::vector<std::size_t> exp_off_;
  std::vector<std::uint32_t> cl_idx_;
  std::vector<std::size_t> cl_off_;

  // AVX2 column restructure (see prior_columns): a dependent claimant
  // is by construction also in the exposed list (it claimed after its
  // influencer), so its exposed-silent correction can be folded into
  // its claim correction. The column walk then gathers the silent-only
  // sources (exposed minus dependent claimants) with `es`, the
  // independent claimants with `ci`, and the dependent claimants with
  // the folded `cd + es` — |exposed| + |independent| elements instead
  // of |exposed| + |claimants|, and no flag select.
  //
  // The fold is realized as a *precompiled gather schedule*: the three
  // per-column index groups are compiled once (structure-only) into
  // byte-offset streams over one concatenated value table
  // `super_ = [es rows | ci rows | cd+es rows | two zero rows]`,
  // with runs of adjacent indices emitted as 32-byte two-row granules
  // and the rest as 16-byte granules, interleaved [col 2p, col 2p+1]
  // per fixed column pair and padded with the zero sentinel row so both
  // streams are rectangular (padded slots add 0.0). set_params() only
  // refreshes the value rows. The schedule changes summation grouping,
  // so only the AVX2 backend (ULP contract) takes it; the scalar path
  // keeps the source-order exposed+select walk for bit-identity.
  bool fold_ready_ = false;
  std::vector<kernels::LogPair> super_;  // [es | ci | cd+es | 0, 0]
  std::vector<std::uint32_t> pair_offs_;    // 32-byte granule offsets
  std::vector<std::uint32_t> single_offs_;  // 16-byte granule offsets
  std::vector<std::size_t> pair_off_;    // per-column-pair stream starts
  std::vector<std::size_t> single_off_;
};

}  // namespace ss
