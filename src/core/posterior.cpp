#include "core/posterior.h"

#include "math/logprob.h"

namespace ss {

double assertion_posterior(const LikelihoodTable& table,
                           std::size_t assertion) {
  ColumnLogLikelihood c = table.column(assertion);
  return normalize_log_pair(c.log_given_true + table.log_prior_true(),
                            c.log_given_false + table.log_prior_false());
}

std::vector<double> all_posteriors(const LikelihoodTable& table) {
  std::vector<double> out;
  // The table holds a reference to its dataset; reuse column() per j.
  // Size is taken from a probe column loop guard via all_columns shape.
  // (LikelihoodTable exposes no size directly to keep its surface small.)
  auto cols = table.all_columns();
  out.resize(cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    out[j] = normalize_log_pair(
        cols[j].log_given_true + table.log_prior_true(),
        cols[j].log_given_false + table.log_prior_false());
  }
  return out;
}

std::vector<double> all_posteriors(const Dataset& dataset,
                                   const ModelParams& params) {
  LikelihoodTable table(dataset, params);
  return all_posteriors(table);
}

std::vector<double> all_log_odds(const LikelihoodTable& table) {
  auto cols = table.all_columns();
  std::vector<double> out(cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    out[j] = (cols[j].log_given_true + table.log_prior_true()) -
             (cols[j].log_given_false + table.log_prior_false());
  }
  return out;
}

}  // namespace ss
