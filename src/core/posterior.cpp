#include "core/posterior.h"

#include "math/logprob.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// Columns per parallel chunk. Fixed (never derived from the worker
// count) so chunk boundaries — and thus every slot write — are the same
// for any SS_THREADS value.
constexpr std::size_t kColumnGrain = 256;

}  // namespace

double assertion_posterior(const LikelihoodTable& table,
                           std::size_t assertion) {
  ColumnLogLikelihood c = table.column(assertion);
  return normalize_log_pair(c.log_given_true + table.log_prior_true(),
                            c.log_given_false + table.log_prior_false());
}

std::vector<double> all_posteriors(const LikelihoodTable& table) {
  std::size_t m = table.assertion_count();
  std::vector<double> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    ColumnLogLikelihood c = table.column(j);
    out[j] = normalize_log_pair(c.log_given_true + table.log_prior_true(),
                                c.log_given_false +
                                    table.log_prior_false());
  }
  return out;
}

std::vector<double> all_posteriors(const Dataset& dataset,
                                   const ModelParams& params) {
  LikelihoodTable table(dataset, params);
  return all_posteriors(table);
}

std::vector<double> all_log_odds(const LikelihoodTable& table) {
  std::size_t m = table.assertion_count();
  std::vector<double> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    ColumnLogLikelihood c = table.column(j);
    out[j] = (c.log_given_true + table.log_prior_true()) -
             (c.log_given_false + table.log_prior_false());
  }
  return out;
}

EStepResult fused_e_step(const LikelihoodTable& table, ThreadPool* pool) {
  std::size_t m = table.assertion_count();
  EStepResult out;
  out.posterior.resize(m);
  out.log_odds.resize(m);
  std::vector<double> column_ll(m);

  auto pass = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      ColumnLogLikelihood c = table.column(j);
      double lt = c.log_given_true + table.log_prior_true();
      double lf = c.log_given_false + table.log_prior_false();
      out.posterior[j] = normalize_log_pair(lt, lf);
      out.log_odds[j] = lt - lf;
      column_ll[j] = logsumexp(lt, lf);
    }
  };
  if (pool != nullptr && pool->size() > 1 && m > kColumnGrain) {
    pool->parallel_for_chunks(m, kColumnGrain, pass);
  } else {
    pass(0, 0, m);
  }

  // Canonical assertion-order summation, independent of which thread
  // produced each term.
  double total = 0.0;
  for (double v : column_ll) total += v;
  out.log_likelihood = total;
  return out;
}

}  // namespace ss
