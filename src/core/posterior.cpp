#include "core/posterior.h"

#include <algorithm>

#include "math/kernels.h"
#include "math/logprob.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// Columns per parallel chunk. Fixed (never derived from the worker
// count) so chunk boundaries — and thus every slot write — are the same
// for any SS_THREADS value.
constexpr std::size_t kColumnGrain = 256;

}  // namespace

double assertion_posterior(const LikelihoodTable& table,
                           std::size_t assertion) {
  ColumnLogLikelihood c = table.column(assertion);
  return normalize_log_pair(c.log_given_true + table.log_prior_true(),
                            c.log_given_false + table.log_prior_false());
}

void all_posteriors(const LikelihoodTable& table,
                    std::vector<double>& out) {
  std::size_t m = table.assertion_count();
  out.resize(m);
  const double log_z = table.log_prior_true();
  const double log_1mz = table.log_prior_false();
  for (std::size_t j = 0; j < m; ++j) {
    ColumnLogLikelihood c = table.column(j);
    out[j] = kernels::finalize_pair(c.log_given_true + log_z,
                                    c.log_given_false + log_1mz)
                 .posterior;
  }
}

std::vector<double> all_posteriors(const LikelihoodTable& table) {
  std::vector<double> out;
  all_posteriors(table, out);
  return out;
}

std::vector<double> all_posteriors(const Dataset& dataset,
                                   const ModelParams& params) {
  LikelihoodTable table(dataset, params);
  return all_posteriors(table);
}

std::vector<double> all_log_odds(const LikelihoodTable& table) {
  std::size_t m = table.assertion_count();
  std::vector<double> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    ColumnLogLikelihood c = table.column(j);
    out[j] = (c.log_given_true + table.log_prior_true()) -
             (c.log_given_false + table.log_prior_false());
  }
  return out;
}

void fused_e_step(const LikelihoodTable& table, ThreadPool* pool,
                  EStepResult& out,
                  std::vector<double>& column_ll_scratch) {
  std::size_t m = table.assertion_count();
  out.posterior.resize(m);
  out.log_odds.resize(m);
  column_ll_scratch.resize(m);

  // Two passes: gather first, transcendental epilogue second. Keeping
  // the libm calls (exp/log1p) out of the gather loop lets the compiler
  // hold the accumulators in registers across a whole column, and the
  // epilogue then streams contiguously. The prior-shifted intermediates
  // park in the output buffers (log_odds / column_ll slots are
  // overwritten in place by the epilogue), so no extra scratch is
  // needed and — since doubles round-trip through memory exactly — the
  // results stay bit-identical to the single-pass form.
  double* la_buf = out.log_odds.data();
  double* lb_buf = column_ll_scratch.data();
  double* post = out.posterior.data();
  auto gather_pass = [&](std::size_t, std::size_t begin, std::size_t end) {
    table.prior_columns(begin, end, la_buf, lb_buf);
  };
  // Epilogue over [begin, end): the dispatched batch kernel writes
  // posterior / log_odds / column_ll in place (note the sanctioned
  // elementwise aliasing — log_odds == la_buf, column_ll == lb_buf;
  // kernels::finalize_columns documents it). The block log-likelihoods
  // stay parked in column_ll_scratch and are summed once, flat, in
  // assertion order below — the same addition sequence the old
  // running-accumulator epilogue performed, so the serial scalar path
  // is bit-identical, and serial/parallel/backends all share one
  // canonical reduction.
  auto epilogue_pass = [&](std::size_t begin, std::size_t end) {
    kernels::finalize_columns(la_buf + begin, lb_buf + begin, end - begin,
                              post + begin, la_buf + begin,
                              lb_buf + begin);
  };
  if (pool != nullptr && pool->size() > 1 && m > kColumnGrain) {
    pool->parallel_for_chunks(
        m, kColumnGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          gather_pass(0, begin, end);
          epilogue_pass(begin, end);
        });
  } else {
    // Serial: same chunking, so each block's la/lb intermediates are
    // still L1-resident when the epilogue rereads them.
    for (std::size_t begin = 0; begin < m; begin += kColumnGrain) {
      std::size_t end = std::min(begin + kColumnGrain, m);
      gather_pass(0, begin, end);
      epilogue_pass(begin, end);
    }
  }
  // Canonical fixed-shape tree sum in assertion order, independent of
  // which thread (or backend lane) produced each term — and of how
  // many threads run the leaf blocks (kernels::tree_sum).
  out.log_likelihood = kernels::tree_sum(pool, column_ll_scratch.data(), m);
}

EStepResult fused_e_step(const LikelihoodTable& table, ThreadPool* pool) {
  EStepResult out;
  std::vector<double> column_ll;
  fused_e_step(table, pool, out, column_ll);
  return out;
}

}  // namespace ss
