// Per-assertion truth posterior, Eq. 9:
//   P(C_j = 1 | SC_j; D, theta) =
//     P(SC_j | C_j=1) z / (P(SC_j | C_j=1) z + P(SC_j | C_j=0)(1-z))
#pragma once

#include <vector>

#include "core/likelihood.h"

namespace ss {

// Posterior for one assertion.
double assertion_posterior(const LikelihoodTable& table,
                           std::size_t assertion);

// Posteriors for all assertions (the E-step output Z_j).
std::vector<double> all_posteriors(const LikelihoodTable& table);

// Convenience: posteriors directly from a dataset + parameters.
std::vector<double> all_posteriors(const Dataset& dataset,
                                   const ModelParams& params);

// Posterior log-odds log P(C_j=1|SC_j) - log P(C_j=0|SC_j) for all
// assertions; unlike the posterior itself this does not saturate, which
// top-k ranking relies on.
std::vector<double> all_log_odds(const LikelihoodTable& table);

}  // namespace ss
