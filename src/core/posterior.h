// Per-assertion truth posterior, Eq. 9:
//   P(C_j = 1 | SC_j; D, theta) =
//     P(SC_j | C_j=1) z / (P(SC_j | C_j=1) z + P(SC_j | C_j=0)(1-z))
#pragma once

#include <vector>

#include "core/likelihood.h"

namespace ss {

class ThreadPool;

// Posterior for one assertion.
double assertion_posterior(const LikelihoodTable& table,
                           std::size_t assertion);

// Posteriors for all assertions (the E-step output Z_j).
std::vector<double> all_posteriors(const LikelihoodTable& table);

// In-place variant reusing `out`'s capacity (streaming inner loops call
// this once per inner iteration; the allocating form would churn the
// heap once per iteration).
void all_posteriors(const LikelihoodTable& table, std::vector<double>& out);

// Convenience: posteriors directly from a dataset + parameters.
std::vector<double> all_posteriors(const Dataset& dataset,
                                   const ModelParams& params);

// Posterior log-odds log P(C_j=1|SC_j) - log P(C_j=0|SC_j) for all
// assertions; unlike the posterior itself this does not saturate, which
// top-k ranking relies on.
std::vector<double> all_log_odds(const LikelihoodTable& table);

// Everything one EM iteration (and the finalization path) needs from the
// columns, computed in a single fused pass.
struct EStepResult {
  std::vector<double> posterior;  // Z_j (Eq. 9)
  std::vector<double> log_odds;   // unsaturated ranking score
  double log_likelihood = 0.0;    // Eq. 7
};

// Fused E-step: one pass over the columns yields posteriors, log-odds
// and the data log-likelihood together (the separate all_posteriors /
// all_log_odds / data_log_likelihood calls would each rescan every
// column). Per column the kernels::finalize_column epilogue derives all
// three outputs from a single exp — bit-identical to the separate
// sigmoid + logsumexp calls it fused (see math/kernels.h). With a pool,
// columns are processed in fixed assertion chunks and per-column
// outputs land in index-addressed slots; the log-likelihood is then
// summed serially in assertion order — so the result is bit-identical
// to the serial pass for any thread count. pool == nullptr or
// single-worker pools run serially.
EStepResult fused_e_step(const LikelihoodTable& table,
                         ThreadPool* pool = nullptr);

// Scratch-reusing variant for per-iteration callers: `out`'s vectors
// and `column_ll_scratch` are resized once and reused across EM
// iterations, eliminating the three per-iteration allocations of the
// value-returning form.
void fused_e_step(const LikelihoodTable& table, ThreadPool* pool,
                  EStepResult& out, std::vector<double>& column_ll_scratch);

}  // namespace ss
