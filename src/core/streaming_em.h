// Streaming (recursive) dependency-aware fact-finding.
//
// The paper's related work points at a recursive estimator for social
// data *streams* (Yao et al., IPSN'16): instead of re-running EM over
// the full history whenever new claims arrive, keep per-source
// sufficient statistics and fold each new batch in with an exponential
// forgetting factor. This module implements that extension on top of the
// EM-Ext model:
//
//   per batch b:
//     1. E-step on the batch's assertions under the current theta
//        (warm start — a handful of inner iterations suffice);
//     2. compute the batch's per-source sufficient statistics
//        (claim/exposure posterior masses split by D_ij);
//     3. decay the running statistics by `forgetting` and add the batch;
//     4. closed-form M-step from the running statistics.
//
// Sources persist across batches (same index space); assertions are
// batch-local, as in a sliding window over a live event.
//
// Batch-ordering contract. The estimator is a *recursive* filter: the
// decayed statistics after batch k are a function of the batches in the
// exact order they were folded in, so feeding batches out of order
// silently computes a different model. Callers on an unreliable
// transport (the src/sim/ storm harness, a network ingest) therefore
// tag each batch with the sequence number assigned at *emission* time
// and use the checked overload observe(batch, seq):
//
//   - seq == next_sequence(): the batch is folded in, next_sequence()
//     advances, result.accepted = true.
//   - seq <  next_sequence(): a stale duplicate (retry of a batch that
//     already arrived). Rejected without touching any state:
//     result.accepted = false, stale_batches() counts it, and the
//     returned beliefs are empty.
//   - seq >  next_sequence(): a gap — the caller failed to buffer a
//     delayed batch. That is a caller bug, not a transport condition,
//     and throws std::invalid_argument.
//
// The unchecked observe(batch) is shorthand for
// observe(batch, next_sequence()) and never rejects.
#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "core/params.h"

namespace ss {

class BinReader;
class BinWriter;
class ThreadPool;

struct StreamingEmConfig {
  // Exponential forgetting factor in (0, 1]; 1 = never forget.
  double forgetting = 0.9;
  // Inner EM iterations per batch (warm-started).
  std::size_t iters_per_batch = 5;
  double clamp_eps = 1e-6;
  // Hierarchical Beta shrinkage in pseudo-claims (see EmExtConfig).
  double shrinkage = 8.0;
  // Bounds on the learned prior z (see EmExtConfig::z_floor).
  double z_floor = 0.05;
  // Pool for the fused E-step; nullptr = the process-global pool.
  // Chunk boundaries depend only on (count, grain), so results are
  // bit-identical across pool sizes — tests pin a 1-thread and a
  // 4-thread pool against each other to prove it.
  ThreadPool* pool = nullptr;
};

struct StreamingBatchResult {
  // False only for a stale duplicate rejected by the checked
  // observe(batch, seq) overload; the other fields are then empty.
  bool accepted = true;
  // Posterior truth probability per assertion of the batch.
  std::vector<double> belief;
  std::vector<double> log_odds;
  double log_likelihood = 0.0;
  // Fault-tolerance accounting (docs/MODEL.md §9); healthy batches have
  // stats_committed = true and sanitized_beliefs = 0. A batch whose
  // E-step went non-finite is not folded into the running statistics —
  // a poisoned posterior must not contaminate the decayed history — and
  // any non-finite final belief comes back as the neutral 0.5 (log-odds
  // 0) instead of NaN.
  bool stats_committed = true;
  std::size_t sanitized_beliefs = 0;
};

class StreamingEmExt {
 public:
  // `sources` fixes the source universe for the stream's lifetime.
  StreamingEmExt(std::size_t sources, StreamingEmConfig config = {});

  // Folds one batch into the model and returns its posteriors. The
  // batch dataset must have exactly `sources()` sources; its assertion
  // space is independent of previous batches. Throws on shape mismatch.
  StreamingBatchResult observe(const Dataset& batch);

  // Sequence-checked variant for unreliable transports; see the
  // batch-ordering contract at the top of this header.
  StreamingBatchResult observe(const Dataset& batch, std::uint64_t seq);

  // Sequence number the next accepted batch must carry.
  std::uint64_t next_sequence() const { return next_sequence_; }
  // Stale duplicates rejected by the checked overload.
  std::size_t stale_batches() const { return stale_batches_; }

  // Serializes / restores the full mutable state (params, counters,
  // running statistics) bit-exactly via the checkpoint binary codec.
  // load_state throws std::runtime_error when the serialized source
  // universe disagrees with this instance's. Config is not serialized:
  // the resuming caller must construct with the same config, as with
  // (seed, config)-keyed checkpoints elsewhere.
  void save_state(BinWriter& writer) const;
  void load_state(BinReader& reader);

  const ModelParams& params() const { return params_; }
  std::size_t source_count() const { return stats_claim_indep_z_.size(); }
  std::size_t batches_seen() const { return batches_; }
  // Batches whose statistics were withheld because an E-step produced a
  // non-finite posterior (see StreamingBatchResult::stats_committed).
  std::size_t skipped_batches() const { return skipped_batches_; }

 private:
  StreamingEmConfig config_;
  ModelParams params_;
  std::size_t batches_ = 0;
  std::size_t skipped_batches_ = 0;
  std::size_t stale_batches_ = 0;
  std::uint64_t next_sequence_ = 0;
  // Running (decayed) sufficient statistics per source.
  std::vector<double> stats_claim_indep_z_;
  std::vector<double> stats_claim_indep_y_;
  std::vector<double> stats_claim_dep_z_;
  std::vector<double> stats_claim_dep_y_;
  std::vector<double> stats_denom_a_;
  std::vector<double> stats_denom_b_;
  std::vector<double> stats_denom_f_;
  std::vector<double> stats_denom_g_;
  double stats_z_num_ = 0.0;
  double stats_z_den_ = 0.0;
  // Batch-local scratch reused across observe() calls and inner
  // iterations (the pre-kernel code allocated all nine vectors afresh
  // once per inner iteration). The batch-statistics vectors are sized
  // to the fixed source universe at construction; `posterior_` adapts
  // to each batch's assertion count in place.
  std::vector<double> posterior_;
  std::vector<double> batch_indep_z_;
  std::vector<double> batch_indep_y_;
  std::vector<double> batch_dep_z_;
  std::vector<double> batch_dep_y_;
  std::vector<double> batch_denom_a_;
  std::vector<double> batch_denom_b_;
  std::vector<double> batch_denom_f_;
  std::vector<double> batch_denom_g_;
};

}  // namespace ss
