#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/logprob.h"

namespace ss {
namespace {

bool is_prob(double p) { return p >= 0.0 && p <= 1.0 && !std::isnan(p); }

}  // namespace

bool SourceParams::valid() const {
  return is_prob(a) && is_prob(b) && is_prob(f) && is_prob(g);
}

bool ModelParams::valid() const {
  if (!is_prob(z)) return false;
  return std::all_of(source.begin(), source.end(),
                     [](const SourceParams& s) { return s.valid(); });
}

double ModelParams::max_abs_diff(const ModelParams& other) const {
  if (source.size() != other.source.size()) {
    throw std::invalid_argument("ModelParams::max_abs_diff: size mismatch");
  }
  double best = std::fabs(z - other.z);
  for (std::size_t i = 0; i < source.size(); ++i) {
    best = std::max(best, std::fabs(source[i].a - other.source[i].a));
    best = std::max(best, std::fabs(source[i].b - other.source[i].b));
    best = std::max(best, std::fabs(source[i].f - other.source[i].f));
    best = std::max(best, std::fabs(source[i].g - other.source[i].g));
  }
  return best;
}

ModelParams random_init_params(std::size_t sources, Rng& rng) {
  ModelParams params;
  params.source.resize(sources);
  for (auto& s : params.source) {
    s.a = rng.uniform(0.1, 0.9);
    s.b = rng.uniform(0.1, 0.9);
    if (s.a < s.b) std::swap(s.a, s.b);
    s.f = rng.uniform(0.1, 0.9);
    s.g = rng.uniform(0.1, 0.9);
    if (s.f < s.g) std::swap(s.f, s.g);
  }
  params.z = rng.uniform(0.3, 0.7);
  return params;
}

void clamp_params(ModelParams& params, double eps) {
  for (auto& s : params.source) {
    s.a = clamp_prob(s.a, eps);
    s.b = clamp_prob(s.b, eps);
    s.f = clamp_prob(s.f, eps);
    s.g = clamp_prob(s.g, eps);
  }
  params.z = clamp_prob(params.z, eps);
}

}  // namespace ss
