// Common interface every fact-finder in the library implements.
//
// An estimator consumes a Dataset (source-claim matrix + dependency
// indicators) and produces one credibility score per assertion. For the
// probabilistic estimators (EM-Ext, EM, EM-Social) the score is a
// calibrated posterior P(C_j = 1); for the heuristics (Voting, Sums,
// Average.Log, Truth-Finder) it is a relative ranking score. Both usages
// in the paper — thresholding at 0.5 for simulation accuracy and top-k
// ranking for the empirical protocol — work off this vector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ss {

struct EstimateResult {
  // One score per assertion; higher means more credible.
  std::vector<double> belief;
  // Posterior log-odds log P(C_j=1|..) - log P(C_j=0|..), filled by the
  // probabilistic estimators. Beliefs saturate to exactly 1.0 in double
  // precision once the evidence passes ~37 nats, which would reduce
  // top-k ranking to tie order; log-odds keep the full resolution.
  std::vector<double> log_odds;
  // True when belief[j] is a probability P(C_j = 1).
  bool probabilistic = false;
  std::size_t iterations = 0;
  bool converged = true;

  // Hard labels by thresholding belief at `threshold`.
  std::vector<bool> labels(double threshold = 0.5) const {
    std::vector<bool> out(belief.size());
    for (std::size_t j = 0; j < belief.size(); ++j) {
      out[j] = belief[j] > threshold;
    }
    return out;
  }

  // Assertion ids sorted by descending credibility — log-odds when
  // available, else belief (ties by ascending id, so rankings are
  // deterministic).
  std::vector<std::uint32_t> ranking() const;
};

class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual std::string name() const = 0;

  // Runs the estimator. `seed` feeds any internal randomization (e.g. EM
  // initialization); deterministic estimators ignore it.
  virtual EstimateResult run(const Dataset& dataset,
                             std::uint64_t seed) const = 0;
};

}  // namespace ss
