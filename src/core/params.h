// The source behaviour model theta (Section II-B).
//
// Each source S_i is described by four unknown probabilities:
//   a_i = P(S_i claims j | C_j = 1, D_ij = 0)   independent true-claim rate
//   b_i = P(S_i claims j | C_j = 0, D_ij = 0)   independent false-claim rate
//   f_i = P(S_i claims j | C_j = 1, D_ij = 1)   dependent true-claim rate
//   g_i = P(S_i claims j | C_j = 0, D_ij = 1)   dependent false-claim rate
// plus the global prior z = P(C = 1). Setting f_i = a_i and g_i = b_i
// recovers the independent-source model (IPSN'12); f_i = g_i makes
// dependent claims carry no information (the EM-Social assumption).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace ss {

struct SourceParams {
  double a = 0.5;
  double b = 0.5;
  double f = 0.5;
  double g = 0.5;

  bool valid() const;
};

struct ModelParams {
  std::vector<SourceParams> source;
  double z = 0.5;  // prior P(C_j = 1)

  std::size_t source_count() const { return source.size(); }
  bool valid() const;

  // Largest absolute elementwise difference from `other`; shapes must
  // match. Used as the EM convergence criterion.
  double max_abs_diff(const ModelParams& other) const;
};

// Random initialization for EM (Algorithm 2 line 1). Draws every rate
// uniformly from (0.1, 0.9) and then orders a_i > b_i and f_i > g_i by
// swapping, which breaks the model's label-switching symmetry toward the
// standard "sources are better than chance on true claims" convention.
ModelParams random_init_params(std::size_t sources, Rng& rng);

// Clamps every probability into [eps, 1-eps].
void clamp_params(ModelParams& params, double eps = 1e-6);

}  // namespace ss
