#include "core/likelihood.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <stdexcept>

#include "math/logprob.h"
#include "math/simd/dispatch.h"

namespace ss {

double cell_probability(const SourceParams& p, bool claimed, bool truth,
                        bool dependent) {
  double rate = truth ? (dependent ? p.f : p.a) : (dependent ? p.g : p.b);
  return claimed ? rate : 1.0 - rate;
}

LikelihoodTable::LikelihoodTable(const Dataset& dataset)
    : dataset_(dataset), partition_(&dataset.partition()) {
  std::size_t m = dataset.assertion_count();
  exp_off_.resize(m + 1);
  cl_off_.resize(m + 1);
  std::size_t exp_total = 0;
  std::size_t cl_total = 0;
  for (std::size_t j = 0; j < m; ++j) {
    exp_off_[j] = exp_total;
    cl_off_[j] = cl_total;
    exp_total += dataset.dependency.exposed_sources(j).size();
    cl_total += dataset.claims.claimants_of(j).size();
  }
  exp_off_[m] = exp_total;
  cl_off_[m] = cl_total;
  exp_idx_.reserve(exp_total);
  cl_idx_.reserve(cl_total);
  for (std::size_t j = 0; j < m; ++j) {
    const std::vector<std::uint32_t>& es = dataset.dependency.exposed_sources(j);
    exp_idx_.insert(exp_idx_.end(), es.begin(), es.end());
    const std::vector<std::uint32_t>& cs = dataset.claims.claimants_of(j);
    cl_idx_.insert(cl_idx_.end(), cs.begin(), cs.end());
  }

  // Silent-only lists for the AVX2 fold: dependent claimants are the
  // claimants that appear in the exposed list (ClaimPartition defines
  // them as the sorted intersection), so exposed \ dependent is exact.
  // The subset property is verified rather than assumed — a dataset
  // violating it keeps fold_ready_ false and uses the select path
  // under every backend.
  fold_ready_ = true;
  for (std::size_t j = 0; j < m && fold_ready_; ++j) {
    std::span<const std::uint32_t> es = exposed_csr(j);
    std::span<const std::uint32_t> ds = partition_->dependent_claimants(j);
    if (!std::is_sorted(es.begin(), es.end()) ||
        !std::is_sorted(ds.begin(), ds.end()) ||
        !std::includes(es.begin(), es.end(), ds.begin(), ds.end())) {
      fold_ready_ = false;
    }
  }
  // Compile the gather schedule (structure-only; values live in the
  // supertable built by set_params). Offsets are 32-bit byte offsets
  // into the 3n+2-row supertable, so the schedule is skipped on the
  // (theoretical) source counts where they would overflow. Only built
  // when the AVX2 backend is compiled in at all — a scalar-only build
  // never reads it.
  std::size_t n = dataset.source_count();
  if (fold_ready_ && simd::avx2_compiled() &&
      16ull * (3 * n + 2) <= UINT32_MAX) {
    const std::uint32_t kSent = static_cast<std::uint32_t>(3 * n * 16);
    std::size_t n_pairs = m / 2;
    pair_off_.resize(n_pairs + 1);
    single_off_.resize(n_pairs + 1);
    std::vector<std::uint32_t> sil;
    std::array<std::vector<std::uint32_t>, 2> gp;
    std::array<std::vector<std::uint32_t>, 2> gs;
    for (std::size_t p = 0; p < n_pairs; ++p) {
      pair_off_[p] = pair_offs_.size();
      single_off_[p] = single_offs_.size();
      for (int half = 0; half < 2; ++half) {
        std::size_t j = 2 * p + static_cast<std::size_t>(half);
        gp[half].clear();
        gs[half].clear();
        sil.clear();
        std::span<const std::uint32_t> es = exposed_csr(j);
        std::span<const std::uint32_t> ds =
            partition_->dependent_claimants(j);
        std::set_difference(es.begin(), es.end(), ds.begin(), ds.end(),
                            std::back_inserter(sil));
        // Greedy run packing: two adjacent table rows become one
        // 32-byte granule, everything else a 16-byte granule.
        auto emit = [&](std::span<const std::uint32_t> idx,
                        std::size_t group) {
          const std::uint32_t base_row =
              static_cast<std::uint32_t>(group * n);
          std::size_t k = 0;
          while (k < idx.size()) {
            if (k + 1 < idx.size() && idx[k + 1] == idx[k] + 1) {
              gp[half].push_back((base_row + idx[k]) * 16);
              k += 2;
            } else {
              gs[half].push_back((base_row + idx[k]) * 16);
              k += 1;
            }
          }
        };
        emit(sil, 0);
        emit(partition_->independent_claimants(j), 1);
        emit(ds, 2);
      }
      // Interleave [col 2p, col 2p+1], padding the shorter stream with
      // the zero sentinel row so the kernel needs no length tests.
      std::size_t np = std::max(gp[0].size(), gp[1].size());
      for (std::size_t i = 0; i < np; ++i) {
        pair_offs_.push_back(i < gp[0].size() ? gp[0][i] : kSent);
        pair_offs_.push_back(i < gp[1].size() ? gp[1][i] : kSent);
      }
      std::size_t ns = std::max(gs[0].size(), gs[1].size());
      for (std::size_t i = 0; i < ns; ++i) {
        single_offs_.push_back(i < gs[0].size() ? gs[0][i] : kSent);
        single_offs_.push_back(i < gs[1].size() ? gs[1][i] : kSent);
      }
    }
    pair_off_[n_pairs] = pair_offs_.size();
    single_off_[n_pairs] = single_offs_.size();
  }
}

LikelihoodTable::LikelihoodTable(const Dataset& dataset,
                                 const ModelParams& params)
    : LikelihoodTable(dataset) {
  set_params(params);
}

void LikelihoodTable::set_params(const ModelParams& params) {
  std::size_t n = dataset_.source_count();
  if (params.source.size() != n) {
    throw std::invalid_argument(
        "LikelihoodTable: params/source count mismatch");
  }
  // SourceParams is {a, b, f, g} as four contiguous doubles, so the
  // params array IS the rate-row layout build_from_rows consumes —
  // the table clamps each rate in flight (bit-identical to the
  // historical clamp_prob lambda build, minus its scratch pack).
  static_assert(sizeof(SourceParams) == 4 * sizeof(double));
  logs_.build_from_rows(n, clamp_prob(params.z),
                        reinterpret_cast<const double*>(params.source.data()));

  // Value rows for the precompiled gather schedule: [es | ci | cd+es]
  // plus two zero sentinel rows (one O(n) pass, negligible next to the
  // table build). Only built when the schedule exists and the AVX2
  // backend is active at build time; the use site re-checks both
  // conditions so a backend switch between build and query degrades to
  // the select path instead of misreading.
  super_.clear();
  if (fold_ready_ && !pair_off_.empty() && simd::avx2_active()) {
    const kernels::LogPair* es = logs_.exposed_silent();
    const kernels::LogPair* ci = logs_.claim_indep();
    const kernels::LogPair* cd = logs_.claim_dep();
    super_.resize(3 * n + 2);
    for (std::size_t i = 0; i < n; ++i) {
      super_[i] = es[i];
      super_[n + i] = ci[i];
      super_[2 * n + i] = {cd[i].t + es[i].t, cd[i].f + es[i].f};
    }
    super_[3 * n] = {0.0, 0.0};
    super_[3 * n + 1] = {0.0, 0.0};
  }
}

void LikelihoodTable::prior_columns(std::size_t begin, std::size_t end,
                                    double* la, double* lb) const {
  const kernels::LogPair base = logs_.base();
  const kernels::LogPair* es = logs_.exposed_silent();
  const kernels::LogPair* ci = logs_.claim_indep();
  const kernels::LogPair* cd = logs_.claim_dep();
  const double log_z = logs_.log_z();
  const double log_1mz = logs_.log_1mz();
  // AVX2 column restructure: the claimant lists and their D_ij flags
  // are dataset-constant and every dependent claimant is also exposed,
  // so the schedule compiled in the constructor walks the silent-only
  // sources with `es`, the independent claimants with `ci` (already a
  // full flip from the unexposed baseline), and the dependent claimants
  // with the folded `cd + es` rows — |exposed| + |independent| table
  // rows per column instead of |exposed| + |claimants|, no flag select,
  // and adjacent rows fetched as single 32-byte granules. The schedule
  // regroups the summation, which the AVX2 ULP contract permits; the
  // scalar backend keeps the source-order exposed+select walk for
  // bit-identity with the golden hashes. Schedule pairs are fixed to
  // columns (2p, 2p+1), so an odd `begin` peels one column first.
  const bool sched = simd::avx2_active() && !super_.empty();
  std::size_t j = begin;
  if (sched) {
    const double* sup = reinterpret_cast<const double*>(super_.data());
    if ((j & 1) != 0 && j < end) {
      ColumnLogLikelihood c = column(j);
      la[j] = c.log_given_true + log_z;
      lb[j] = c.log_given_false + log_1mz;
      ++j;
    }
    for (; j + 1 < end; j += 2) {
      std::size_t p = j >> 1;
      kernels::LogPair acc0 = base;
      kernels::LogPair acc1 = base;
      kernels::gather_schedule(acc0, acc1, pair_sched(p), single_sched(p),
                               sup);
      la[j] = acc0.t + log_z;
      lb[j] = acc0.f + log_1mz;
      la[j + 1] = acc1.t + log_z;
      lb[j + 1] = acc1.f + log_1mz;
    }
  } else {
    for (; j + 1 < end; j += 2) {
      kernels::LogPair acc0 = base;
      kernels::LogPair acc1 = base;
      kernels::gather_add2(acc0, exposed_csr(j), acc1, exposed_csr(j + 1),
                           es);
      acc0 = kernels::gather_add_select(acc0, claimant_csr(j),
                                        partition_->claimant_dependent(j), ci,
                                        cd);
      acc1 = kernels::gather_add_select(acc1, claimant_csr(j + 1),
                                        partition_->claimant_dependent(j + 1),
                                        ci, cd);
      la[j] = acc0.t + log_z;
      lb[j] = acc0.f + log_1mz;
      la[j + 1] = acc1.t + log_z;
      lb[j + 1] = acc1.f + log_1mz;
    }
  }
  for (; j < end; ++j) {
    ColumnLogLikelihood c = column(j);
    la[j] = c.log_given_true + log_z;
    lb[j] = c.log_given_false + log_1mz;
  }
}

std::vector<ColumnLogLikelihood> LikelihoodTable::all_columns() const {
  std::vector<ColumnLogLikelihood> out(dataset_.assertion_count());
  for (std::size_t j = 0; j < out.size(); ++j) out[j] = column(j);
  return out;
}

double LikelihoodTable::data_log_likelihood() const {
  double total = 0.0;
  for (std::size_t j = 0; j < dataset_.assertion_count(); ++j) {
    ColumnLogLikelihood c = column(j);
    total += logsumexp(c.log_given_true + logs_.log_z(),
                       c.log_given_false + logs_.log_1mz());
  }
  return total;
}

}  // namespace ss
