#include "core/likelihood.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "math/logprob.h"

namespace ss {

double cell_probability(const SourceParams& p, bool claimed, bool truth,
                        bool dependent) {
  double rate = truth ? (dependent ? p.f : p.a) : (dependent ? p.g : p.b);
  return claimed ? rate : 1.0 - rate;
}

LikelihoodTable::LikelihoodTable(const Dataset& dataset)
    : dataset_(dataset), partition_(&dataset.partition()) {
  std::size_t m = dataset.assertion_count();
  exp_off_.resize(m + 1);
  cl_off_.resize(m + 1);
  std::size_t exp_total = 0;
  std::size_t cl_total = 0;
  for (std::size_t j = 0; j < m; ++j) {
    exp_off_[j] = exp_total;
    cl_off_[j] = cl_total;
    exp_total += dataset.dependency.exposed_sources(j).size();
    cl_total += dataset.claims.claimants_of(j).size();
  }
  exp_off_[m] = exp_total;
  cl_off_[m] = cl_total;
  exp_idx_.reserve(exp_total);
  cl_idx_.reserve(cl_total);
  for (std::size_t j = 0; j < m; ++j) {
    const std::vector<std::uint32_t>& es = dataset.dependency.exposed_sources(j);
    exp_idx_.insert(exp_idx_.end(), es.begin(), es.end());
    const std::vector<std::uint32_t>& cs = dataset.claims.claimants_of(j);
    cl_idx_.insert(cl_idx_.end(), cs.begin(), cs.end());
  }
}

LikelihoodTable::LikelihoodTable(const Dataset& dataset,
                                 const ModelParams& params)
    : LikelihoodTable(dataset) {
  set_params(params);
}

void LikelihoodTable::set_params(const ModelParams& params) {
  std::size_t n = dataset_.source_count();
  if (params.source.size() != n) {
    throw std::invalid_argument(
        "LikelihoodTable: params/source count mismatch");
  }
  logs_.build(n, clamp_prob(params.z), [&](std::size_t i) {
    const SourceParams& s = params.source[i];
    return std::array<double, 4>{clamp_prob(s.a), clamp_prob(s.b),
                                 clamp_prob(s.f), clamp_prob(s.g)};
  });
}

void LikelihoodTable::prior_columns(std::size_t begin, std::size_t end,
                                    double* la, double* lb) const {
  const kernels::LogPair base = logs_.base();
  const kernels::LogPair* es = logs_.exposed_silent();
  const kernels::LogPair* ci = logs_.claim_indep();
  const kernels::LogPair* cd = logs_.claim_dep();
  const double log_z = logs_.log_z();
  const double log_1mz = logs_.log_1mz();
  std::size_t j = begin;
  for (; j + 1 < end; j += 2) {
    kernels::LogPair acc0 = base;
    kernels::LogPair acc1 = base;
    kernels::gather_add2(acc0, exposed_csr(j), acc1, exposed_csr(j + 1),
                         es);
    acc0 = kernels::gather_add_select(acc0, claimant_csr(j),
                                      partition_->claimant_dependent(j), ci,
                                      cd);
    acc1 = kernels::gather_add_select(acc1, claimant_csr(j + 1),
                                      partition_->claimant_dependent(j + 1),
                                      ci, cd);
    la[j] = acc0.t + log_z;
    lb[j] = acc0.f + log_1mz;
    la[j + 1] = acc1.t + log_z;
    lb[j + 1] = acc1.f + log_1mz;
  }
  for (; j < end; ++j) {
    ColumnLogLikelihood c = column(j);
    la[j] = c.log_given_true + log_z;
    lb[j] = c.log_given_false + log_1mz;
  }
}

std::vector<ColumnLogLikelihood> LikelihoodTable::all_columns() const {
  std::vector<ColumnLogLikelihood> out(dataset_.assertion_count());
  for (std::size_t j = 0; j < out.size(); ++j) out[j] = column(j);
  return out;
}

double LikelihoodTable::data_log_likelihood() const {
  double total = 0.0;
  for (std::size_t j = 0; j < dataset_.assertion_count(); ++j) {
    ColumnLogLikelihood c = column(j);
    total += logsumexp(c.log_given_true + logs_.log_z(),
                       c.log_given_false + logs_.log_1mz());
  }
  return total;
}

}  // namespace ss
