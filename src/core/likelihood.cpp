#include "core/likelihood.h"

#include <cmath>
#include <stdexcept>

#include "math/logprob.h"

namespace ss {

double cell_probability(const SourceParams& p, bool claimed, bool truth,
                        bool dependent) {
  double rate = truth ? (dependent ? p.f : p.a) : (dependent ? p.g : p.b);
  return claimed ? rate : 1.0 - rate;
}

LikelihoodTable::LikelihoodTable(const Dataset& dataset,
                                 const ModelParams& params)
    : dataset_(dataset), partition_(&dataset.partition()) {
  std::size_t n = dataset.source_count();
  if (params.source.size() != n) {
    throw std::invalid_argument(
        "LikelihoodTable: params/source count mismatch");
  }
  double z = clamp_prob(params.z);
  log_z_ = std::log(z);
  log_1mz_ = std::log1p(-z);

  exposed_silent_true_.resize(n);
  exposed_silent_false_.resize(n);
  claim_indep_true_.resize(n);
  claim_indep_false_.resize(n);
  claim_dep_true_.resize(n);
  claim_dep_false_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    double a = clamp_prob(params.source[i].a);
    double b = clamp_prob(params.source[i].b);
    double f = clamp_prob(params.source[i].f);
    double g = clamp_prob(params.source[i].g);
    double log_na = std::log1p(-a);
    double log_nb = std::log1p(-b);
    double log_nf = std::log1p(-f);
    double log_ng = std::log1p(-g);
    base_true_ += log_na;
    base_false_ += log_nb;
    exposed_silent_true_[i] = log_nf - log_na;
    exposed_silent_false_[i] = log_ng - log_nb;
    claim_indep_true_[i] = std::log(a) - log_na;
    claim_indep_false_[i] = std::log(b) - log_nb;
    claim_dep_true_[i] = std::log(f) - log_nf;
    claim_dep_false_[i] = std::log(g) - log_ng;
  }
}

ColumnLogLikelihood LikelihoodTable::column(std::size_t assertion) const {
  double lt = base_true_;
  double lf = base_false_;
  // Move every exposed source from the unexposed-silent baseline to
  // exposed-silent...
  for (std::uint32_t u : dataset_.dependency.exposed_sources(assertion)) {
    lt += exposed_silent_true_[u];
    lf += exposed_silent_false_[u];
  }
  // ...then flip claimants from silent to claiming within their branch.
  // The partition cache answers D_ij with a flat flag lookup (aligned
  // with the claimant list, so the summation order — and therefore the
  // floating-point result — matches the per-claimant search it replaced).
  const auto& claimants = dataset_.claims.claimants_of(assertion);
  std::span<const char> dep = partition_->claimant_dependent(assertion);
  for (std::size_t k = 0; k < claimants.size(); ++k) {
    std::uint32_t v = claimants[k];
    if (dep[k]) {
      lt += claim_dep_true_[v];
      lf += claim_dep_false_[v];
    } else {
      lt += claim_indep_true_[v];
      lf += claim_indep_false_[v];
    }
  }
  return {lt, lf};
}

std::vector<ColumnLogLikelihood> LikelihoodTable::all_columns() const {
  std::vector<ColumnLogLikelihood> out(dataset_.assertion_count());
  for (std::size_t j = 0; j < out.size(); ++j) out[j] = column(j);
  return out;
}

double LikelihoodTable::data_log_likelihood() const {
  double total = 0.0;
  for (std::size_t j = 0; j < dataset_.assertion_count(); ++j) {
    ColumnLogLikelihood c = column(j);
    total += logsumexp(c.log_given_true + log_z_,
                       c.log_given_false + log_1mz_);
  }
  return total;
}

}  // namespace ss
