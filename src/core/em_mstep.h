// Shared closed-form M-step machinery (Eq. 10-14) for the flat and
// sharded EM-Ext engines.
//
// Both engines compute the same per-source sufficient statistics — the
// flat engine gathers over ClaimPartition's CSR lists, the sharded one
// over DatasetShard's identically-ordered copies — and must then apply
// the *same* pooled-shrinkage parameter update, serially, in global
// source order, so their results stay bit-identical (the pooled rates
// couple every source; see docs/MODEL.md §14). That serial tail lives
// here, in one place, so the two engines cannot drift apart.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/params.h"

namespace ss {
namespace em_detail {

// Per-source sufficient statistics for one M-step.
struct SourceMStats {
  double claim_indep_z = 0.0;  // claims with D_ij = 0, weighted by Z_j
  double claim_indep_y = 0.0;
  double claim_dep_z = 0.0;  // claims with D_ij = 1
  double claim_dep_y = 0.0;
  double denom_a = 0.0;  // Z mass over D_ij = 0 cells
  double denom_b = 0.0;
  double denom_f = 0.0;  // Z mass over D_ij = 1 (exposed) cells
  double denom_g = 0.0;
};

// The serial M-step tail: pooled-rate reduction (source order), the
// Beta-prior MAP update per source (source order), the prior update
// z = total_z / m with its floor, and the final clamp. Bit-identical
// for any worker count by construction — nothing here is parallel.
inline ModelParams finalize_m_step(const std::vector<SourceMStats>& stats,
                                   double total_z, std::size_t m,
                                   const ModelParams& previous,
                                   double clamp_eps, double shrinkage,
                                   double z_floor) {
  const std::size_t n = stats.size();
  // Pooled rates anchor the shrinkage prior.
  SourceMStats pooled;
  for (const SourceMStats& s : stats) {
    pooled.claim_indep_z += s.claim_indep_z;
    pooled.claim_indep_y += s.claim_indep_y;
    pooled.claim_dep_z += s.claim_dep_z;
    pooled.claim_dep_y += s.claim_dep_y;
    pooled.denom_a += s.denom_a;
    pooled.denom_b += s.denom_b;
    pooled.denom_f += s.denom_f;
    pooled.denom_g += s.denom_g;
  }
  auto rate = [](double num, double denom, double fallback) {
    return denom > 0.0 ? num / denom : fallback;
  };
  double mu_a = rate(pooled.claim_indep_z, pooled.denom_a, 0.5);
  double mu_b = rate(pooled.claim_indep_y, pooled.denom_b, 0.5);
  double mu_f = rate(pooled.claim_dep_z, pooled.denom_f, 0.5);
  double mu_g = rate(pooled.claim_dep_y, pooled.denom_g, 0.5);

  ModelParams next = previous;
  next.source.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceMStats& s = stats[i];
    // Beta-prior MAP with mean mu and strength `shrinkage` pseudo-claims
    // (shrinkage/mu pseudo-cells). Degenerate denominators with zero
    // shrinkage (a source exposed to everything, or a posterior
    // collapsed to one side) keep the previous estimate: those
    // parameters do not influence the likelihood.
    auto update = [&](double num, double denom, double mu, double& out) {
      double cells =
          shrinkage > 0.0 ? shrinkage / std::max(mu, 1e-9) : 0.0;
      double d = denom + cells;
      if (d > 0.0) out = (num + cells * mu) / d;
    };
    update(s.claim_indep_z, s.denom_a, mu_a, next.source[i].a);
    update(s.claim_indep_y, s.denom_b, mu_b, next.source[i].b);
    update(s.claim_dep_z, s.denom_f, mu_f, next.source[i].f);
    update(s.claim_dep_y, s.denom_g, mu_g, next.source[i].g);
  }
  next.z = total_z / static_cast<double>(m);
  if (z_floor > 0.0) {
    next.z = std::clamp(next.z, z_floor, 1.0 - z_floor);
  }
  clamp_params(next, clamp_eps);
  return next;
}

}  // namespace em_detail
}  // namespace ss
