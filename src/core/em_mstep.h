// Shared closed-form M-step machinery (Eq. 10-14) for the flat and
// sharded EM-Ext engines.
//
// Both engines compute the same per-source sufficient statistics — the
// flat engine gathers over ClaimPartition's CSR lists, the sharded one
// over DatasetShard's identically-ordered copies — and must then apply
// the *same* pooled-shrinkage parameter update so their results stay
// bit-identical (the pooled rates couple every source; see
// docs/MODEL.md §14/§16). That shared tail lives here, in one place, so
// the two engines cannot drift apart.
//
// Two tails exist:
//  * finalize_m_step — the original fully-serial form, kept as the
//    executable reference (the legacy PR 8 engine in bench_scale and
//    the equivalence tests run it);
//  * finalize_m_step_fused — the production tail: the pooled reduction
//    runs as a fixed-shape tree over the *global* stats array
//    (kernels::tree_reduce — identical bits for any thread count or
//    shard layout), and the per-source MAP update, clamp, non-finite
//    sanitize, optional f=g warm-up tie and convergence delta fuse
//    into one in-place chunked pass (kernels::finalize_params) instead
//    of the historical copy-params / update / clamp / re-walk-to-
//    sanitize / re-walk-to-tie / re-walk-for-delta five-pass chain.
//    The fused pass replicates the historical per-element order
//    exactly: raw -> clamp (NaN survives, ±inf clamps uncounted) ->
//    sanitize (NaN -> previous, counted) -> tie -> delta. It consumes
//    the packed 6-double SourceMStatsPacked layout and re-derives the
//    four update denominators bit-exactly (see the struct comment);
//    the serial reference keeps the stored 8-field SourceMStats.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/params.h"
#include "math/kernels.h"

namespace ss {
namespace em_detail {

// Per-source sufficient statistics for one M-step, reference layout:
// the four numerators plus the four update denominators, precomputed
// at fill time. The serial reference tail below and the legacy PR 8
// engine in bench_scale consume this form.
struct SourceMStats {
  double claim_indep_z = 0.0;  // claims with D_ij = 0, weighted by Z_j
  double claim_indep_y = 0.0;
  double claim_dep_z = 0.0;  // claims with D_ij = 1
  double claim_dep_y = 0.0;
  double denom_a = 0.0;  // Z mass over D_ij = 0 cells
  double denom_b = 0.0;
  double denom_f = 0.0;  // Z mass over D_ij = 1 (exposed) cells
  double denom_g = 0.0;
};

// Production fill layout: the four denominators above are pure
// functions of (exposed_z, exposed_count) and the loop constants
// (total_z, total_y), so the engines store only the two exposure
// scalars and the consumers re-derive the denominators with the
// *identical* floating-point operations in the identical order —
//   t1      = fl(exposed_count - exposed_z)
//   denom_a = fl(total_z - exposed_z)
//   denom_b = fl(total_y - t1)
//   denom_f = exposed_z
//   denom_g = t1
// — which makes the derived values bit-equal to the reference
// fill-time fields while cutting the stats row from 64 to 48 bytes
// (16 MB less written per M-step at 10^6 sources, and 16 MB less
// re-read by each of the pooled tree and the finalize pass).
struct SourceMStatsPacked {
  double claim_indep_z = 0.0;  // claims with D_ij = 0, weighted by Z_j
  double claim_indep_y = 0.0;
  double claim_dep_z = 0.0;  // claims with D_ij = 1
  double claim_dep_y = 0.0;
  double exposed_z = 0.0;      // Z mass over exposed (D_ij = 1) cells
  double exposed_count = 0.0;  // number of exposed cells
};

// The serial M-step tail: pooled-rate reduction (source order), the
// Beta-prior MAP update per source (source order), the prior update
// z = total_z / m with its floor, and the final clamp. Bit-identical
// for any worker count by construction — nothing here is parallel.
inline ModelParams finalize_m_step(const std::vector<SourceMStats>& stats,
                                   double total_z, std::size_t m,
                                   const ModelParams& previous,
                                   double clamp_eps, double shrinkage,
                                   double z_floor) {
  const std::size_t n = stats.size();
  // Pooled rates anchor the shrinkage prior.
  SourceMStats pooled;
  for (const SourceMStats& s : stats) {
    pooled.claim_indep_z += s.claim_indep_z;
    pooled.claim_indep_y += s.claim_indep_y;
    pooled.claim_dep_z += s.claim_dep_z;
    pooled.claim_dep_y += s.claim_dep_y;
    pooled.denom_a += s.denom_a;
    pooled.denom_b += s.denom_b;
    pooled.denom_f += s.denom_f;
    pooled.denom_g += s.denom_g;
  }
  auto rate = [](double num, double denom, double fallback) {
    return denom > 0.0 ? num / denom : fallback;
  };
  double mu_a = rate(pooled.claim_indep_z, pooled.denom_a, 0.5);
  double mu_b = rate(pooled.claim_indep_y, pooled.denom_b, 0.5);
  double mu_f = rate(pooled.claim_dep_z, pooled.denom_f, 0.5);
  double mu_g = rate(pooled.claim_dep_y, pooled.denom_g, 0.5);

  ModelParams next = previous;
  next.source.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceMStats& s = stats[i];
    // Beta-prior MAP with mean mu and strength `shrinkage` pseudo-claims
    // (shrinkage/mu pseudo-cells). Degenerate denominators with zero
    // shrinkage (a source exposed to everything, or a posterior
    // collapsed to one side) keep the previous estimate: those
    // parameters do not influence the likelihood.
    auto update = [&](double num, double denom, double mu, double& out) {
      double cells =
          shrinkage > 0.0 ? shrinkage / std::max(mu, 1e-9) : 0.0;
      double d = denom + cells;
      if (d > 0.0) out = (num + cells * mu) / d;
    };
    update(s.claim_indep_z, s.denom_a, mu_a, next.source[i].a);
    update(s.claim_indep_y, s.denom_b, mu_b, next.source[i].b);
    update(s.claim_dep_z, s.denom_f, mu_f, next.source[i].f);
    update(s.claim_dep_y, s.denom_g, mu_g, next.source[i].g);
  }
  next.z = total_z / static_cast<double>(m);
  if (z_floor > 0.0) {
    next.z = std::clamp(next.z, z_floor, 1.0 - z_floor);
  }
  clamp_params(next, clamp_eps);
  return next;
}

// What one fused M-step did beyond updating the parameters: the
// non-finite sanitize count (historically em_driver's sanitize_params
// pass) and the max-norm convergence delta (historically a full
// max_abs_diff re-walk of 2x32 MB of parameters at 10^6 sources).
struct MStepOutcome {
  std::size_t sanitized = 0;
  double delta = 0.0;
};

// The fused production tail; see the header comment. Updates `params`
// in place (it must hold the previous iteration's estimates, with
// params.source.size() == stats.size()). `tie_fg` applies the warm-up
// tie f = g = (f + g) / 2 after sanitizing, exactly where the driver's
// historical post-M-step walk applied it. The per-source pass is
// chunked on `pool` in fixed blocks; chunk results combine by + (count)
// and max (delta), both order-independent, so the result is
// bit-identical for any worker count — and bit-identical to the serial
// reference chain (finalize_m_step + sanitize + tie + max_abs_diff)
// whenever stats.size() <= kernels::kTreeReduceBlock makes the pooled
// tree degenerate to the serial fold.
inline void finalize_m_step_fused(const std::vector<SourceMStatsPacked>& stats,
                                  double total_z, std::size_t m,
                                  ModelParams& params, double clamp_eps,
                                  double shrinkage, double z_floor,
                                  bool tie_fg, ThreadPool* pool,
                                  MStepOutcome& out) {
  const std::size_t n = stats.size();
  params.source.resize(n);
  // The loop constant the packed denominators need; computed with the
  // exact expression the engines historically used at fill time, so
  // every derived denom_b below matches the reference fill bitwise.
  const double total_y = static_cast<double>(m) - total_z;
  // Pooled rates anchor the shrinkage prior. Fixed-shape tree over the
  // global stats array: the shape depends only on n, so flat and
  // sharded engines (which fill the same global array) agree bitwise
  // no matter who computed which block. Each element's denominators
  // are derived in-register (see SourceMStatsPacked) and added in the
  // same source order the reference fold added the stored fields.
  SourceMStats pooled = kernels::tree_reduce(
      pool, n, SourceMStats{},
      [&stats, total_z, total_y](std::size_t b, std::size_t e) {
        SourceMStats acc;
        for (std::size_t i = b; i < e; ++i) {
          const SourceMStatsPacked& s = stats[i];
          const double t1 = s.exposed_count - s.exposed_z;
          acc.claim_indep_z += s.claim_indep_z;
          acc.claim_indep_y += s.claim_indep_y;
          acc.claim_dep_z += s.claim_dep_z;
          acc.claim_dep_y += s.claim_dep_y;
          acc.denom_a += total_z - s.exposed_z;
          acc.denom_b += total_y - t1;
          acc.denom_f += s.exposed_z;
          acc.denom_g += t1;
        }
        return acc;
      },
      [](const SourceMStats& a, const SourceMStats& b) {
        SourceMStats c;
        c.claim_indep_z = a.claim_indep_z + b.claim_indep_z;
        c.claim_indep_y = a.claim_indep_y + b.claim_indep_y;
        c.claim_dep_z = a.claim_dep_z + b.claim_dep_z;
        c.claim_dep_y = a.claim_dep_y + b.claim_dep_y;
        c.denom_a = a.denom_a + b.denom_a;
        c.denom_b = a.denom_b + b.denom_b;
        c.denom_f = a.denom_f + b.denom_f;
        c.denom_g = a.denom_g + b.denom_g;
        return c;
      });
  auto rate = [](double num, double denom, double fallback) {
    return denom > 0.0 ? num / denom : fallback;
  };
  // Loop-constant MAP terms, hoisted. cmu is *precomputed* so the
  // per-lane update is (num + cmu) / (denom + cells) — two adds and a
  // divide with no a*b+c shape left for FMA contraction, which is what
  // lets the AVX2 finalize_params backend be exact instead of ULP.
  double mu[4] = {rate(pooled.claim_indep_z, pooled.denom_a, 0.5),
                  rate(pooled.claim_indep_y, pooled.denom_b, 0.5),
                  rate(pooled.claim_dep_z, pooled.denom_f, 0.5),
                  rate(pooled.claim_dep_y, pooled.denom_g, 0.5)};
  double cells[4];
  double cmu[4];
  for (std::size_t k = 0; k < 4; ++k) {
    cells[k] = shrinkage > 0.0 ? shrinkage / std::max(mu[k], 1e-9) : 0.0;
    cmu[k] = cells[k] * mu[k];
  }

  const double lo = clamp_eps;
  const double hi = 1.0 - clamp_eps;
  // SourceMStatsPacked and SourceParams are plain structs of 6/4
  // contiguous doubles whose field order lane-aligns num/exposure with
  // {a, b, f, g}; finalize_params documents the layout contract.
  static_assert(sizeof(SourceMStatsPacked) == 6 * sizeof(double));
  static_assert(sizeof(SourceParams) == 4 * sizeof(double));
  const double* stats6 = reinterpret_cast<const double*>(stats.data());
  double* params4 = reinterpret_cast<double*>(params.source.data());

  std::size_t chunks =
      ThreadPool::chunk_count(n, kernels::kTreeReduceBlock);
  std::size_t sanitized = 0;
  double dmax = 0.0;
  if (pool != nullptr && chunks > 1) {
    std::vector<std::size_t> chunk_sanitized(chunks, 0);
    std::vector<double> chunk_delta(chunks, 0.0);
    pool->parallel_for_chunks(
        n, kernels::kTreeReduceBlock,
        [&](std::size_t c, std::size_t b, std::size_t e) {
          chunk_delta[c] = 0.0;
          chunk_sanitized[c] = kernels::finalize_params(
              e - b, stats6 + 6 * b, total_z, total_y, cells, cmu, lo,
              hi, tie_fg, params4 + 4 * b, &chunk_delta[c]);
        });
    for (std::size_t c = 0; c < chunks; ++c) {
      sanitized += chunk_sanitized[c];
      if (chunk_delta[c] > dmax) dmax = chunk_delta[c];
    }
  } else {
    sanitized =
        kernels::finalize_params(n, stats6, total_z, total_y, cells, cmu,
                                 lo, hi, tie_fg, params4, &dmax);
  }

  // Prior update with its floor, the final clamp, and the same
  // keep-previous sanitize the source parameters get.
  double prev_z = params.z;
  double z = total_z / static_cast<double>(m);
  if (z_floor > 0.0) z = std::clamp(z, z_floor, 1.0 - z_floor);
  z = clamp_prob(z, clamp_eps);
  if (!std::isfinite(z)) {
    z = prev_z;
    ++sanitized;
  }
  params.z = z;
  double zdiff = std::fabs(z - prev_z);
  if (zdiff > dmax) dmax = zdiff;

  out.sanitized = sanitized;
  out.delta = dmax;
}

}  // namespace em_detail
}  // namespace ss
