// EM-Ext: the paper's dependency-aware maximum-likelihood fact-finder
// (Section IV, Algorithm 2).
//
// Jointly estimates the per-source behaviour parameters
// theta_i = {a_i, b_i, f_i, g_i}, the prior z, and the truth posterior of
// every assertion, by alternating:
//   E-step (Eq. 9):    Z_j = P(C_j = 1 | SC_j; D, theta)
//   M-step (Eq. 10-14): closed-form ratio updates of a, f, b, g, z
// until the parameter vector moves less than `tol` in the max norm.
//
// Initialization. Algorithm 2 line 1 says "random probability", but pure
// random parameter draws often land the chain in a degenerate basin where
// z collapses toward 0 and every assertion is called false (the prior
// term then buries the evidence — a well-known failure mode of
// truth-discovery EM). The default here is therefore a *vote prior*: the
// initial posterior Z_j = support_j / (support_j + mean support), i.e.
// assertions with above-average support start slightly believed, and the
// first M-step derives parameters from that. kRandom reproduces the
// paper's literal initialization for comparison.
#pragma once

#include <optional>
#include <string>

#include "core/estimator.h"
#include "core/params.h"

namespace ss {

class ThreadPool;

enum class EmInit {
  kVotePrior,  // data-driven initial posterior (default, robust)
  kRandom,     // Algorithm 2's literal random parameters
};

struct EmExtConfig {
  double tol = 1e-6;
  std::size_t max_iters = 200;
  // Probability clamp keeping likelihoods finite (DESIGN.md §5).
  double clamp_eps = 1e-6;
  // Hierarchical shrinkage: each per-source rate is MAP-estimated under
  // a Beta prior whose mean is the *pooled* (all-source) rate and whose
  // strength is `shrinkage` pseudo-claims (i.e. shrinkage/mu pseudo
  // cells, so the prior carries the same weight whether rates are ~0.4
  // as in the dense simulations or ~0.002 as in sparse Twitter data).
  // Sources with many claims keep their individual estimates; sources
  // with one claim shrink toward the population, which breaks the
  // "assertion believed -> its lone claimant looks reliable -> assertion
  // believed harder" echo chamber on sparse data, and stops noisy
  // f_i/g_i estimates from hurting EM-Ext exactly when dependent claims
  // carry little information (the paper's Fig. 10 left edge). 0 disables
  // (the paper's literal M-step); ablation bench A5 quantifies the
  // effect. The EM baselines default to the same value so comparisons
  // isolate the dependency model, not the regularizer.
  double shrinkage = 8.0;
  // Bounds on the learned prior z. With sparse evidence z is weakly
  // identified and plain MLE can spiral into z -> 0 (or 1): singleton
  // assertions inherit the prior, the prior is re-estimated from them,
  // and the collapsed fixed point swallows the informative one. Keeping
  // z inside [z_floor, 1 - z_floor] caps the spiral while leaving
  // evidence-bearing assertions free to override the prior. 0 disables.
  double z_floor = 0.05;
  // Two-phase fit. Phase 1 runs EM with f_i = g_i tied — provably
  // equivalent to deleting every dependent cell (EM-Social's premise;
  // see tests/test_properties.cpp) — so assertion labels stabilize from
  // *independent* evidence alone. Phase 2 releases f, g, which then
  // learn their sign from those labels: echoes concentrated on
  // false-labelled cascades land in g, not f. Without the warm-up a
  // viral rumour whose independent support happens to sit above average
  // seeds its own echoes into f and locks the dependent-claim semantics
  // in backwards (observed on Twitter-scale data). 0 disables.
  std::size_t warmup_iters = 50;
  EmInit init_kind = EmInit::kVotePrior;
  // Optional explicit initialization; overrides init_kind when set.
  std::optional<ModelParams> init;
  // Number of random restarts; the run with the best final data
  // log-likelihood wins. Only meaningful with kRandom (vote-prior and
  // explicit initializations are deterministic). Restarts run
  // concurrently on the pool; the winner is selected in attempt order,
  // so results do not depend on scheduling.
  std::size_t restarts = 1;
  // Worker pool for the fused E-step, the M-step statistics and the
  // restarts. nullptr selects the process-wide global_pool() (sized by
  // SS_THREADS). Results are bit-identical for every pool size,
  // including 1 — parallel slots are index-addressed and every
  // floating-point reduction runs serially in canonical order.
  ThreadPool* pool = nullptr;
  // Fault tolerance (docs/MODEL.md §9). An attempt whose E-step goes
  // non-finite (injected fault, pathological input) is re-seeded from a
  // fresh random initialization up to this many times; an attempt that
  // exhausts its retries falls back to the vote-prior posterior with
  // log-likelihood -inf, so it never poisons the winner selection (it
  // wins only if every attempt diverged — and even then the returned
  // beliefs are finite).
  std::size_t max_divergence_retries = 2;
  // Checkpoint/resume. Empty disables. The file stores one binary
  // record per completed restart attempt (util/checkpoint.h); a killed
  // run re-invoked with the same path replays completed attempts and
  // recomputes only the rest, reproducing the uninterrupted run
  // bit-for-bit. The file is bound to a fingerprint of (seed, dataset
  // shape, config); on mismatch or corruption it is ignored and the
  // run starts clean. Removed after a successful run unless
  // keep_checkpoint is set.
  std::string checkpoint_path;
  bool keep_checkpoint = false;
  // Sharded engine only: when non-null, per-shard wall-clock seconds
  // spent in E/M work units accumulate into (*shard_time_accum)[shard]
  // across the whole run (the vector is sized to the shard count on
  // first use). Pure observability — timing capture never feeds back
  // into scheduling, so results are unchanged. Meaningful with
  // restarts == 1 (concurrent attempts would interleave their
  // accumulation). bench_scale uses this for the per-shard EM time
  // histogram and the load-imbalance factor in BENCH_PR10.json.
  std::vector<double>* shard_time_accum = nullptr;
};

// Fault-tolerance accounting of one run (zero everywhere on a healthy
// run; the guards themselves never perturb finite results).
struct EmHealth {
  std::size_t nonfinite_events = 0;    // E-step outputs caught non-finite
  std::size_t reseeded_attempts = 0;   // divergence recoveries via re-seed
  std::size_t failed_attempts = 0;     // attempts that fell back to the prior
  std::size_t sanitized_params = 0;    // M-step params replaced (non-finite)
  std::size_t resumed_attempts = 0;    // attempts replayed from checkpoint
  // Sources with neither claims nor exposed cells: their rates carry no
  // evidence and are pinned by shrinkage/keep-previous (reported, not an
  // error).
  std::size_t degenerate_sources = 0;
};

struct EmExtResult {
  EstimateResult estimate;
  ModelParams params;
  double log_likelihood = 0.0;
  // Data log-likelihood after every iteration of the winning run, for
  // monotonicity checks and convergence diagnostics.
  std::vector<double> likelihood_trace;
  // Aggregated over every attempt of the run (not just the winner).
  EmHealth health;
};

class EmExtEstimator : public Estimator {
 public:
  explicit EmExtEstimator(EmExtConfig config = {});

  std::string name() const override { return "EM-Ext"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

  // Full-detail run exposing the learned parameters and likelihood trace.
  EmExtResult run_detailed(const Dataset& dataset,
                           std::uint64_t seed) const;

 private:
  EmExtConfig config_;
};

// Shared by the EM-family estimators: the support-based initial posterior
// Z_j = support_j / (support_j + mean support), clamped to [0.05, 0.95].
// With independent_only, dependent claims (D_ij = 1) do not count toward
// support — the right prior for EM-Social, whose model never sees them.
std::vector<double> vote_prior_posterior(const Dataset& dataset,
                                         bool independent_only = false);

}  // namespace ss
