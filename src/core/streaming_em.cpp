#include "core/streaming_em.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/em_ext.h"
#include "core/likelihood.h"
#include "core/posterior.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "util/checkpoint.h"
#include "util/fault_inject.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

StreamingEmExt::StreamingEmExt(std::size_t sources,
                               StreamingEmConfig config)
    : config_(config) {
  params_.source.assign(sources, SourceParams{});
  params_.z = 0.5;
  stats_claim_indep_z_.assign(sources, 0.0);
  stats_claim_indep_y_.assign(sources, 0.0);
  stats_claim_dep_z_.assign(sources, 0.0);
  stats_claim_dep_y_.assign(sources, 0.0);
  stats_denom_a_.assign(sources, 0.0);
  stats_denom_b_.assign(sources, 0.0);
  stats_denom_f_.assign(sources, 0.0);
  stats_denom_g_.assign(sources, 0.0);
  batch_indep_z_.assign(sources, 0.0);
  batch_indep_y_.assign(sources, 0.0);
  batch_dep_z_.assign(sources, 0.0);
  batch_dep_y_.assign(sources, 0.0);
  batch_denom_a_.assign(sources, 0.0);
  batch_denom_b_.assign(sources, 0.0);
  batch_denom_f_.assign(sources, 0.0);
  batch_denom_g_.assign(sources, 0.0);
}

StreamingBatchResult StreamingEmExt::observe(const Dataset& batch,
                                             std::uint64_t seq) {
  if (seq < next_sequence_) {
    // Stale duplicate from a retrying transport: already folded in, so
    // touching any state would double-count it.
    ++stale_batches_;
    StreamingBatchResult rejected;
    rejected.accepted = false;
    rejected.stats_committed = false;
    return rejected;
  }
  if (seq > next_sequence_) {
    throw std::invalid_argument(
        "StreamingEmExt::observe: batch sequence gap (got " +
        std::to_string(seq) + ", expected " +
        std::to_string(next_sequence_) +
        "); the caller must buffer delayed batches");
  }
  return observe(batch);
}

StreamingBatchResult StreamingEmExt::observe(const Dataset& batch) {
  batch.validate();
  ++next_sequence_;
  std::size_t n = source_count();
  if (batch.source_count() != n) {
    throw std::invalid_argument(
        "StreamingEmExt::observe: batch source count mismatch");
  }
  std::size_t m = batch.assertion_count();

  // On the very first batch, bootstrap theta from the batch's vote
  // prior (independent support) exactly like the offline estimator.
  if (batches_ == 0) {
    EmExtConfig boot;
    boot.shrinkage = config_.shrinkage;
    boot.clamp_eps = config_.clamp_eps;
    boot.max_iters = 1;
    params_ = EmExtEstimator(boot).run_detailed(batch, 1).params;
  }

  // One likelihood table per batch, rebuilt in place each inner
  // iteration; the batch-statistics vectors are member scratch with
  // every slot assigned below. The pre-kernel loop constructed a fresh
  // table and nine fresh vectors per inner iteration.
  LikelihoodTable table(batch);
  std::vector<double>& posterior = posterior_;
  posterior.assign(m, 0.5);
  std::vector<double>& bz = batch_indep_z_;
  std::vector<double>& by = batch_indep_y_;
  std::vector<double>& dz = batch_dep_z_;
  std::vector<double>& dy = batch_dep_y_;
  std::vector<double>& da = batch_denom_a_;
  std::vector<double>& db = batch_denom_b_;
  std::vector<double>& df = batch_denom_f_;
  std::vector<double>& dg = batch_denom_g_;
  bool poisoned = false;
  for (std::size_t inner = 0; inner < config_.iters_per_batch; ++inner) {
    // E-step on this batch under the current theta.
    table.set_params(params_);
    all_posteriors(table, posterior);
    fault::maybe_corrupt_posterior(posterior);
    if (!all_finite(posterior)) {
      // Poisoned E-step: stop refining and withhold this batch's
      // statistics — a NaN folded into the decayed history would
      // corrupt every later batch.
      poisoned = true;
      break;
    }

    // Batch sufficient statistics.
    double total_z = 0.0;
    for (double p : posterior) total_z += p;
    double total_y = static_cast<double>(m) - total_z;
    for (std::size_t i = 0; i < n; ++i) {
      double exposed_z = kernels::gather_sum(
          batch.dependency.exposed_assertions(i), posterior.data());
      double exposed_count = static_cast<double>(
          batch.dependency.exposed_assertions(i).size());
      // Split claim lists from the partition cache replace the per-claim
      // dependency search; each accumulator keeps its addition order.
      kernels::MassPair dep = kernels::gather_mass(
          batch.partition().dependent_claims(i), posterior.data());
      kernels::MassPair indep = kernels::gather_mass(
          batch.partition().independent_claims(i), posterior.data());
      dz[i] = dep.z;
      dy[i] = dep.y;
      bz[i] = indep.z;
      by[i] = indep.y;
      da[i] = total_z - exposed_z;
      db[i] = total_y - (exposed_count - exposed_z);
      df[i] = exposed_z;
      dg[i] = exposed_count - exposed_z;
    }

    // Recursive update: decay history, add the batch. Only the final
    // inner iteration commits to the running statistics; earlier inner
    // iterations refine theta against a blended view so warm starts do
    // not double-count the batch.
    double lambda = config_.forgetting;
    auto blend = [&](const std::vector<double>& hist,
                     const std::vector<double>& fresh, std::size_t i) {
      return lambda * hist[i] + fresh[i];
    };

    // Pooled rates for shrinkage.
    double pnum_a = 0, pden_a = 0, pnum_b = 0, pden_b = 0;
    double pnum_f = 0, pden_f = 0, pnum_g = 0, pden_g = 0;
    for (std::size_t i = 0; i < n; ++i) {
      pnum_a += blend(stats_claim_indep_z_, bz, i);
      pden_a += blend(stats_denom_a_, da, i);
      pnum_b += blend(stats_claim_indep_y_, by, i);
      pden_b += blend(stats_denom_b_, db, i);
      pnum_f += blend(stats_claim_dep_z_, dz, i);
      pden_f += blend(stats_denom_f_, df, i);
      pnum_g += blend(stats_claim_dep_y_, dy, i);
      pden_g += blend(stats_denom_g_, dg, i);
    }
    auto pooled = [](double num, double den) {
      return den > 0.0 ? num / den : 0.5;
    };
    double mu_a = pooled(pnum_a, pden_a);
    double mu_b = pooled(pnum_b, pden_b);
    double mu_f = pooled(pnum_f, pden_f);
    double mu_g = pooled(pnum_g, pden_g);

    auto map_rate = [&](double num, double den, double mu,
                        double& out) {
      double cells = config_.shrinkage > 0.0
                         ? config_.shrinkage / std::max(mu, 1e-9)
                         : 0.0;
      double d = den + cells;
      if (d > 0.0) out = clamp_prob((num + cells * mu) / d,
                                    config_.clamp_eps);
    };
    for (std::size_t i = 0; i < n; ++i) {
      map_rate(blend(stats_claim_indep_z_, bz, i),
               blend(stats_denom_a_, da, i), mu_a, params_.source[i].a);
      map_rate(blend(stats_claim_indep_y_, by, i),
               blend(stats_denom_b_, db, i), mu_b, params_.source[i].b);
      map_rate(blend(stats_claim_dep_z_, dz, i),
               blend(stats_denom_f_, df, i), mu_f, params_.source[i].f);
      map_rate(blend(stats_claim_dep_y_, dy, i),
               blend(stats_denom_g_, dg, i), mu_g, params_.source[i].g);
    }
    params_.z = clamp_prob(
        (lambda * stats_z_num_ + total_z) /
            (lambda * stats_z_den_ + static_cast<double>(m)),
        config_.clamp_eps);
    if (config_.z_floor > 0.0) {
      params_.z = std::clamp(params_.z, config_.z_floor,
                             1.0 - config_.z_floor);
    }

    if (inner + 1 == config_.iters_per_batch) {
      for (std::size_t i = 0; i < n; ++i) {
        stats_claim_indep_z_[i] = blend(stats_claim_indep_z_, bz, i);
        stats_claim_indep_y_[i] = blend(stats_claim_indep_y_, by, i);
        stats_claim_dep_z_[i] = blend(stats_claim_dep_z_, dz, i);
        stats_claim_dep_y_[i] = blend(stats_claim_dep_y_, dy, i);
        stats_denom_a_[i] = blend(stats_denom_a_, da, i);
        stats_denom_b_[i] = blend(stats_denom_b_, db, i);
        stats_denom_f_[i] = blend(stats_denom_f_, df, i);
        stats_denom_g_[i] = blend(stats_denom_g_, dg, i);
      }
      stats_z_num_ = lambda * stats_z_num_ + total_z;
      stats_z_den_ = lambda * stats_z_den_ + static_cast<double>(m);
    }
  }
  if (poisoned) ++skipped_batches_;
  ++batches_;

  StreamingBatchResult result;
  result.stats_committed = !poisoned;
  // The result vectors are moved to the caller, so (unlike the scratch
  // above) there is nothing to reuse here.
  table.set_params(params_);
  ThreadPool* pool = config_.pool != nullptr ? config_.pool : &global_pool();
  EStepResult e = fused_e_step(table, pool);
  fault::maybe_corrupt_posterior(e.posterior);
  result.belief = std::move(e.posterior);
  result.log_odds = std::move(e.log_odds);
  result.log_likelihood = e.log_likelihood;
  // The caller owns these beliefs (ranking, dashboards): non-finite
  // entries come back neutral, never NaN.
  for (std::size_t j = 0; j < result.belief.size(); ++j) {
    if (!std::isfinite(result.belief[j]) ||
        !std::isfinite(result.log_odds[j])) {
      result.belief[j] = 0.5;
      result.log_odds[j] = 0.0;
      ++result.sanitized_beliefs;
    }
  }
  if (!std::isfinite(result.log_likelihood)) result.log_likelihood = 0.0;
  return result;
}

void StreamingEmExt::save_state(BinWriter& writer) const {
  std::size_t n = source_count();
  writer.u64(n);
  writer.u64(batches_);
  writer.u64(skipped_batches_);
  writer.u64(stale_batches_);
  writer.u64(next_sequence_);
  writer.f64(params_.z);
  for (const SourceParams& s : params_.source) {
    writer.f64(s.a);
    writer.f64(s.b);
    writer.f64(s.f);
    writer.f64(s.g);
  }
  writer.vec_f64(stats_claim_indep_z_);
  writer.vec_f64(stats_claim_indep_y_);
  writer.vec_f64(stats_claim_dep_z_);
  writer.vec_f64(stats_claim_dep_y_);
  writer.vec_f64(stats_denom_a_);
  writer.vec_f64(stats_denom_b_);
  writer.vec_f64(stats_denom_f_);
  writer.vec_f64(stats_denom_g_);
  writer.f64(stats_z_num_);
  writer.f64(stats_z_den_);
}

void StreamingEmExt::load_state(BinReader& reader) {
  std::size_t n = source_count();
  std::uint64_t stored = reader.u64();
  if (stored != n) {
    throw std::runtime_error(
        "StreamingEmExt::load_state: source universe mismatch (state "
        "has " +
        std::to_string(stored) + " sources, instance has " +
        std::to_string(n) + ")");
  }
  batches_ = reader.u64();
  skipped_batches_ = reader.u64();
  stale_batches_ = reader.u64();
  next_sequence_ = reader.u64();
  params_.z = reader.f64();
  params_.source.assign(n, SourceParams{});
  for (SourceParams& s : params_.source) {
    s.a = reader.f64();
    s.b = reader.f64();
    s.f = reader.f64();
    s.g = reader.f64();
  }
  auto load_vec = [&](std::vector<double>& out, const char* what) {
    std::vector<double> v = reader.vec_f64();
    if (v.size() != n) {
      throw std::runtime_error(
          std::string("StreamingEmExt::load_state: ") + what +
          " length mismatch");
    }
    out = std::move(v);
  };
  load_vec(stats_claim_indep_z_, "stats_claim_indep_z");
  load_vec(stats_claim_indep_y_, "stats_claim_indep_y");
  load_vec(stats_claim_dep_z_, "stats_claim_dep_z");
  load_vec(stats_claim_dep_y_, "stats_claim_dep_y");
  load_vec(stats_denom_a_, "stats_denom_a");
  load_vec(stats_denom_b_, "stats_denom_b");
  load_vec(stats_denom_f_, "stats_denom_f");
  load_vec(stats_denom_g_, "stats_denom_g");
  stats_z_num_ = reader.f64();
  stats_z_den_ = reader.f64();
}

}  // namespace ss
