#include "core/em_ext.h"

#include <algorithm>
#include <vector>

#include "core/em_driver.h"
#include "core/em_mstep.h"
#include "core/likelihood.h"
#include "core/posterior.h"
#include "math/kernels.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// Sources per parallel chunk of the M-step statistics pass. Fixed so
// slot writes are identical for any worker count.
constexpr std::size_t kSourceGrain = 256;

std::vector<std::uint32_t> ranking_of(const std::vector<double>& belief) {
  std::vector<std::uint32_t> order(belief.size());
  for (std::size_t j = 0; j < belief.size(); ++j) {
    order[j] = static_cast<std::uint32_t>(j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return belief[x] > belief[y];
                   });
  return order;
}

// The flat (single global CSR) engine: LikelihoodTable + fused_e_step
// for the E-step, ClaimPartition gathers + the shared serial tail for
// the M-step. The em_detail::run_em_driver template supplies the outer
// loop (init, warm-up, retries, restarts, checkpointing).
class FlatEmEngine {
 public:
  FlatEmEngine(const Dataset& dataset, const EmExtConfig& config,
               ThreadPool* pool)
      : dataset_(dataset), config_(config), pool_(pool) {}

  struct Scratch {
    LikelihoodTable table;
    EStepResult e;
    std::vector<double> column_ll;
    std::vector<em_detail::SourceMStatsPacked> mstats;
  };

  std::size_t source_count() const { return dataset_.source_count(); }
  std::size_t assertion_count() const {
    return dataset_.assertion_count();
  }
  std::uint64_t claim_count() const {
    return static_cast<std::uint64_t>(dataset_.claims.claim_count());
  }
  ThreadPool* pool() const { return pool_; }

  Scratch make_scratch() const {
    return Scratch{LikelihoodTable(dataset_), EStepResult{}, {}, {}};
  }

  void e_step(const ModelParams& params, Scratch& s) const {
    s.table.set_params(params);
    fused_e_step(s.table, pool_, s.e, s.column_ll);
  }

  // Closed-form M-step (Eq. 10-14) given the current posterior,
  // applied to `params` in place. The per-source statistics fill runs
  // in parallel source chunks (each source owns its slot, and every
  // stats field is written, so no pre-zeroing pass is needed); the
  // pooled reduction and the fused update/sanitize/tie/delta pass run
  // in em_detail::finalize_m_step_fused — tree-shaped and chunked, so
  // the result is bit-identical for any worker count. Scratch's stats
  // vector is reused across EM iterations (a fresh vector here would
  // churn the heap every M-step).
  void m_step(const std::vector<double>& posterior, ModelParams& params,
              bool tie_fg, Scratch& s,
              em_detail::MStepOutcome& out) const {
    std::size_t n = dataset_.source_count();
    std::size_t m = dataset_.assertion_count();
    const ClaimPartition& part = dataset_.partition();
    double total_z =
        kernels::tree_sum(pool_, posterior.data(), posterior.size());

    std::vector<em_detail::SourceMStatsPacked>& stats = s.mstats;
    stats.resize(n);
    auto fill = [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        em_detail::SourceMStatsPacked& st = stats[i];
        // Sum of Z_j over exposed cells of i.
        double exposed_z = kernels::gather_sum(
            dataset_.dependency.exposed_assertions(i), posterior.data());
        double exposed_count = static_cast<double>(
            dataset_.dependency.exposed_assertions(i).size());
        // The partition's split claim lists are ascending subsequences
        // of claims_of(i), so each accumulator sees the same addition
        // order as the branch-per-claim loop they replace.
        kernels::MassPair dep = kernels::gather_mass(
            part.dependent_claims(i), posterior.data());
        kernels::MassPair indep = kernels::gather_mass(
            part.independent_claims(i), posterior.data());
        st.claim_dep_z = dep.z;
        st.claim_dep_y = dep.y;
        st.claim_indep_z = indep.z;
        st.claim_indep_y = indep.y;
        // Packed exposure pair; the update denominators are derived at
        // consumption time with the identical fl-op order (see
        // SourceMStatsPacked in em_mstep.h).
        st.exposed_z = exposed_z;
        st.exposed_count = exposed_count;
      }
    };
    if (pool_ != nullptr && pool_->size() > 1 && n > kSourceGrain) {
      pool_->parallel_for_chunks(n, kSourceGrain, fill);
    } else {
      fill(0, 0, n);
    }
    em_detail::finalize_m_step_fused(stats, total_z, m, params,
                                     config_.clamp_eps, config_.shrinkage,
                                     config_.z_floor, tie_fg, pool_, out);
  }

  std::vector<double> vote_prior(bool independent_only) const {
    return vote_prior_posterior(dataset_, independent_only);
  }

  bool degenerate_source(std::size_t i) const {
    return dataset_.claims.claims_of(i).empty() &&
           dataset_.dependency.exposed_assertions(i).empty();
  }

 private:
  const Dataset& dataset_;
  const EmExtConfig& config_;
  ThreadPool* pool_;
};

}  // namespace

std::vector<std::uint32_t> EstimateResult::ranking() const {
  return ranking_of(log_odds.size() == belief.size() && !belief.empty()
                        ? log_odds
                        : belief);
}

std::vector<double> vote_prior_posterior(const Dataset& dataset,
                                         bool independent_only) {
  std::size_t m = dataset.assertion_count();
  std::vector<double> posterior(m, 0.5);
  if (m == 0) return posterior;
  std::vector<double> support(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    support[j] = static_cast<double>(
        independent_only ? dataset.partition().independent_claimants(j).size()
                         : dataset.claims.support(j));
  }
  // Tree-shaped like every other global fold (bit-exact no-op here:
  // support counts are integer-valued doubles, so the tree's regrouped
  // partial sums are exact at any shape).
  double mean_support = kernels::tree_sum(nullptr, support.data(), m);
  mean_support /= static_cast<double>(m);
  if (mean_support <= 0.0) return posterior;
  for (std::size_t j = 0; j < m; ++j) {
    posterior[j] =
        std::clamp(support[j] / (support[j] + mean_support), 0.05, 0.95);
  }
  return posterior;
}

EmExtEstimator::EmExtEstimator(EmExtConfig config)
    : config_(std::move(config)) {}

EstimateResult EmExtEstimator::run(const Dataset& dataset,
                                   std::uint64_t seed) const {
  return run_detailed(dataset, seed).estimate;
}

EmExtResult EmExtEstimator::run_detailed(const Dataset& dataset,
                                         std::uint64_t seed) const {
  dataset.validate();
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &global_pool();
  FlatEmEngine engine(dataset, config_, pool);
  return em_detail::run_em_driver(engine, config_, seed);
}

}  // namespace ss
