#include "core/em_ext.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/likelihood.h"
#include "core/posterior.h"
#include "math/convergence.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "util/checkpoint.h"
#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// CheckpointStore kind tag for EM restart attempts.
constexpr std::uint64_t kEmExtCheckpointKind = 1;
// Split-key base for divergence-recovery re-seeds; offset past any
// plausible attempt index so retry streams never collide with the
// attempts' own init streams.
constexpr std::uint64_t kReseedKeyBase = 0x52450000ull;

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Replaces non-finite parameter estimates with their previous values.
// A non-finite rate cannot come from clean data — every M-step ratio is
// clamped — so keep-previous is the only update that cannot make things
// worse. Returns the number of replacements.
std::size_t sanitize_params(ModelParams& next, const ModelParams& prev) {
  std::size_t fixed = 0;
  auto fix = [&fixed](double& value, double fallback) {
    if (!std::isfinite(value)) {
      value = fallback;
      ++fixed;
    }
  };
  for (std::size_t i = 0; i < next.source.size(); ++i) {
    fix(next.source[i].a, prev.source[i].a);
    fix(next.source[i].b, prev.source[i].b);
    fix(next.source[i].f, prev.source[i].f);
    fix(next.source[i].g, prev.source[i].g);
  }
  fix(next.z, prev.z);
  return fixed;
}

// One completed restart attempt, serialized bit-exact for
// CheckpointStore — everything the winner selection and the final
// result need, so a resumed run is indistinguishable from an
// uninterrupted one.
std::string encode_attempt(const EmExtResult& r) {
  BinWriter w;
  w.vec_f64(r.estimate.belief);
  w.vec_f64(r.estimate.log_odds);
  w.u64(r.estimate.iterations);
  w.u8(r.estimate.converged ? 1 : 0);
  w.vec_f64(r.likelihood_trace);
  w.f64(r.log_likelihood);
  w.f64(r.params.z);
  w.u64(r.params.source.size());
  for (const SourceParams& s : r.params.source) {
    w.f64(s.a);
    w.f64(s.b);
    w.f64(s.f);
    w.f64(s.g);
  }
  w.u64(r.health.nonfinite_events);
  w.u64(r.health.reseeded_attempts);
  w.u64(r.health.failed_attempts);
  w.u64(r.health.sanitized_params);
  return w.take();
}

// Throws std::runtime_error on any malformed payload; the caller treats
// that as "record absent" and recomputes the attempt.
EmExtResult decode_attempt(const std::string& bytes) {
  BinReader rd(bytes);
  EmExtResult r;
  r.estimate.belief = rd.vec_f64();
  r.estimate.log_odds = rd.vec_f64();
  r.estimate.iterations = static_cast<std::size_t>(rd.u64());
  r.estimate.converged = rd.u8() != 0;
  r.estimate.probabilistic = true;
  r.likelihood_trace = rd.vec_f64();
  r.log_likelihood = rd.f64();
  r.params.z = rd.f64();
  std::uint64_t n = rd.u64();
  if (n > bytes.size()) {  // 32 bytes per source; reject garbage counts
    throw std::runtime_error("checkpoint: truncated payload");
  }
  r.params.source.resize(static_cast<std::size_t>(n));
  for (SourceParams& s : r.params.source) {
    s.a = rd.f64();
    s.b = rd.f64();
    s.f = rd.f64();
    s.g = rd.f64();
  }
  r.health.nonfinite_events = static_cast<std::size_t>(rd.u64());
  r.health.reseeded_attempts = static_cast<std::size_t>(rd.u64());
  r.health.failed_attempts = static_cast<std::size_t>(rd.u64());
  r.health.sanitized_params = static_cast<std::size_t>(rd.u64());
  r.health.resumed_attempts = 1;
  if (!rd.done()) {
    throw std::runtime_error("checkpoint: trailing bytes");
  }
  return r;
}

// Sources per parallel chunk of the M-step statistics pass. Fixed so
// slot writes are identical for any worker count.
constexpr std::size_t kSourceGrain = 256;

std::vector<std::uint32_t> ranking_of(const std::vector<double>& belief) {
  std::vector<std::uint32_t> order(belief.size());
  for (std::size_t j = 0; j < belief.size(); ++j) {
    order[j] = static_cast<std::uint32_t>(j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return belief[x] > belief[y];
                   });
  return order;
}

// Per-source sufficient statistics for one M-step.
struct SourceMStats {
  double claim_indep_z = 0.0;  // claims with D_ij = 0, weighted by Z_j
  double claim_indep_y = 0.0;
  double claim_dep_z = 0.0;  // claims with D_ij = 1
  double claim_dep_y = 0.0;
  double denom_a = 0.0;  // Z mass over D_ij = 0 cells
  double denom_b = 0.0;
  double denom_f = 0.0;  // Z mass over D_ij = 1 (exposed) cells
  double denom_g = 0.0;
};

// Closed-form M-step (Eq. 10-14) given the current posterior. With
// shrinkage > 0 each ratio becomes a MAP estimate with `shrinkage`
// pseudo-observations at the pooled all-source rate (see EmExtConfig).
// The per-source statistics fill runs in parallel source chunks (each
// source owns its slot); the pooled reduction and the parameter updates
// stay serial in source order, so the result is bit-identical for any
// worker count. `stats` is caller-owned scratch, reused across EM
// iterations (a fresh vector here would churn the heap every M-step).
ModelParams m_step(const Dataset& dataset,
                   const std::vector<double>& posterior,
                   const ModelParams& previous, double clamp_eps,
                   double shrinkage, double z_floor, ThreadPool* pool,
                   std::vector<SourceMStats>& stats) {
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  const ClaimPartition& part = dataset.partition();
  double total_z = 0.0;
  for (double p : posterior) total_z += p;
  double total_y = static_cast<double>(m) - total_z;

  stats.assign(n, SourceMStats{});
  auto fill = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      SourceMStats& s = stats[i];
      // Sum of Z_j over exposed cells of i.
      double exposed_z = kernels::gather_sum(
          dataset.dependency.exposed_assertions(i), posterior.data());
      double exposed_count = static_cast<double>(
          dataset.dependency.exposed_assertions(i).size());
      // The partition's split claim lists are ascending subsequences of
      // claims_of(i), so each accumulator sees the same addition order
      // as the branch-per-claim loop they replace.
      kernels::MassPair dep =
          kernels::gather_mass(part.dependent_claims(i), posterior.data());
      kernels::MassPair indep = kernels::gather_mass(
          part.independent_claims(i), posterior.data());
      s.claim_dep_z = dep.z;
      s.claim_dep_y = dep.y;
      s.claim_indep_z = indep.z;
      s.claim_indep_y = indep.y;
      s.denom_a = total_z - exposed_z;
      s.denom_b = total_y - (exposed_count - exposed_z);
      s.denom_f = exposed_z;
      s.denom_g = exposed_count - exposed_z;
    }
  };
  if (pool != nullptr && pool->size() > 1 && n > kSourceGrain) {
    pool->parallel_for_chunks(n, kSourceGrain, fill);
  } else {
    fill(0, 0, n);
  }

  // Pooled rates anchor the shrinkage prior.
  SourceMStats pooled;
  for (const SourceMStats& s : stats) {
    pooled.claim_indep_z += s.claim_indep_z;
    pooled.claim_indep_y += s.claim_indep_y;
    pooled.claim_dep_z += s.claim_dep_z;
    pooled.claim_dep_y += s.claim_dep_y;
    pooled.denom_a += s.denom_a;
    pooled.denom_b += s.denom_b;
    pooled.denom_f += s.denom_f;
    pooled.denom_g += s.denom_g;
  }
  auto rate = [](double num, double denom, double fallback) {
    return denom > 0.0 ? num / denom : fallback;
  };
  double mu_a = rate(pooled.claim_indep_z, pooled.denom_a, 0.5);
  double mu_b = rate(pooled.claim_indep_y, pooled.denom_b, 0.5);
  double mu_f = rate(pooled.claim_dep_z, pooled.denom_f, 0.5);
  double mu_g = rate(pooled.claim_dep_y, pooled.denom_g, 0.5);

  ModelParams next = previous;
  next.source.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceMStats& s = stats[i];
    // Beta-prior MAP with mean mu and strength `shrinkage` pseudo-claims
    // (shrinkage/mu pseudo-cells). Degenerate denominators with zero
    // shrinkage (a source exposed to everything, or a posterior
    // collapsed to one side) keep the previous estimate: those
    // parameters do not influence the likelihood.
    auto update = [&](double num, double denom, double mu, double& out) {
      double cells = shrinkage > 0.0
                         ? shrinkage / std::max(mu, 1e-9)
                         : 0.0;
      double d = denom + cells;
      if (d > 0.0) out = (num + cells * mu) / d;
    };
    update(s.claim_indep_z, s.denom_a, mu_a, next.source[i].a);
    update(s.claim_indep_y, s.denom_b, mu_b, next.source[i].b);
    update(s.claim_dep_z, s.denom_f, mu_f, next.source[i].f);
    update(s.claim_dep_y, s.denom_g, mu_g, next.source[i].g);
  }
  next.z = total_z / static_cast<double>(m);
  if (z_floor > 0.0) {
    next.z = std::clamp(next.z, z_floor, 1.0 - z_floor);
  }
  clamp_params(next, clamp_eps);
  return next;
}

}  // namespace

std::vector<std::uint32_t> EstimateResult::ranking() const {
  return ranking_of(log_odds.size() == belief.size() && !belief.empty()
                        ? log_odds
                        : belief);
}

std::vector<double> vote_prior_posterior(const Dataset& dataset,
                                         bool independent_only) {
  std::size_t m = dataset.assertion_count();
  std::vector<double> posterior(m, 0.5);
  if (m == 0) return posterior;
  std::vector<double> support(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    support[j] = static_cast<double>(
        independent_only ? dataset.partition().independent_claimants(j).size()
                         : dataset.claims.support(j));
  }
  double mean_support = 0.0;
  for (double s : support) mean_support += s;
  mean_support /= static_cast<double>(m);
  if (mean_support <= 0.0) return posterior;
  for (std::size_t j = 0; j < m; ++j) {
    posterior[j] =
        std::clamp(support[j] / (support[j] + mean_support), 0.05, 0.95);
  }
  return posterior;
}

EmExtEstimator::EmExtEstimator(EmExtConfig config)
    : config_(std::move(config)) {}

EstimateResult EmExtEstimator::run(const Dataset& dataset,
                                   std::uint64_t seed) const {
  return run_detailed(dataset, seed).estimate;
}

EmExtResult EmExtEstimator::run_detailed(const Dataset& dataset,
                                         std::uint64_t seed) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  if (dataset.assertion_count() == 0) {
    // Nothing to estimate; return a well-formed empty result.
    EmExtResult empty;
    empty.estimate.probabilistic = true;
    empty.params.source.assign(n, SourceParams{});
    return empty;
  }
  std::size_t m = dataset.assertion_count();
  ThreadPool* pool = config_.pool != nullptr ? config_.pool : &global_pool();
  Rng rng(seed, /*stream=*/0x37);

  bool random_init = !config_.init.has_value() &&
                     config_.init_kind == EmInit::kRandom;
  std::size_t restarts =
      random_init ? std::max<std::size_t>(1, config_.restarts) : 1;

  // One guarded EM run. Returns nullopt when an E-step went non-finite
  // (injected fault or pathological input) — the caller re-seeds and
  // retries rather than letting a NaN reach winner selection. retry > 0
  // always draws fresh random parameters: replaying a deterministic
  // initialization that already diverged would diverge again.
  auto run_attempt_once = [&](std::size_t attempt, std::size_t retry,
                              EmHealth& health)
      -> std::optional<EmExtResult> {
    // Per-attempt scratch, reused by every EM iteration below: the
    // likelihood table is rebuilt in place each M-step (set_params) and
    // the E-step/M-step buffers keep their capacity, so the iteration
    // loops run allocation-free.
    LikelihoodTable table(dataset);
    EStepResult e;
    std::vector<double> column_ll;
    std::vector<SourceMStats> mstats;
    ModelParams params;
    if (retry > 0) {
      Rng retry_rng = rng.split(kReseedKeyBase + attempt * 64 + retry);
      params = random_init_params(n, retry_rng);
    } else if (config_.init.has_value()) {
      params = *config_.init;
    } else if (random_init) {
      Rng attempt_rng = rng.split(attempt);
      params = random_init_params(n, attempt_rng);
    } else {
      // Vote prior: derive the initial parameters from a support-based
      // posterior via one M-step. Only independent claims count toward
      // the initial support — seeding belief from echo counts would let
      // a viral rumour enter the first M-step as "true", inflating f
      // relative to g and locking the dependent-claim semantics in
      // backwards.
      ModelParams neutral;
      neutral.source.assign(n, SourceParams{});
      params = m_step(dataset,
                      vote_prior_posterior(dataset,
                                           /*independent_only=*/true),
                      neutral, config_.clamp_eps, config_.shrinkage,
                      config_.z_floor, pool, mstats);
    }
    clamp_params(params, config_.clamp_eps);

    EmExtResult result;
    // Phase 1 (warm-up): f and g tied per source, which cancels every
    // dependent-branch factor from the posterior — labels form from
    // independent evidence only (see EmExtConfig::warmup_iters).
    std::size_t warmup = config_.init.has_value() || random_init
                             ? 0
                             : config_.warmup_iters;
    if (warmup > 0) {
      ConvergenceMonitor warm_monitor(config_.tol, warmup);
      bool warm_done = false;
      while (!warm_done) {
        table.set_params(params);
        fused_e_step(table, pool, e, column_ll);
        fault::maybe_corrupt_posterior(e.posterior);
        if (!std::isfinite(e.log_likelihood) || !all_finite(e.posterior)) {
          ++health.nonfinite_events;
          return std::nullopt;
        }
        result.likelihood_trace.push_back(e.log_likelihood);
        ModelParams next =
            m_step(dataset, e.posterior, params, config_.clamp_eps,
                   config_.shrinkage, config_.z_floor, pool, mstats);
        health.sanitized_params += sanitize_params(next, params);
        for (auto& s : next.source) {
          double tied = 0.5 * (s.f + s.g);
          s.f = tied;
          s.g = tied;
        }
        double delta = next.max_abs_diff(params);
        params = std::move(next);
        warm_done = warm_monitor.update_delta(delta);
      }
    }

    // Phase 2: the full model (Eq. 9 / Eq. 10-14). The fused E-step
    // yields the posterior and the likelihood trace in one column pass.
    ConvergenceMonitor monitor(config_.tol, config_.max_iters);
    bool done = false;
    while (!done) {
      // E-step (Eq. 9).
      table.set_params(params);
      fused_e_step(table, pool, e, column_ll);
      fault::maybe_corrupt_posterior(e.posterior);
      if (!std::isfinite(e.log_likelihood) || !all_finite(e.posterior)) {
        ++health.nonfinite_events;
        return std::nullopt;
      }
      result.likelihood_trace.push_back(e.log_likelihood);

      // M-step (Eq. 10-14).
      ModelParams next =
          m_step(dataset, e.posterior, params, config_.clamp_eps,
                 config_.shrinkage, config_.z_floor, pool, mstats);
      health.sanitized_params += sanitize_params(next, params);
      double delta = next.max_abs_diff(params);
      params = std::move(next);
      done = monitor.update_delta(delta);
    }

    // Final posterior under the converged parameters — one fused pass
    // supplies beliefs, log-odds and the final likelihood together
    // (previously three separate full column scans).
    table.set_params(params);
    fused_e_step(table, pool, e, column_ll);
    fault::maybe_corrupt_posterior(e.posterior);
    if (!std::isfinite(e.log_likelihood) || !all_finite(e.posterior)) {
      ++health.nonfinite_events;
      return std::nullopt;
    }
    result.estimate.belief = std::move(e.posterior);
    result.estimate.log_odds = std::move(e.log_odds);
    result.estimate.probabilistic = true;
    result.estimate.iterations = monitor.iterations();
    result.estimate.converged = !monitor.hit_max();
    result.params = std::move(params);
    result.log_likelihood = e.log_likelihood;
    return result;
  };

  // Retry wrapper: re-seed a diverged attempt up to
  // max_divergence_retries times; after that, fall back to the
  // data-driven vote prior with -inf likelihood, which can win only
  // when every attempt diverged — and even then the returned beliefs
  // are finite.
  auto run_attempt = [&](std::size_t attempt) -> EmExtResult {
    EmHealth health;
    for (std::size_t retry = 0;
         retry <= config_.max_divergence_retries; ++retry) {
      if (retry > 0) ++health.reseeded_attempts;
      std::optional<EmExtResult> r =
          run_attempt_once(attempt, retry, health);
      if (r.has_value()) {
        r->health = health;
        return *std::move(r);
      }
    }
    ++health.failed_attempts;
    EmExtResult r;
    r.estimate.belief = vote_prior_posterior(dataset);
    r.estimate.log_odds.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      double b = r.estimate.belief[j];  // clamped to [0.05, 0.95]
      r.estimate.log_odds[j] = logit(b);
    }
    r.estimate.probabilistic = true;
    r.estimate.converged = false;
    r.params.source.assign(n, SourceParams{});
    clamp_params(r.params, config_.clamp_eps);
    r.log_likelihood = -std::numeric_limits<double>::infinity();
    r.health = health;
    return r;
  };

  // Checkpoint store bound to everything that determines an attempt's
  // output; a stale file (different data, seed or config) is ignored.
  std::unique_ptr<CheckpointStore> ckpt;
  if (!config_.checkpoint_path.empty()) {
    std::uint64_t fp = fingerprint_combine(0x454d4558ull, seed);
    fp = fingerprint_combine(fp, static_cast<std::uint64_t>(n));
    fp = fingerprint_combine(fp, static_cast<std::uint64_t>(m));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(dataset.claims.claim_count()));
    fp = fingerprint_combine(fp, config_.tol);
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config_.max_iters));
    fp = fingerprint_combine(fp, config_.clamp_eps);
    fp = fingerprint_combine(fp, config_.shrinkage);
    fp = fingerprint_combine(fp, config_.z_floor);
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config_.warmup_iters));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config_.init_kind));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config_.max_divergence_retries));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config_.init.has_value()));
    ckpt = std::make_unique<CheckpointStore>(
        config_.checkpoint_path, kEmExtCheckpointKind, fp, restarts);
  }

  auto run_or_resume = [&](std::size_t attempt) -> EmExtResult {
    if (ckpt != nullptr && ckpt->has(attempt)) {
      try {
        return decode_attempt(ckpt->payload(attempt));
      } catch (const std::exception&) {
        // Undecodable record: recompute. A checkpoint can only save
        // work, never poison a run.
      }
    }
    EmExtResult r = run_attempt(attempt);
    if (ckpt != nullptr) {
      ckpt->commit(attempt, encode_attempt(r));
      fault::unit_committed();  // kill-after-commit injection point
    }
    return r;
  };

  std::vector<EmExtResult> attempts(restarts);
  if (restarts > 1) {
    // Random restarts are independent; run them across the pool (grain
    // 1: one attempt per chunk). Nested parallel sections inside each
    // attempt are safe because parallel_for_chunks callers participate.
    pool->parallel_for_chunks(
        restarts, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t a = begin; a < end; ++a) {
            attempts[a] = run_or_resume(a);
          }
        });
  } else {
    attempts[0] = run_or_resume(0);
  }

  // Winner selection in attempt order (first best wins ties), identical
  // to the sequential loop it replaces. Health aggregates over every
  // attempt, not just the winner.
  EmExtResult best;
  bool have_best = false;
  EmHealth total;
  for (EmExtResult& result : attempts) {
    total.nonfinite_events += result.health.nonfinite_events;
    total.reseeded_attempts += result.health.reseeded_attempts;
    total.failed_attempts += result.health.failed_attempts;
    total.sanitized_params += result.health.sanitized_params;
    total.resumed_attempts += result.health.resumed_attempts;
    if (!have_best || result.log_likelihood > best.log_likelihood) {
      best = std::move(result);
      have_best = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (dataset.claims.claims_of(i).empty() &&
        dataset.dependency.exposed_assertions(i).empty()) {
      ++total.degenerate_sources;
    }
  }
  best.health = total;
  if (ckpt != nullptr && !config_.keep_checkpoint) ckpt->remove_file();
  return best;
}

}  // namespace ss
