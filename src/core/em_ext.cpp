#include "core/em_ext.h"

#include <algorithm>
#include <cmath>

#include "core/likelihood.h"
#include "core/posterior.h"
#include "math/convergence.h"
#include "math/logprob.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// Sources per parallel chunk of the M-step statistics pass. Fixed so
// slot writes are identical for any worker count.
constexpr std::size_t kSourceGrain = 256;

std::vector<std::uint32_t> ranking_of(const std::vector<double>& belief) {
  std::vector<std::uint32_t> order(belief.size());
  for (std::size_t j = 0; j < belief.size(); ++j) {
    order[j] = static_cast<std::uint32_t>(j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return belief[x] > belief[y];
                   });
  return order;
}

// Per-source sufficient statistics for one M-step.
struct SourceMStats {
  double claim_indep_z = 0.0;  // claims with D_ij = 0, weighted by Z_j
  double claim_indep_y = 0.0;
  double claim_dep_z = 0.0;  // claims with D_ij = 1
  double claim_dep_y = 0.0;
  double denom_a = 0.0;  // Z mass over D_ij = 0 cells
  double denom_b = 0.0;
  double denom_f = 0.0;  // Z mass over D_ij = 1 (exposed) cells
  double denom_g = 0.0;
};

// Closed-form M-step (Eq. 10-14) given the current posterior. With
// shrinkage > 0 each ratio becomes a MAP estimate with `shrinkage`
// pseudo-observations at the pooled all-source rate (see EmExtConfig).
// The per-source statistics fill runs in parallel source chunks (each
// source owns its slot); the pooled reduction and the parameter updates
// stay serial in source order, so the result is bit-identical for any
// worker count.
ModelParams m_step(const Dataset& dataset,
                   const std::vector<double>& posterior,
                   const ModelParams& previous, double clamp_eps,
                   double shrinkage, double z_floor, ThreadPool* pool) {
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  const ClaimPartition& part = dataset.partition();
  double total_z = 0.0;
  for (double p : posterior) total_z += p;
  double total_y = static_cast<double>(m) - total_z;

  std::vector<SourceMStats> stats(n);
  auto fill = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      SourceMStats& s = stats[i];
      double exposed_z = 0.0;  // sum of Z_j over exposed cells of i
      for (std::uint32_t j : dataset.dependency.exposed_assertions(i)) {
        exposed_z += posterior[j];
      }
      double exposed_count = static_cast<double>(
          dataset.dependency.exposed_assertions(i).size());
      // The partition's split claim lists are ascending subsequences of
      // claims_of(i), so each accumulator sees the same addition order
      // as the branch-per-claim loop they replace.
      for (std::uint32_t j : part.dependent_claims(i)) {
        s.claim_dep_z += posterior[j];
        s.claim_dep_y += 1.0 - posterior[j];
      }
      for (std::uint32_t j : part.independent_claims(i)) {
        s.claim_indep_z += posterior[j];
        s.claim_indep_y += 1.0 - posterior[j];
      }
      s.denom_a = total_z - exposed_z;
      s.denom_b = total_y - (exposed_count - exposed_z);
      s.denom_f = exposed_z;
      s.denom_g = exposed_count - exposed_z;
    }
  };
  if (pool != nullptr && pool->size() > 1 && n > kSourceGrain) {
    pool->parallel_for_chunks(n, kSourceGrain, fill);
  } else {
    fill(0, 0, n);
  }

  // Pooled rates anchor the shrinkage prior.
  SourceMStats pooled;
  for (const SourceMStats& s : stats) {
    pooled.claim_indep_z += s.claim_indep_z;
    pooled.claim_indep_y += s.claim_indep_y;
    pooled.claim_dep_z += s.claim_dep_z;
    pooled.claim_dep_y += s.claim_dep_y;
    pooled.denom_a += s.denom_a;
    pooled.denom_b += s.denom_b;
    pooled.denom_f += s.denom_f;
    pooled.denom_g += s.denom_g;
  }
  auto rate = [](double num, double denom, double fallback) {
    return denom > 0.0 ? num / denom : fallback;
  };
  double mu_a = rate(pooled.claim_indep_z, pooled.denom_a, 0.5);
  double mu_b = rate(pooled.claim_indep_y, pooled.denom_b, 0.5);
  double mu_f = rate(pooled.claim_dep_z, pooled.denom_f, 0.5);
  double mu_g = rate(pooled.claim_dep_y, pooled.denom_g, 0.5);

  ModelParams next = previous;
  next.source.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceMStats& s = stats[i];
    // Beta-prior MAP with mean mu and strength `shrinkage` pseudo-claims
    // (shrinkage/mu pseudo-cells). Degenerate denominators with zero
    // shrinkage (a source exposed to everything, or a posterior
    // collapsed to one side) keep the previous estimate: those
    // parameters do not influence the likelihood.
    auto update = [&](double num, double denom, double mu, double& out) {
      double cells = shrinkage > 0.0
                         ? shrinkage / std::max(mu, 1e-9)
                         : 0.0;
      double d = denom + cells;
      if (d > 0.0) out = (num + cells * mu) / d;
    };
    update(s.claim_indep_z, s.denom_a, mu_a, next.source[i].a);
    update(s.claim_indep_y, s.denom_b, mu_b, next.source[i].b);
    update(s.claim_dep_z, s.denom_f, mu_f, next.source[i].f);
    update(s.claim_dep_y, s.denom_g, mu_g, next.source[i].g);
  }
  next.z = total_z / static_cast<double>(m);
  if (z_floor > 0.0) {
    next.z = std::clamp(next.z, z_floor, 1.0 - z_floor);
  }
  clamp_params(next, clamp_eps);
  return next;
}

}  // namespace

std::vector<std::uint32_t> EstimateResult::ranking() const {
  return ranking_of(log_odds.size() == belief.size() && !belief.empty()
                        ? log_odds
                        : belief);
}

std::vector<double> vote_prior_posterior(const Dataset& dataset,
                                         bool independent_only) {
  std::size_t m = dataset.assertion_count();
  std::vector<double> posterior(m, 0.5);
  if (m == 0) return posterior;
  std::vector<double> support(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    support[j] = static_cast<double>(
        independent_only ? dataset.partition().independent_claimants(j).size()
                         : dataset.claims.support(j));
  }
  double mean_support = 0.0;
  for (double s : support) mean_support += s;
  mean_support /= static_cast<double>(m);
  if (mean_support <= 0.0) return posterior;
  for (std::size_t j = 0; j < m; ++j) {
    posterior[j] =
        std::clamp(support[j] / (support[j] + mean_support), 0.05, 0.95);
  }
  return posterior;
}

EmExtEstimator::EmExtEstimator(EmExtConfig config)
    : config_(std::move(config)) {}

EstimateResult EmExtEstimator::run(const Dataset& dataset,
                                   std::uint64_t seed) const {
  return run_detailed(dataset, seed).estimate;
}

EmExtResult EmExtEstimator::run_detailed(const Dataset& dataset,
                                         std::uint64_t seed) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  if (dataset.assertion_count() == 0) {
    // Nothing to estimate; return a well-formed empty result.
    EmExtResult empty;
    empty.estimate.probabilistic = true;
    empty.params.source.assign(n, SourceParams{});
    return empty;
  }
  ThreadPool* pool = config_.pool != nullptr ? config_.pool : &global_pool();
  Rng rng(seed, /*stream=*/0x37);

  bool random_init = !config_.init.has_value() &&
                     config_.init_kind == EmInit::kRandom;
  std::size_t restarts =
      random_init ? std::max<std::size_t>(1, config_.restarts) : 1;

  auto run_attempt = [&](std::size_t attempt) -> EmExtResult {
    ModelParams params;
    if (config_.init.has_value()) {
      params = *config_.init;
    } else if (random_init) {
      Rng attempt_rng = rng.split(attempt);
      params = random_init_params(n, attempt_rng);
    } else {
      // Vote prior: derive the initial parameters from a support-based
      // posterior via one M-step. Only independent claims count toward
      // the initial support — seeding belief from echo counts would let
      // a viral rumour enter the first M-step as "true", inflating f
      // relative to g and locking the dependent-claim semantics in
      // backwards.
      ModelParams neutral;
      neutral.source.assign(n, SourceParams{});
      params = m_step(dataset,
                      vote_prior_posterior(dataset,
                                           /*independent_only=*/true),
                      neutral, config_.clamp_eps, config_.shrinkage,
                      config_.z_floor, pool);
    }
    clamp_params(params, config_.clamp_eps);

    EmExtResult result;
    // Phase 1 (warm-up): f and g tied per source, which cancels every
    // dependent-branch factor from the posterior — labels form from
    // independent evidence only (see EmExtConfig::warmup_iters).
    std::size_t warmup = config_.init.has_value() || random_init
                             ? 0
                             : config_.warmup_iters;
    if (warmup > 0) {
      ConvergenceMonitor warm_monitor(config_.tol, warmup);
      bool warm_done = false;
      while (!warm_done) {
        LikelihoodTable table(dataset, params);
        EStepResult e = fused_e_step(table, pool);
        result.likelihood_trace.push_back(e.log_likelihood);
        ModelParams next =
            m_step(dataset, e.posterior, params, config_.clamp_eps,
                   config_.shrinkage, config_.z_floor, pool);
        for (auto& s : next.source) {
          double tied = 0.5 * (s.f + s.g);
          s.f = tied;
          s.g = tied;
        }
        double delta = next.max_abs_diff(params);
        params = std::move(next);
        warm_done = warm_monitor.update_delta(delta);
      }
    }

    // Phase 2: the full model (Eq. 9 / Eq. 10-14). The fused E-step
    // yields the posterior and the likelihood trace in one column pass.
    ConvergenceMonitor monitor(config_.tol, config_.max_iters);
    bool done = false;
    while (!done) {
      // E-step (Eq. 9).
      LikelihoodTable table(dataset, params);
      EStepResult e = fused_e_step(table, pool);
      result.likelihood_trace.push_back(e.log_likelihood);

      // M-step (Eq. 10-14).
      ModelParams next =
          m_step(dataset, e.posterior, params, config_.clamp_eps,
                 config_.shrinkage, config_.z_floor, pool);
      double delta = next.max_abs_diff(params);
      params = std::move(next);
      done = monitor.update_delta(delta);
    }

    // Final posterior under the converged parameters — one fused pass
    // supplies beliefs, log-odds and the final likelihood together
    // (previously three separate full column scans).
    LikelihoodTable table(dataset, params);
    EStepResult e = fused_e_step(table, pool);
    result.estimate.belief = std::move(e.posterior);
    result.estimate.log_odds = std::move(e.log_odds);
    result.estimate.probabilistic = true;
    result.estimate.iterations = monitor.iterations();
    result.estimate.converged = !monitor.hit_max();
    result.params = std::move(params);
    result.log_likelihood = e.log_likelihood;
    return result;
  };

  std::vector<EmExtResult> attempts(restarts);
  if (restarts > 1) {
    // Random restarts are independent; run them across the pool (grain
    // 1: one attempt per chunk). Nested parallel sections inside each
    // attempt are safe because parallel_for_chunks callers participate.
    pool->parallel_for_chunks(
        restarts, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t a = begin; a < end; ++a) {
            attempts[a] = run_attempt(a);
          }
        });
  } else {
    attempts[0] = run_attempt(0);
  }

  // Winner selection in attempt order (first best wins ties), identical
  // to the sequential loop it replaces.
  EmExtResult best;
  bool have_best = false;
  for (EmExtResult& result : attempts) {
    if (!have_best || result.log_likelihood > best.log_likelihood) {
      best = std::move(result);
      have_best = true;
    }
  }
  return best;
}

}  // namespace ss
