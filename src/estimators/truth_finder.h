// Truth-Finder baseline (Yin, Han & Yu, TKDE 2008).
//
// Couples source trustworthiness and claim confidence:
//   tau(s)   = -ln(1 - t(s))                  (trust score)
//   sigma(c) = sum of tau(s) over claimants   (raw confidence)
//   conf(c)  = 1 / (1 + exp(-gamma * sigma(c)))
//   t(s)     = average conf over s's claims
// iterated until the source-trust vector stabilizes (cosine similarity).
// The inter-claim "implication" term of the original paper does not apply
// to independent binary assertions and is omitted, as in the paper's use
// of this baseline.
#pragma once

#include "core/estimator.h"

namespace ss {

struct TruthFinderConfig {
  double initial_trust = 0.9;
  double gamma = 0.3;       // dampening factor from the original paper
  double tol = 1e-6;        // on 1 - cosine(trust, previous trust)
  std::size_t max_iters = 100;
  double max_trust = 1.0 - 1e-9;  // keeps tau finite
};

class TruthFinderEstimator : public Estimator {
 public:
  explicit TruthFinderEstimator(TruthFinderConfig config = {});

  std::string name() const override { return "Truth-Finder"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

 private:
  TruthFinderConfig config_;
};

}  // namespace ss
