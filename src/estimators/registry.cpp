#include "estimators/registry.h"

#include <stdexcept>

#include "core/em_ext.h"
#include "estimators/average_log.h"
#include "estimators/em_ipsn12.h"
#include "estimators/em_social.h"
#include "estimators/investment.h"
#include "estimators/sums.h"
#include "estimators/truth_finder.h"
#include "estimators/voting.h"

namespace ss {

std::vector<std::string> estimator_names() {
  return {"EM-Ext", "EM-Social", "EM",          "Voting",
          "Sums",   "Average.Log", "Truth-Finder"};
}

std::vector<std::string> extended_estimator_names() {
  auto names = estimator_names();
  names.push_back("Investment");
  return names;
}

std::unique_ptr<Estimator> make_estimator(const std::string& name) {
  if (name == "EM-Ext") return std::make_unique<EmExtEstimator>();
  if (name == "EM-Social") return std::make_unique<EmSocialEstimator>();
  if (name == "EM") return std::make_unique<EmIpsn12Estimator>();
  if (name == "Voting") return std::make_unique<VotingEstimator>();
  if (name == "Sums") return std::make_unique<SumsEstimator>();
  if (name == "Average.Log") return std::make_unique<AverageLogEstimator>();
  if (name == "Truth-Finder") return std::make_unique<TruthFinderEstimator>();
  if (name == "Investment") return std::make_unique<InvestmentEstimator>();
  throw std::invalid_argument("make_estimator: unknown estimator " + name);
}

std::vector<std::unique_ptr<Estimator>> make_all_estimators() {
  std::vector<std::unique_ptr<Estimator>> out;
  for (const std::string& name : estimator_names()) {
    out.push_back(make_estimator(name));
  }
  return out;
}

}  // namespace ss
