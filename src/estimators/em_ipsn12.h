// EM (IPSN 2012) baseline — Wang et al., "On Truth Discovery in Social
// Sensing: A Maximum Likelihood Estimation Approach".
//
// Jointly estimates per-source reliabilities (a_i, b_i) and assertion
// truth values under the assumption that *all* sources are independent:
// the dependency indicators are ignored entirely. This is the estimator
// whose false-positive rate degrades as dependent sources multiply
// (paper Fig. 7), motivating EM-Ext.
#pragma once

#include "core/estimator.h"
#include "core/params.h"

namespace ss {

struct EmIpsn12Config {
  double tol = 1e-6;
  std::size_t max_iters = 200;
  double clamp_eps = 1e-6;
  // MAP pseudo-observations toward the pooled rate, matching EM-Ext's
  // hierarchical shrinkage so estimator comparisons isolate the
  // dependency model rather than the regularizer (DESIGN.md §5).
  double shrinkage = 8.0;
  // Bounds on the learned prior z (see EmExtConfig::z_floor).
  double z_floor = 0.05;
};

struct EmIpsn12Result {
  EstimateResult estimate;
  std::vector<double> a;  // P(claim | true)
  std::vector<double> b;  // P(claim | false)
  double z = 0.5;
};

class EmIpsn12Estimator : public Estimator {
 public:
  explicit EmIpsn12Estimator(EmIpsn12Config config = {});

  std::string name() const override { return "EM"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;
  EmIpsn12Result run_detailed(const Dataset& dataset,
                              std::uint64_t seed) const;

 private:
  EmIpsn12Config config_;
};

}  // namespace ss
