#include "estimators/average_log.h"

#include <cmath>

#include "math/kernels.h"
#include "math/matrix.h"

namespace ss {

AverageLogEstimator::AverageLogEstimator(AverageLogConfig config)
    : config_(config) {}

EstimateResult AverageLogEstimator::run(const Dataset& dataset,
                                        std::uint64_t /*seed*/) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  std::vector<double> trust(n, 1.0);
  std::vector<double> belief(m, 0.0);

  // Run-constant per-source log-degree (the claim lists never change),
  // hoisted out of the iteration loop.
  std::vector<double> log_deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t deg = dataset.claims.claims_of(i).size();
    // ss-lint: allow(raw-log-exp): log of a claim *count* (AverageLog's degree weight), not a probability
    if (deg > 0) log_deg[i] = std::log(static_cast<double>(deg));
  }

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t j = 0; j < m; ++j) {
      belief[j] = kernels::gather_sum(dataset.claims.claimants_of(j),
                                      trust.data());
    }
    if (!normalize_max(belief)) {
      // Degenerate instance (e.g. every source has exactly one claim so
      // all trust collapsed to zero): fall back to claim counts.
      for (std::size_t j = 0; j < m; ++j) {
        belief[j] = static_cast<double>(dataset.claims.support(j));
      }
      normalize_max(belief);
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t deg = dataset.claims.claims_of(i).size();
      if (deg == 0) {
        trust[i] = 0.0;
        continue;
      }
      double acc =
          kernels::gather_sum(dataset.claims.claims_of(i), belief.data());
      trust[i] = log_deg[i] * acc / static_cast<double>(deg);
    }
    normalize_max(trust);
  }

  EstimateResult result;
  result.belief = std::move(belief);
  result.probabilistic = false;
  result.iterations = config_.iterations;
  return result;
}

}  // namespace ss
