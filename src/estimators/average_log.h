// Average.Log baseline (Pasternack & Roth, COLING 2010).
//
// A Sums variant that trusts prolific sources more:
//   T(s) = log(|C_s|) * average belief of s's claims
//   B(c) = sum of T(s) over claimants
// Sources with a single claim get log(1) = 0 trust — faithful to the
// original formulation and one reason this heuristic is high-variance on
// sparse social data (paper Section V-C).
#pragma once

#include "core/estimator.h"

namespace ss {

struct AverageLogConfig {
  std::size_t iterations = 20;
};

class AverageLogEstimator : public Estimator {
 public:
  explicit AverageLogEstimator(AverageLogConfig config = {});

  std::string name() const override { return "Average.Log"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

 private:
  AverageLogConfig config_;
};

}  // namespace ss
