#include "estimators/sums.h"

#include "math/matrix.h"

namespace ss {

SumsEstimator::SumsEstimator(SumsConfig config) : config_(config) {}

EstimateResult SumsEstimator::run(const Dataset& dataset,
                                  std::uint64_t /*seed*/) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  std::vector<double> trust(n, 1.0);
  std::vector<double> belief(m, 0.0);

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::uint32_t v : dataset.claims.claimants_of(j)) {
        acc += trust[v];
      }
      belief[j] = acc;
    }
    normalize_max(belief);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::uint32_t j : dataset.claims.claims_of(i)) {
        acc += belief[j];
      }
      trust[i] = acc;
    }
    normalize_max(trust);
  }

  EstimateResult result;
  result.belief = std::move(belief);
  result.probabilistic = false;
  result.iterations = config_.iterations;
  return result;
}

}  // namespace ss
