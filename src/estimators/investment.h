// Investment baseline (Pasternack & Roth, COLING 2010).
//
// Sources "invest" their trust uniformly across their claims and collect
// returns proportional to their share of each claim's belief:
//   B(c) = ( sum_{s in S_c} T(s)/|C_s| )^g            (g = 1.2)
//   T(s) = sum_{c in C_s} B(c) * (T0(s)/|C_s|) /
//                         ( sum_{s' in S_c} T0(s')/|C_s'| )
// where T0 is the previous round's trust. The non-linear growth g > 1
// makes well-backed claims pull ahead — and makes the heuristic
// sensitive to cascade-inflated support, which is why it belongs in the
// "high variance" bucket the paper observes for this family.
#pragma once

#include "core/estimator.h"

namespace ss {

struct InvestmentConfig {
  std::size_t iterations = 20;
  double growth = 1.2;
};

class InvestmentEstimator : public Estimator {
 public:
  explicit InvestmentEstimator(InvestmentConfig config = {});

  std::string name() const override { return "Investment"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

 private:
  InvestmentConfig config_;
};

}  // namespace ss
