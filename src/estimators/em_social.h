// EM-Social (IPSN 2014) baseline — Wang et al., "Using Humans as Sensors:
// An Estimation-Theoretic Perspective".
//
// Improves on EM (IPSN'12) by acknowledging source dependencies, but in
// the bluntest way: dependent claims are assumed to carry *no* information
// and every cell with D_ij = 1 is removed from the likelihood and the
// parameter updates — as if the dependent source had never spoken. EM-Ext
// replaces this deletion with the learned (f_i, g_i) rates.
#pragma once

#include "core/estimator.h"

namespace ss {

struct EmSocialConfig {
  double tol = 1e-6;
  std::size_t max_iters = 200;
  double clamp_eps = 1e-6;
  // MAP pseudo-observations toward the pooled rate, matching EM-Ext's
  // hierarchical shrinkage so estimator comparisons isolate the
  // dependency model rather than the regularizer (DESIGN.md §5).
  double shrinkage = 8.0;
  // Bounds on the learned prior z (see EmExtConfig::z_floor).
  double z_floor = 0.05;
};

class EmSocialEstimator : public Estimator {
 public:
  explicit EmSocialEstimator(EmSocialConfig config = {});

  std::string name() const override { return "EM-Social"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

 private:
  EmSocialConfig config_;
};

}  // namespace ss
