#include "estimators/truth_finder.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "math/logprob.h"
#include "math/matrix.h"

namespace ss {

TruthFinderEstimator::TruthFinderEstimator(TruthFinderConfig config)
    : config_(config) {}

EstimateResult TruthFinderEstimator::run(const Dataset& dataset,
                                         std::uint64_t /*seed*/) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  std::vector<double> trust(n, config_.initial_trust);
  std::vector<double> confidence(m, 0.0);

  std::size_t iters = 0;
  bool converged = false;
  std::vector<double> prev = trust;
  // Per-source claim weight -ln(1 - tau_i), constant within one
  // iteration; hoisted here so the confidence loop is a pure gather
  // (the per-incidence form paid one log1p per claim cell).
  std::vector<double> weight(n, 0.0);
  while (iters < config_.max_iters && !converged) {
    ++iters;
    for (std::size_t i = 0; i < n; ++i) {
      double t = std::min(trust[i], config_.max_trust);
      weight[i] = -safe_log1m(t);
    }
    for (std::size_t j = 0; j < m; ++j) {
      double sigma = kernels::gather_sum(dataset.claims.claimants_of(j),
                                         weight.data());
      confidence[j] = sigmoid(config_.gamma * sigma);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto& claims = dataset.claims.claims_of(i);
      if (claims.empty()) continue;
      double acc = kernels::gather_sum(claims, confidence.data());
      trust[i] = acc / static_cast<double>(claims.size());
    }
    double cos = cosine_similarity(prev, trust);
    converged = (1.0 - cos) <= config_.tol;
    prev = trust;
  }

  EstimateResult result;
  result.belief = std::move(confidence);
  result.probabilistic = false;  // sigmoid scores, not calibrated
  result.iterations = iters;
  result.converged = converged;
  return result;
}

}  // namespace ss
