// Sums baseline (Pasternack & Roth, COLING 2010; Kleinberg-style
// hubs/authorities on the source-claim bipartite graph).
//
// Iterates
//   B(c) = sum of T(s) over sources claiming c
//   T(s) = sum of B(c) over assertions claimed by s
// with max-normalization each round to prevent blow-up.
#pragma once

#include "core/estimator.h"

namespace ss {

struct SumsConfig {
  std::size_t iterations = 20;
};

class SumsEstimator : public Estimator {
 public:
  explicit SumsEstimator(SumsConfig config = {});

  std::string name() const override { return "Sums"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;

 private:
  SumsConfig config_;
};

}  // namespace ss
