#include "estimators/investment.h"

#include <cmath>

#include "math/matrix.h"

namespace ss {

InvestmentEstimator::InvestmentEstimator(InvestmentConfig config)
    : config_(config) {}

EstimateResult InvestmentEstimator::run(const Dataset& dataset,
                                        std::uint64_t /*seed*/) const {
  dataset.validate();
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  std::vector<double> trust(n, 1.0);
  std::vector<double> belief(m, 0.0);

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    // Per-claim pooled investment sum_{s in S_c} T(s)/|C_s|.
    std::vector<double> pool(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t deg = dataset.claims.claims_of(i).size();
      if (deg == 0) continue;
      double share = trust[i] / static_cast<double>(deg);
      for (std::uint32_t j : dataset.claims.claims_of(i)) {
        pool[j] += share;
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      belief[j] = std::pow(pool[j], config_.growth);
    }
    if (!normalize_max(belief)) break;  // no claims at all

    // Returns: each source collects belief proportional to its share of
    // the claim's investment pool.
    std::vector<double> next_trust(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t deg = dataset.claims.claims_of(i).size();
      if (deg == 0) continue;
      double share = trust[i] / static_cast<double>(deg);
      for (std::uint32_t j : dataset.claims.claims_of(i)) {
        if (pool[j] > 0.0) {
          next_trust[i] += belief[j] * share / pool[j];
        }
      }
    }
    trust = std::move(next_trust);
    if (!normalize_max(trust)) break;
  }

  EstimateResult result;
  result.belief = std::move(belief);
  result.probabilistic = false;
  result.iterations = config_.iterations;
  return result;
}

}  // namespace ss
