// Voting baseline: an assertion's credibility is the number of sources
// asserting it. The simplest fact-finder and the one most vulnerable to
// rumour cascades — every retweet is one more "vote".
#pragma once

#include "core/estimator.h"

namespace ss {

class VotingEstimator : public Estimator {
 public:
  std::string name() const override { return "Voting"; }
  EstimateResult run(const Dataset& dataset,
                     std::uint64_t seed) const override;
};

}  // namespace ss
