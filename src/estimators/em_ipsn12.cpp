#include "estimators/em_ipsn12.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/em_ext.h"
#include "math/convergence.h"
#include "math/kernels.h"
#include "math/logprob.h"

namespace ss {

EmIpsn12Estimator::EmIpsn12Estimator(EmIpsn12Config config)
    : config_(config) {}

EstimateResult EmIpsn12Estimator::run(const Dataset& dataset,
                                      std::uint64_t seed) const {
  return run_detailed(dataset, seed).estimate;
}

EmIpsn12Result EmIpsn12Estimator::run_detailed(const Dataset& dataset,
                                               std::uint64_t seed) const {
  dataset.validate();
  (void)seed;  // deterministic: vote-prior initialization (see EM-Ext)
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();

  EmIpsn12Result result;
  if (m == 0) {
    result.a.assign(n, 0.5);
    result.b.assign(n, 0.5);
    result.estimate.probabilistic = true;
    return result;
  }
  result.a.assign(n, 0.5);
  result.b.assign(n, 0.5);
  result.z = 0.5;

  // Initial parameters from the support-based vote prior via one M-step.
  std::vector<double> posterior = vote_prior_posterior(dataset);
  {
    double total_z = 0.0;
    for (double p : posterior) total_z += p;
    double total_y = static_cast<double>(m) - total_z;
    for (std::size_t i = 0; i < n; ++i) {
      kernels::MassPair claim = kernels::gather_mass(
          dataset.claims.claims_of(i), posterior.data());
      if (total_z > 0.0) {
        result.a[i] = clamp_prob(claim.z / total_z, config_.clamp_eps);
      }
      if (total_y > 0.0) {
        result.b[i] = clamp_prob(claim.y / total_y, config_.clamp_eps);
      }
    }
    result.z =
        clamp_prob(total_z / static_cast<double>(m), config_.clamp_eps);
  }
  std::vector<double> log_odds(m, 0.0);
  // Per-iteration log terms, hoisted into an interleaved table rebuilt
  // in place each E-step; M-step scratch reused across iterations.
  kernels::RateLogTable logs;
  std::vector<double> claim_zs(n), claim_ys(n);
  ConvergenceMonitor monitor(config_.tol, config_.max_iters);
  bool done = false;

  while (!done) {
    // E-step. Baseline = everyone silent; claimants corrected in O(deg).
    logs.build(n, [&](std::size_t i) {
      return std::array<double, 2>{
          clamp_prob(result.a[i], config_.clamp_eps),
          clamp_prob(result.b[i], config_.clamp_eps)};
    });
    double z = clamp_prob(result.z, config_.clamp_eps);
    double log_z = safe_log(z);
    double log_1mz = safe_log1m(z);
    for (std::size_t j = 0; j < m; ++j) {
      kernels::LogPair acc = kernels::gather_add(
          logs.base(), dataset.claims.claimants_of(j), logs.claim());
      kernels::PairStats s =
          kernels::finalize_pair(acc.t + log_z, acc.f + log_1mz);
      posterior[j] = s.posterior;
      log_odds[j] = s.log_odds;
    }

    // M-step with pooled-rate MAP shrinkage (see config).
    double total_z = 0.0;
    for (double p : posterior) total_z += p;
    double total_y = static_cast<double>(m) - total_z;

    for (std::size_t i = 0; i < n; ++i) {
      kernels::MassPair claim = kernels::gather_mass(
          dataset.claims.claims_of(i), posterior.data());
      claim_zs[i] = claim.z;
      claim_ys[i] = claim.y;
    }
    double pooled_z = 0.0;
    double pooled_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      pooled_z += claim_zs[i];
      pooled_y += claim_ys[i];
    }
    double nn = static_cast<double>(n);
    double mu_a = total_z > 0.0 ? pooled_z / (nn * total_z) : 0.5;
    double mu_b = total_y > 0.0 ? pooled_y / (nn * total_y) : 0.5;
    // Beta-prior strength in pseudo-claims => shrinkage/mu pseudo-cells
    // (see EmExtConfig::shrinkage).
    double cells_a =
        config_.shrinkage > 0.0
            ? config_.shrinkage / std::max(mu_a, 1e-9)
            : 0.0;
    double cells_b =
        config_.shrinkage > 0.0
            ? config_.shrinkage / std::max(mu_b, 1e-9)
            : 0.0;

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double claim_z = claim_zs[i];
      double claim_y = claim_ys[i];
      double new_a = total_z + cells_a > 0.0
                         ? (claim_z + cells_a * mu_a) / (total_z + cells_a)
                         : result.a[i];
      double new_b = total_y + cells_b > 0.0
                         ? (claim_y + cells_b * mu_b) / (total_y + cells_b)
                         : result.b[i];
      new_a = clamp_prob(new_a, config_.clamp_eps);
      new_b = clamp_prob(new_b, config_.clamp_eps);
      delta = std::max(delta, std::fabs(new_a - result.a[i]));
      delta = std::max(delta, std::fabs(new_b - result.b[i]));
      result.a[i] = new_a;
      result.b[i] = new_b;
    }
    double new_z = clamp_prob(total_z / static_cast<double>(m),
                              config_.clamp_eps);
    if (config_.z_floor > 0.0) {
      new_z = std::clamp(new_z, config_.z_floor, 1.0 - config_.z_floor);
    }
    delta = std::max(delta, std::fabs(new_z - result.z));
    result.z = new_z;
    done = monitor.update_delta(delta);
  }

  result.estimate.belief = posterior;
  result.estimate.log_odds = log_odds;
  result.estimate.probabilistic = true;
  result.estimate.iterations = monitor.iterations();
  result.estimate.converged = !monitor.hit_max();
  return result;
}

}  // namespace ss
