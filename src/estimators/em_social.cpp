#include "estimators/em_social.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/em_ext.h"
#include "math/convergence.h"
#include "math/kernels.h"
#include "math/logprob.h"

namespace ss {

EmSocialEstimator::EmSocialEstimator(EmSocialConfig config)
    : config_(config) {}

EstimateResult EmSocialEstimator::run(const Dataset& dataset,
                                      std::uint64_t seed) const {
  dataset.validate();
  (void)seed;  // deterministic: vote-prior initialization (see EM-Ext)
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  if (m == 0) {
    EstimateResult empty;
    empty.probabilistic = true;
    return empty;
  }

  std::vector<double> a(n, 0.5);
  std::vector<double> b(n, 0.5);
  double z = 0.5;

  // Independent (D_ij = 0) incidence views from the partition cache:
  // the split lists are ascending subsequences of the raw CSR lists, so
  // every kernel gather below sees the same element order as the
  // skip-dependent branch loops they replace.
  const ClaimPartition& part = dataset.partition();

  // Initial parameters from the support-based vote prior via one M-step
  // over the independent (D_ij = 0) cells this estimator keeps.
  std::vector<double> log_odds(m, 0.0);
  std::vector<double> posterior =
      vote_prior_posterior(dataset, /*independent_only=*/true);
  {
    double total_z = 0.0;
    for (double p : posterior) total_z += p;
    double total_y = static_cast<double>(m) - total_z;
    for (std::size_t i = 0; i < n; ++i) {
      double exposed_z = kernels::gather_sum(
          dataset.dependency.exposed_assertions(i), posterior.data());
      double exposed_count = static_cast<double>(
          dataset.dependency.exposed_assertions(i).size());
      double exposed_y = exposed_count - exposed_z;
      kernels::MassPair claim = kernels::gather_mass(
          part.independent_claims(i), posterior.data());
      double denom_a = total_z - exposed_z;
      double denom_b = total_y - exposed_y;
      if (denom_a > 0.0) {
        a[i] = clamp_prob(claim.z / denom_a, config_.clamp_eps);
      }
      if (denom_b > 0.0) {
        b[i] = clamp_prob(claim.y / denom_b, config_.clamp_eps);
      }
    }
    z = clamp_prob(total_z / static_cast<double>(m), config_.clamp_eps);
  }
  // Per-iteration log terms, hoisted into an interleaved table rebuilt
  // in place each E-step; M-step scratch reused across iterations.
  kernels::RateLogTable logs;
  std::vector<double> claim_zs(n), claim_ys(n), denom_as(n), denom_bs(n);
  ConvergenceMonitor monitor(config_.tol, config_.max_iters);
  bool done = false;

  while (!done) {
    // E-step over independent cells only. Baseline assumes every source
    // is silent and independent; exposed sources are *removed* (their
    // silent factor subtracted), then independent claimants corrected.
    logs.build(n, [&](std::size_t i) {
      return std::array<double, 2>{clamp_prob(a[i], config_.clamp_eps),
                                   clamp_prob(b[i], config_.clamp_eps)};
    });
    double cz = clamp_prob(z, config_.clamp_eps);
    double log_z = safe_log(cz);
    double log_1mz = safe_log1m(cz);

    for (std::size_t j = 0; j < m; ++j) {
      kernels::LogPair acc = kernels::gather_sub(
          logs.base(), dataset.dependency.exposed_sources(j),
          logs.silent());
      acc = kernels::gather_add(acc, part.independent_claimants(j),
                                logs.claim());
      kernels::PairStats s =
          kernels::finalize_pair(acc.t + log_z, acc.f + log_1mz);
      posterior[j] = s.posterior;
      log_odds[j] = s.log_odds;
    }

    // M-step over independent cells only, with pooled-rate MAP
    // shrinkage (see config).
    double total_z = 0.0;
    for (double p : posterior) total_z += p;
    double total_y = static_cast<double>(m) - total_z;

    for (std::size_t i = 0; i < n; ++i) {
      double exposed_z = kernels::gather_sum(
          dataset.dependency.exposed_assertions(i), posterior.data());
      double exposed_count = static_cast<double>(
          dataset.dependency.exposed_assertions(i).size());
      double exposed_y = exposed_count - exposed_z;
      kernels::MassPair claim = kernels::gather_mass(
          part.independent_claims(i), posterior.data());
      claim_zs[i] = claim.z;
      claim_ys[i] = claim.y;
      denom_as[i] = total_z - exposed_z;
      denom_bs[i] = total_y - exposed_y;
    }
    double pooled_num_a = 0.0;
    double pooled_den_a = 0.0;
    double pooled_num_b = 0.0;
    double pooled_den_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      pooled_num_a += claim_zs[i];
      pooled_den_a += denom_as[i];
      pooled_num_b += claim_ys[i];
      pooled_den_b += denom_bs[i];
    }
    double mu_a = pooled_den_a > 0.0 ? pooled_num_a / pooled_den_a : 0.5;
    double mu_b = pooled_den_b > 0.0 ? pooled_num_b / pooled_den_b : 0.5;
    // Beta-prior strength in pseudo-claims => shrinkage/mu pseudo-cells
    // (see EmExtConfig::shrinkage).
    double cells_a =
        config_.shrinkage > 0.0
            ? config_.shrinkage / std::max(mu_a, 1e-9)
            : 0.0;
    double cells_b =
        config_.shrinkage > 0.0
            ? config_.shrinkage / std::max(mu_b, 1e-9)
            : 0.0;

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double claim_z = claim_zs[i];
      double claim_y = claim_ys[i];
      double denom_a = denom_as[i] + cells_a;
      double denom_b = denom_bs[i] + cells_b;
      double new_a =
          denom_a > 0.0 ? (claim_z + cells_a * mu_a) / denom_a : a[i];
      double new_b =
          denom_b > 0.0 ? (claim_y + cells_b * mu_b) / denom_b : b[i];
      new_a = clamp_prob(new_a, config_.clamp_eps);
      new_b = clamp_prob(new_b, config_.clamp_eps);
      delta = std::max(delta, std::fabs(new_a - a[i]));
      delta = std::max(delta, std::fabs(new_b - b[i]));
      a[i] = new_a;
      b[i] = new_b;
    }
    double new_z =
        clamp_prob(total_z / static_cast<double>(m), config_.clamp_eps);
    if (config_.z_floor > 0.0) {
      new_z = std::clamp(new_z, config_.z_floor, 1.0 - config_.z_floor);
    }
    delta = std::max(delta, std::fabs(new_z - z));
    z = new_z;
    done = monitor.update_delta(delta);
  }

  EstimateResult result;
  result.belief = posterior;
  result.log_odds = log_odds;
  result.probabilistic = true;
  result.iterations = monitor.iterations();
  result.converged = !monitor.hit_max();
  return result;
}

}  // namespace ss
