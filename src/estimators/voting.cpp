#include "estimators/voting.h"

#include "math/matrix.h"

namespace ss {

EstimateResult VotingEstimator::run(const Dataset& dataset,
                                    std::uint64_t /*seed*/) const {
  dataset.validate();
  EstimateResult result;
  result.belief.resize(dataset.assertion_count());
  for (std::size_t j = 0; j < result.belief.size(); ++j) {
    result.belief[j] = static_cast<double>(dataset.claims.support(j));
  }
  normalize_max(result.belief);  // cosmetic: scores in [0, 1]
  result.probabilistic = false;
  result.iterations = 1;
  return result;
}

}  // namespace ss
