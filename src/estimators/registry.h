// Name-based estimator factory used by examples, benches and the Apollo
// pipeline. Covers the seven algorithms of the paper's empirical study
// (Section V-C): EM-Ext, EM-Social, EM, Voting, Sums, Average.Log,
// Truth-Finder.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace ss {

// The paper's empirical-study lineup (Fig. 11), in the paper's order.
std::vector<std::string> estimator_names();

// Every estimator the registry can construct: the paper's seven plus
// extensions (currently Investment from the same COLING'10 family).
std::vector<std::string> extended_estimator_names();

// Constructs the named estimator with its default configuration.
// Throws std::invalid_argument for unknown names.
std::unique_ptr<Estimator> make_estimator(const std::string& name);

// Constructs every estimator (the empirical-study lineup).
std::vector<std::unique_ptr<Estimator>> make_all_estimators();

}  // namespace ss
