// Simulated tweet stream with planned network faults.
//
// SimStream slices a generated tweet cascade into fixed-size batches
// tagged with emission-order sequence numbers, then derives each
// batch's wire behaviour from the storm seed via the pure planners in
// util/fault_inject.h: a batch may arrive late (and thereby overtake
// its successors), twice, only on a retry after its first attempt was
// dropped, or with its serialized bytes mangled. Corruption goes
// through the real ingest surface — the batch is rendered to JSONL,
// corrupted with fault::corrupt_bytes, and re-parsed in repair mode —
// so a storm exercises the same code that faces crawled data.
//
// Everything here is a pure function of (tweets, config, storm_seed):
// the planned delivery schedule and each batch's delivered content can
// be recomputed at any time, which is what lets a crashed-and-resumed
// process ask for any past batch again.
#pragma once

#include <cstdint>
#include <vector>

#include "twitter/simulator.h"
#include "util/fault_inject.h"

namespace ss {
namespace sim {

struct StreamConfig {
  // Tweets per batch (the last batch may be smaller).
  std::size_t batch_size = 200;
  // Ticks between consecutive batch emissions.
  std::uint64_t emit_interval_ticks = 100;
  fault::BatchFaultConfig faults;
};

// One planned wire delivery. A batch has one entry normally, two when
// duplicated, and its entry is shifted to the retry tick when the
// first attempt is dropped.
struct PlannedDelivery {
  std::uint64_t tick = 0;
  std::uint64_t seq = 0;
  bool is_duplicate = false;
  bool is_retry = false;
};

class SimStream {
 public:
  SimStream(std::vector<Tweet> tweets, StreamConfig config,
            std::uint64_t storm_seed);

  std::size_t batch_count() const { return batches_.size(); }
  std::uint64_t emission_tick(std::uint64_t seq) const {
    return (seq + 1) * config_.emit_interval_ticks;
  }
  // All planned deliveries, in planning order (by seq, first attempt
  // then duplicate). The scheduler's tie-breaking orders same-tick
  // arrivals.
  const std::vector<PlannedDelivery>& deliveries() const {
    return deliveries_;
  }
  // Last planned delivery tick plus one retry window — crashes and
  // timers are planned inside this horizon.
  std::uint64_t horizon_ticks() const { return horizon_; }

  // The batch as emitted (fault-free); reference runs consume this.
  const std::vector<Tweet>& clean_batch(std::uint64_t seq) const {
    return batches_.at(static_cast<std::size_t>(seq));
  }
  const fault::BatchFaultPlan& plan(std::uint64_t seq) const {
    return plans_.at(static_cast<std::size_t>(seq));
  }

  struct Delivered {
    std::vector<Tweet> tweets;
    bool corrupted = false;
    // Rows the repair parser had to skip (identity unrecoverable).
    std::size_t records_lost = 0;
  };
  // The batch as it arrives on the wire. Pure: recomputed per call,
  // identical every time (duplicates and redeliveries carry the same
  // corruption as the original attempt).
  Delivered delivered(std::uint64_t seq) const;

 private:
  StreamConfig config_;
  std::vector<std::vector<Tweet>> batches_;
  std::vector<fault::BatchFaultPlan> plans_;
  std::vector<PlannedDelivery> deliveries_;
  std::uint64_t horizon_ = 0;
};

}  // namespace sim
}  // namespace ss
