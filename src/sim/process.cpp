#include "sim/process.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/checkpoint.h"

namespace ss {
namespace sim {

SimProcess::SimProcess(const Digraph* follows, ProcessConfig config)
    : follows_(follows), config_(std::move(config)) {
  live_ = std::make_unique<LiveApollo>(*follows_, config_.live);
}

SimProcess::DeliveryOutcome SimProcess::deliver(
    std::uint64_t seq, std::vector<Tweet> tweets) {
  if (!running()) return DeliveryOutcome::kDown;
  if (seq < next_seq_) {
    ++stale_;
    return DeliveryOutcome::kStale;
  }
  if (seq > next_seq_) {
    // Ahead of order: hold until the gap fills. emplace keeps the
    // first copy, so a duplicate of a buffered batch is a no-op.
    buffer_.emplace(seq, std::move(tweets));
    return DeliveryOutcome::kBuffered;
  }
  apply(seq, tweets);
  // The arrival may have been the gap a run of buffered batches was
  // waiting on.
  auto it = buffer_.find(next_seq_);
  while (it != buffer_.end()) {
    std::vector<Tweet> held = std::move(it->second);
    buffer_.erase(it);
    apply(next_seq_, held);
    it = buffer_.find(next_seq_);
  }
  return DeliveryOutcome::kApplied;
}

void SimProcess::apply(std::uint64_t seq,
                       const std::vector<Tweet>& tweets) {
  (void)seq;  // == next_seq_, checked by the caller
  for (const Tweet& t : tweets) live_->ingest(t);
  live_->refresh();
  ++next_seq_;
}

std::string SimProcess::serialized_state() const {
  if (!running()) {
    throw std::logic_error("SimProcess::serialized_state: process down");
  }
  BinWriter writer;
  writer.u64(next_seq_);
  writer.u64(stale_);
  live_->save_state(writer);
  return writer.take();
}

void SimProcess::checkpoint() {
  if (!running()) {
    throw std::logic_error("SimProcess::checkpoint: process down");
  }
  std::string payload = serialized_state();
  write_snapshot(config_.checkpoint_path, kSnapshotKind,
                 config_.fingerprint, payload);
  last_committed_ = std::move(payload);
  has_committed_ = true;
}

void SimProcess::crash() {
  if (!running()) {
    throw std::logic_error("SimProcess::crash: already down");
  }
  live_.reset();
  buffer_.clear();
  next_seq_ = 0;
  stale_ = 0;
}

void SimProcess::resume() {
  if (running()) {
    throw std::logic_error("SimProcess::resume: already running");
  }
  live_ = std::make_unique<LiveApollo>(*follows_, config_.live);
  next_seq_ = 0;
  stale_ = 0;
  std::error_code ec;
  if (!std::filesystem::exists(config_.checkpoint_path, ec)) {
    return;  // nothing ever committed: fresh start
  }
  std::string payload = read_snapshot_or_throw(
      config_.checkpoint_path, kSnapshotKind, config_.fingerprint);
  BinReader reader(payload);
  next_seq_ = reader.u64();
  stale_ = reader.u64();
  live_->load_state(reader);
}

}  // namespace sim
}  // namespace ss
