// Crashable, resumable pipeline process for the simulation.
//
// SimProcess wraps the live Apollo pipeline (clusterer + streaming EM)
// behind the transport contract the storm exercises: batches arrive
// tagged with emission sequence numbers, possibly out of order,
// duplicated, or while the process is down. The process applies batch
// k only after batches 0..k-1 (ahead-of-order arrivals are buffered,
// stale ones rejected), checkpoints its entire state as one sealed
// snapshot (util/checkpoint.h), and can be crashed at any scheduled
// point — crash() drops all in-memory state including the reorder
// buffer, exactly like a killed process — then resumed from the last
// committed snapshot.
//
// State bytes are canonical (every map serialized in sorted-key
// order), so "resumed state equals the state that was committed" is a
// byte comparison, not a field-by-field tour: serialized_state() of a
// freshly resumed process must equal the payload of the last commit,
// bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apollo/live.h"

namespace ss {
namespace sim {

struct ProcessConfig {
  LiveApolloConfig live;
  // Snapshot file for checkpoint()/resume().
  std::string checkpoint_path;
  // Distinguishes this storm's snapshots from a stale file of another
  // run (part of the snapshot seal).
  std::uint64_t fingerprint = 0;
};

class SimProcess {
 public:
  // Snapshot kind tag ("SIMPROC1").
  static constexpr std::uint64_t kSnapshotKind = 0x53494d50'524f4331ULL;

  enum class DeliveryOutcome : std::uint8_t {
    kApplied = 0,  // folded in (plus any drained buffered successors)
    kBuffered,     // ahead of order; held until the gap fills
    kStale,        // duplicate of an already-applied batch; rejected
    kDown,         // process is crashed; nothing happened
  };

  // `follows` must outlive the process (the storm owns it).
  SimProcess(const Digraph* follows, ProcessConfig config);

  bool running() const { return live_ != nullptr; }
  // Sequence number of the next batch the pipeline will apply.
  std::uint64_t next_seq() const { return next_seq_; }
  std::size_t stale_deliveries() const { return stale_; }
  std::size_t buffered() const { return buffer_.size(); }

  DeliveryOutcome deliver(std::uint64_t seq, std::vector<Tweet> tweets);

  // Commits the current state as a sealed snapshot (atomic write) and
  // remembers the committed payload for bit-identity assertions.
  // Requires running().
  void checkpoint();
  bool has_committed() const { return has_committed_; }
  const std::string& last_committed_state() const {
    return last_committed_;
  }

  // Kills the process: all in-memory state (pipeline, reorder buffer)
  // is gone. Requires running().
  void crash();
  // Boots a fresh process and restores the last committed snapshot, or
  // starts empty when none was ever committed. A present-but-corrupt
  // snapshot surfaces as TaxonomyError(kCheckpointCorrupt) — resume
  // never proceeds from partial state. Requires !running().
  void resume();

  // Canonical bytes of the current state (the exact payload a
  // checkpoint would commit). Requires running().
  std::string serialized_state() const;

  const LiveApollo& live() const { return *live_; }

 private:
  void apply(std::uint64_t seq, const std::vector<Tweet>& tweets);

  const Digraph* follows_;
  ProcessConfig config_;
  std::unique_ptr<LiveApollo> live_;
  std::uint64_t next_seq_ = 0;
  std::size_t stale_ = 0;
  // Ahead-of-order batches keyed by seq; first copy wins.
  std::map<std::uint64_t, std::vector<Tweet>> buffer_;
  std::string last_committed_;
  bool has_committed_ = false;
};

}  // namespace sim
}  // namespace ss
