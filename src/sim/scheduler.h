// Single-threaded deterministic event scheduler.
//
// The simulation owns *all* event ordering: batch arrivals, checkpoint
// timers, queries, crashes and resumes are heap entries dispatched in
// (tick, tie, id) order. `tie` is drawn from a seeded RNG when the
// event is scheduled, so two events landing on the same tick are
// ordered by the storm seed rather than by insertion accident — the
// same seed explores the same interleaving forever, a different seed
// explores a different one. `id` (insertion counter) is the last-resort
// tie so ordering is total even on a tie collision.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace ss {
namespace sim {

enum class EventKind : std::uint8_t {
  kBatchArrival = 0,  // payload = batch sequence number
  kCheckpointTimer,   // payload unused
  kQuery,             // payload unused
  kCrash,             // payload = kill index
  kResume,            // payload = kill index
};

const char* event_kind_name(EventKind kind);

struct Event {
  std::uint64_t tick = 0;
  EventKind kind = EventKind::kBatchArrival;
  std::uint64_t payload = 0;
  std::uint64_t tie = 0;
  std::uint64_t id = 0;
};

class SimScheduler {
 public:
  explicit SimScheduler(std::uint64_t seed);

  // Schedules an event at an absolute tick. A tick already in the past
  // is clamped to now(): "deliver immediately" is a legitimate request
  // (retries of a batch that found the process down), time travel is
  // not.
  void schedule(std::uint64_t tick, EventKind kind,
                std::uint64_t payload = 0);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t scheduled_total() const { return next_id_; }

  // Removes and returns the next event, advancing the clock to its
  // tick. Requires !empty().
  Event pop();

  const VirtualClock& clock() const { return clock_; }
  std::uint64_t now() const { return clock_.now(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const;
  };
  VirtualClock clock_;
  Rng tie_rng_;
  std::uint64_t next_id_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sim
}  // namespace ss
