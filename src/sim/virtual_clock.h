// Virtual time for deterministic simulation.
//
// Nothing in the simulation harness reads a wall clock (ss_lint rule R8
// confines raw clock calls to src/util/); time is an integer tick
// counter advanced only by the scheduler when it dispatches the next
// event. Ticks are abstract — the storm configuration decides how many
// ticks separate batch emissions, checkpoint timers and queries — so a
// simulated three-day event replays in milliseconds and every run of
// the same seed sees the exact same clock readings.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace ss {
namespace sim {

class VirtualClock {
 public:
  std::uint64_t now() const { return now_; }

  // Moves time forward; the scheduler calls this with each dispatched
  // event's tick. Time never flows backwards — a regression here means
  // the event queue's ordering invariant broke, so it throws rather
  // than silently rewinding.
  void advance_to(std::uint64_t tick) {
    if (tick < now_) {
      throw std::logic_error("VirtualClock: time moved backwards");
    }
    now_ = tick;
  }

 private:
  std::uint64_t now_ = 0;
};

}  // namespace sim
}  // namespace ss
