#include "sim/storm.h"

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sim/process.h"
#include "sim/scheduler.h"
#include "twitter/simulator.h"
#include "util/checkpoint.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ss {
namespace sim {
namespace {

bool params_finite(const ModelParams& params) {
  if (!std::isfinite(params.z)) return false;
  for (const SourceParams& s : params.source) {
    if (!std::isfinite(s.a) || !std::isfinite(s.b) ||
        !std::isfinite(s.f) || !std::isfinite(s.g)) {
      return false;
    }
  }
  return true;
}

bool beliefs_finite(const LiveApollo& live) {
  for (const auto& [cluster, belief] : live.beliefs()) {
    if (!std::isfinite(belief)) return false;
  }
  return true;
}

}  // namespace

StormReport run_storm(const StormConfig& config) {
  StormReport report;
  report.replay_hint = "SS_STORM_SEED=" + std::to_string(config.seed);
  auto violate = [&](const std::string& what) {
    report.violations.push_back(what + " [" + report.replay_hint + "]");
  };

  // --- Input cascade and its fault plans -----------------------------
  TwitterScenario scenario =
      scenario_by_name(config.scenario).scaled(config.scale);
  TwitterSimulation world = simulate_twitter(scenario, config.seed);
  SimStream stream(world.tweets, config.stream, config.seed);
  std::size_t total_batches = stream.batch_count();
  report.batches = total_batches;
  bool any_corruption = false;
  for (std::uint64_t s = 0; s < total_batches; ++s) {
    if (stream.plan(s).corrupt_seed != 0) any_corruption = true;
  }

  // --- Fault-free reference run --------------------------------------
  LiveApolloConfig live_config;
  live_config.em.pool = config.pool;
  LiveApollo reference(world.follows, live_config);
  for (std::uint64_t s = 0; s < total_batches; ++s) {
    for (const Tweet& t : stream.clean_batch(s)) reference.ingest(t);
    reference.refresh();
  }
  report.reference_top = reference.top(config.top_k);

  // --- Storm process -------------------------------------------------
  std::string workdir = config.workdir;
  if (workdir.empty()) {
    workdir = std::filesystem::temp_directory_path().string();
  }
  ProcessConfig process_config;
  process_config.live = live_config;
  process_config.checkpoint_path =
      workdir + "/storm_" + std::to_string(config.seed) + ".snap";
  process_config.fingerprint = splitmix64(config.seed ^ 0x5708313ULL);
  {
    // A stale snapshot from an earlier run of this seed must not leak
    // into this one.
    std::error_code ec;
    std::filesystem::remove(process_config.checkpoint_path, ec);
  }
  SimProcess process(&world.follows, process_config);

  // --- Event schedule ------------------------------------------------
  SimScheduler scheduler(config.seed);
  for (const PlannedDelivery& d : stream.deliveries()) {
    scheduler.schedule(d.tick, EventKind::kBatchArrival, d.seq);
  }
  std::uint64_t horizon = stream.horizon_ticks();
  if (config.checkpoint_interval_ticks > 0) {
    scheduler.schedule(config.checkpoint_interval_ticks,
                       EventKind::kCheckpointTimer);
  }
  if (config.query_interval_ticks > 0) {
    scheduler.schedule(config.query_interval_ticks, EventKind::kQuery);
  }
  std::vector<std::uint64_t> kills =
      fault::plan_kill_points(config.seed, config.crashes, horizon);
  for (std::size_t k = 0; k < kills.size(); ++k) {
    scheduler.schedule(kills[k], EventKind::kCrash, k);
  }

  // Delivery bookkeeping: a batch whose arrival event was consumed
  // while the process was up lives only in process memory until the
  // next checkpoint — after a crash it must be redelivered from the
  // stream (the stream can always re-produce it).
  std::set<std::uint64_t> consumed;
  std::ostringstream log;
  auto check_invariants = [&](const char* where) {
    if (!process.running()) return;
    if (!params_finite(process.live().params())) {
      violate(std::string("non-finite model parameters after ") + where);
    }
    if (!beliefs_finite(process.live())) {
      violate(std::string("non-finite belief after ") + where);
    }
  };

  // --- Event loop ----------------------------------------------------
  while (!scheduler.empty()) {
    if (report.events >= config.max_events) {
      violate("event budget exhausted (storm did not converge)");
      break;
    }
    Event e = scheduler.pop();
    ++report.events;
    log << "t=" << e.tick << " " << event_kind_name(e.kind);
    switch (e.kind) {
      case EventKind::kBatchArrival: {
        std::uint64_t seq = e.payload;
        log << " seq=" << seq;
        if (!process.running()) {
          // The wire does not know the process died; the transport
          // retries until somebody answers.
          ++report.redeliveries;
          scheduler.schedule(
              e.tick + config.stream.faults.retry_delay_ticks,
              EventKind::kBatchArrival, seq);
          log << " outcome=retry-later";
          break;
        }
        SimStream::Delivered d = stream.delivered(seq);
        if (d.corrupted) {
          ++report.corrupted_batches;
          report.records_lost += d.records_lost;
          log << " corrupted lost=" << d.records_lost;
        }
        SimProcess::DeliveryOutcome outcome =
            process.deliver(seq, std::move(d.tweets));
        consumed.insert(seq);
        switch (outcome) {
          case SimProcess::DeliveryOutcome::kApplied:
            log << " outcome=applied next=" << process.next_seq();
            break;
          case SimProcess::DeliveryOutcome::kBuffered:
            log << " outcome=buffered";
            break;
          case SimProcess::DeliveryOutcome::kStale:
            ++report.duplicates_rejected;
            log << " outcome=stale";
            break;
          case SimProcess::DeliveryOutcome::kDown:
            log << " outcome=down";
            break;
        }
        check_invariants("batch arrival");
        break;
      }
      case EventKind::kCheckpointTimer: {
        if (process.running()) {
          process.checkpoint();
          ++report.checkpoints;
          log << " bytes=" << process.last_committed_state().size()
              << " fnv="
              << fnv1a64(process.last_committed_state().data(),
                         process.last_committed_state().size());
        } else {
          log << " skipped=down";
        }
        if (e.tick + config.checkpoint_interval_ticks <= horizon) {
          scheduler.schedule(e.tick + config.checkpoint_interval_ticks,
                             EventKind::kCheckpointTimer);
        }
        break;
      }
      case EventKind::kQuery: {
        if (process.running()) {
          auto top = process.live().top(config.top_k);
          for (const auto& [cluster, odds] : top) {
            if (!std::isfinite(odds)) {
              violate("non-finite log-odds in query result");
            }
          }
          log << " top=" << top.size()
              << " seen=" << process.live().clusters_seen();
        } else {
          log << " skipped=down";
        }
        if (e.tick + config.query_interval_ticks <= horizon) {
          scheduler.schedule(e.tick + config.query_interval_ticks,
                             EventKind::kQuery);
        }
        check_invariants("query");
        break;
      }
      case EventKind::kCrash: {
        if (!process.running()) {
          log << " skipped=down";
          break;
        }
        process.crash();
        ++report.crashes;
        scheduler.schedule(e.tick + config.resume_delay_ticks,
                           EventKind::kResume, e.payload);
        log << " kill=" << e.payload;
        break;
      }
      case EventKind::kResume: {
        if (process.running()) {
          log << " skipped=up";
          break;
        }
        process.resume();
        ++report.resumes;
        log << " next=" << process.next_seq();
        if (process.has_committed()) {
          // The core crash/resume invariant: what came back is, bit
          // for bit, what was committed.
          if (process.serialized_state() !=
              process.last_committed_state()) {
            violate("resumed state differs from last committed "
                    "checkpoint");
          }
        }
        // Batches consumed before the crash but not captured by the
        // restored snapshot are gone from both the queue and process
        // memory; redeliver them from the stream.
        for (std::uint64_t seq : consumed) {
          if (seq < process.next_seq()) continue;
          ++report.redeliveries;
          scheduler.schedule(e.tick + 1, EventKind::kBatchArrival, seq);
          log << " redeliver=" << seq;
        }
        check_invariants("resume");
        break;
      }
    }
    log << "\n";
  }

  // --- Drain ---------------------------------------------------------
  // Eventual delivery: the loop above retries while down and
  // redelivers after resume, so an empty queue with unapplied batches
  // means the process is down past the last resume; bring it back and
  // finish.
  if (!process.running()) {
    process.resume();
    ++report.resumes;
    log << "t=" << scheduler.now() << " resume final next="
        << process.next_seq() << "\n";
  }
  std::size_t drain_guard = 0;
  while (process.next_seq() < total_batches &&
         drain_guard++ < total_batches + 8) {
    std::uint64_t seq = process.next_seq();
    SimStream::Delivered d = stream.delivered(seq);
    process.deliver(seq, std::move(d.tweets));
    ++report.redeliveries;
    log << "t=" << scheduler.now() << " drain seq=" << seq << "\n";
  }
  if (process.next_seq() != total_batches) {
    violate("drain failed: applied " +
            std::to_string(process.next_seq()) + " of " +
            std::to_string(total_batches) + " batches");
  }
  check_invariants("drain");

  // --- Final ranking vs the fault-free reference ---------------------
  report.final_top = process.live().top(config.top_k);
  log << "final top=" << report.final_top.size() << "\n";
  if (!any_corruption) {
    // Same batches, same order, exactly once: the storm run must agree
    // with the reference to the last bit.
    if (report.final_top != report.reference_top) {
      violate("final top-" + std::to_string(config.top_k) +
              " differs from fault-free reference despite intact "
              "delivery");
    }
  } else {
    std::set<std::uint32_t> ref_ids;
    for (const auto& [cluster, odds] : report.reference_top) {
      ref_ids.insert(cluster);
    }
    std::size_t overlap = 0;
    for (const auto& [cluster, odds] : report.final_top) {
      overlap += ref_ids.count(cluster);
    }
    double denom = static_cast<double>(
        std::max<std::size_t>(1, report.reference_top.size()));
    double frac = static_cast<double>(overlap) / denom;
    log << "overlap=" << strprintf("%.4f", frac) << "\n";
    if (frac < config.min_rank_overlap) {
      violate("final top-" + std::to_string(config.top_k) +
              " overlap " + strprintf("%.4f", frac) +
              " below configured minimum " +
              strprintf("%.4f", config.min_rank_overlap));
    }
  }

  {
    std::error_code ec;
    std::filesystem::remove(process_config.checkpoint_path, ec);
  }
  report.event_log = log.str();
  report.passed = report.violations.empty();
  return report;
}

}  // namespace sim
}  // namespace ss
