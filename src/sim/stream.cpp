#include "sim/stream.h"

#include <algorithm>

#include "twitter/tweet_io.h"

namespace ss {
namespace sim {

SimStream::SimStream(std::vector<Tweet> tweets, StreamConfig config,
                     std::uint64_t storm_seed)
    : config_(config) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.emit_interval_ticks == 0) config_.emit_interval_ticks = 1;
  for (std::size_t at = 0; at < tweets.size();
       at += config_.batch_size) {
    std::size_t end = std::min(at + config_.batch_size, tweets.size());
    batches_.emplace_back(tweets.begin() + static_cast<std::ptrdiff_t>(at),
                          tweets.begin() + static_cast<std::ptrdiff_t>(end));
  }
  plans_.reserve(batches_.size());
  for (std::uint64_t seq = 0; seq < batches_.size(); ++seq) {
    fault::BatchFaultPlan plan =
        fault::plan_batch_faults(config_.faults, storm_seed, seq);
    std::uint64_t base = emission_tick(seq) + plan.delay_ticks;
    PlannedDelivery first;
    first.seq = seq;
    first.tick = base;
    if (plan.drop_first_attempt) {
      // The first attempt is lost on the wire; only the retry arrives.
      first.tick = base + config_.faults.retry_delay_ticks;
      first.is_retry = true;
    }
    deliveries_.push_back(first);
    if (plan.duplicate) {
      PlannedDelivery dup = first;
      dup.tick = base + 1;
      dup.is_duplicate = true;
      deliveries_.push_back(dup);
    }
    horizon_ = std::max({horizon_, first.tick, base + 1});
    plans_.push_back(plan);
  }
  horizon_ += config_.faults.retry_delay_ticks + 1;
}

SimStream::Delivered SimStream::delivered(std::uint64_t seq) const {
  const std::vector<Tweet>& clean = clean_batch(seq);
  const fault::BatchFaultPlan& plan = this->plan(seq);
  Delivered d;
  if (plan.corrupt_seed == 0) {
    d.tweets = clean;
    return d;
  }
  d.corrupted = true;
  std::string wire = fault::corrupt_bytes(
      tweets_to_jsonl(clean), config_.faults.corrupt_byte_rate,
      plan.corrupt_seed);
  IngestOptions options;
  options.mode = IngestMode::kRepair;
  Expected<std::vector<Tweet>> parsed =
      parse_tweets_jsonl(wire, "sim-batch-" + std::to_string(seq),
                         options);
  // Repair mode never fails at the stream level; defensive fallback to
  // an empty batch keeps the storm running if it ever does.
  if (parsed.ok()) d.tweets = std::move(parsed).value();
  d.records_lost = clean.size() > d.tweets.size()
                       ? clean.size() - d.tweets.size()
                       : 0;
  return d;
}

}  // namespace sim
}  // namespace ss
