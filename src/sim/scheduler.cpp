#include "sim/scheduler.h"

namespace ss {
namespace sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kBatchArrival:
      return "batch";
    case EventKind::kCheckpointTimer:
      return "checkpoint";
    case EventKind::kQuery:
      return "query";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kResume:
      return "resume";
  }
  return "?";
}

bool SimScheduler::Later::operator()(const Event& a,
                                     const Event& b) const {
  // priority_queue pops the *largest*, so "later" means greater tuple.
  if (a.tick != b.tick) return a.tick > b.tick;
  if (a.tie != b.tie) return a.tie > b.tie;
  return a.id > b.id;
}

SimScheduler::SimScheduler(std::uint64_t seed)
    : tie_rng_(seed, /*stream=*/0x71E5) {}

void SimScheduler::schedule(std::uint64_t tick, EventKind kind,
                            std::uint64_t payload) {
  Event e;
  e.tick = tick < clock_.now() ? clock_.now() : tick;
  e.kind = kind;
  e.payload = payload;
  // Drawn at scheduling time: the tie sequence depends only on the
  // seed and the order of schedule() calls, which is itself a pure
  // function of the seed — so same-tick interleavings replay exactly.
  e.tie = (static_cast<std::uint64_t>(tie_rng_.uniform_u32(0xffffffffu))
           << 32) |
          tie_rng_.uniform_u32(0xffffffffu);
  e.id = next_id_++;
  queue_.push(e);
}

Event SimScheduler::pop() {
  Event e = queue_.top();
  queue_.pop();
  clock_.advance_to(e.tick);
  return e;
}

}  // namespace sim
}  // namespace ss
