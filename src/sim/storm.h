// Storm composition: one seed -> one complete chaos run.
//
// run_storm() generates a scenario-sized tweet cascade, streams it
// through planned network faults (delay/reorder, duplicate, drop +
// retry, byte corruption) into a crashable pipeline process, crashes
// and resumes that process at seed-planned points, and checks the
// harness invariants after every event:
//
//   * all beliefs and learned parameters stay finite (a withheld or
//     mangled batch must never contaminate the running statistics);
//   * after every resume, the restored state is bit-identical to the
//     payload of the last committed checkpoint;
//   * after the run drains, every batch has been applied exactly once
//     and in sequence order, and the final top-k ranking matches the
//     fault-free reference run — exactly (same ids, same log-odds
//     bits) when no batch was byte-corrupted, by overlap fraction
//     otherwise (corruption legitimately loses records).
//
// The whole run — fault plans, event interleaving, kill points — is a
// pure function of StormConfig, so a red CI seed replays bit-for-bit:
// StormReport::event_log of two runs with the same config compare
// byte-equal (tests/test_sim.cpp locks this down, including across
// thread-pool sizes).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/stream.h"

namespace ss {

class ThreadPool;

namespace sim {

struct StormConfig {
  std::uint64_t seed = 1;
  // Scenario preset driving the cascade (twitter/scenario.h) and the
  // scale factor applied to it.
  std::string scenario = "Kirkuk";
  double scale = 0.05;

  StreamConfig stream;
  // Process crashes planned inside the stream horizon.
  std::size_t crashes = 2;
  std::uint64_t resume_delay_ticks = 25;
  std::uint64_t checkpoint_interval_ticks = 350;
  std::uint64_t query_interval_ticks = 450;

  // Final-ranking comparison against the fault-free reference.
  std::size_t top_k = 30;
  // Minimum |storm top-k  intersect  reference top-k| / k when byte
  // corruption made an exact match impossible.
  double min_rank_overlap = 0.8;

  // Directory for the checkpoint file; empty = the system temp dir.
  std::string workdir;
  // Pool for the streaming E-steps; nullptr = the process-global pool.
  ThreadPool* pool = nullptr;
  // Safety cap on dispatched events (a storm that exceeds it failed).
  std::size_t max_events = 200000;
};

struct StormReport {
  bool passed = false;
  // Human-readable invariant violations, empty on success.
  std::vector<std::string> violations;
  // One line per dispatched event; byte-identical across replays of
  // the same config.
  std::string event_log;
  // Final top-k (cluster id, log-odds) of the storm run.
  std::vector<std::pair<std::uint32_t, double>> final_top;
  std::vector<std::pair<std::uint32_t, double>> reference_top;

  std::size_t events = 0;
  std::size_t batches = 0;
  std::size_t crashes = 0;
  std::size_t resumes = 0;
  std::size_t checkpoints = 0;
  std::size_t duplicates_rejected = 0;
  std::size_t corrupted_batches = 0;
  std::size_t records_lost = 0;
  std::size_t redeliveries = 0;

  // Paste-able reproduction pointer, e.g. "SS_STORM_SEED=42"; CI
  // prints it when a storm fails.
  std::string replay_hint;
};

StormReport run_storm(const StormConfig& config);

}  // namespace sim
}  // namespace ss
