#include "bounds/exact_bound.h"

#include <stdexcept>
#include <vector>

namespace ss {
namespace {

// Iterative depth-first walk of the claim-combination tree. An explicit
// stack of (depth, partial products) frames avoids recursion-depth limits
// and keeps the hot loop branch-light.
struct Frame {
  std::size_t depth;
  double prod_true;
  double prod_false;
};

}  // namespace

BoundResult exact_bound(const ColumnModel& model) {
  std::size_t n = model.source_count();
  if (n > kExactBoundMaxSources) {
    throw std::invalid_argument(
        "exact_bound: too many sources for exact enumeration; use the "
        "Gibbs approximation");
  }
  const double z = model.z;
  const double* p1 = model.p_claim_true.data();
  const double* p0 = model.p_claim_false.data();

  BoundResult result;
  // Stack capacity: each visited node pushes at most one sibling frame.
  std::vector<Frame> stack;
  stack.reserve(n + 1);
  stack.push_back({0, 1.0, 1.0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Expand silent branches inline until a leaf; push the claim branch
    // as a deferred frame. This halves the stack traffic relative to
    // pushing both children.
    while (f.depth < n) {
      std::size_t i = f.depth;
      stack.push_back(
          {i + 1, f.prod_true * p1[i], f.prod_false * p0[i]});
      f.prod_true *= 1.0 - p1[i];
      f.prod_false *= 1.0 - p0[i];
      ++f.depth;
    }
    double weight_true = z * f.prod_true;
    double weight_false = (1.0 - z) * f.prod_false;
    if (weight_true >= weight_false) {
      // Optimal estimator declares "true"; it errs when C_j = 0, i.e.
      // a false assertion is labelled true.
      result.false_positive += weight_false;
    } else {
      result.false_negative += weight_true;
    }
  }
  result.error = result.false_positive + result.false_negative;
  return result;
}

BoundResult bound_from_joint(const std::vector<double>& joint_true,
                             const std::vector<double>& joint_false,
                             double z) {
  if (joint_true.size() != joint_false.size()) {
    throw std::invalid_argument("bound_from_joint: size mismatch");
  }
  BoundResult result;
  for (std::size_t k = 0; k < joint_true.size(); ++k) {
    double weight_true = z * joint_true[k];
    double weight_false = (1.0 - z) * joint_false[k];
    if (weight_true >= weight_false) {
      result.false_positive += weight_false;
    } else {
      result.false_negative += weight_true;
    }
  }
  result.error = result.false_positive + result.false_negative;
  return result;
}

}  // namespace ss
