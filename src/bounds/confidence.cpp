#include "bounds/confidence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ss {
namespace {

RateConfidence make_rate(double estimate, double n_effective) {
  RateConfidence rc;
  rc.estimate = estimate;
  rc.n_effective = n_effective;
  if (n_effective > 0.0) {
    rc.stderr_asymptotic =
        std::sqrt(std::max(estimate * (1.0 - estimate), 0.0) /
                  n_effective);
  }
  return rc;
}

}  // namespace

double RateConfidence::lower(double z_score) const {
  return std::max(0.0, estimate - half_width(z_score));
}

double RateConfidence::upper(double z_score) const {
  return std::min(1.0, estimate + half_width(z_score));
}

std::vector<SourceConfidence> estimate_confidence(
    const Dataset& dataset, const ModelParams& params,
    const std::vector<double>& posterior) {
  dataset.validate();
  std::size_t n = dataset.source_count();
  std::size_t m = dataset.assertion_count();
  if (params.source_count() != n) {
    throw std::invalid_argument(
        "estimate_confidence: params/dataset source mismatch");
  }
  if (posterior.size() != m) {
    throw std::invalid_argument(
        "estimate_confidence: posterior/assertion mismatch");
  }

  double total_z = 0.0;
  for (double p : posterior) total_z += p;
  double total_y = static_cast<double>(m) - total_z;

  std::vector<SourceConfidence> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    double exposed_z = 0.0;
    for (std::uint32_t j : dataset.dependency.exposed_assertions(i)) {
      exposed_z += posterior[j];
    }
    double exposed_count = static_cast<double>(
        dataset.dependency.exposed_assertions(i).size());
    double exposed_y = exposed_count - exposed_z;

    const SourceParams& s = params.source[i];
    out[i].a = make_rate(s.a, total_z - exposed_z);
    out[i].b = make_rate(s.b, total_y - exposed_y);
    out[i].f = make_rate(s.f, exposed_z);
    out[i].g = make_rate(s.g, exposed_y);
  }
  return out;
}

}  // namespace ss
