#include "bounds/convolution_bound.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/logprob.h"

namespace ss {
namespace {

// Distribution of sum_i lambda_i under one hypothesis, on a uniform
// grid. Probability mass belonging to value x is accumulated into the
// nearest grid cell; each convolution step shifts the running vector by
// the two per-source outcomes and mixes with their probabilities.
struct GridDist {
  double lo;       // value of cell 0
  double step;
  std::vector<double> mass;

  std::size_t cell_of(double x) const {
    double idx = (x - lo) / step;
    long k = std::lround(idx);
    k = std::max(0L, std::min(static_cast<long>(mass.size()) - 1, k));
    return static_cast<std::size_t>(k);
  }
};

GridDist convolve_two_point(const std::vector<double>& claim_shift,
                            const std::vector<double>& silent_shift,
                            const std::vector<double>& claim_prob,
                            std::size_t cells) {
  std::size_t n = claim_shift.size();
  // Grid range: the extreme achievable sums, padded one step.
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    min_sum += std::min(claim_shift[i], silent_shift[i]);
    max_sum += std::max(claim_shift[i], silent_shift[i]);
  }
  if (max_sum <= min_sum) max_sum = min_sum + 1.0;
  GridDist dist;
  dist.step = (max_sum - min_sum) / static_cast<double>(cells - 1);
  dist.lo = min_sum;
  // Build incrementally, re-anchoring so cell 0 tracks the running
  // minimum partial sum: the support only ever spans the outcomes added
  // so far, which keeps intermediate vectors small.
  std::vector<double> cur(1, 1.0);
  double cur_lo = 0.0;
  double cur_step = dist.step;
  for (std::size_t i = 0; i < n; ++i) {
    double lo_next = cur_lo + std::min(claim_shift[i], silent_shift[i]);
    std::size_t len_next = std::min(
        cells, cur.size() + static_cast<std::size_t>(
                                std::ceil(std::fabs(claim_shift[i] -
                                                    silent_shift[i]) /
                                          cur_step)) +
                   2);
    std::vector<double> next(len_next, 0.0);
    auto add = [&](double value_lo_offset, double prob) {
      if (prob <= 0.0) return;
      for (std::size_t k = 0; k < cur.size(); ++k) {
        if (cur[k] <= 0.0) continue;
        double value = cur_lo + static_cast<double>(k) * cur_step +
                       value_lo_offset;
        double idx = (value - lo_next) / cur_step;
        long cell = std::lround(idx);
        cell = std::max(
            0L, std::min(static_cast<long>(len_next) - 1, cell));
        next[static_cast<std::size_t>(cell)] += cur[k] * prob;
      }
    };
    add(claim_shift[i], claim_prob[i]);
    add(silent_shift[i], 1.0 - claim_prob[i]);
    cur = std::move(next);
    cur_lo = lo_next;
  }
  dist.lo = cur_lo;
  dist.mass = std::move(cur);
  return dist;
}

// P(sum + threshold_shift >= 0) over the grid distribution.
double mass_at_or_above(const GridDist& dist, double threshold) {
  double total = 0.0;
  for (std::size_t k = 0; k < dist.mass.size(); ++k) {
    double value = dist.lo + static_cast<double>(k) * dist.step;
    if (value >= threshold) total += dist.mass[k];
  }
  return total;
}

}  // namespace

BoundResult convolution_bound(const ColumnModel& model,
                              const ConvolutionBoundConfig& config) {
  std::size_t n = model.source_count();
  std::vector<double> claim_shift(n);
  std::vector<double> silent_shift(n);
  std::vector<double> p1(n);
  std::vector<double> p0(n);
  for (std::size_t i = 0; i < n; ++i) {
    p1[i] = clamp_prob(model.p_claim_true[i]);
    p0[i] = clamp_prob(model.p_claim_false[i]);
    claim_shift[i] = safe_log(p1[i]) - safe_log(p0[i]);
    silent_shift[i] = safe_log1m(p1[i]) - safe_log1m(p0[i]);
  }
  double z = clamp_prob(model.z);
  double threshold = -logit(z);

  BoundResult result;
  if (n == 0) {
    bool decide_true = 0.0 >= threshold;
    if (decide_true) {
      result.false_positive = 1.0 - z;
    } else {
      result.false_negative = z;
    }
    result.error = result.false_positive + result.false_negative;
    return result;
  }

  // Under C=1 the claim probabilities are p1; under C=0 they are p0.
  GridDist under_true = convolve_two_point(claim_shift, silent_shift, p1,
                                           config.grid_cells);
  GridDist under_false = convolve_two_point(claim_shift, silent_shift,
                                            p0, config.grid_cells);

  // decide true <=> L >= threshold. Errors: truth and decided false
  // (false negative), or false and decided true (false positive).
  double p_decide_true_given_true = mass_at_or_above(under_true,
                                                     threshold);
  double p_decide_true_given_false = mass_at_or_above(under_false,
                                                      threshold);
  result.false_negative = z * (1.0 - p_decide_true_given_true);
  result.false_positive = (1.0 - z) * p_decide_true_given_false;
  result.error = result.false_positive + result.false_negative;
  return result;
}

}  // namespace ss
