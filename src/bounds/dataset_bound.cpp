#include "bounds/dataset_bound.h"

#include <unordered_map>
#include <vector>

#include "bounds/exact_bound.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

template <typename ComputeColumn>
DatasetBoundResult average_over_columns(const Dataset& dataset,
                                        ComputeColumn&& compute) {
  std::size_t m = dataset.assertion_count();
  std::unordered_map<std::uint64_t, BoundResult> memo;
  DatasetBoundResult out;
  out.columns = m;
  for (std::size_t j = 0; j < m; ++j) {
    std::uint64_t key = exposure_pattern_key(dataset.dependency, j);
    auto it = memo.find(key);
    if (it == memo.end()) {
      it = memo.emplace(key, compute(j)).first;
    }
    out.bound.error += it->second.error;
    out.bound.false_positive += it->second.false_positive;
    out.bound.false_negative += it->second.false_negative;
  }
  if (m > 0) {
    double inv = 1.0 / static_cast<double>(m);
    out.bound.error *= inv;
    out.bound.false_positive *= inv;
    out.bound.false_negative *= inv;
  }
  out.distinct_patterns = memo.size();
  return out;
}

}  // namespace

DatasetBoundResult exact_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params) {
  return average_over_columns(dataset, [&](std::size_t j) {
    return exact_bound(make_column_model(params, dataset.dependency, j));
  });
}

DatasetBoundResult gibbs_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params,
                                       std::uint64_t seed,
                                       const GibbsBoundConfig& config) {
  return average_over_columns(dataset, [&](std::size_t j) {
    ColumnModel model = make_column_model(params, dataset.dependency, j);
    return gibbs_bound(model, seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)),
                       config)
        .bound;
  });
}

DatasetBoundResult gibbs_dataset_bound(const ShardedDataset& sharded,
                                       const ModelParams& params,
                                       std::uint64_t seed,
                                       const GibbsBoundConfig& config,
                                       ThreadPool* pool) {
  if (pool == nullptr) pool = &global_pool();
  std::size_t m = sharded.assertion_count();
  DatasetBoundResult out;
  out.columns = m;

  // Pass 1 (serial, assertion order): assign each column its distinct
  // exposure pattern. A pattern is represented by its first-occurrence
  // column, which also supplies the chain seed — exactly the column the
  // flat overload's memo would have computed, so the two variants run
  // the same chains on the same models.
  std::unordered_map<std::uint64_t, std::uint32_t> pattern_of_key;
  std::vector<std::uint32_t> pattern_of(m);
  std::vector<std::uint32_t> first_column;
  for (std::size_t j = 0; j < m; ++j) {
    std::uint64_t key = exposure_pattern_key(sharded.exposed_sources(j));
    auto [it, inserted] = pattern_of_key.emplace(
        key, static_cast<std::uint32_t>(first_column.size()));
    if (inserted) first_column.push_back(static_cast<std::uint32_t>(j));
    pattern_of[j] = it->second;
  }
  out.distinct_patterns = first_column.size();

  // Pass 2: one Gibbs run per distinct pattern, concurrently (grain 1;
  // each pattern owns its slot, and gibbs_bound's own multi-chain
  // parallelism nests safely because pool callers participate).
  std::vector<BoundResult> results(first_column.size());
  pool->parallel_for_chunks(
      first_column.size(), 1,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          std::size_t j = first_column[p];
          ColumnModel model =
              make_column_model(params, sharded.exposed_sources(j));
          results[p] = gibbs_bound(
                           model, seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)),
                           config)
                           .bound;
        }
      });

  // Pass 3 (serial, assertion order): the same accumulation sequence as
  // the flat overload's memo walk.
  for (std::size_t j = 0; j < m; ++j) {
    const BoundResult& b = results[pattern_of[j]];
    out.bound.error += b.error;
    out.bound.false_positive += b.false_positive;
    out.bound.false_negative += b.false_negative;
  }
  if (m > 0) {
    double inv = 1.0 / static_cast<double>(m);
    out.bound.error *= inv;
    out.bound.false_positive *= inv;
    out.bound.false_negative *= inv;
  }
  return out;
}

}  // namespace ss
