#include "bounds/dataset_bound.h"

#include <unordered_map>

#include "bounds/exact_bound.h"

namespace ss {
namespace {

template <typename ComputeColumn>
DatasetBoundResult average_over_columns(const Dataset& dataset,
                                        ComputeColumn&& compute) {
  std::size_t m = dataset.assertion_count();
  std::unordered_map<std::uint64_t, BoundResult> memo;
  DatasetBoundResult out;
  out.columns = m;
  for (std::size_t j = 0; j < m; ++j) {
    std::uint64_t key = exposure_pattern_key(dataset.dependency, j);
    auto it = memo.find(key);
    if (it == memo.end()) {
      it = memo.emplace(key, compute(j)).first;
    }
    out.bound.error += it->second.error;
    out.bound.false_positive += it->second.false_positive;
    out.bound.false_negative += it->second.false_negative;
  }
  if (m > 0) {
    double inv = 1.0 / static_cast<double>(m);
    out.bound.error *= inv;
    out.bound.false_positive *= inv;
    out.bound.false_negative *= inv;
  }
  out.distinct_patterns = memo.size();
  return out;
}

}  // namespace

DatasetBoundResult exact_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params) {
  return average_over_columns(dataset, [&](std::size_t j) {
    return exact_bound(make_column_model(params, dataset.dependency, j));
  });
}

DatasetBoundResult gibbs_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params,
                                       std::uint64_t seed,
                                       const GibbsBoundConfig& config) {
  return average_over_columns(dataset, [&](std::size_t j) {
    ColumnModel model = make_column_model(params, dataset.dependency, j);
    return gibbs_bound(model, seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)),
                       config)
        .bound;
  });
}

}  // namespace ss
