// Deterministic approximate error bound via log-likelihood-ratio
// convolution.
//
// The optimal estimator decides by the sign of
//   L = sum_i lambda_i + logit(z),
// where each source contributes a two-point random variable
//   lambda_i = log(p1_i / p0_i)           if source i claims
//            = log((1-p1_i) / (1-p0_i))   otherwise,
// with claim probability p1_i under C=1 and p0_i under C=0. The Bayes
// risk of Eq. 3 is then
//   Err = z * P(L < 0 | C=1) + (1-z) * P(L >= 0 | C=0),
// and the distribution of the sum is computed *exactly up to grid
// resolution* by convolving the n two-point distributions on a uniform
// grid — O(n * grid) deterministic work instead of 2^n enumeration or
// MCMC sampling. This is the library's third bound algorithm, compared
// against exact enumeration and Gibbs in ablation A6.
#pragma once

#include <cstddef>

#include "bounds/exact_bound.h"

namespace ss {

struct ConvolutionBoundConfig {
  // Grid cells for the LLR distribution; accuracy is O(n * step) where
  // step = (range)/cells, so a few thousand cells reach ~1e-3 even at
  // n = 100.
  std::size_t grid_cells = 8192;
};

// Ties on the decision boundary are counted toward "decide true",
// matching exact_bound's >= comparison.
BoundResult convolution_bound(const ColumnModel& model,
                              const ConvolutionBoundConfig& config = {});

}  // namespace ss
