#include "bounds/gibbs_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "math/convergence.h"
#include "math/kernels.h"
#include "math/logprob.h"
#include "util/checkpoint.h"
#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ss {
namespace {

// CheckpointStore kind tag for Gibbs chains.
constexpr std::uint64_t kGibbsCheckpointKind = 2;
// Entry clamp for degenerate model probabilities. p in {0,1} makes the
// leave-one-out conditionals NaN (-inf minus -inf); pulling such
// entries this far inside (0,1) leaves every non-degenerate model
// bit-identical while making the chain arithmetic finite.
constexpr double kProbEps = 1e-12;

// Chain state: the claim bits plus the two log-likelihood sums
//   L1 = log P(s | C=1), L0 = log P(s | C=0)
// maintained incrementally (O(1) per bit flip) and refreshed once per
// sweep to cancel floating-point drift.
struct ChainState {
  std::vector<char> bits;
  double log_true = 0.0;
  double log_false = 0.0;
};

// Everything one chain produces: the accumulators of both estimators,
// the per-sweep min-posterior series, and its diagnostics.
struct ChainRun {
  double err_part = 0.0;  // Algorithm 1 numerator
  double total = 0.0;     // Algorithm 1 denominator
  double fp_part = 0.0;
  double fn_part = 0.0;
  double err_mc = 0.0;  // unbiased mean of min-posterior
  double fp_mc = 0.0;
  double fn_mc = 0.0;
  std::size_t samples = 0;
  bool converged = false;
  std::vector<double> min_posterior_series;
  double ess = 0.0;
  double lag1 = 0.0;
  std::size_t nonfinite_sweeps = 0;
  bool resumed = false;  // replayed from a checkpoint, not recomputed
};

// A finished chain, serialized bit-exact for CheckpointStore; resuming
// from these records reproduces the uninterrupted run exactly.
std::string encode_chain(const ChainRun& r) {
  BinWriter w;
  w.f64(r.err_part);
  w.f64(r.total);
  w.f64(r.fp_part);
  w.f64(r.fn_part);
  w.f64(r.err_mc);
  w.f64(r.fp_mc);
  w.f64(r.fn_mc);
  w.u64(r.samples);
  w.u8(r.converged ? 1 : 0);
  w.vec_f64(r.min_posterior_series);
  w.f64(r.ess);
  w.f64(r.lag1);
  w.u64(r.nonfinite_sweeps);
  return w.take();
}

// Throws std::runtime_error on any malformed payload; the caller treats
// that as "record absent" and recomputes the chain.
ChainRun decode_chain(const std::string& bytes) {
  BinReader rd(bytes);
  ChainRun r;
  r.err_part = rd.f64();
  r.total = rd.f64();
  r.fp_part = rd.f64();
  r.fn_part = rd.f64();
  r.err_mc = rd.f64();
  r.fp_mc = rd.f64();
  r.fn_mc = rd.f64();
  r.samples = static_cast<std::size_t>(rd.u64());
  r.converged = rd.u8() != 0;
  r.min_posterior_series = rd.vec_f64();
  r.ess = rd.f64();
  r.lag1 = rd.f64();
  r.nonfinite_sweeps = static_cast<std::size_t>(rd.u64());
  r.resumed = true;
  if (!rd.done()) {
    throw std::runtime_error("checkpoint: trailing bytes");
  }
  return r;
}

// Initial-monotone-sequence style ESS estimate over a scalar series.
// Autocorrelations are summed up to the first non-positive lag (capped),
// the standard practical truncation for MCMC output.
void chain_diagnostics(const std::vector<double>& series, double* ess,
                       double* lag1) {
  *ess = static_cast<double>(series.size());
  *lag1 = 0.0;
  std::size_t n = series.size();
  if (n < 4) return;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  if (var <= 0.0) return;  // constant chain: treat as i.i.d.
  double sum_rho = 0.0;
  std::size_t max_lag = std::min<std::size_t>(n / 2, 200);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      acc += (series[t] - mean) * (series[t - lag] - mean);
    }
    double rho = acc / (static_cast<double>(n) * var);
    if (lag == 1) *lag1 = rho;
    if (rho <= 0.0) break;
    sum_rho += rho;
  }
  *ess = static_cast<double>(n) / (1.0 + 2.0 * sum_rho);
}

// Gelman-Rubin potential scale reduction over per-chain series truncated
// to their common length.
double cross_chain_r_hat(const std::vector<ChainRun>& runs) {
  std::size_t k = runs.size();
  if (k < 2) return 1.0;
  std::size_t len = runs[0].min_posterior_series.size();
  for (const ChainRun& r : runs) {
    len = std::min(len, r.min_posterior_series.size());
  }
  if (len < 4) return 1.0;
  double n = static_cast<double>(len);
  std::vector<double> means(k, 0.0);
  std::vector<double> vars(k, 0.0);
  double grand = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const auto& s = runs[c].min_posterior_series;
    for (std::size_t t = 0; t < len; ++t) means[c] += s[t];
    means[c] /= n;
    for (std::size_t t = 0; t < len; ++t) {
      vars[c] += (s[t] - means[c]) * (s[t] - means[c]);
    }
    vars[c] /= n - 1.0;
    grand += means[c];
  }
  grand /= static_cast<double>(k);
  double between = 0.0;  // B/n: variance of the chain means
  double within = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    between += (means[c] - grand) * (means[c] - grand);
    within += vars[c];
  }
  between /= static_cast<double>(k - 1);
  within /= static_cast<double>(k);
  if (within <= 0.0) return 1.0;  // constant chains
  double var_plus = (n - 1.0) / n * within + between;
  return std::sqrt(var_plus / within);
}

// Full-state refresh from the hoisted sweep weights: same logs, same
// source-order summation as the per-source loop it replaces (on the
// scalar backend; the AVX2 backend runs the table's packed refresh
// under its ULP contract).
void refresh_logs(const kernels::SweepWeightsTable& weights,
                  ChainState& state) {
  kernels::LogPair sums = weights.sum_state_logs(state.bits);
  state.log_true = sums.t;
  state.log_false = sums.f;
}

// One full chain: Algorithm 1's sweep loop with both estimators'
// accumulators. Exactly the historical single-chain behaviour.
// `weights` holds the per-source log claim probabilities and `marginal`
// the prior-mixture claim marginals — both chain-constant, hoisted once
// by gibbs_bound() and shared across chains (the pre-kernel sweep paid
// four transcendentals per source per sweep for the same values).
ChainRun run_chain(const ColumnModel& model,
                   const kernels::SweepWeightsTable& weights,
                   const std::vector<double>& marginal, Rng rng,
                   const GibbsBoundConfig& config) {
  std::size_t n = model.source_count();
  const double log_z = safe_log(model.z);
  const double log_1mz = safe_log1m(model.z);

  ChainState state;
  state.bits.resize(n);
  // Initialize each bit from its marginal claim probability under the
  // prior mixture — a draw already close to the target distribution.
  for (std::size_t i = 0; i < n; ++i) {
    state.bits[i] = rng.bernoulli(marginal[i]) ? 1 : 0;
  }
  refresh_logs(weights, state);

  ChainRun run;
  run.min_posterior_series.reserve(
      std::min<std::size_t>(config.max_sweeps, 20000));

  ConvergenceMonitor monitor(config.tol, config.max_sweeps,
                             config.patience);
  bool done = false;
  std::size_t sweep = 0;

  while (!done) {
    ++sweep;
    refresh_logs(weights, state);
    for (std::size_t i = 0; i < n; ++i) {
      double p1 = model.p_claim_true[i];
      double p0 = model.p_claim_false[i];
      const kernels::SweepWeights& w = weights[i];
      double log_t1 = w.log_t1;
      double log_t1n = w.log_t1n;
      double log_f1 = w.log_f1;
      double log_f1n = w.log_f1n;
      // Leave-one-out log likelihoods.
      double rest_true =
          state.log_true - (state.bits[i] ? log_t1 : log_t1n);
      double rest_false =
          state.log_false - (state.bits[i] ? log_f1 : log_f1n);
      // P(s_i = 1 | rest) marginalizing C (Algorithm 1 line 6):
      //   w1 = z * P(rest | C=1), w0 = (1-z) * P(rest | C=0)
      //   P(s_i=1|rest) = (w1*p1 + w0*p0) / (w1 + w0)
      double lw1 = log_z + rest_true;
      double lw0 = log_1mz + rest_false;
      double w1_frac = normalize_log_pair(lw1, lw0);  // w1/(w1+w0)
      double prob_one = w1_frac * p1 + (1.0 - w1_frac) * p0;
      bool bit = rng.bernoulli(prob_one);
      state.bits[i] = bit ? 1 : 0;
      state.log_true = rest_true + (bit ? log_t1 : log_t1n);
      state.log_false = rest_false + (bit ? log_f1 : log_f1n);
    }
    if (!std::isfinite(state.log_true) ||
        !std::isfinite(state.log_false)) {
      // Degenerate state escaped the entry clamp (injected fault or
      // extreme model): re-draw the bits from the prior marginals and
      // keep the chain running; this sweep yields no sample.
      ++run.nonfinite_sweeps;
      for (std::size_t i = 0; i < n; ++i) {
        state.bits[i] = rng.bernoulli(marginal[i]) ? 1 : 0;
      }
      refresh_logs(weights, state);
      if (sweep >= config.max_sweeps) done = true;
      continue;
    }
    if (sweep <= config.burn_in_sweeps) continue;

    // One post-burn-in sample per sweep.
    ++run.samples;
    double lm1 = log_z + state.log_true;      // log(z P1)
    double lm0 = log_1mz + state.log_false;   // log((1-z) P0)
    double m1 = from_log(lm1);
    double m0 = from_log(lm0);
    bool decide_true = lm1 >= lm0;
    run.err_part += decide_true ? m0 : m1;
    run.total += m1 + m0;
    if (decide_true) {
      run.fp_part += m0;
    } else {
      run.fn_part += m1;
    }
    double min_posterior = normalize_log_pair(
        decide_true ? lm0 : lm1, decide_true ? lm1 : lm0);
    run.min_posterior_series.push_back(min_posterior);
    run.err_mc += min_posterior;
    if (decide_true) {
      run.fp_mc += min_posterior;
    } else {
      run.fn_mc += min_posterior;
    }

    double current =
        config.kind == GibbsEstimatorKind::kAlgorithm1
            ? (run.total > 0.0 ? run.err_part / run.total : 0.0)
            : run.err_mc / static_cast<double>(run.samples);
    if (run.samples >= config.min_sweeps && monitor.update(current)) {
      done = true;
      run.converged = !monitor.hit_max();
    }
    if (sweep >= config.max_sweeps) done = true;
  }

  chain_diagnostics(run.min_posterior_series, &run.ess, &run.lag1);
  return run;
}

}  // namespace

GibbsBoundResult gibbs_bound(const ColumnModel& model, std::uint64_t seed,
                             const GibbsBoundConfig& config) {
  std::size_t chains = std::max<std::size_t>(1, config.chains);
  std::vector<ChainRun> runs(chains);

  // Entry clamp: p in {0,1} (or NaN) would make the leave-one-out
  // conditionals non-finite; identity on non-degenerate models.
  ColumnModel clamped = model;
  std::size_t clamps = 0;
  auto clamp_entry = [&clamps](double& p) {
    if (!(p >= kProbEps)) {  // also catches NaN
      p = kProbEps;
      ++clamps;
    } else if (p > 1.0 - kProbEps) {
      p = 1.0 - kProbEps;
      ++clamps;
    }
  };
  for (double& p : clamped.p_claim_true) clamp_entry(p);
  for (double& p : clamped.p_claim_false) clamp_entry(p);
  clamp_entry(clamped.z);

  // Chain-constant per-source terms, hoisted once and shared by every
  // chain: the sweep-loop log weights and the prior-mixture claim
  // marginals used for initialization and non-finite recovery redraws.
  kernels::SweepWeightsTable weights;
  weights.build(clamped.p_claim_true, clamped.p_claim_false);
  std::vector<double> marginal(clamped.source_count());
  for (std::size_t i = 0; i < marginal.size(); ++i) {
    marginal[i] = clamped.z * clamped.p_claim_true[i] +
                  (1.0 - clamped.z) * clamped.p_claim_false[i];
  }

  // Checkpoint store bound to everything that determines a chain's
  // output; a stale file (different model, seed or config) is ignored.
  std::unique_ptr<CheckpointStore> ckpt;
  if (!config.checkpoint_path.empty()) {
    std::uint64_t fp = fingerprint_combine(0x47424253ull, seed);
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(clamped.source_count()));
    fp = fingerprint_combine(fp, clamped.z);
    for (double p : clamped.p_claim_true) fp = fingerprint_combine(fp, p);
    for (double p : clamped.p_claim_false) {
      fp = fingerprint_combine(fp, p);
    }
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.burn_in_sweeps));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.max_sweeps));
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.min_sweeps));
    fp = fingerprint_combine(fp, config.tol);
    fp = fingerprint_combine(
        fp, static_cast<std::uint64_t>(config.patience));
    fp = fingerprint_combine(fp, static_cast<std::uint64_t>(config.kind));
    ckpt = std::make_unique<CheckpointStore>(
        config.checkpoint_path, kGibbsCheckpointKind, fp, chains);
  }

  // Chain 0 keeps the historical RNG stream so `chains = 1` reproduces
  // the single-chain results bit-for-bit; extra chains draw from split
  // streams keyed only by the chain index.
  auto launch = [&](std::size_t c) {
    if (ckpt != nullptr && ckpt->has(c)) {
      try {
        runs[c] = decode_chain(ckpt->payload(c));
        return;
      } catch (const std::exception&) {
        // Undecodable record: recompute. A checkpoint can only save
        // work, never poison a run.
      }
    }
    Rng base(seed, /*stream=*/0x61bb5);
    runs[c] = run_chain(clamped, weights, marginal,
                        c == 0 ? base : base.split(c), config);
    if (ckpt != nullptr) {
      ckpt->commit(c, encode_chain(runs[c]));
      fault::unit_committed();  // kill-after-commit injection point
    }
  };
  if (chains > 1) {
    ThreadPool* pool =
        config.pool != nullptr ? config.pool : &global_pool();
    pool->parallel_for_chunks(
        chains, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t c = begin; c < end; ++c) launch(c);
        });
  } else {
    launch(0);
  }

  // Pool the estimators in chain order (deterministic for any pool
  // size; with one chain the reduction is the identity).
  GibbsBoundResult out;
  out.chains = chains;
  out.converged = true;
  out.clamped_probabilities = clamps;
  double err_part = 0.0, total = 0.0, fp_part = 0.0, fn_part = 0.0;
  double fp_mc = 0.0, fn_mc = 0.0, lag1_sum = 0.0;
  std::size_t samples = 0;
  for (const ChainRun& run : runs) {
    err_part += run.err_part;
    total += run.total;
    fp_part += run.fp_part;
    fn_part += run.fn_part;
    fp_mc += run.fp_mc;
    fn_mc += run.fn_mc;
    samples += run.samples;
    out.converged = out.converged && run.converged;
    out.effective_sample_size += run.ess;
    lag1_sum += run.lag1;
    out.nonfinite_sweeps += run.nonfinite_sweeps;
    if (run.resumed) ++out.resumed_chains;
  }
  out.sweeps = samples;
  out.autocorr_lag1 = lag1_sum / static_cast<double>(chains);
  if (config.kind == GibbsEstimatorKind::kAlgorithm1) {
    double denom = total > 0.0 ? total : 1.0;
    out.bound.false_positive = fp_part / denom;
    out.bound.false_negative = fn_part / denom;
  } else {
    double denom = samples > 0 ? static_cast<double>(samples) : 1.0;
    out.bound.false_positive = fp_mc / denom;
    out.bound.false_negative = fn_mc / denom;
  }
  out.bound.error = out.bound.false_positive + out.bound.false_negative;
  out.r_hat = cross_chain_r_hat(runs);
  if (ckpt != nullptr && !config.keep_checkpoint) ckpt->remove_file();
  return out;
}

}  // namespace ss
