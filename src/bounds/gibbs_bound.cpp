#include "bounds/gibbs_bound.h"

#include <cmath>
#include <vector>

#include "math/convergence.h"
#include "math/logprob.h"
#include "util/rng.h"

namespace ss {
namespace {

// Chain state: the claim bits plus the two log-likelihood sums
//   L1 = log P(s | C=1), L0 = log P(s | C=0)
// maintained incrementally (O(1) per bit flip) and refreshed once per
// sweep to cancel floating-point drift.
struct ChainState {
  std::vector<char> bits;
  double log_true = 0.0;
  double log_false = 0.0;
};

// Initial-monotone-sequence style ESS estimate over a scalar series.
// Autocorrelations are summed up to the first non-positive lag (capped),
// the standard practical truncation for MCMC output.
void chain_diagnostics(const std::vector<double>& series, double* ess,
                       double* lag1) {
  *ess = static_cast<double>(series.size());
  *lag1 = 0.0;
  std::size_t n = series.size();
  if (n < 4) return;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  if (var <= 0.0) return;  // constant chain: treat as i.i.d.
  double sum_rho = 0.0;
  std::size_t max_lag = std::min<std::size_t>(n / 2, 200);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      acc += (series[t] - mean) * (series[t - lag] - mean);
    }
    double rho = acc / (static_cast<double>(n) * var);
    if (lag == 1) *lag1 = rho;
    if (rho <= 0.0) break;
    sum_rho += rho;
  }
  *ess = static_cast<double>(n) / (1.0 + 2.0 * sum_rho);
}

void refresh_logs(const ColumnModel& model, ChainState& state) {
  state.log_true = 0.0;
  state.log_false = 0.0;
  for (std::size_t i = 0; i < model.source_count(); ++i) {
    double p1 = model.p_claim_true[i];
    double p0 = model.p_claim_false[i];
    state.log_true += state.bits[i] ? std::log(p1) : std::log1p(-p1);
    state.log_false += state.bits[i] ? std::log(p0) : std::log1p(-p0);
  }
}

}  // namespace

GibbsBoundResult gibbs_bound(const ColumnModel& model, std::uint64_t seed,
                             const GibbsBoundConfig& config) {
  std::size_t n = model.source_count();
  Rng rng(seed, /*stream=*/0x61bb5);
  const double log_z = std::log(model.z);
  const double log_1mz = std::log1p(-model.z);

  ChainState state;
  state.bits.resize(n);
  // Initialize each bit from its marginal claim probability under the
  // prior mixture — a draw already close to the target distribution.
  for (std::size_t i = 0; i < n; ++i) {
    double marginal = model.z * model.p_claim_true[i] +
                      (1.0 - model.z) * model.p_claim_false[i];
    state.bits[i] = rng.bernoulli(marginal) ? 1 : 0;
  }
  refresh_logs(model, state);

  // Accumulators for both estimators (see header).
  double err_part = 0.0;   // Algorithm 1 numerator
  double total = 0.0;      // Algorithm 1 denominator
  double fp_part = 0.0;
  double fn_part = 0.0;
  double err_mc = 0.0;     // unbiased mean of min-posterior
  double fp_mc = 0.0;
  double fn_mc = 0.0;
  std::size_t samples = 0;
  std::vector<double> min_posterior_series;
  min_posterior_series.reserve(
      std::min<std::size_t>(config.max_sweeps, 20000));

  ConvergenceMonitor monitor(config.tol, config.max_sweeps,
                             config.patience);
  bool done = false;
  std::size_t sweep = 0;
  GibbsBoundResult out;

  while (!done) {
    ++sweep;
    refresh_logs(model, state);
    for (std::size_t i = 0; i < n; ++i) {
      double p1 = model.p_claim_true[i];
      double p0 = model.p_claim_false[i];
      double log_t1 = std::log(p1);
      double log_t1n = std::log1p(-p1);
      double log_f1 = std::log(p0);
      double log_f1n = std::log1p(-p0);
      // Leave-one-out log likelihoods.
      double rest_true =
          state.log_true - (state.bits[i] ? log_t1 : log_t1n);
      double rest_false =
          state.log_false - (state.bits[i] ? log_f1 : log_f1n);
      // P(s_i = 1 | rest) marginalizing C (Algorithm 1 line 6):
      //   w1 = z * P(rest | C=1), w0 = (1-z) * P(rest | C=0)
      //   P(s_i=1|rest) = (w1*p1 + w0*p0) / (w1 + w0)
      double lw1 = log_z + rest_true;
      double lw0 = log_1mz + rest_false;
      double w1_frac = normalize_log_pair(lw1, lw0);  // w1/(w1+w0)
      double prob_one = w1_frac * p1 + (1.0 - w1_frac) * p0;
      bool bit = rng.bernoulli(prob_one);
      state.bits[i] = bit ? 1 : 0;
      state.log_true = rest_true + (bit ? log_t1 : log_t1n);
      state.log_false = rest_false + (bit ? log_f1 : log_f1n);
    }
    if (sweep <= config.burn_in_sweeps) continue;

    // One post-burn-in sample per sweep.
    ++samples;
    double lm1 = log_z + state.log_true;      // log(z P1)
    double lm0 = log_1mz + state.log_false;   // log((1-z) P0)
    double m1 = std::exp(lm1);
    double m0 = std::exp(lm0);
    bool decide_true = lm1 >= lm0;
    err_part += decide_true ? m0 : m1;
    total += m1 + m0;
    if (decide_true) {
      fp_part += m0;
    } else {
      fn_part += m1;
    }
    double min_posterior = normalize_log_pair(
        decide_true ? lm0 : lm1, decide_true ? lm1 : lm0);
    min_posterior_series.push_back(min_posterior);
    err_mc += min_posterior;
    if (decide_true) {
      fp_mc += min_posterior;
    } else {
      fn_mc += min_posterior;
    }

    double current =
        config.kind == GibbsEstimatorKind::kAlgorithm1
            ? (total > 0.0 ? err_part / total : 0.0)
            : err_mc / static_cast<double>(samples);
    if (samples >= config.min_sweeps && monitor.update(current)) {
      done = true;
      out.converged = !monitor.hit_max();
    }
    if (sweep >= config.max_sweeps) done = true;
  }

  out.sweeps = samples;
  if (config.kind == GibbsEstimatorKind::kAlgorithm1) {
    double denom = total > 0.0 ? total : 1.0;
    out.bound.false_positive = fp_part / denom;
    out.bound.false_negative = fn_part / denom;
  } else {
    double denom = samples > 0 ? static_cast<double>(samples) : 1.0;
    out.bound.false_positive = fp_mc / denom;
    out.bound.false_negative = fn_mc / denom;
  }
  out.bound.error = out.bound.false_positive + out.bound.false_negative;
  chain_diagnostics(min_posterior_series, &out.effective_sample_size,
                    &out.autocorr_lag1);
  return out;
}

}  // namespace ss
