// Approximate error bound via Gibbs sampling (Section III-B, Algorithm 1).
//
// Instead of marginalizing over all 2^n claim combinations, draw samples
// s^(t) from P(SC_j) = z P(SC_j|C=1) + (1-z) P(SC_j|C=0) with a Gibbs
// chain over the n claim bits, and estimate the bound from the samples.
//
// Two estimators are provided (DESIGN.md §5, ablation A1):
//  * kAlgorithm1 — the paper's ratio form, Eq. 6:
//        Err ≈ Σ_t min(z P1_t, (1-z) P0_t) / Σ_t (z P1_t + (1-z) P0_t)
//    This re-weights samples (already drawn from P) by P again.
//  * kUnbiasedMc — the plain Monte-Carlo mean of the per-sample minimum
//    posterior min(z P1_t, (1-z) P0_t) / (z P1_t + (1-z) P0_t), whose
//    expectation under the sampling distribution equals Eq. 3 exactly.
#pragma once

#include <cstdint>

#include "bounds/column_model.h"
#include "bounds/exact_bound.h"

namespace ss {

enum class GibbsEstimatorKind {
  kAlgorithm1,  // faithful to the paper
  kUnbiasedMc,
};

struct GibbsBoundConfig {
  std::size_t burn_in_sweeps = 100;
  std::size_t max_sweeps = 20000;
  std::size_t min_sweeps = 500;
  // Declare convergence when the running Err estimate moves less than
  // `tol` for `patience` consecutive sweeps (Algorithm 1 line 3).
  double tol = 1e-5;
  std::size_t patience = 50;
  // Default is the unbiased estimator: it reproduces the exact bound to
  // Monte-Carlo noise (the paper's reported <= 0.013 gaps), whereas the
  // literal ratio form of Eq. 6 double-weights likely samples and shows a
  // visible bias (ablation bench A1 quantifies it).
  GibbsEstimatorKind kind = GibbsEstimatorKind::kUnbiasedMc;
};

struct GibbsBoundResult {
  BoundResult bound;
  std::size_t sweeps = 0;  // post-burn-in samples used
  bool converged = false;
  // Chain-quality diagnostics over the per-sweep min-posterior series:
  // effective sample size N / (1 + 2 sum of autocorrelations) and the
  // lag-1 autocorrelation. ESS near `sweeps` means the chain mixes like
  // i.i.d. sampling; a tiny ESS flags untrustworthy convergence.
  double effective_sample_size = 0.0;
  double autocorr_lag1 = 0.0;
};

GibbsBoundResult gibbs_bound(const ColumnModel& model, std::uint64_t seed,
                             const GibbsBoundConfig& config = {});

}  // namespace ss
