// Approximate error bound via Gibbs sampling (Section III-B, Algorithm 1).
//
// Instead of marginalizing over all 2^n claim combinations, draw samples
// s^(t) from P(SC_j) = z P(SC_j|C=1) + (1-z) P(SC_j|C=0) with a Gibbs
// chain over the n claim bits, and estimate the bound from the samples.
//
// Two estimators are provided (DESIGN.md §5, ablation A1):
//  * kAlgorithm1 — the paper's ratio form, Eq. 6:
//        Err ≈ Σ_t min(z P1_t, (1-z) P0_t) / Σ_t (z P1_t + (1-z) P0_t)
//    This re-weights samples (already drawn from P) by P again.
//  * kUnbiasedMc — the plain Monte-Carlo mean of the per-sample minimum
//    posterior min(z P1_t, (1-z) P0_t) / (z P1_t + (1-z) P0_t), whose
//    expectation under the sampling distribution equals Eq. 3 exactly.
#pragma once

#include <cstdint>
#include <string>

#include "bounds/column_model.h"
#include "bounds/exact_bound.h"

namespace ss {

class ThreadPool;

enum class GibbsEstimatorKind {
  kAlgorithm1,  // faithful to the paper
  kUnbiasedMc,
};

struct GibbsBoundConfig {
  std::size_t burn_in_sweeps = 100;
  std::size_t max_sweeps = 20000;
  std::size_t min_sweeps = 500;
  // Declare convergence when the running Err estimate moves less than
  // `tol` for `patience` consecutive sweeps (Algorithm 1 line 3).
  double tol = 1e-5;
  std::size_t patience = 50;
  // Default is the unbiased estimator: it reproduces the exact bound to
  // Monte-Carlo noise (the paper's reported <= 0.013 gaps), whereas the
  // literal ratio form of Eq. 6 double-weights likely samples and shows a
  // visible bias (ablation bench A1 quantifies it).
  GibbsEstimatorKind kind = GibbsEstimatorKind::kUnbiasedMc;
  // Number of independent chains. Each chain draws from its own split
  // RNG stream (chain 0 reproduces the single-chain stream exactly, so
  // `chains = 1` is bit-identical to the historical behaviour);
  // estimators pool the per-chain accumulators in chain order, and with
  // >= 2 chains the result also carries a cross-chain R-hat diagnostic.
  std::size_t chains = 1;
  // Pool the chains run on when chains > 1; nullptr selects the
  // process-wide global_pool(). The chain -> RNG mapping and the pooled
  // reduction order are fixed, so results are bit-identical for any
  // pool size.
  ThreadPool* pool = nullptr;
  // Checkpoint/resume (docs/MODEL.md §9). Empty disables. One binary
  // record per completed chain; a killed run re-invoked with the same
  // path replays finished chains and recomputes only the rest,
  // reproducing the uninterrupted run bit-for-bit. Bound to a
  // fingerprint of (seed, model, config); mismatch or corruption is
  // ignored. Removed after a successful run unless keep_checkpoint.
  std::string checkpoint_path;
  bool keep_checkpoint = false;
};

struct GibbsBoundResult {
  BoundResult bound;
  std::size_t sweeps = 0;  // post-burn-in samples used, all chains
  bool converged = false;  // every chain converged before max_sweeps
  // Chain-quality diagnostics over the per-sweep min-posterior series:
  // effective sample size N / (1 + 2 sum of autocorrelations), summed
  // over chains, and the mean lag-1 autocorrelation. ESS near `sweeps`
  // means the chains mix like i.i.d. sampling; a tiny ESS flags
  // untrustworthy convergence.
  double effective_sample_size = 0.0;
  double autocorr_lag1 = 0.0;
  // Gelman-Rubin potential scale reduction over the per-chain
  // min-posterior series (chains truncated to a common length). 1.0
  // when fewer than 2 chains or too few samples; values well above 1
  // flag chains that disagree about the stationary distribution.
  double r_hat = 1.0;
  std::size_t chains = 1;  // chains actually run
  // Fault-tolerance accounting (docs/MODEL.md §9); zero on healthy runs.
  // Model probabilities in {0, 1} make the leave-one-out conditionals
  // NaN (-inf minus -inf); they are clamped into (0, 1) on entry —
  // identity on non-degenerate models — and counted here.
  std::size_t clamped_probabilities = 0;
  // Sweeps whose chain state went non-finite anyway and was re-drawn
  // from the marginals instead of aborting the run.
  std::size_t nonfinite_sweeps = 0;
  // Chains replayed from a checkpoint instead of recomputed.
  std::size_t resumed_chains = 0;
};

GibbsBoundResult gibbs_bound(const ColumnModel& model, std::uint64_t seed,
                             const GibbsBoundConfig& config = {});

}  // namespace ss
