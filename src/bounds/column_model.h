// Per-assertion channel model used by the error-bound computations.
//
// For a fixed assertion j the behaviour of the n sources reduces to two
// Bernoulli rates per source, selected by that source's exposure D_ij
// (Section III, Eq. 4/5):
//   P(S_iC_j = 1 | C_j = 1) = a_i (unexposed) or f_i (exposed)
//   P(S_iC_j = 1 | C_j = 0) = b_i (unexposed) or g_i (exposed)
// A ColumnModel captures those 2n rates plus the prior z; both the exact
// enumeration and the Gibbs sampler operate on this flattened view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"
#include "data/dependency.h"

namespace ss {

struct ColumnModel {
  std::vector<double> p_claim_true;   // P(claim | C=1) per source
  std::vector<double> p_claim_false;  // P(claim | C=0) per source
  double z = 0.5;                     // P(C = 1)

  std::size_t source_count() const { return p_claim_true.size(); }
  bool valid() const;
};

// Builds the column model for `assertion` from full model parameters and
// the dependency indicators. Rates are clamped into (0,1) so logs and
// leave-one-out divisions stay finite.
ColumnModel make_column_model(const ModelParams& params,
                              const DependencyIndicators& dep,
                              std::size_t assertion,
                              double clamp_eps = 1e-12);

// Same model from an explicit exposed-source list (a ShardedDataset
// column slice, data/shard.h). The DependencyIndicators overload
// delegates here, so both produce bit-identical rates for equal lists.
ColumnModel make_column_model(const ModelParams& params,
                              std::span<const std::uint32_t> exposed_sources,
                              double clamp_eps = 1e-12);

// Variant taking an explicit exposure mask (tests, hand-built scenarios).
ColumnModel make_column_model(const ModelParams& params,
                              const std::vector<bool>& exposed,
                              double clamp_eps = 1e-12);

// Hash key identifying the exposure pattern of a column given shared
// params; columns with equal keys have identical bounds, which the
// dataset-level computation exploits for memoization.
std::uint64_t exposure_pattern_key(const DependencyIndicators& dep,
                                   std::size_t assertion);

// Same key from an explicit exposed-source list; equal lists hash
// equal, so sharded and flat memoization agree.
std::uint64_t exposure_pattern_key(
    std::span<const std::uint32_t> exposed_sources);

}  // namespace ss
