// Dataset-level error bound: the expected misclassification rate of the
// optimal estimator over a whole problem instance, i.e. the per-assertion
// bound (Eq. 3 / Eq. 6) averaged over the m assertion columns.
//
// Columns sharing an exposure pattern have identical bounds (theta does
// not vary by assertion), so results are memoized by pattern key — on the
// level-two-forest workloads this collapses m columns to only a handful
// of distinct computations.
#pragma once

#include <cstdint>

#include "bounds/gibbs_bound.h"
#include "core/params.h"
#include "data/dataset.h"
#include "data/shard.h"

namespace ss {

class ThreadPool;

struct DatasetBoundResult {
  BoundResult bound;        // averaged over assertions
  std::size_t distinct_patterns = 0;
  std::size_t columns = 0;
};

// Exact enumeration per distinct column pattern. Throws when the source
// count exceeds kExactBoundMaxSources.
DatasetBoundResult exact_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params);

// Gibbs approximation per distinct column pattern.
DatasetBoundResult gibbs_dataset_bound(const Dataset& dataset,
                                       const ModelParams& params,
                                       std::uint64_t seed,
                                       const GibbsBoundConfig& config = {});

// Shard-parallel variant over a ShardedDataset: the distinct exposure
// patterns are discovered serially in assertion order (so each pattern
// is evaluated at its first-occurrence column, with that column's
// seed), the per-pattern Gibbs chains run concurrently on `pool`
// (nullptr selects global_pool()), and the average accumulates
// serially in assertion order — bit-identical to the Dataset overload
// on the equivalent data for any shard layout and thread count.
DatasetBoundResult gibbs_dataset_bound(const ShardedDataset& sharded,
                                       const ModelParams& params,
                                       std::uint64_t seed,
                                       const GibbsBoundConfig& config = {},
                                       ThreadPool* pool = nullptr);

}  // namespace ss
