#include "bounds/column_model.h"

#include <stdexcept>

#include "math/logprob.h"
#include "util/rng.h"

namespace ss {

bool ColumnModel::valid() const {
  if (p_claim_true.size() != p_claim_false.size()) return false;
  if (z < 0.0 || z > 1.0) return false;
  for (double p : p_claim_true) {
    if (p < 0.0 || p > 1.0) return false;
  }
  for (double p : p_claim_false) {
    if (p < 0.0 || p > 1.0) return false;
  }
  return true;
}

ColumnModel make_column_model(const ModelParams& params,
                              const DependencyIndicators& dep,
                              std::size_t assertion, double clamp_eps) {
  if (dep.source_count() != params.source_count()) {
    throw std::invalid_argument(
        "make_column_model: params/dependency source mismatch");
  }
  return make_column_model(params, dep.exposed_sources(assertion),
                           clamp_eps);
}

ColumnModel make_column_model(
    const ModelParams& params,
    std::span<const std::uint32_t> exposed_sources, double clamp_eps) {
  std::size_t n = params.source_count();
  ColumnModel model;
  model.z = clamp_prob(params.z, clamp_eps);
  model.p_claim_true.resize(n);
  model.p_claim_false.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceParams& s = params.source[i];
    model.p_claim_true[i] = clamp_prob(s.a, clamp_eps);
    model.p_claim_false[i] = clamp_prob(s.b, clamp_eps);
  }
  for (std::uint32_t i : exposed_sources) {
    if (i >= n) {
      throw std::invalid_argument(
          "make_column_model: exposed source out of range");
    }
    const SourceParams& s = params.source[i];
    model.p_claim_true[i] = clamp_prob(s.f, clamp_eps);
    model.p_claim_false[i] = clamp_prob(s.g, clamp_eps);
  }
  return model;
}

ColumnModel make_column_model(const ModelParams& params,
                              const std::vector<bool>& exposed,
                              double clamp_eps) {
  std::size_t n = params.source_count();
  if (exposed.size() != n) {
    throw std::invalid_argument(
        "make_column_model: params/mask source mismatch");
  }
  ColumnModel model;
  model.z = clamp_prob(params.z, clamp_eps);
  model.p_claim_true.resize(n);
  model.p_claim_false.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SourceParams& s = params.source[i];
    model.p_claim_true[i] = clamp_prob(exposed[i] ? s.f : s.a, clamp_eps);
    model.p_claim_false[i] = clamp_prob(exposed[i] ? s.g : s.b, clamp_eps);
  }
  return model;
}

std::uint64_t exposure_pattern_key(const DependencyIndicators& dep,
                                   std::size_t assertion) {
  return exposure_pattern_key(
      std::span<const std::uint32_t>(dep.exposed_sources(assertion)));
}

std::uint64_t exposure_pattern_key(
    std::span<const std::uint32_t> exposed_sources) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t i : exposed_sources) {
    h = splitmix64(h ^ (i + 0x100000001b3ULL));
  }
  return h;
}

}  // namespace ss
