// Asymptotic confidence bounds on the estimated source parameters.
//
// The paper's companion line of work (Wang et al., SECON 2012 — cited as
// [17]) quantifies how well the source reliabilities themselves are
// known, via the Cramer-Rao lower bound of the estimation problem. For
// the dependency-aware model the complete-data Fisher information of a
// per-source rate r estimated from N effective observations is
// N / (r (1 - r)), giving the asymptotic standard error
// sqrt(r (1 - r) / N). The effective observation counts are the same
// posterior-weighted masses the M-step divides by (Eq. 10-14), so the
// intervals come almost for free after an EM run.
//
// These are *approximate* (observed-information, labels replaced by
// posteriors) confidence intervals: exact coverage degrades when
// posteriors are far from 0/1, which the demo and tests acknowledge.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.h"
#include "data/dataset.h"

namespace ss {

struct RateConfidence {
  double estimate = 0.5;
  double stderr_asymptotic = 0.0;  // sqrt(r(1-r)/N_eff)
  double n_effective = 0.0;

  double half_width(double z_score = 1.96) const {
    return z_score * stderr_asymptotic;
  }
  double lower(double z_score = 1.96) const;
  double upper(double z_score = 1.96) const;
};

struct SourceConfidence {
  RateConfidence a;
  RateConfidence b;
  RateConfidence f;
  RateConfidence g;
};

// Computes per-source confidence structures for the fitted `params`
// given the dataset and the final posterior (one entry per assertion).
std::vector<SourceConfidence> estimate_confidence(
    const Dataset& dataset, const ModelParams& params,
    const std::vector<double>& posterior);

}  // namespace ss
