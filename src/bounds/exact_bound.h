// Exact Bayes-risk error bound (Section III, Eq. 3).
//
// For one assertion the optimal estimator errs with probability
//   Err = sum over all 2^n claim combinations SC_j of
//         min{ z * P(SC_j | C=1), (1-z) * P(SC_j | C=0) }
// The implementation walks the full combination tree depth-first carrying
// the two partial products, so each of the 2^n leaves costs O(1) and no
// products are ever divided (no rounding drift). Complexity is O(2^n) —
// exponential by nature (the paper's Fig. 6 point) — and the entry point
// refuses n beyond a guard rail rather than silently running for hours.
#pragma once

#include <cstddef>

#include "bounds/column_model.h"

namespace ss {

struct BoundResult {
  // Total expected error probability of the optimal estimator.
  double error = 0.0;
  // Portion from declaring false assertions true (paper: "false positive
  // bound") and true assertions false ("false negative bound").
  // error == false_positive + false_negative.
  double false_positive = 0.0;
  double false_negative = 0.0;

  double optimal_accuracy() const { return 1.0 - error; }
};

// Largest n exact_bound accepts (2^30 leaves ~ seconds; beyond that the
// Gibbs approximation is the supported tool).
inline constexpr std::size_t kExactBoundMaxSources = 30;

// Throws std::invalid_argument when model.source_count() exceeds
// kExactBoundMaxSources.
BoundResult exact_bound(const ColumnModel& model);

// Eq. 3 applied to an *explicit* joint distribution over claim
// combinations: joint_true[k] = P(SC_j = k-th combination | C_j = 1) and
// likewise joint_false. Used for walkthroughs like the paper's Table I,
// whose joint does not factor into per-source rates. The two vectors
// must be equal-length; each should sum to ~1.
BoundResult bound_from_joint(const std::vector<double>& joint_true,
                             const std::vector<double>& joint_false,
                             double z);

}  // namespace ss
